//! Offline shim for `proptest`.
//!
//! Supports the subset the workspace's property tests use: the
//! `proptest!` macro (with `#![proptest_config(...)]`), range and
//! `any::<T>()` strategies, and `prop_assert!`/`prop_assert_eq!`.
//! Case generation is deterministic: case `i` of every test draws from a
//! SplitMix64 stream seeded by `i`, so failures reproduce exactly and
//! there is no shrinking machinery (the failing inputs are printed
//! instead).

use std::fmt;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

#[derive(Debug)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Deterministic per-case entropy source (SplitMix64).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn from_case(case: u64) -> TestRng {
        TestRng {
            state: case.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0x5851_f42d_4c95_7f2d,
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

// ----------------------------------------------------------------------
// Strategies
// ----------------------------------------------------------------------

pub trait Strategy {
    type Value: fmt::Debug;
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                (self.start as u64).wrapping_add(rng.next_u64() % span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                (lo as u64).wrapping_add(rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Full-domain strategy, as returned by [`any`].
pub struct Any<T>(PhantomData<T>);

pub fn any<T>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! impl_any_int {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Any<bool> {
    type Value = bool;
    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

// ----------------------------------------------------------------------
// Runner
// ----------------------------------------------------------------------

/// Drives `body` once per configured case; panics (failing the enclosing
/// `#[test]`) on the first case whose body returns `Err`.
pub fn run_cases<F>(test_name: &str, config: &ProptestConfig, mut body: F)
where
    F: FnMut(&mut TestRng, &mut Vec<String>) -> Result<(), TestCaseError>,
{
    for case in 0..config.cases {
        let mut rng = TestRng::from_case(case as u64);
        let mut inputs = Vec::new();
        if let Err(e) = body(&mut rng, &mut inputs) {
            panic!(
                "proptest `{test_name}` failed at case {case}/{} with inputs [{}]: {}",
                config.cases,
                inputs.join(", "),
                e.0
            );
        }
    }
}

// ----------------------------------------------------------------------
// Macros
// ----------------------------------------------------------------------

#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $config;
                $crate::run_cases(stringify!($name), &__config, |__rng, __inputs| {
                    $(
                        let $arg = $crate::Strategy::sample(&($strat), __rng);
                        __inputs.push(format!(
                            "{} = {:?}", stringify!($arg), $arg
                        ));
                    )*
                    let mut __case = move || -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    };
                    __case()
                });
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),*) $body
            )*
        }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!("assertion failed: `{:?}` != `{:?}`", l, r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!(
                    "assertion failed: `{:?}` != `{:?}`: {}",
                    l, r, format!($($fmt)*)
                ),
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!("assertion failed: `{:?}` == `{:?}`", l, r),
            ));
        }
    }};
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Any, ProptestConfig,
        Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Range strategies stay inside their bounds.
        #[test]
        fn ranges_in_bounds(x in 0u64..5000, b in 1usize..64) {
            prop_assert!(x < 5000);
            prop_assert!((1..64).contains(&b));
        }

        /// Early `return Ok(())` compiles and passes.
        #[test]
        fn early_return_ok(x in 0u32..10) {
            if x > 100 { return Ok(()); }
            prop_assert_eq!(x, x);
        }
    }

    proptest! {
        /// Config-less form uses the default case count.
        #[test]
        fn default_config_form(mask in any::<u64>()) {
            prop_assert_eq!(mask & 0, 0, "mask was {mask}");
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic_with_inputs() {
        crate::run_cases(
            "doomed",
            &ProptestConfig::with_cases(1),
            |_rng, _inputs| Err(TestCaseError::fail("boom")),
        );
    }
}
