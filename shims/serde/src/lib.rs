//! Offline shim for `serde`.
//!
//! The build container has no crates.io access, so this workspace patches
//! `serde` with a minimal self-contained replacement (see
//! `[patch.crates-io]` in the root `Cargo.toml`). It keeps the public
//! surface this repository actually uses — `Serialize` / `Deserialize`
//! traits and `#[derive(Serialize, Deserialize)]` — but simplifies the
//! data model to a single JSON-shaped [`Value`] tree instead of serde's
//! generic `Serializer`/`Deserializer` visitors. `serde_json` (also
//! shimmed) renders and parses that tree with the same encoding
//! conventions real serde uses for JSON (structs as objects, newtype
//! structs transparent, unit enum variants as strings, data-carrying
//! variants as single-key objects), so files written by one build remain
//! readable by the next.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// The JSON-shaped data model every serializable value lowers to.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A signed integer.
    I64(i64),
    /// An unsigned integer that does not fit `i64`.
    U64(u64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Seq(Vec<Value>),
    /// An object, with insertion order preserved.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The entries of an object, if this is one.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The elements of an array, if this is one.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// Looks up a field of an object.
    pub fn field<'a>(&'a self, name: &str) -> Result<&'a Value, Error> {
        self.as_map()
            .and_then(|m| m.iter().find(|(k, _)| k == name).map(|(_, v)| v))
            .ok_or_else(|| Error(format!("missing field `{name}`")))
    }
}

/// Deserialization error: a rendered message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    /// A new error with the given message.
    pub fn msg(m: impl Into<String>) -> Error {
        Error(m.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// A value that can lower itself to the [`Value`] data model.
pub trait Serialize {
    /// Lowers `self` to a [`Value`].
    fn to_value(&self) -> Value;
}

/// A value that can be reconstructed from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a [`Value`].
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Compatibility alias: real serde's `DeserializeOwned` bound.
pub trait DeserializeOwned: Deserialize {}
impl<T: Deserialize> DeserializeOwned for T {}

fn type_err<T>(want: &str, got: &Value) -> Result<T, Error> {
    Err(Error(format!("expected {want}, got {got:?}")))
}

// --- primitives ---------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<bool, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => type_err("bool", v),
        }
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::I64(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, Error> {
                let n: i64 = match v {
                    Value::I64(n) => *n,
                    Value::U64(n) => i64::try_from(*n)
                        .map_err(|_| Error::msg("integer out of range"))?,
                    _ => return type_err("integer", v),
                };
                <$t>::try_from(n).map_err(|_| Error::msg("integer out of range"))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as u64;
                match i64::try_from(n) {
                    Ok(i) => Value::I64(i),
                    Err(_) => Value::U64(n),
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, Error> {
                let n: u64 = match v {
                    Value::I64(n) => u64::try_from(*n)
                        .map_err(|_| Error::msg("negative integer"))?,
                    Value::U64(n) => *n,
                    _ => return type_err("integer", v),
                };
                <$t>::try_from(n).map_err(|_| Error::msg("integer out of range"))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<f64, Error> {
        match v {
            Value::F64(x) => Ok(*x),
            Value::I64(n) => Ok(*n as f64),
            Value::U64(n) => Ok(*n as f64),
            Value::Null => Ok(f64::NAN), // serde_json writes non-finite as null
            _ => type_err("number", v),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<f32, Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<String, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => type_err("string", v),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<char, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => type_err("single-char string", v),
        }
    }
}

// `Value` serializes as itself, like real serde_json's `Value`: it lets
// generic tooling (the binary-record exporter, format benchmarks)
// re-serialize a decoded tree without knowing its concrete type.
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Value, Error> {
        Ok(v.clone())
    }
}

// --- containers ---------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Option<T>, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Vec<T>, Error> {
        match v {
            Value::Seq(s) => s.iter().map(T::from_value).collect(),
            _ => type_err("array", v),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<[T; N], Error> {
        let items: Vec<T> = Vec::from_value(v)?;
        items
            .try_into()
            .map_err(|_| Error::msg("wrong array length"))
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Box<T>, Error> {
        T::from_value(v).map(Box::new)
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+),)*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<($($t,)+), Error> {
                let s = v.as_seq().ok_or_else(|| Error::msg("expected tuple array"))?;
                let mut it = s.iter();
                #[allow(unused_assignments)]
                let out = ($({
                    let slot = it.next().ok_or_else(|| Error::msg("tuple too short"))?;
                    $t::from_value(slot)?
                },)+);
                Ok(out)
            }
        }
    )*};
}
impl_tuple! {
    (0 A),
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
}

/// Types usable as JSON object keys (stringified, as `serde_json` does
/// for integer-keyed maps).
pub trait MapKey: Sized {
    fn to_key(&self) -> String;
    fn from_key(s: &str) -> Result<Self, Error>;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(s: &str) -> Result<String, Error> {
        Ok(s.to_string())
    }
}

macro_rules! impl_map_key_int {
    ($($t:ty),* $(,)?) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(s: &str) -> Result<$t, Error> {
                s.parse::<$t>()
                    .map_err(|e| Error(format!("bad map key `{s}`: {e}")))
            }
        }
    )*};
}

impl_map_key_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K, V> Serialize for HashMap<K, V>
where
    K: MapKey + Eq + std::hash::Hash,
    V: Serialize,
{
    fn to_value(&self) -> Value {
        // Deterministic output: sort by stringified key.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_key(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

impl<K, V> Deserialize for HashMap<K, V>
where
    K: MapKey + Eq + std::hash::Hash,
    V: Deserialize,
{
    fn from_value(v: &Value) -> Result<HashMap<K, V>, Error> {
        let m = v.as_map().ok_or_else(|| Error::msg("expected object"))?;
        m.iter()
            .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
            .collect()
    }
}

impl<K, V> Serialize for BTreeMap<K, V>
where
    K: MapKey + Ord,
    V: Serialize,
{
    fn to_value(&self) -> Value {
        Value::Map(self.iter().map(|(k, v)| (k.to_key(), v.to_value())).collect())
    }
}

impl<K, V> Deserialize for BTreeMap<K, V>
where
    K: MapKey + Ord,
    V: Deserialize,
{
    fn from_value(v: &Value) -> Result<BTreeMap<K, V>, Error> {
        let m = v.as_map().ok_or_else(|| Error::msg("expected object"))?;
        m.iter()
            .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert_eq!(bool::from_value(&true.to_value()).unwrap(), true);
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        let big = u64::MAX;
        assert_eq!(u64::from_value(&big.to_value()).unwrap(), big);
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&v.to_value()).unwrap(), v);
        let o: Option<u8> = None;
        assert_eq!(Option::<u8>::from_value(&o.to_value()).unwrap(), None);
        let arr = [1.5f64, 2.5];
        assert_eq!(<[f64; 2]>::from_value(&arr.to_value()).unwrap(), arr);
        let t = (3u8, "x".to_string());
        assert_eq!(
            <(u8, String)>::from_value(&t.to_value()).unwrap(),
            (3u8, "x".to_string())
        );
    }

    #[test]
    fn unsigned_rejects_negative() {
        assert!(u32::from_value(&Value::I64(-1)).is_err());
    }
}
