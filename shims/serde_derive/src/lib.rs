//! Offline shim for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` against
//! the shimmed `serde` crate's value-tree data model (see
//! `shims/serde`). The parser is hand-rolled over `proc_macro` token
//! trees — no `syn`/`quote`, which are unavailable offline — and supports
//! the shapes this workspace uses: plain and generic structs (named,
//! tuple/newtype, unit) and enums with unit, tuple, and struct variants.
//! Container/field serde attributes are not supported and the workspace
//! does not use any.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (shim: lowers to `serde::Value`).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("generated impl parses")
}

/// Derives `serde::Deserialize` (shim: rebuilds from `serde::Value`).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().expect("generated impl parses")
}

// ----------------------------------------------------------------------
// A tiny AST for the supported item shapes.
// ----------------------------------------------------------------------

enum Body {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Variant {
    name: String,
    body: Body,
}

enum Shape {
    Struct(Body),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    /// Type-parameter idents (lifetimes and const params unsupported —
    /// the workspace derives none).
    generics: Vec<String>,
    shape: Shape,
}

// ----------------------------------------------------------------------
// Parsing
// ----------------------------------------------------------------------

struct Cursor {
    toks: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(ts: TokenStream) -> Cursor {
        Cursor {
            toks: ts.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.toks.get(self.pos).cloned();
        self.pos += t.is_some() as usize;
        t
    }

    fn peek_punct(&self, ch: char) -> bool {
        matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ch)
    }

    fn peek_ident(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(TokenTree::Ident(i)) if i.to_string() == kw)
    }

    fn expect_ident(&mut self) -> String {
        match self.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("serde shim derive: expected identifier, got {other:?}"),
        }
    }

    /// Skips any number of `#[...]` / `#![...]` attributes.
    fn skip_attrs(&mut self) {
        while self.peek_punct('#') {
            self.next();
            if self.peek_punct('!') {
                self.next();
            }
            match self.next() {
                Some(TokenTree::Group(_)) => {}
                other => panic!("serde shim derive: malformed attribute: {other:?}"),
            }
        }
    }

    /// Skips `pub` / `pub(...)` visibility.
    fn skip_vis(&mut self) {
        if self.peek_ident("pub") {
            self.next();
            if let Some(TokenTree::Group(g)) = self.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    self.next();
                }
            }
        }
    }

    /// Consumes a balanced `<...>` generics list, returning type-param
    /// idents (bounds and defaults are skipped; they are re-bounded by
    /// the generated impl).
    fn parse_generics(&mut self) -> Vec<String> {
        if !self.peek_punct('<') {
            return Vec::new();
        }
        self.next();
        let mut depth = 1usize;
        let mut params = Vec::new();
        let mut at_param_start = true;
        while depth > 0 {
            match self.next() {
                Some(TokenTree::Punct(p)) => match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 1 => at_param_start = true,
                    '\'' => {
                        // Lifetime: consume its ident, not a type param.
                        self.next();
                        at_param_start = false;
                    }
                    _ => at_param_start = false,
                },
                Some(TokenTree::Ident(i)) => {
                    if at_param_start {
                        params.push(i.to_string());
                    }
                    at_param_start = false;
                }
                Some(_) => at_param_start = false,
                None => panic!("serde shim derive: unbalanced generics"),
            }
        }
        params
    }
}

/// Splits a parenthesized/braced group body on top-level commas, tracking
/// `<...>` nesting (groups are already single tokens).
fn split_top_commas(ts: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut out: Vec<Vec<TokenTree>> = Vec::new();
    let mut cur: Vec<TokenTree> = Vec::new();
    let mut angle = 0i32;
    for t in ts {
        match &t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                out.push(std::mem::take(&mut cur));
                continue;
            }
            _ => {}
        }
        cur.push(t);
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Parses the field names out of a named-fields body.
fn parse_named_fields(ts: TokenStream) -> Vec<String> {
    split_top_commas(ts)
        .into_iter()
        .filter(|seg| !seg.is_empty())
        .map(|seg| {
            let mut c = Cursor {
                toks: seg,
                pos: 0,
            };
            c.skip_attrs();
            c.skip_vis();
            c.expect_ident()
        })
        .collect()
}

fn parse_item(input: TokenStream) -> Item {
    let mut c = Cursor::new(input);
    c.skip_attrs();
    c.skip_vis();
    let kw = c.expect_ident();
    let name = c.expect_ident();
    let generics = c.parse_generics();
    match kw.as_str() {
        "struct" => {
            let body = match c.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Body::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    let n = split_top_commas(g.stream())
                        .into_iter()
                        .filter(|s| !s.is_empty())
                        .count();
                    Body::Tuple(n)
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Body::Unit,
                other => panic!("serde shim derive: unsupported struct body: {other:?}"),
            };
            Item {
                name,
                generics,
                shape: Shape::Struct(body),
            }
        }
        "enum" => {
            let group = match c.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
                other => panic!("serde shim derive: expected enum body, got {other:?}"),
            };
            let mut variants = Vec::new();
            let mut vc = Cursor::new(group.stream());
            loop {
                vc.skip_attrs();
                if vc.peek().is_none() {
                    break;
                }
                let vname = vc.expect_ident();
                let body = match vc.peek() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        let n = split_top_commas(g.stream())
                            .into_iter()
                            .filter(|s| !s.is_empty())
                            .count();
                        vc.next();
                        Body::Tuple(n)
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        let fields = parse_named_fields(g.stream());
                        vc.next();
                        Body::Named(fields)
                    }
                    _ => Body::Unit,
                };
                // Skip an optional discriminant, then the separator.
                if vc.peek_punct('=') {
                    vc.next();
                    while let Some(t) = vc.peek() {
                        if matches!(t, TokenTree::Punct(p) if p.as_char() == ',') {
                            break;
                        }
                        vc.next();
                    }
                }
                if vc.peek_punct(',') {
                    vc.next();
                }
                variants.push(Variant { name: vname, body });
            }
            Item {
                name,
                generics,
                shape: Shape::Enum(variants),
            }
        }
        other => panic!("serde shim derive: unsupported item kind `{other}`"),
    }
}

// ----------------------------------------------------------------------
// Code generation (rendered as source text, then re-parsed)
// ----------------------------------------------------------------------

fn impl_header(item: &Item, trait_name: &str) -> String {
    if item.generics.is_empty() {
        format!("impl ::serde::{trait_name} for {}", item.name)
    } else {
        let bounded: Vec<String> = item
            .generics
            .iter()
            .map(|p| format!("{p}: ::serde::{trait_name}"))
            .collect();
        format!(
            "impl<{}> ::serde::{trait_name} for {}<{}>",
            bounded.join(", "),
            item.name,
            item.generics.join(", ")
        )
    }
}

fn gen_serialize(item: &Item) -> String {
    let body = match &item.shape {
        Shape::Struct(Body::Unit) => "::serde::Value::Null".to_string(),
        Shape::Struct(Body::Tuple(1)) => {
            "::serde::Serialize::to_value(&self.0)".to_string()
        }
        Shape::Struct(Body::Tuple(n)) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(::std::vec![{}])", elems.join(", "))
        }
        Shape::Struct(Body::Named(fields)) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Value::Map(::std::vec![{}])", entries.join(", "))
        }
        Shape::Enum(variants) => {
            let mut arms = Vec::new();
            for v in variants {
                let vn = &v.name;
                let name = &item.name;
                let arm = match &v.body {
                    Body::Unit => format!(
                        "{name}::{vn} => ::serde::Value::Str(\
                         ::std::string::String::from(\"{vn}\"))"
                    ),
                    Body::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let payload = if *n == 1 {
                            "::serde::Serialize::to_value(f0)".to_string()
                        } else {
                            let elems: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Seq(::std::vec![{}])", elems.join(", "))
                        };
                        format!(
                            "{name}::{vn}({}) => ::serde::Value::Map(::std::vec![\
                             (::std::string::String::from(\"{vn}\"), {payload})])",
                            binds.join(", ")
                        )
                    }
                    Body::Named(fields) => {
                        let entries: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from(\"{f}\"), \
                                     ::serde::Serialize::to_value({f}))"
                                )
                            })
                            .collect();
                        format!(
                            "{name}::{vn} {{ {} }} => ::serde::Value::Map(::std::vec![\
                             (::std::string::String::from(\"{vn}\"), \
                             ::serde::Value::Map(::std::vec![{}]))])",
                            fields.join(", "),
                            entries.join(", ")
                        )
                    }
                };
                arms.push(arm);
            }
            format!("match self {{ {} }}", arms.join(", "))
        }
    };
    format!(
        "{} {{ fn to_value(&self) -> ::serde::Value {{ {body} }} }}",
        impl_header(item, "Serialize")
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Struct(Body::Unit) => format!("::std::result::Result::Ok({name})"),
        Shape::Struct(Body::Tuple(1)) => format!(
            "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))"
        ),
        Shape::Struct(Body::Tuple(n)) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&s[{i}])?"))
                .collect();
            format!(
                "let s = v.as_seq().ok_or_else(|| ::serde::Error::msg(\"expected array\"))?; \
                 if s.len() != {n} {{ \
                   return ::std::result::Result::Err(::serde::Error::msg(\"wrong tuple length\")); \
                 }} \
                 ::std::result::Result::Ok({name}({}))",
                elems.join(", ")
            )
        }
        Shape::Struct(Body::Named(fields)) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!("{f}: ::serde::Deserialize::from_value(v.field(\"{f}\")?)?")
                })
                .collect();
            format!(
                "::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Shape::Enum(variants) => {
            let mut unit_arms = Vec::new();
            let mut data_arms = Vec::new();
            for v in variants {
                let vn = &v.name;
                match &v.body {
                    Body::Unit => unit_arms.push(format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn})"
                    )),
                    Body::Tuple(1) => data_arms.push(format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(\
                         ::serde::Deserialize::from_value(payload)?))"
                    )),
                    Body::Tuple(n) => {
                        let elems: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&s[{i}])?"))
                            .collect();
                        data_arms.push(format!(
                            "\"{vn}\" => {{ \
                             let s = payload.as_seq().ok_or_else(|| \
                               ::serde::Error::msg(\"expected variant array\"))?; \
                             if s.len() != {n} {{ \
                               return ::std::result::Result::Err(\
                                 ::serde::Error::msg(\"wrong variant arity\")); \
                             }} \
                             ::std::result::Result::Ok({name}::{vn}({})) }}",
                            elems.join(", ")
                        ));
                    }
                    Body::Named(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: ::serde::Deserialize::from_value(\
                                     payload.field(\"{f}\")?)?"
                                )
                            })
                            .collect();
                        data_arms.push(format!(
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn} {{ {} }})",
                            inits.join(", ")
                        ));
                    }
                }
            }
            let unit_match = format!(
                "match s.as_str() {{ {}{} other => ::std::result::Result::Err(\
                 ::serde::Error(::std::format!(\"unknown variant `{{other}}`\"))) }}",
                unit_arms.join(", "),
                if unit_arms.is_empty() { "" } else { "," }
            );
            let data_match = format!(
                "match k.as_str() {{ {}{} other => ::std::result::Result::Err(\
                 ::serde::Error(::std::format!(\"unknown variant `{{other}}`\"))) }}",
                data_arms.join(", "),
                if data_arms.is_empty() { "" } else { "," }
            );
            format!(
                "match v {{ \
                 ::serde::Value::Str(s) => {unit_match}, \
                 ::serde::Value::Map(m) if m.len() == 1 => {{ \
                   let (k, payload) = &m[0]; {data_match} }}, \
                 other => ::std::result::Result::Err(::serde::Error(\
                   ::std::format!(\"expected enum value, got {{other:?}}\"))) }}"
            )
        }
    };
    format!(
        "{} {{ fn from_value(v: &::serde::Value) -> \
         ::std::result::Result<Self, ::serde::Error> {{ {body} }} }}",
        impl_header(item, "Deserialize")
    )
}
