//! Offline shim for `serde_json`.
//!
//! Serializes the shimmed `serde::Value` tree to JSON text and parses
//! JSON text back into it. Covers the workspace's surface: `to_string`,
//! `to_string_pretty`, `to_vec`, `from_str`, `from_slice`.
//!
//! Output conventions match real `serde_json` where the workspace can
//! observe them: map keys in insertion order, non-finite floats as
//! `null`, two-space pretty indentation.

use serde::{Deserialize, Serialize, Value};
use std::fmt;

#[derive(Debug)]
pub struct Error(pub String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Error {
        Error(e.0)
    }
}

pub type Result<T> = std::result::Result<T, Error>;

// ----------------------------------------------------------------------
// Serialization
// ----------------------------------------------------------------------

pub fn to_string<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some("  "), 0);
    Ok(out)
}

pub fn to_vec<T: Serialize>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

fn write_value(out: &mut String, v: &Value, indent: Option<&str>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => write_f64(out, *x),
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<&str>, depth: usize) {
    if let Some(unit) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str(unit);
        }
    }
}

fn write_f64(out: &mut String, x: f64) {
    if !x.is_finite() {
        out.push_str("null");
        return;
    }
    // Rust's default Display for f64 is the shortest round-trippable
    // form, like serde_json's ryu output; ensure integral values keep a
    // fractional part so they re-parse as F64.
    let s = x.to_string();
    out.push_str(&s);
    if !s.contains('.') && !s.contains('e') && !s.contains('E') {
        out.push_str(".0");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ----------------------------------------------------------------------
// Deserialization
// ----------------------------------------------------------------------

pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let value = parse_value_str(s)?;
    Ok(T::from_value(&value)?)
}

pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error(e.to_string()))?;
    from_str(s)
}

/// Parses a complete JSON document into a [`Value`].
pub fn parse_value_str(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".into())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error("unterminated escape".into()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let cp = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if !self.eat_literal("\\u") {
                                    return Err(Error("lone surrogate".into()));
                                }
                                let lo = self.parse_hex4()?;
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(cp)
                                    .ok_or_else(|| Error("invalid codepoint".into()))?,
                            );
                        }
                        other => {
                            return Err(Error(format!("bad escape `\\{}`", other as char)))
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is validated utf8).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error("truncated \\u escape".into()));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|e| Error(e.to_string()))?;
        let v = u32::from_str_radix(s, 16).map_err(|e| Error(e.to_string()))?;
        self.pos += 4;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| Error(e.to_string()))?;
        if !is_float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|e| Error(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_scalars() {
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&"hi\n").unwrap(), "\"hi\\n\"");
        let v: u32 = from_str("42").unwrap();
        assert_eq!(v, 42);
        let f: f64 = from_str("2.0").unwrap();
        assert_eq!(f, 2.0);
    }

    #[test]
    fn round_trip_containers() {
        let xs = vec![1u64, 2, 3];
        let json = to_string(&xs).unwrap();
        assert_eq!(json, "[1,2,3]");
        let back: Vec<u64> = from_str(&json).unwrap();
        assert_eq!(back, xs);

        let opt: Option<u32> = None;
        assert_eq!(to_string(&opt).unwrap(), "null");
        let back: Option<u32> = from_str("null").unwrap();
        assert_eq!(back, None);
    }

    #[test]
    fn pretty_format() {
        let xs = vec![1u64, 2];
        assert_eq!(to_string_pretty(&xs).unwrap(), "[\n  1,\n  2\n]");
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let s: String = from_str("\"a\\u0041\\n\\u00e9\"").unwrap();
        assert_eq!(s, "aA\né");
    }

    #[test]
    fn big_u64_survives() {
        let n = u64::MAX;
        let json = to_string(&n).unwrap();
        let back: u64 = from_str(&json).unwrap();
        assert_eq!(back, n);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<u32>("[1,").is_err());
        assert!(from_str::<u32>("12 trailing").is_err());
    }
}
