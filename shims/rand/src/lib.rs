//! Offline shim for `rand` 0.8.
//!
//! Provides `rngs::StdRng`, `SeedableRng::seed_from_u64`, and the `Rng`
//! methods this workspace calls (`gen`, `gen_bool`, `gen_range` over
//! `Range`/`RangeInclusive` for the integer types and floats). The
//! generator is xoshiro256++ seeded via SplitMix64 — deterministic for a
//! given seed, which is all the workload generators require; the streams
//! are NOT bit-compatible with upstream `rand`'s ChaCha-based `StdRng`.

use std::ops::{Range, RangeInclusive};

/// Core entropy source: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Seedable construction; only `seed_from_u64` is used here.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented over [`RngCore`].
pub trait Rng: RngCore {
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Bernoulli trial. Panics if `p` is outside `[0, 1]`, like upstream.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of range");
        unit_f64(self.next_u64()) < p
    }

    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Maps 64 random bits to a uniform f64 in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

// ----------------------------------------------------------------------
// Standard distribution (for `rng.gen::<T>()`)
// ----------------------------------------------------------------------

pub trait StandardSample {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        unit_f64(rng.next_u64())
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }
}

// ----------------------------------------------------------------------
// Uniform ranges (for `rng.gen_range(lo..hi)` / `(lo..=hi)`)
// ----------------------------------------------------------------------

/// Types `gen_range` can sample uniformly. The single blanket
/// `SampleRange` impl below keeps integer-literal inference working the
/// way it does with upstream rand (`gen_range(1..4) * 8i64` infers i64).
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as u64).wrapping_sub(lo as u64);
                (lo as u64).wrapping_add(rng.next_u64() % span) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-domain range: every value is fair game.
                    return rng.next_u64() as $t;
                }
                (lo as u64).wrapping_add(rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "gen_range: empty range");
        lo + (hi - lo) * unit_f64(rng.next_u64())
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: f64, hi: f64) -> f64 {
        assert!(lo <= hi, "gen_range: empty range");
        lo + (hi - lo) * unit_f64(rng.next_u64())
    }
}

impl SampleUniform for f32 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: f32, hi: f32) -> f32 {
        assert!(lo < hi, "gen_range: empty range");
        lo + (hi - lo) * (unit_f64(rng.next_u64()) as f32)
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: f32, hi: f32) -> f32 {
        assert!(lo <= hi, "gen_range: empty range");
        lo + (hi - lo) * (unit_f64(rng.next_u64()) as f32)
    }
}

pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

// ----------------------------------------------------------------------
// Generators
// ----------------------------------------------------------------------

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — small, fast, and plenty for workload generation.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> StdRng {
            // SplitMix64 expansion, as the xoshiro authors recommend.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Alias: upstream's SmallRng differs from StdRng; here they match.
    pub type SmallRng = StdRng;
}

pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let x: i32 = rng.gen_range(-1..=1);
            assert!((-1..=1).contains(&x));
            let y: usize = rng.gen_range(0..7);
            assert!(y < 7);
            let z: i64 = rng.gen_range(-64..64);
            assert!((-64..64).contains(&z));
            let f: f64 = rng.gen_range(0.25..4.0);
            assert!((0.25..4.0).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.45)).count();
        assert!((3500..5500).contains(&hits), "hits={hits}");
    }

    #[test]
    fn full_domain_inclusive_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let _: u64 = rng.gen_range(0..=u64::MAX);
        let _: u8 = rng.gen_range(0..=u8::MAX);
    }
}
