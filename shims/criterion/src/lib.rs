//! Offline shim for `criterion`.
//!
//! Implements the macro and builder surface the workspace's benches use
//! (`criterion_group!`/`criterion_main!`, `benchmark_group`,
//! `bench_function`, `iter`, `iter_batched`, `Throughput`) with a plain
//! wall-clock measurement loop: a short calibration pass picks an
//! iteration count targeting the measurement window, then the median of
//! a few samples is reported. `--test` (as passed by CI smoke jobs and
//! `cargo test`'s bench harness) runs every routine exactly once.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

#[derive(Clone, Debug)]
pub struct Criterion {
    test_mode: bool,
    filter: Option<String>,
    measurement_time: Duration,
    warm_up_time: Duration,
    sample_count: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            test_mode: false,
            filter: None,
            measurement_time: Duration::from_millis(1500),
            warm_up_time: Duration::from_millis(300),
            sample_count: 5,
        }
    }
}

impl Criterion {
    /// Reads the harness CLI: `--test` switches to one-shot smoke mode,
    /// the first free-standing argument filters benchmark ids, and the
    /// flags cargo/criterion pass that we don't implement are ignored.
    pub fn configure_from_args(mut self) -> Criterion {
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--test" => self.test_mode = true,
                "--bench" | "--exact" | "--nocapture" | "--quiet" | "--verbose"
                | "--noplot" | "--discard-baseline" => {}
                "--save-baseline" | "--baseline" | "--measurement-time"
                | "--warm-up-time" | "--sample-size" | "--profile-time"
                | "--output-format" | "--color" => {
                    args.next();
                }
                s if s.starts_with("--") => {}
                s => self.filter = Some(s.to_string()),
            }
        }
        self
    }

    pub fn measurement_time(mut self, t: Duration) -> Criterion {
        self.measurement_time = t;
        self
    }

    pub fn warm_up_time(mut self, t: Duration) -> Criterion {
        self.warm_up_time = t;
        self
    }

    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_count = n.clamp(2, 100);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
        }
    }

    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let (test_mode, filter, mt, wt, sc) = (
            self.test_mode,
            self.filter.clone(),
            self.measurement_time,
            self.warm_up_time,
            self.sample_count,
        );
        run_benchmark(id, None, test_mode, &filter, mt, wt, sc, f);
        self
    }

    pub fn final_summary(&self) {}
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.criterion.measurement_time = t;
        self
    }

    pub fn warm_up_time(&mut self, t: Duration) -> &mut Self {
        self.criterion.warm_up_time = t;
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_count = n.clamp(2, 100);
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        let c = &*self.criterion;
        run_benchmark(
            &full,
            self.throughput,
            c.test_mode,
            &c.filter,
            c.measurement_time,
            c.warm_up_time,
            c.sample_count,
            f,
        );
        self
    }

    pub fn finish(self) {}
}

pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }

    pub fn iter_batched_ref<I, O, S, F>(
        &mut self,
        mut setup: S,
        mut routine: F,
        _size: BatchSize,
    ) where
        S: FnMut() -> I,
        F: FnMut(&mut I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let mut input = setup();
            let start = Instant::now();
            black_box(routine(&mut input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

#[allow(clippy::too_many_arguments)]
fn run_benchmark<F>(
    id: &str,
    throughput: Option<Throughput>,
    test_mode: bool,
    filter: &Option<String>,
    measurement_time: Duration,
    warm_up_time: Duration,
    sample_count: usize,
    mut f: F,
) where
    F: FnMut(&mut Bencher),
{
    if let Some(pat) = filter {
        if !id.contains(pat.as_str()) {
            return;
        }
    }
    if test_mode {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        println!("test {id} ... ok");
        return;
    }

    // Calibrate: grow the iteration count until one sample fills the
    // warm-up window, which doubles as the warm-up itself.
    let mut iters = 1u64;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= warm_up_time || iters > u64::MAX / 4 {
            let per_iter = b.elapsed.as_secs_f64() / iters as f64;
            let per_sample = measurement_time.as_secs_f64() / sample_count as f64;
            iters = ((per_sample / per_iter.max(1e-9)) as u64).max(1);
            break;
        }
        iters = iters.saturating_mul(2);
    }

    let mut samples: Vec<f64> = (0..sample_count)
        .map(|_| {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            b.elapsed.as_secs_f64() / iters as f64
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = samples[samples.len() / 2];
    let best = samples[0];
    let worst = samples[samples.len() - 1];
    print!(
        "{id:<40} time: [{} {} {}]",
        fmt_time(best),
        fmt_time(median),
        fmt_time(worst)
    );
    match throughput {
        Some(Throughput::Elements(n)) => {
            print!("  thrpt: {} elem/s", fmt_count(n as f64 / median));
        }
        Some(Throughput::Bytes(n)) => {
            print!("  thrpt: {}B/s", fmt_count(n as f64 / median));
        }
        None => {}
    }
    println!();
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

fn fmt_count(v: f64) -> String {
    if v >= 1e9 {
        format!("{:.3} G", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.3} M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.3} K", v / 1e3)
    } else {
        format!("{v:.1} ")
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::Criterion::default().final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_routines() {
        let mut counter = 0u64;
        let mut b = Bencher {
            iters: 10,
            elapsed: Duration::ZERO,
        };
        b.iter(|| counter += 1);
        assert_eq!(counter, 10);

        let mut setups = 0u64;
        let mut runs = 0u64;
        let mut b = Bencher {
            iters: 4,
            elapsed: Duration::ZERO,
        };
        b.iter_batched(
            || {
                setups += 1;
                setups
            },
            |x| {
                runs += x;
            },
            BatchSize::SmallInput,
        );
        assert_eq!(setups, 4);
        assert_eq!(runs, 1 + 2 + 3 + 4);
    }

    #[test]
    fn formatting_is_sane() {
        assert!(fmt_time(2e-9).contains("ns"));
        assert!(fmt_time(2e-6).contains("µs"));
        assert!(fmt_time(2e-3).contains("ms"));
        assert!(fmt_count(2.5e6).contains('M'));
    }
}
