//! Stall-attribution taxonomy and per-issue-slot counter table.
//!
//! Every cycle, every issue slot is charged to exactly one
//! [`StallCause`]: slots that issued an op are charged [`Busy`]
//! (`StallCause::Busy`), and all remaining slots share a single cause
//! chosen by the collector's priority policy (see
//! `collector::ObsCollector::end_cycle`). Because [`StallTable::record`]
//! is called exactly once per simulated cycle and always charges all
//! `width` slots, the per-slot counts sum to the run's total cycles *by
//! construction* — a property [`StallTable::conservation_ok`] checks and
//! the test suite pins.
//!
//! [`Busy`]: StallCause::Busy

use serde::{Deserialize, Serialize};

/// Where an issue slot's cycle went.
///
/// The order here is the display order, not the attribution priority;
/// attribution priority lives in the collector so it can consult live
/// pipeline state.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum StallCause {
    /// The slot issued an op — not a stall.
    Busy,
    /// Ready ops existed but this slot's port class had no free port
    /// (or the issue width was exhausted by other classes).
    PortConflict,
    /// Nothing was ready and an outstanding load miss was pending:
    /// the window is waiting on the memory hierarchy.
    CacheMiss,
    /// Nothing was ready and a mini-graph handle was still executing its
    /// constituents serially: the window is waiting on serialized
    /// (internal or external) mini-graph latency.
    SerializationWait,
    /// Dispatch was blocked this cycle because the ROB was full.
    RobFull,
    /// Dispatch was blocked this cycle because the issue queue was full.
    IqFull,
    /// Dispatch was blocked this cycle because no physical register was
    /// free.
    RegsFull,
    /// Dispatch was blocked this cycle because the load queue was full.
    LqFull,
    /// Dispatch was blocked this cycle because the store queue was full.
    SqFull,
    /// Ops were in flight but none ready and no more specific cause
    /// applied (short execution latencies, dependence chains).
    EmptyReady,
    /// The front-end was squashed by a branch mispredict and has not yet
    /// redelivered ops.
    MispredictRedirect,
    /// The front-end is waiting out an instruction-cache miss.
    IcacheMiss,
    /// The front-end is waiting out another redirect (BTB miss penalty,
    /// load-violation flush).
    FetchRedirect,
    /// The window is empty and fetched ops are still traversing the
    /// front-end pipeline (warm-up / post-squash refill).
    FrontendFill,
}

impl StallCause {
    /// Number of causes (rows in a [`StallTable`]).
    pub const COUNT: usize = 14;

    /// All causes in display order.
    pub const ALL: [StallCause; StallCause::COUNT] = [
        StallCause::Busy,
        StallCause::PortConflict,
        StallCause::CacheMiss,
        StallCause::SerializationWait,
        StallCause::RobFull,
        StallCause::IqFull,
        StallCause::RegsFull,
        StallCause::LqFull,
        StallCause::SqFull,
        StallCause::EmptyReady,
        StallCause::MispredictRedirect,
        StallCause::IcacheMiss,
        StallCause::FetchRedirect,
        StallCause::FrontendFill,
    ];

    /// Dense index of this cause in [`StallCause::ALL`].
    pub fn index(self) -> usize {
        StallCause::ALL
            .iter()
            .position(|c| *c == self)
            .expect("cause listed in ALL")
    }

    /// Human-readable name used in tables and JSON.
    pub fn name(self) -> &'static str {
        match self {
            StallCause::Busy => "busy",
            StallCause::PortConflict => "port_conflict",
            StallCause::CacheMiss => "cache_miss",
            StallCause::SerializationWait => "serialization_wait",
            StallCause::RobFull => "rob_full",
            StallCause::IqFull => "iq_full",
            StallCause::RegsFull => "regs_full",
            StallCause::LqFull => "lq_full",
            StallCause::SqFull => "sq_full",
            StallCause::EmptyReady => "empty_ready",
            StallCause::MispredictRedirect => "mispredict_redirect",
            StallCause::IcacheMiss => "icache_miss",
            StallCause::FetchRedirect => "fetch_redirect",
            StallCause::FrontendFill => "frontend_fill",
        }
    }
}

/// Per-issue-slot cycle counts, one row per [`StallCause`].
///
/// `counts[cause][slot]` is the number of cycles issue slot `slot` was
/// charged to `cause`. Slot 0 is the first slot filled each cycle, so
/// lower slots skew toward `Busy` and higher slots toward stall causes.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct StallTable {
    /// Machine issue width (number of slots).
    pub width: usize,
    /// `StallCause::COUNT` rows of `width` counters each.
    pub counts: Vec<Vec<u64>>,
    /// Total cycles recorded (each cycle charges every slot once).
    pub cycles: u64,
}

impl StallTable {
    /// An empty table for a machine issuing `width` ops per cycle.
    pub fn new(width: usize) -> StallTable {
        StallTable {
            width,
            counts: vec![vec![0; width]; StallCause::COUNT],
            cycles: 0,
        }
    }

    /// Charges one cycle: slots `0..issued` to [`StallCause::Busy`], the
    /// rest to `cause`. `issued` saturates at the width.
    pub fn record(&mut self, issued: usize, cause: StallCause) {
        let issued = issued.min(self.width);
        let busy = StallCause::Busy.index();
        for slot in 0..issued {
            self.counts[busy][slot] += 1;
        }
        let row = cause.index();
        for slot in issued..self.width {
            self.counts[row][slot] += 1;
        }
        self.cycles += 1;
    }

    /// Folds another table into this one. Tables must have the same
    /// width (the sweep runs every cell on one machine config).
    pub fn merge(&mut self, other: &StallTable) {
        assert_eq!(self.width, other.width, "stall table width mismatch");
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            for (m, t) in mine.iter_mut().zip(theirs) {
                *m += t;
            }
        }
        self.cycles += other.cycles;
    }

    /// Grows the table to `width` slots, padding new slots with zero
    /// counts. No-op if the table is already at least that wide. Used by
    /// cross-run aggregation when runs came from machines of different
    /// issue widths; padded slots do *not* satisfy the per-slot
    /// conservation check (they were never charged), so mixed-width
    /// aggregates check conservation on the grand total instead.
    pub fn widen(&mut self, width: usize) {
        if width <= self.width {
            return;
        }
        for row in &mut self.counts {
            row.resize(width, 0);
        }
        self.width = width;
    }

    /// All counts summed over every cause and slot.
    pub fn grand_total(&self) -> u64 {
        self.counts.iter().flatten().sum()
    }

    /// Cycles charged to `cause`, summed over all slots.
    pub fn total(&self, cause: StallCause) -> u64 {
        self.counts[cause.index()].iter().sum()
    }

    /// Checks the conservation invariant: every slot's counts sum to
    /// `cycles` (i.e. each slot was charged exactly once per cycle).
    pub fn conservation_ok(&self, cycles: u64) -> bool {
        (0..self.width).all(|slot| {
            let sum: u64 = self.counts.iter().map(|row| row[slot]).sum();
            sum == cycles
        })
    }

    /// Renders the table as aligned text with a percent-of-slot-cycles
    /// column, causes in display order, zero rows skipped.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let slot_cycles = self.cycles * self.width as u64;
        out.push_str(&format!(
            "{:<20} {:>12} {:>7}  per-slot\n",
            "cause", "slot-cycles", "%"
        ));
        for cause in StallCause::ALL {
            let total = self.total(cause);
            if total == 0 {
                continue;
            }
            let pct = if slot_cycles == 0 {
                0.0
            } else {
                100.0 * total as f64 / slot_cycles as f64
            };
            let per_slot: Vec<String> = self.counts[cause.index()]
                .iter()
                .map(|c| c.to_string())
                .collect();
            out.push_str(&format!(
                "{:<20} {:>12} {:>6.2}%  [{}]\n",
                cause.name(),
                total,
                pct,
                per_slot.join(", ")
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_dense_and_unique() {
        for (i, c) in StallCause::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }

    #[test]
    fn record_conserves_per_slot() {
        let mut t = StallTable::new(4);
        t.record(4, StallCause::EmptyReady); // fully busy
        t.record(2, StallCause::CacheMiss);
        t.record(0, StallCause::MispredictRedirect);
        t.record(9, StallCause::EmptyReady); // saturates at width
        assert_eq!(t.cycles, 4);
        assert!(t.conservation_ok(4));
        // Per recorded cycle: 4, 2, 0, then 4 (saturated) busy slots.
        assert_eq!(t.total(StallCause::Busy), 10);
        assert_eq!(t.total(StallCause::CacheMiss), 2);
        assert_eq!(t.total(StallCause::MispredictRedirect), 4);
        assert!(!t.conservation_ok(5));
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = StallTable::new(2);
        a.record(1, StallCause::IqFull);
        let mut b = StallTable::new(2);
        b.record(0, StallCause::RobFull);
        a.merge(&b);
        assert_eq!(a.cycles, 2);
        assert!(a.conservation_ok(2));
        assert_eq!(a.total(StallCause::RobFull), 2);
        assert_eq!(a.total(StallCause::IqFull), 1);
        assert_eq!(a.total(StallCause::Busy), 1);
    }

    #[test]
    fn widen_pads_and_grand_total_counts_everything() {
        let mut t = StallTable::new(2);
        t.record(1, StallCause::IqFull);
        assert_eq!(t.grand_total(), 2);
        t.widen(4);
        assert_eq!(t.width, 4);
        assert_eq!(t.grand_total(), 2, "padding adds no counts");
        t.widen(2);
        assert_eq!(t.width, 4, "widen never shrinks");
        // The padded slots were never charged, so per-slot conservation
        // no longer holds — the documented trade-off.
        assert!(!t.conservation_ok(1));
    }

    #[test]
    fn render_skips_zero_rows() {
        let mut t = StallTable::new(2);
        t.record(2, StallCause::EmptyReady);
        let s = t.render();
        assert!(s.contains("busy"));
        assert!(!s.contains("cache_miss"));
    }

    #[test]
    fn serde_round_trip() {
        let mut t = StallTable::new(2);
        t.record(1, StallCause::SerializationWait);
        let json = serde_json::to_string(&t).unwrap();
        let back: StallTable = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
    }
}
