//! Hierarchical wall-time spans that serialize to Chrome trace events.
//!
//! A [`SpanGuard`] measures the wall time between its creation and its
//! drop and, when collection is enabled, records a Chrome
//! trace-event-format "complete" (`ph: "X"`) event into a process-global
//! buffer. Events carry a per-thread `tid` and microsecond timestamps
//! from a shared process epoch, so nested spans on one thread render as
//! a flame graph when the JSON is opened in Perfetto
//! (<https://ui.perfetto.dev>) or `chrome://tracing`.
//!
//! Collection is **off by default** (a disabled span is one relaxed
//! atomic load and two `Instant` reads); the `MG_TRACE` knob — parsed
//! by `mg_bench::config` like every other `MG_*` knob — turns it on,
//! and `run_cli` drains the buffer at sweep exit to the binary record
//! `results/TRACE_<bin>.mgb` (plus the Chrome-JSON view,
//! `results/TRACE_<bin>.json`, with `MG_TRACE=json`). The hierarchy
//! convention is category `sweep` → `bench` → `cell` → `stage`.

use std::cell::Cell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use serde::{Deserialize, Serialize};

/// One Chrome trace event. Field names match the trace-event JSON
/// schema (<https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU>),
/// so the serialized form loads directly in Perfetto.
#[derive(Serialize, Deserialize, Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Span name (e.g. `mib_sha/cell3`).
    pub name: String,
    /// Category: one of `sweep`, `bench`, `cell`, `stage`, or a
    /// caller-chosen label; Perfetto can filter on it.
    pub cat: String,
    /// Phase: `"X"` for complete spans, `"M"` for metadata.
    pub ph: String,
    /// Start timestamp in microseconds since the process epoch.
    pub ts: u64,
    /// Duration in microseconds (zero for metadata events).
    pub dur: u64,
    /// Process id; always 1 (single-process harness).
    pub pid: u64,
    /// Stable per-thread id assigned on first span use.
    pub tid: u64,
    /// Extra arguments (`depth` for spans, `name` for thread metadata).
    pub args: BTreeMap<String, String>,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static EPOCH: OnceLock<Instant> = OnceLock::new();
static EVENTS: Mutex<Vec<TraceEvent>> = Mutex::new(Vec::new());
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static TID: Cell<u64> = const { Cell::new(0) };
    static DEPTH: Cell<u64> = const { Cell::new(0) };
}

/// The shared process epoch all span timestamps (and the logger's
/// elapsed-time prefix) are measured from. First call wins.
pub fn epoch() -> Instant {
    *EPOCH.get_or_init(Instant::now)
}

/// Microseconds elapsed since the process epoch.
pub fn elapsed_us() -> u64 {
    epoch().elapsed().as_micros().min(u64::MAX as u128) as u64
}

/// Turns span collection on or off (wired to the `MG_TRACE` knob by
/// the config layer). Disabled spans cost one atomic load.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether spans are currently collected.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// This thread's stable trace tid, assigning one (and emitting a
/// Perfetto `thread_name` metadata event) on first use.
fn thread_tid() -> u64 {
    TID.with(|t| {
        let mut id = t.get();
        if id == 0 {
            id = NEXT_TID.fetch_add(1, Ordering::Relaxed);
            t.set(id);
            if let Some(name) = std::thread::current().name() {
                let mut args = BTreeMap::new();
                args.insert("name".to_string(), name.to_string());
                push_event(TraceEvent {
                    name: "thread_name".to_string(),
                    cat: "__metadata".to_string(),
                    ph: "M".to_string(),
                    ts: 0,
                    dur: 0,
                    pid: 1,
                    tid: id,
                    args,
                });
            }
        }
        id
    })
}

fn push_event(ev: TraceEvent) {
    EVENTS.lock().unwrap().push(ev);
}

/// An in-flight span; records its event on drop. Construct with
/// [`span`].
#[derive(Debug)]
pub struct SpanGuard {
    name: String,
    cat: &'static str,
    start_us: u64,
    depth: u64,
    live: bool,
}

/// Opens a span. When collection is disabled this is nearly free; when
/// enabled, the span's wall time is recorded as a Chrome `"X"` event
/// at drop. `cat` is the hierarchy level (`sweep`, `bench`, `cell`,
/// `stage`, ...).
pub fn span(cat: &'static str, name: impl Into<String>) -> SpanGuard {
    if !enabled() {
        return SpanGuard {
            name: String::new(),
            cat,
            start_us: 0,
            depth: 0,
            live: false,
        };
    }
    let depth = DEPTH.with(|d| {
        let v = d.get() + 1;
        d.set(v);
        v
    });
    SpanGuard {
        name: name.into(),
        cat,
        start_us: elapsed_us(),
        depth,
        live: true,
    }
}

impl SpanGuard {
    /// The nesting depth of this span on its thread (1 = outermost);
    /// zero for a disabled span.
    pub fn depth(&self) -> u64 {
        if self.live {
            self.depth
        } else {
            0
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.live {
            return;
        }
        DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        let end = elapsed_us();
        let mut args = BTreeMap::new();
        args.insert("depth".to_string(), self.depth.to_string());
        push_event(TraceEvent {
            name: std::mem::take(&mut self.name),
            cat: self.cat.to_string(),
            ph: "X".to_string(),
            ts: self.start_us,
            dur: end.saturating_sub(self.start_us),
            pid: 1,
            tid: thread_tid(),
            args,
        });
    }
}

/// Takes every collected event, leaving the buffer empty.
pub fn drain() -> Vec<TraceEvent> {
    std::mem::take(&mut *EVENTS.lock().unwrap())
}

/// Number of buffered events (tests and footer reporting).
pub fn pending() -> usize {
    EVENTS.lock().unwrap().len()
}

/// The Chrome trace JSON document wrapper.
#[derive(Serialize, Deserialize, Clone, Debug, PartialEq, Eq)]
#[allow(non_snake_case)]
pub struct ChromeTrace {
    /// The event list (`traceEvents` is the key Perfetto expects).
    pub traceEvents: Vec<TraceEvent>,
    /// Display unit hint for the viewer.
    pub displayTimeUnit: String,
}

/// Wraps events in the Chrome trace JSON document format.
pub fn chrome_trace(events: Vec<TraceEvent>) -> ChromeTrace {
    ChromeTrace {
        traceEvents: events,
        displayTimeUnit: "ms".to_string(),
    }
}

/// Serializes events to a Chrome trace JSON string loadable in
/// Perfetto.
///
/// Serialization failure is not allowed to take the process down at
/// drain time (this runs during shutdown, after the real work
/// succeeded): it degrades to a logged error and a valid empty trace
/// document.
pub fn to_chrome_json(events: Vec<TraceEvent>) -> String {
    let n = events.len();
    match serde_json::to_string(&chrome_trace(events)) {
        Ok(json) => json,
        Err(err) => {
            crate::tele_counter!("mg_trace_serialize_errors_total").inc();
            crate::mg_error!(
                "trace: failed to serialize {n} span events ({err}); writing an empty trace"
            );
            r#"{"traceEvents":[],"displayTimeUnit":"ms"}"#.to_string()
        }
    }
}

/// Drains the buffer and writes it as Chrome trace JSON to `path`.
/// Returns the number of events written.
pub fn write_chrome_trace(path: &std::path::Path) -> std::io::Result<usize> {
    let events = drain();
    let n = events.len();
    std::fs::write(path, to_chrome_json(events))?;
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_spans_record_nothing() {
        set_enabled(false);
        let g = span("stage", "noop");
        assert_eq!(g.depth(), 0);
        drop(g);
        // No event was queued by this guard; other tests may have
        // queued events concurrently, so only check our own effect via
        // a unique name.
        assert!(!drain().iter().any(|e| e.name == "noop"));
    }
}
