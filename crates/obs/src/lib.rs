//! Observability layer for the mini-graphs simulator and bench harness.
//!
//! This crate collects everything the workspace uses to *explain* a cycle
//! count instead of just reporting one:
//!
//! - [`log`]: a tiny leveled logger (`off` / `error` / `info` /
//!   `debug`; binaries wire the `MG_LOG` knob to it via their config
//!   layer), used by the sweep runner for progress output.
//! - [`ring`]: a fixed-capacity ring buffer — the allocation-free backing
//!   store for the pipeline tracer.
//! - [`trace`]: per-op pipeline stage records ([`OpTrace`]) and a
//!   Konata-style text pipeview renderer for a chosen cycle window.
//! - [`stall`]: the stall-attribution taxonomy ([`StallCause`]) and the
//!   per-issue-slot counter table ([`StallTable`]) that charges every
//!   cycle of every issue slot to exactly one cause, so the per-slot
//!   counts sum to the run's total cycles by construction.
//! - [`metrics`]: bounded histograms (queue occupancy) and windowed IPC.
//! - [`collector`]: the [`ObsCollector`] state machine the simulator
//!   drives from its pipeline hook points.
//! - [`report`]: the serializable [`ObsReport`] a run produces and the
//!   [`ObsAggregate`] the sweep runner folds reports into.
//! - [`schema`]: a minimal JSON-Schema subset validator used by the CI
//!   `obs-smoke` job to check emitted trace JSON against a checked-in
//!   schema.
//! - [`telemetry`]: the always-on `mg-telemetry` runtime-metrics layer
//!   — lock-free counters, gauges, and log-bucketed latency histograms
//!   in a process-global registry with mergeable snapshots, rendered
//!   as Prometheus text by mg-serve's `/metrics` listener and written
//!   to `results/TELEMETRY_<bin>.json` by `run_cli`.
//! - [`span`]: hierarchical wall-time spans (sweep → bench → cell →
//!   stage) serializing to Chrome-trace-event JSON for Perfetto.
//!
//! The *pipeline* instrumentation above is only linked when the
//! simulator is built with its `obs` cargo feature; with the feature
//! off, every hook site compiles to nothing and simulation results are
//! bit-exact with an uninstrumented build. The `telemetry` and `span`
//! modules are different: they observe the harness, not the simulated
//! machine, and are compiled in unconditionally (spans additionally
//! gate on the `MG_TRACE` knob at runtime).

#![warn(missing_docs)]

pub mod collector;
pub mod log;
pub mod metrics;
pub mod report;
pub mod ring;
pub mod schema;
pub mod span;
pub mod stall;
pub mod telemetry;
pub mod trace;

pub use collector::{
    CycleState, DispatchBlock, MachineCaps, ObsCollector, ObsConfig, RedirectKind,
};
pub use log::Level;
pub use metrics::{Histogram, WindowIpc};
pub use report::{ObsAggregate, ObsReport, OccupancyReport};
pub use ring::Ring;
pub use span::{span, ChromeTrace, SpanGuard, TraceEvent};
pub use stall::{StallCause, StallTable};
pub use telemetry::{Counter, Gauge, HistSnapshot, TeleHist, TelemetrySnapshot};
pub use trace::{pipeview, OpClass, OpTrace};
