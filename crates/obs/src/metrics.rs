//! Cycle-bucketed metrics: bounded occupancy histograms and windowed IPC.

use serde::{Deserialize, Serialize};

/// A bounded histogram over `0..=max`; samples above `max` clamp into the
/// last bucket. Used for queue-occupancy distributions, where `max` is
/// the queue capacity.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    /// Largest representable sample (inclusive).
    pub max: usize,
    /// `max + 1` buckets; `buckets[v]` counts samples equal to `v`.
    pub buckets: Vec<u64>,
    /// Total number of samples recorded.
    pub samples: u64,
}

impl Histogram {
    /// An empty histogram over `0..=max`.
    pub fn new(max: usize) -> Histogram {
        Histogram {
            max,
            buckets: vec![0; max + 1],
            samples: 0,
        }
    }

    /// Records one sample, clamping to `max`.
    pub fn record(&mut self, value: usize) {
        self.buckets[value.min(self.max)] += 1;
        self.samples += 1;
    }

    /// Mean of all recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.samples == 0 {
            return 0.0;
        }
        let sum: u64 = self
            .buckets
            .iter()
            .enumerate()
            .map(|(v, n)| v as u64 * n)
            .sum();
        sum as f64 / self.samples as f64
    }

    /// Smallest value `v` such that at least `q` (in `[0, 1]`) of the
    /// samples are ≤ `v`; 0 when empty.
    pub fn quantile(&self, q: f64) -> usize {
        if self.samples == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.samples as f64).ceil() as u64;
        let mut seen = 0;
        for (v, n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return v;
            }
        }
        self.max
    }

    /// Fraction of samples in the last bucket (queue at capacity).
    pub fn frac_full(&self) -> f64 {
        if self.samples == 0 {
            return 0.0;
        }
        self.buckets[self.max] as f64 / self.samples as f64
    }

    /// Folds another histogram into this one (same `max` required).
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.max, other.max, "histogram range mismatch");
        for (m, t) in self.buckets.iter_mut().zip(&other.buckets) {
            *m += t;
        }
        self.samples += other.samples;
    }
}

/// Committed-instruction counts bucketed by fixed cycle windows, from
/// which per-window IPC falls out as `instrs[i] / window`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct WindowIpc {
    /// Window size in cycles.
    pub window: u64,
    /// Instructions committed during each consecutive window; the last
    /// entry may cover a partial window.
    pub instrs: Vec<u64>,
}

impl WindowIpc {
    /// Empty series with the given window size (minimum 1).
    pub fn new(window: u64) -> WindowIpc {
        WindowIpc {
            window: window.max(1),
            instrs: Vec::new(),
        }
    }

    /// Adds `n` committed instructions at `cycle`.
    pub fn record(&mut self, cycle: u64, n: u64) {
        if n == 0 {
            return;
        }
        let bucket = (cycle / self.window) as usize;
        if self.instrs.len() <= bucket {
            self.instrs.resize(bucket + 1, 0);
        }
        self.instrs[bucket] += n;
    }

    /// Per-window IPC values (last window scaled by its true length,
    /// given the run's total cycles).
    pub fn ipc_series(&self, total_cycles: u64) -> Vec<f64> {
        let n = self.instrs.len();
        self.instrs
            .iter()
            .enumerate()
            .map(|(i, instrs)| {
                let span = if i + 1 == n {
                    let rem = total_cycles.saturating_sub(i as u64 * self.window);
                    rem.clamp(1, self.window)
                } else {
                    self.window
                };
                *instrs as f64 / span as f64
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_clamps_and_averages() {
        let mut h = Histogram::new(4);
        h.record(0);
        h.record(2);
        h.record(9); // clamps to 4
        assert_eq!(h.samples, 3);
        assert_eq!(h.buckets[4], 1);
        assert!((h.mean() - 2.0).abs() < 1e-12);
        assert!((h.frac_full() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_quantiles() {
        let mut h = Histogram::new(10);
        for v in [1usize, 2, 3, 4] {
            h.record(v);
        }
        assert_eq!(h.quantile(0.5), 2);
        assert_eq!(h.quantile(1.0), 4);
        assert_eq!(Histogram::new(3).quantile(0.5), 0);
    }

    #[test]
    fn histogram_merge() {
        let mut a = Histogram::new(2);
        a.record(1);
        let mut b = Histogram::new(2);
        b.record(2);
        a.merge(&b);
        assert_eq!(a.samples, 2);
        assert_eq!(a.buckets, vec![0, 1, 1]);
    }

    #[test]
    fn window_ipc_buckets_by_cycle() {
        let mut w = WindowIpc::new(10);
        w.record(0, 4);
        w.record(9, 6);
        w.record(25, 5);
        assert_eq!(w.instrs, vec![10, 0, 5]);
        let ipc = w.ipc_series(26);
        assert!((ipc[0] - 1.0).abs() < 1e-12);
        assert!((ipc[1] - 0.0).abs() < 1e-12);
        // Last window spans cycles 20..26 → 6 cycles.
        assert!((ipc[2] - 5.0 / 6.0).abs() < 1e-12);
    }
}
