//! Per-op pipeline stage records and the text pipeview renderer.
//!
//! The simulator emits one [`OpTrace`] per op as it leaves the window
//! (commit or squash), carrying the cycle each pipeline stage happened.
//! [`pipeview`] renders a set of records over a cycle window as a
//! Konata-style text diagram — one row per op, one column per cycle:
//!
//! ```text
//! seq      pc       |0         1         |
//! 12       0x00488  |F..D.RIec.T         |
//! ```
//!
//! Stage letters: `F` fetch, `.` in-flight, `D` dispatch, `w` waiting for
//! operands, `R` ready, `r` ready but not issued, `I` issue, `e`
//! executing, `C` complete, `c` awaiting commit, `T` commit (retire),
//! `X` squash.

use serde::{Deserialize, Serialize};

/// What kind of op a trace record describes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum OpClass {
    /// An ordinary (non-aggregated) instruction.
    Singleton,
    /// A mini-graph handle executing a whole template.
    Handle,
    /// A jump into an outlined mini-graph body.
    OutlineJump,
    /// A return jump from an outlined body.
    ReturnJump,
}

impl OpClass {
    /// One-letter tag used in the pipeview row header.
    pub fn tag(self) -> char {
        match self {
            OpClass::Singleton => 's',
            OpClass::Handle => 'H',
            OpClass::OutlineJump => 'j',
            OpClass::ReturnJump => 'r',
        }
    }
}

/// Stage timestamps for one op's trip through the pipeline.
///
/// Stages that never happened (e.g. `issue` for an op squashed in the
/// queue) are `None`. All cycles are absolute simulation cycles.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct OpTrace {
    /// Position in the dynamic op stream (window index at dispatch).
    pub seq: u64,
    /// Program counter of the op (handle PC for aggregates).
    pub pc: u64,
    /// Kind of op.
    pub class: OpClass,
    /// Cycle the op was fetched.
    pub fetch: u64,
    /// Cycle the op entered the out-of-order window.
    pub dispatch: Option<u64>,
    /// Cycle the op's last operand arrived (it became issueable).
    pub ready: Option<u64>,
    /// Cycle the op was granted an issue port.
    pub issue: Option<u64>,
    /// Cycle execution finished (result available).
    pub done: Option<u64>,
    /// Cycle the op retired.
    pub commit: Option<u64>,
    /// Cycle the op was squashed, if it was.
    pub squash: Option<u64>,
}

impl OpTrace {
    /// The last cycle at which this op still occupied the pipeline.
    pub fn last_cycle(&self) -> u64 {
        self.squash
            .or(self.commit)
            .or(self.done)
            .or(self.issue)
            .or(self.ready)
            .or(self.dispatch)
            .unwrap_or(self.fetch)
    }

    /// The character drawn for this op at `cycle`, or `None` when the op
    /// is not in the pipeline at that cycle.
    fn glyph(&self, cycle: u64) -> Option<char> {
        if cycle < self.fetch || cycle > self.last_cycle() {
            return None;
        }
        if self.squash == Some(cycle) {
            return Some('X');
        }
        if self.commit == Some(cycle) {
            return Some('T');
        }
        if self.done == Some(cycle) {
            return Some('C');
        }
        if self.issue == Some(cycle) {
            return Some('I');
        }
        if self.ready == Some(cycle) {
            return Some('R');
        }
        if self.dispatch == Some(cycle) {
            return Some('D');
        }
        if cycle == self.fetch {
            return Some('F');
        }
        // Between stage events: pick the phase the op is sitting in.
        if let Some(done) = self.done {
            if cycle > done {
                return Some('c'); // complete, waiting to commit
            }
        }
        if let Some(issue) = self.issue {
            if cycle > issue {
                return Some('e'); // executing
            }
        }
        if let Some(ready) = self.ready {
            if cycle > ready {
                return Some('r'); // ready, contending for a port
            }
        }
        if let Some(dispatch) = self.dispatch {
            if cycle > dispatch {
                return Some('w'); // waiting for operands
            }
        }
        Some('.') // in the front-end between fetch and dispatch
    }
}

/// Renders records overlapping the half-open cycle window `[lo, hi)` as a
/// text pipeview, one row per op, oldest first. Ops entirely outside the
/// window are skipped; an empty result is a single header line.
pub fn pipeview(records: &[OpTrace], lo: u64, hi: u64) -> String {
    let mut out = String::new();
    let width = hi.saturating_sub(lo) as usize;
    out.push_str(&format!("{:>8} {:>10} c |", "seq", "pc"));
    for c in 0..width {
        let abs = lo + c as u64;
        out.push(if abs.is_multiple_of(10) { '|' } else { ' ' });
    }
    out.push('\n');
    let mut rows: Vec<&OpTrace> = records
        .iter()
        .filter(|r| r.fetch < hi && r.last_cycle() >= lo)
        .collect();
    rows.sort_by_key(|r| (r.seq, r.fetch));
    for r in rows {
        out.push_str(&format!("{:>8} {:>#10x} {} |", r.seq, r.pc, r.class.tag()));
        for c in 0..width {
            out.push(r.glyph(lo + c as u64).unwrap_or(' '));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> OpTrace {
        OpTrace {
            seq: 7,
            pc: 0x400,
            class: OpClass::Singleton,
            fetch: 2,
            dispatch: Some(5),
            ready: Some(6),
            issue: Some(8),
            done: Some(10),
            commit: Some(12),
            squash: None,
        }
    }

    #[test]
    fn glyphs_follow_stage_order() {
        let t = sample();
        let row: String = (0..13).map(|c| t.glyph(c).unwrap_or(' ')).collect();
        assert_eq!(row, "  F..DRrIeCcT");
        assert_eq!(t.glyph(13), None);
    }

    #[test]
    fn squash_overrides_commit() {
        let mut t = sample();
        t.commit = None;
        t.squash = Some(9);
        assert_eq!(t.glyph(9), Some('X'));
        assert_eq!(t.last_cycle(), 9);
        assert_eq!(t.glyph(10), None);
    }

    #[test]
    fn pipeview_filters_window() {
        let a = sample();
        let mut b = sample();
        b.seq = 9;
        b.fetch = 40;
        b.dispatch = Some(41);
        b.ready = Some(41);
        b.issue = Some(42);
        b.done = Some(43);
        b.commit = Some(44);
        let view = pipeview(&[b.clone(), a.clone()], 0, 20);
        assert!(view.contains("F..DRrIeCcT"));
        // Op b lies entirely outside the window.
        assert_eq!(view.lines().count(), 2);
        // Rows come out in seq order even though input was reversed.
        let view_all = pipeview(&[b, a], 0, 50);
        let lines: Vec<&str> = view_all.lines().collect();
        assert!(lines[1].trim_start().starts_with('7'));
        assert!(lines[2].trim_start().starts_with('9'));
    }

    #[test]
    fn serde_round_trip() {
        let t = sample();
        let json = serde_json::to_string(&t).unwrap();
        let back: OpTrace = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
    }
}
