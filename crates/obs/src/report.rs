//! The serializable per-run report and the cross-run aggregate.

use serde::{Deserialize, Serialize};

use crate::metrics::{Histogram, WindowIpc};
use crate::stall::StallTable;
use crate::trace::{pipeview, OpTrace};

/// Occupancy histograms for the four bounded queues.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct OccupancyReport {
    /// Issue-queue occupancy per cycle.
    pub iq: Histogram,
    /// Reorder-buffer occupancy per cycle.
    pub rob: Histogram,
    /// Load-queue occupancy per cycle.
    pub lq: Histogram,
    /// Store-queue occupancy per cycle.
    pub sq: Histogram,
}

/// Everything one instrumented run produced.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ObsReport {
    /// Total simulated cycles (equals the number of attributed cycles).
    pub cycles: u64,
    /// Architectural instructions committed.
    pub committed_instrs: u64,
    /// Machine issue width (stall-table slot count).
    pub issue_width: usize,
    /// Per-slot stall attribution.
    pub stalls: StallTable,
    /// Queue occupancy distributions.
    pub occupancy: OccupancyReport,
    /// Windowed committed-instruction counts.
    pub ipc: WindowIpc,
    /// Pipeline trace records (the tail of the run, ring-buffered).
    pub trace: Vec<OpTrace>,
    /// Ops that fell out of the trace ring before the run ended.
    pub trace_dropped: u64,
}

impl ObsReport {
    /// Whether the stall table's per-slot counts sum to `cycles` — the
    /// attribution conservation invariant.
    pub fn conservation_ok(&self) -> bool {
        self.stalls.conservation_ok(self.cycles)
    }

    /// Renders the trace over the cycle window `[lo, hi)` as a text
    /// pipeview.
    pub fn pipeview(&self, lo: u64, hi: u64) -> String {
        pipeview(&self.trace, lo, hi)
    }

    /// A cycle window covering the last `span` cycles that the trace
    /// actually has records for — convenient default for the pipeview.
    pub fn tail_window(&self, span: u64) -> (u64, u64) {
        let hi = self
            .trace
            .iter()
            .map(|t| t.last_cycle() + 1)
            .max()
            .unwrap_or(self.cycles);
        (hi.saturating_sub(span), hi)
    }
}

/// A fold of many [`ObsReport`]s — the sweep runner's cross-benchmark,
/// cross-scheme stall-attribution aggregate.
///
/// Runs from machines of different issue widths may be absorbed into one
/// aggregate: the merged table is padded to the widest run. Conservation
/// is then checked on the grand total (every charged slot-cycle counted
/// exactly once) rather than per slot, since padded slots were never
/// charged in the narrower runs.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ObsAggregate {
    /// Number of reports absorbed.
    pub runs: u64,
    /// Total cycles across all runs.
    pub cycles: u64,
    /// Total committed instructions across all runs.
    pub committed_instrs: u64,
    /// Total issue-slot cycles across all runs (`Σ cycles·width`) — the
    /// grand-total conservation reference.
    pub slot_cycles: u64,
    /// Merged stall table (`None` until the first absorb).
    pub stalls: Option<StallTable>,
}

impl ObsAggregate {
    /// An empty aggregate.
    pub fn new() -> ObsAggregate {
        ObsAggregate::default()
    }

    fn fold_table(into: &mut Option<StallTable>, table: &StallTable) {
        match into {
            Some(t) => {
                if t.width < table.width {
                    t.widen(table.width);
                }
                let mut other = table.clone();
                other.widen(t.width);
                t.merge(&other);
            }
            None => *into = Some(table.clone()),
        }
    }

    /// Folds one run's report into the aggregate.
    pub fn absorb(&mut self, r: &ObsReport) {
        self.runs += 1;
        self.cycles += r.cycles;
        self.committed_instrs += r.committed_instrs;
        self.slot_cycles += r.cycles * r.issue_width as u64;
        Self::fold_table(&mut self.stalls, &r.stalls);
    }

    /// Folds another aggregate into this one (the sweep runner merges
    /// per-benchmark aggregates into a sweep-wide one).
    pub fn merge(&mut self, other: &ObsAggregate) {
        self.runs += other.runs;
        self.cycles += other.cycles;
        self.committed_instrs += other.committed_instrs;
        self.slot_cycles += other.slot_cycles;
        if let Some(t) = &other.stalls {
            Self::fold_table(&mut self.stalls, t);
        }
    }

    /// Whether the merged table still conserves cycles: every issue-slot
    /// cycle of every absorbed run is counted exactly once.
    pub fn conservation_ok(&self) -> bool {
        match &self.stalls {
            Some(t) => t.grand_total() == self.slot_cycles,
            None => self.cycles == 0,
        }
    }

    /// Renders a summary: run counts, aggregate IPC, and the merged
    /// stall table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let ipc = if self.cycles == 0 {
            0.0
        } else {
            self.committed_instrs as f64 / self.cycles as f64
        };
        out.push_str(&format!(
            "obs aggregate: {} runs, {} cycles, {} instrs, IPC {:.3}\n",
            self.runs, self.cycles, self.committed_instrs, ipc
        ));
        if let Some(t) = &self.stalls {
            out.push_str(&t.render());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::{CycleState, MachineCaps, ObsCollector, ObsConfig};
    use crate::stall::StallCause;

    fn tiny_report(cycles: u64) -> ObsReport {
        let mut c = ObsCollector::new(
            ObsConfig {
                trace_cap: 4,
                ipc_window: 2,
            },
            MachineCaps {
                issue_width: 2,
                iq: 4,
                rob: 8,
                lq: 2,
                sq: 2,
            },
        );
        for cyc in 0..cycles {
            c.note_issue();
            c.note_commit_instrs(1);
            c.end_cycle(cyc, &CycleState::default());
        }
        c.finish(cycles)
    }

    #[test]
    fn aggregate_absorbs_and_conserves() {
        let mut agg = ObsAggregate::new();
        assert!(agg.conservation_ok());
        agg.absorb(&tiny_report(3));
        agg.absorb(&tiny_report(5));
        assert_eq!(agg.runs, 2);
        assert_eq!(agg.cycles, 8);
        assert_eq!(agg.committed_instrs, 8);
        assert!(agg.conservation_ok());
        let text = agg.render();
        assert!(text.contains("2 runs"));
        assert!(text.contains("busy"));
        assert_eq!(agg.stalls.as_ref().unwrap().total(StallCause::Busy), 8);
    }

    #[test]
    fn aggregates_merge_and_conserve() {
        let mut a = ObsAggregate::new();
        a.absorb(&tiny_report(3));
        let mut b = ObsAggregate::new();
        b.absorb(&tiny_report(5));
        a.merge(&b);
        assert_eq!(a.runs, 2);
        assert_eq!(a.cycles, 8);
        assert_eq!(a.slot_cycles, 16, "two-wide machine, 8 cycles");
        assert!(a.conservation_ok());
        // Merging an empty aggregate changes nothing.
        a.merge(&ObsAggregate::new());
        assert_eq!(a.runs, 2);
        assert!(a.conservation_ok());
    }

    #[test]
    fn report_serde_round_trip() {
        let r = tiny_report(4);
        let json = serde_json::to_string_pretty(&r).unwrap();
        let back: ObsReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
        assert!(back.conservation_ok());
    }

    #[test]
    fn tail_window_tracks_trace() {
        let r = tiny_report(4);
        // No trace records were pushed, so the window anchors at cycles.
        assert_eq!(r.tail_window(10), (0, 4));
    }
}
