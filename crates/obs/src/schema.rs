//! A minimal JSON-Schema subset validator.
//!
//! The CI `obs-smoke` job validates emitted trace JSON against a
//! checked-in schema. The offline `serde_json` shim has no schema
//! support, so this module implements the small subset the schema file
//! uses: `type` (including type arrays), `properties`, `required`,
//! `items`, `enum` (of strings), and nested combinations thereof.
//! Unknown schema keywords are ignored, as JSON Schema specifies.

use serde::Value;

/// Validates `value` against `schema`, returning the first violation as
/// a human-readable message with a JSON-pointer-style path.
pub fn validate(value: &Value, schema: &Value) -> Result<(), String> {
    check(value, schema, "$")
}

fn type_name(v: &Value) -> &'static str {
    match v {
        Value::Null => "null",
        Value::Bool(_) => "boolean",
        Value::I64(_) | Value::U64(_) => "integer",
        Value::F64(_) => "number",
        Value::Str(_) => "string",
        Value::Seq(_) => "array",
        Value::Map(_) => "object",
    }
}

fn type_matches(v: &Value, want: &str) -> bool {
    match want {
        // Integers are numbers too, per JSON Schema.
        "number" => matches!(v, Value::I64(_) | Value::U64(_) | Value::F64(_)),
        other => type_name(v) == other,
    }
}

fn check(value: &Value, schema: &Value, path: &str) -> Result<(), String> {
    let entries = match schema.as_map() {
        Some(m) => m,
        // A non-object schema (e.g. `true`) accepts everything.
        None => return Ok(()),
    };
    for (key, constraint) in entries {
        match key.as_str() {
            "type" => check_type(value, constraint, path)?,
            "enum" => check_enum(value, constraint, path)?,
            "required" => check_required(value, constraint, path)?,
            "properties" => check_properties(value, constraint, path)?,
            "items" => check_items(value, constraint, path)?,
            _ => {} // unknown keywords are ignored
        }
    }
    Ok(())
}

fn check_type(value: &Value, constraint: &Value, path: &str) -> Result<(), String> {
    let ok = match constraint {
        Value::Str(t) => type_matches(value, t),
        Value::Seq(ts) => ts.iter().any(|t| match t {
            Value::Str(t) => type_matches(value, t),
            _ => false,
        }),
        _ => true,
    };
    if ok {
        Ok(())
    } else {
        Err(format!(
            "{path}: expected type {constraint:?}, got {}",
            type_name(value)
        ))
    }
}

fn check_enum(value: &Value, constraint: &Value, path: &str) -> Result<(), String> {
    let allowed = match constraint.as_seq() {
        Some(s) => s,
        None => return Ok(()),
    };
    if allowed.contains(value) {
        Ok(())
    } else {
        Err(format!("{path}: value {value:?} not in enum {allowed:?}"))
    }
}

fn check_required(value: &Value, constraint: &Value, path: &str) -> Result<(), String> {
    let (map, names) = match (value.as_map(), constraint.as_seq()) {
        (Some(m), Some(n)) => (m, n),
        _ => return Ok(()),
    };
    for name in names {
        if let Value::Str(name) = name {
            if !map.iter().any(|(k, _)| k == name) {
                return Err(format!("{path}: missing required field `{name}`"));
            }
        }
    }
    Ok(())
}

fn check_properties(value: &Value, constraint: &Value, path: &str) -> Result<(), String> {
    let (map, props) = match (value.as_map(), constraint.as_map()) {
        (Some(m), Some(p)) => (m, p),
        _ => return Ok(()),
    };
    for (name, sub) in props {
        if let Some((_, field)) = map.iter().find(|(k, _)| k == name) {
            check(field, sub, &format!("{path}.{name}"))?;
        }
    }
    Ok(())
}

fn check_items(value: &Value, constraint: &Value, path: &str) -> Result<(), String> {
    let items = match value.as_seq() {
        Some(s) => s,
        None => return Ok(()),
    };
    for (i, item) in items.iter().enumerate() {
        check(item, constraint, &format!("{path}[{i}]"))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::parse_value_str;

    fn v(s: &str) -> Value {
        parse_value_str(s).unwrap()
    }

    #[test]
    fn accepts_matching_object() {
        let schema = v(r#"{
            "type": "object",
            "required": ["cycles", "trace"],
            "properties": {
                "cycles": {"type": "integer"},
                "trace": {
                    "type": "array",
                    "items": {
                        "type": "object",
                        "required": ["pc", "class"],
                        "properties": {
                            "pc": {"type": "integer"},
                            "class": {"enum": ["Singleton", "Handle"]},
                            "issue": {"type": ["integer", "null"]}
                        }
                    }
                }
            }
        }"#);
        let doc = v(r#"{
            "cycles": 10,
            "trace": [{"pc": 4, "class": "Handle", "issue": null}],
            "extra": "ignored"
        }"#);
        assert_eq!(validate(&doc, &schema), Ok(()));
    }

    #[test]
    fn rejects_missing_required() {
        let schema = v(r#"{"type": "object", "required": ["cycles"]}"#);
        let err = validate(&v("{}"), &schema).unwrap_err();
        assert!(err.contains("missing required field `cycles`"), "{err}");
    }

    #[test]
    fn rejects_wrong_type_with_path() {
        let schema = v(r#"{"properties": {"trace": {"type": "array"}}}"#);
        let err = validate(&v(r#"{"trace": 3}"#), &schema).unwrap_err();
        assert!(err.starts_with("$.trace:"), "{err}");
    }

    #[test]
    fn rejects_bad_enum_inside_array() {
        let schema = v(r#"{"items": {"enum": ["a", "b"]}}"#);
        let err = validate(&v(r#"["a", "c"]"#), &schema).unwrap_err();
        assert!(err.starts_with("$[1]:"), "{err}");
    }

    #[test]
    fn integer_counts_as_number() {
        let schema = v(r#"{"type": "number"}"#);
        assert_eq!(validate(&v("3"), &schema), Ok(()));
        assert_eq!(validate(&v("3.5"), &schema), Ok(()));
        assert!(validate(&v("\"x\""), &schema).is_err());
    }
}
