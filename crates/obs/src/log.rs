//! Minimal leveled logger.
//!
//! Levels are `off < error < info < debug`, default `info`. This module
//! never reads the environment: the `MG_LOG` knob is parsed by the
//! harness config layer (`mg_bench::config`) at a binary's entry point
//! and installed with [`set_level`] — tests and library code therefore
//! never depend on process environment. Output goes to stderr so it
//! never corrupts JSON results written to stdout or files.
//!
//! The [`mg_error!`](crate::mg_error), [`mg_info!`](crate::mg_info) and
//! [`mg_debug!`](crate::mg_debug) macros check the level before
//! evaluating their format arguments.

use std::fmt;
use std::sync::atomic::{AtomicU8, Ordering};

/// Verbosity level, ordered from quietest to loudest.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// No output at all.
    Off = 0,
    /// Only errors.
    Error = 1,
    /// Errors plus progress lines (the default).
    Info = 2,
    /// Everything, including per-item detail.
    Debug = 3,
}

impl Level {
    /// Parses an `MG_LOG` value. Unrecognized values fall back to `Info`
    /// so a typo never silences error output entirely.
    pub fn parse(s: &str) -> Level {
        match s.trim().to_ascii_lowercase().as_str() {
            "off" | "none" | "0" => Level::Off,
            "error" | "1" => Level::Error,
            "info" | "2" => Level::Info,
            "debug" | "3" => Level::Debug,
            _ => Level::Info,
        }
    }

    /// The lowercase name, matching what `MG_LOG` accepts.
    pub fn name(self) -> &'static str {
        match self {
            Level::Off => "off",
            Level::Error => "error",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }
}

static LEVEL: AtomicU8 = AtomicU8::new(Level::Info as u8);

/// The current log level (default [`Level::Info`] until [`set_level`]
/// says otherwise).
pub fn level() -> Level {
    match LEVEL.load(Ordering::Relaxed) {
        0 => Level::Off,
        1 => Level::Error,
        3 => Level::Debug,
        _ => Level::Info,
    }
}

/// Overrides the log level for the rest of the process.
pub fn set_level(l: Level) {
    LEVEL.store(l as u8, Ordering::Relaxed);
}

/// Whether messages at `l` are currently emitted.
pub fn enabled(l: Level) -> bool {
    l != Level::Off && l <= level()
}

/// Writes one formatted line to stderr with a level tag, the monotonic
/// time since process start (shared with the span tracer's epoch), and
/// the emitting thread's name — so interleaved output from sweep
/// workers and serve workers stays attributable. Prefer the `mg_*!`
/// macros, which check [`enabled`] before formatting.
pub fn write(l: Level, args: fmt::Arguments<'_>) {
    let us = crate::span::elapsed_us();
    let thread = std::thread::current();
    let name = thread.name().unwrap_or("?");
    eprintln!(
        "[mg:{} +{}.{:03}s {}] {}",
        l.name(),
        us / 1_000_000,
        (us % 1_000_000) / 1_000,
        name,
        args
    );
}

/// Writes a raw fragment (no newline, no tag) at `info` level — used for
/// the sweep runner's progress dots, which build up one line across many
/// calls.
pub fn raw(s: &str) {
    if enabled(Level::Info) {
        eprint!("{s}");
    }
}

/// Logs at `error` level.
#[macro_export]
macro_rules! mg_error {
    ($($arg:tt)*) => {
        if $crate::log::enabled($crate::log::Level::Error) {
            $crate::log::write($crate::log::Level::Error, format_args!($($arg)*));
        }
    };
}

/// Logs at `info` level.
#[macro_export]
macro_rules! mg_info {
    ($($arg:tt)*) => {
        if $crate::log::enabled($crate::log::Level::Info) {
            $crate::log::write($crate::log::Level::Info, format_args!($($arg)*));
        }
    };
}

/// Logs at `debug` level.
#[macro_export]
macro_rules! mg_debug {
    ($($arg:tt)*) => {
        if $crate::log::enabled($crate::log::Level::Debug) {
            $crate::log::write($crate::log::Level::Debug, format_args!($($arg)*));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_names_and_numbers() {
        assert_eq!(Level::parse("off"), Level::Off);
        assert_eq!(Level::parse("ERROR"), Level::Error);
        assert_eq!(Level::parse(" debug "), Level::Debug);
        assert_eq!(Level::parse("2"), Level::Info);
        assert_eq!(Level::parse("garbage"), Level::Info);
    }

    #[test]
    fn set_level_controls_enabled() {
        set_level(Level::Error);
        assert!(enabled(Level::Error));
        assert!(!enabled(Level::Info));
        set_level(Level::Off);
        assert!(!enabled(Level::Error));
        set_level(Level::Debug);
        assert!(enabled(Level::Debug));
        // Restore the default so other tests in this binary see it.
        set_level(Level::Info);
    }

    #[test]
    fn ordering_matches_verbosity() {
        assert!(Level::Off < Level::Error);
        assert!(Level::Error < Level::Info);
        assert!(Level::Info < Level::Debug);
    }
}
