//! The per-run collector the simulator drives from its pipeline hooks.
//!
//! The engine owns an `Option<ObsCollector>` (present only when the run
//! requests observability) and calls the `note_*` methods at its existing
//! event points — issue grant, dispatch resource block, load-miss
//! scheduling, handle execution, commit, squash — then calls
//! [`ObsCollector::end_cycle`] exactly once per simulated cycle. That
//! single `end_cycle` call charges every issue slot for the cycle, which
//! is what makes the stall table conserve cycles by construction.
//!
//! # Attribution priority
//!
//! A cycle's un-issued slots are all charged to the *highest-priority*
//! cause that applies, checked in this order:
//!
//! 1. ready ops were left unissued → [`StallCause::PortConflict`]
//! 2. a load miss is outstanding → [`StallCause::CacheMiss`]
//! 3. a mini-graph handle is mid-execution → [`StallCause::SerializationWait`]
//! 4. dispatch hit a structural limit this cycle → `RobFull` / `IqFull`
//!    / `RegsFull` / `LqFull` / `SqFull`
//! 5. ops are in flight but none ready → [`StallCause::EmptyReady`]
//! 6. fetch is stalled on a redirect → `MispredictRedirect` /
//!    `IcacheMiss` / `FetchRedirect`
//! 7. otherwise → [`StallCause::FrontendFill`] (window empty, front-end
//!    pipeline still delivering)
//!
//! Earlier causes are "closer to the issue stage": a cycle that both
//! waits on a cache miss *and* has a full ROB is charged to the miss,
//! because draining the miss is what unblocks the ROB.

use crate::metrics::{Histogram, WindowIpc};
use crate::report::{ObsReport, OccupancyReport};
use crate::ring::Ring;
use crate::stall::{StallCause, StallTable};
use crate::trace::OpTrace;

/// Tuning knobs for a collector, carried inside the simulator's options.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ObsConfig {
    /// Capacity of the pipeline-trace ring buffer (ops retained).
    pub trace_cap: usize,
    /// Cycle-window size for windowed IPC.
    pub ipc_window: u64,
}

impl Default for ObsConfig {
    fn default() -> ObsConfig {
        ObsConfig {
            trace_cap: 4096,
            ipc_window: 1024,
        }
    }
}

/// Machine capacities the collector sizes its histograms from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MachineCaps {
    /// Issue width (slots per cycle).
    pub issue_width: usize,
    /// Issue-queue entries.
    pub iq: usize,
    /// Reorder-buffer entries.
    pub rob: usize,
    /// Load-queue entries.
    pub lq: usize,
    /// Store-queue entries.
    pub sq: usize,
}

/// Which structural resource blocked dispatch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DispatchBlock {
    /// Reorder buffer full.
    Rob,
    /// Issue queue full.
    Iq,
    /// No free physical register.
    Regs,
    /// Load queue full.
    Lq,
    /// Store queue full.
    Sq,
}

/// Why the front-end is (or last was) stalled.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum RedirectKind {
    /// Not stalled / unknown.
    #[default]
    None,
    /// Waiting for a mispredicted branch to resolve.
    Mispredict,
    /// Waiting out an instruction-cache miss.
    Icache,
    /// Some other redirect penalty (BTB miss, violation flush).
    Other,
}

/// Per-cycle pipeline state the engine hands to
/// [`ObsCollector::end_cycle`]; everything the attribution policy needs
/// that isn't accumulated through `note_*` calls.
#[derive(Clone, Copy, Debug, Default)]
pub struct CycleState {
    /// Ready ops left unissued after the issue stage.
    pub ready_left: usize,
    /// Issue-queue entries in use.
    pub iq_used: usize,
    /// Reorder-buffer entries in use (ops in flight).
    pub rob_used: usize,
    /// Load-queue entries in use.
    pub lq_used: usize,
    /// Store-queue entries in use.
    pub sq_used: usize,
    /// Whether fetch is currently stalled waiting on a redirect.
    pub fetch_stalled: bool,
    /// Why fetch is stalled (meaningful when `fetch_stalled`).
    pub redirect: RedirectKind,
}

/// Accumulates one run's observability data.
#[derive(Clone, Debug)]
pub struct ObsCollector {
    caps: MachineCaps,
    trace: Ring<OpTrace>,
    stalls: StallTable,
    iq_occ: Histogram,
    rob_occ: Histogram,
    lq_occ: Histogram,
    sq_occ: Histogram,
    ipc: WindowIpc,
    committed_instrs: u64,
    // Per-cycle accumulators, reset by end_cycle.
    issued_this_cycle: usize,
    block_this_cycle: Option<DispatchBlock>,
    committed_this_cycle: u64,
    // Latches for "the window is waiting on X" detection.
    mem_busy_until: u64,
    handle_busy_until: u64,
}

impl ObsCollector {
    /// A collector for one run on a machine with the given capacities.
    pub fn new(cfg: ObsConfig, caps: MachineCaps) -> ObsCollector {
        ObsCollector {
            caps,
            trace: Ring::new(cfg.trace_cap),
            stalls: StallTable::new(caps.issue_width.max(1)),
            iq_occ: Histogram::new(caps.iq),
            rob_occ: Histogram::new(caps.rob),
            lq_occ: Histogram::new(caps.lq),
            sq_occ: Histogram::new(caps.sq),
            ipc: WindowIpc::new(cfg.ipc_window),
            committed_instrs: 0,
            issued_this_cycle: 0,
            block_this_cycle: None,
            committed_this_cycle: 0,
            mem_busy_until: 0,
            handle_busy_until: 0,
        }
    }

    /// An op was granted an issue slot this cycle.
    pub fn note_issue(&mut self) {
        self.issued_this_cycle += 1;
    }

    /// Dispatch stopped at a structural limit this cycle. The first
    /// block reported per cycle wins (it is what actually stopped the
    /// in-order dispatch scan).
    pub fn note_dispatch_block(&mut self, block: DispatchBlock) {
        self.block_this_cycle.get_or_insert(block);
    }

    /// A load missed the D-cache; its result arrives at `done_at`.
    pub fn note_load_miss(&mut self, done_at: u64) {
        self.mem_busy_until = self.mem_busy_until.max(done_at);
    }

    /// A mini-graph handle began serial execution, finishing at
    /// `done_at`.
    pub fn note_handle_exec(&mut self, done_at: u64) {
        self.handle_busy_until = self.handle_busy_until.max(done_at);
    }

    /// `n` architectural instructions committed this cycle.
    pub fn note_commit_instrs(&mut self, n: u64) {
        self.committed_this_cycle += n;
    }

    /// An op left the pipeline (commit or squash); record its trace.
    pub fn note_op(&mut self, t: OpTrace) {
        self.trace.push(t);
    }

    /// Closes out one simulated cycle: charges all issue slots, samples
    /// occupancy, flushes the commit count into the IPC window, and
    /// resets the per-cycle accumulators. Must be called exactly once
    /// per cycle the simulator counts.
    pub fn end_cycle(&mut self, cycle: u64, s: &CycleState) {
        let cause = if s.ready_left > 0 {
            StallCause::PortConflict
        } else if self.mem_busy_until > cycle {
            StallCause::CacheMiss
        } else if self.handle_busy_until > cycle {
            StallCause::SerializationWait
        } else if let Some(block) = self.block_this_cycle {
            match block {
                DispatchBlock::Rob => StallCause::RobFull,
                DispatchBlock::Iq => StallCause::IqFull,
                DispatchBlock::Regs => StallCause::RegsFull,
                DispatchBlock::Lq => StallCause::LqFull,
                DispatchBlock::Sq => StallCause::SqFull,
            }
        } else if s.rob_used > 0 {
            StallCause::EmptyReady
        } else if s.fetch_stalled {
            match s.redirect {
                RedirectKind::Mispredict => StallCause::MispredictRedirect,
                RedirectKind::Icache => StallCause::IcacheMiss,
                RedirectKind::Other | RedirectKind::None => StallCause::FetchRedirect,
            }
        } else {
            StallCause::FrontendFill
        };
        self.stalls.record(self.issued_this_cycle, cause);
        self.iq_occ.record(s.iq_used);
        self.rob_occ.record(s.rob_used);
        self.lq_occ.record(s.lq_used);
        self.sq_occ.record(s.sq_used);
        self.ipc.record(cycle, self.committed_this_cycle);
        self.committed_instrs += self.committed_this_cycle;
        self.issued_this_cycle = 0;
        self.block_this_cycle = None;
        self.committed_this_cycle = 0;
    }

    /// Finalizes the run into a serializable report. `cycles` is the
    /// simulator's final cycle count and must equal the number of
    /// `end_cycle` calls for the conservation invariant to hold.
    pub fn finish(self, cycles: u64) -> ObsReport {
        let dropped = self.trace.dropped();
        let mut trace = self.trace.into_vec();
        trace.sort_by_key(|t| (t.seq, t.fetch));
        ObsReport {
            cycles,
            committed_instrs: self.committed_instrs,
            issue_width: self.caps.issue_width,
            stalls: self.stalls,
            occupancy: OccupancyReport {
                iq: self.iq_occ,
                rob: self.rob_occ,
                lq: self.lq_occ,
                sq: self.sq_occ,
            },
            ipc: self.ipc,
            trace,
            trace_dropped: dropped,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn caps() -> MachineCaps {
        MachineCaps {
            issue_width: 4,
            iq: 8,
            rob: 16,
            lq: 4,
            sq: 4,
        }
    }

    #[test]
    fn attribution_priority_order() {
        let mut c = ObsCollector::new(ObsConfig::default(), caps());
        // Cycle 0: port conflict beats everything.
        c.note_load_miss(100);
        c.end_cycle(
            0,
            &CycleState {
                ready_left: 2,
                rob_used: 5,
                ..CycleState::default()
            },
        );
        // Cycle 1: cache miss outstanding, nothing ready.
        c.end_cycle(
            1,
            &CycleState {
                rob_used: 5,
                ..CycleState::default()
            },
        );
        // Cycle 2: handle executing (miss drained at 100 → still set; use
        // a fresh collector for isolation below instead).
        let r = c.finish(2);
        assert_eq!(r.stalls.total(StallCause::PortConflict), 4);
        assert_eq!(r.stalls.total(StallCause::CacheMiss), 4);
        assert!(r.conservation_ok());
    }

    #[test]
    fn structural_and_frontend_causes() {
        let mut c = ObsCollector::new(ObsConfig::default(), caps());
        c.note_dispatch_block(DispatchBlock::Rob);
        c.note_dispatch_block(DispatchBlock::Iq); // first one wins
        c.end_cycle(
            0,
            &CycleState {
                rob_used: 16,
                ..CycleState::default()
            },
        );
        c.end_cycle(
            1,
            &CycleState {
                rob_used: 3,
                ..CycleState::default()
            },
        );
        c.end_cycle(
            2,
            &CycleState {
                fetch_stalled: true,
                redirect: RedirectKind::Mispredict,
                ..CycleState::default()
            },
        );
        c.end_cycle(3, &CycleState::default());
        let r = c.finish(4);
        assert_eq!(r.stalls.total(StallCause::RobFull), 4);
        assert_eq!(r.stalls.total(StallCause::EmptyReady), 4);
        assert_eq!(r.stalls.total(StallCause::MispredictRedirect), 4);
        assert_eq!(r.stalls.total(StallCause::FrontendFill), 4);
        assert!(r.conservation_ok());
    }

    #[test]
    fn busy_slots_and_commit_flow() {
        let mut c = ObsCollector::new(ObsConfig::default(), caps());
        for _ in 0..3 {
            c.note_issue();
        }
        c.note_commit_instrs(2);
        c.end_cycle(
            0,
            &CycleState {
                rob_used: 4,
                iq_used: 2,
                ..CycleState::default()
            },
        );
        let r = c.finish(1);
        assert_eq!(r.stalls.total(StallCause::Busy), 3);
        assert_eq!(r.stalls.total(StallCause::EmptyReady), 1);
        assert_eq!(r.committed_instrs, 2);
        assert_eq!(r.occupancy.iq.samples, 1);
        assert!((r.occupancy.rob.mean() - 4.0).abs() < 1e-12);
        assert!(r.conservation_ok());
    }
}
