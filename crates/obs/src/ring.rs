//! Fixed-capacity ring buffer: the allocation-free backing store for the
//! pipeline tracer.
//!
//! The buffer allocates its full capacity up front; after that, pushes
//! never allocate. Once full, each push overwrites the oldest element and
//! bumps a `dropped` counter, so a report can state exactly how much of
//! the run's head fell out of the window.

/// A bounded FIFO that overwrites its oldest element when full.
#[derive(Clone, Debug)]
pub struct Ring<T> {
    buf: Vec<T>,
    cap: usize,
    /// Index of the oldest element once the buffer has wrapped.
    head: usize,
    dropped: u64,
}

impl<T> Ring<T> {
    /// A ring holding at most `cap` elements. The backing storage is
    /// reserved immediately; a zero capacity drops everything pushed.
    pub fn new(cap: usize) -> Ring<T> {
        Ring {
            buf: Vec::with_capacity(cap),
            cap,
            head: 0,
            dropped: 0,
        }
    }

    /// Appends `x`, evicting the oldest element if the ring is full.
    pub fn push(&mut self, x: T) {
        if self.cap == 0 {
            self.dropped += 1;
        } else if self.buf.len() < self.cap {
            self.buf.push(x);
        } else {
            self.buf[self.head] = x;
            self.head = (self.head + 1) % self.cap;
            self.dropped += 1;
        }
    }

    /// Number of elements currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the ring holds no elements.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Maximum number of elements the ring can hold.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// How many elements have been evicted (or discarded by a
    /// zero-capacity ring) over the ring's lifetime.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterates from oldest to newest.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.buf[self.head..]
            .iter()
            .chain(self.buf[..self.head].iter())
    }

    /// Consumes the ring, returning its elements oldest-first.
    pub fn into_vec(mut self) -> Vec<T> {
        self.buf.rotate_left(self.head);
        self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_then_wraps_in_order() {
        let mut r = Ring::new(3);
        for i in 0..5u32 {
            r.push(i);
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 2);
        let got: Vec<u32> = r.iter().copied().collect();
        assert_eq!(got, vec![2, 3, 4]);
        assert_eq!(r.into_vec(), vec![2, 3, 4]);
    }

    #[test]
    fn partial_fill_keeps_everything() {
        let mut r = Ring::new(8);
        r.push('a');
        r.push('b');
        assert_eq!(r.dropped(), 0);
        assert_eq!(r.into_vec(), vec!['a', 'b']);
    }

    #[test]
    fn zero_capacity_drops_all() {
        let mut r: Ring<u8> = Ring::new(0);
        r.push(1);
        r.push(2);
        assert!(r.is_empty());
        assert_eq!(r.dropped(), 2);
    }

    #[test]
    fn push_never_reallocates() {
        let mut r = Ring::new(4);
        let ptr = r.buf.as_ptr();
        for i in 0..64u64 {
            r.push(i);
        }
        assert_eq!(r.buf.as_ptr(), ptr);
    }
}
