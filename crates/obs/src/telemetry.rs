//! `mg-telemetry`: always-on runtime metrics for the harness and service.
//!
//! This is the *system* telemetry layer — distinct from the
//! `#[cfg(feature = "obs")]` pipeline instrumentation, which explains
//! simulated cycles. Telemetry explains the machinery around the
//! simulator: the work-stealing runner, the retry/watchdog supervisor,
//! the cache tiers, the journal, and the mg-serve queue/worker pool.
//! It is compiled in unconditionally and designed so an idle metric
//! costs nothing and a hot one costs a relaxed atomic.
//!
//! Three primitives, one registry:
//!
//! - [`Counter`]: a monotonically increasing `AtomicU64`.
//! - [`Gauge`]: a signed `AtomicI64` level (queue depth, workers busy).
//! - [`TeleHist`]: a log-bucketed latency histogram — fixed octave ×
//!   sub-bucket layout of `AtomicU64` buckets with ≤ 1/8 relative
//!   bucket width, lock-free on the record path, plus exact `count`,
//!   `sum`, and `max` side-channels so `p100` and the mean are exact.
//!
//! Metrics live in a process-global [`Registry`]: registration takes a
//! mutex (cold path, once per call site via the [`tele_counter!`],
//! [`tele_gauge!`] and [`tele_hist!`] macros), updates touch only the
//! returned `Arc`'d atomics (hot path, no lock). [`Registry::snapshot`]
//! produces a serializable, mergeable [`TelemetrySnapshot`] that
//! renders to Prometheus text exposition format for the mg-serve
//! `/metrics` listener and to JSON for `results/TELEMETRY_<bin>.json`.
//!
//! # Naming taxonomy
//!
//! `mg_<subsystem>_<what>[_<unit>][_total]`, Prometheus-style:
//! counters end in `_total`, histograms of durations end in `_us`
//! (microseconds), gauges are bare levels. Fixed label sets are folded
//! into the name verbatim (e.g. `mg_serve_rejects_total{code="QueueFull"}`)
//! so the registry stays a flat string map.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use serde::{Deserialize, Serialize};

/// Default sub-bucket resolution: 2^3 = 8 sub-buckets per octave,
/// bounding bucket relative width at 1/8 (12.5%).
pub const DEFAULT_SUB_BITS: u32 = 3;

/// A monotonically increasing counter. Updates are relaxed atomics.
#[derive(Debug, Default)]
pub struct Counter {
    v: AtomicU64,
}

impl Counter {
    /// Creates a counter starting at zero (registry use; prefer
    /// [`counter`] / [`tele_counter!`]).
    pub fn new() -> Counter {
        Counter {
            v: AtomicU64::new(0),
        }
    }

    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        self.v.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.v.load(Ordering::Relaxed)
    }
}

/// A signed level that can move both ways (queue depth, busy workers).
#[derive(Debug, Default)]
pub struct Gauge {
    v: AtomicI64,
}

impl Gauge {
    /// Creates a gauge at zero (registry use; prefer [`gauge`] /
    /// [`tele_gauge!`]).
    pub fn new() -> Gauge {
        Gauge {
            v: AtomicI64::new(0),
        }
    }

    /// Sets the gauge to an absolute value.
    #[inline]
    pub fn set(&self, n: i64) {
        self.v.store(n, Ordering::Relaxed);
    }

    /// Moves the gauge by a signed delta.
    #[inline]
    pub fn add(&self, n: i64) {
        self.v.fetch_add(n, Ordering::Relaxed);
    }

    /// Increments by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Decrements by one.
    #[inline]
    pub fn dec(&self) {
        self.add(-1);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.v.load(Ordering::Relaxed)
    }
}

/// Number of buckets for a given sub-bucket resolution.
///
/// Values below `2^s` get one exact bucket each; every octave `[2^e,
/// 2^(e+1))` for `e in s..64` gets `2^s` sub-buckets. The top octave's
/// upper half never overflows `u64`, so the layout covers the full
/// `u64` range with no overflow bucket.
pub fn bucket_count(sub_bits: u32) -> usize {
    (((63 - sub_bits) as usize) << sub_bits) + (1usize << (sub_bits + 1))
}

/// Bucket index for value `v` under `sub_bits` resolution.
#[inline]
pub fn bucket_index(v: u64, sub_bits: u32) -> usize {
    if v < (1u64 << sub_bits) {
        v as usize
    } else {
        let exp = 63 - v.leading_zeros();
        let shift = exp - sub_bits;
        (((exp - sub_bits) as usize) << sub_bits) + ((v >> shift) as usize)
    }
}

/// Inclusive `[lower, upper]` value range of bucket `i` under
/// `sub_bits` resolution.
pub fn bucket_bounds(i: usize, sub_bits: u32) -> (u64, u64) {
    let small = 1usize << sub_bits;
    if i < small {
        (i as u64, i as u64)
    } else {
        // Invert bucket_index: i = ((exp - s) << s) + m with m in
        // [2^s, 2^(s+1)).
        let exp = ((i - small) >> sub_bits) as u32 + sub_bits;
        let m = ((i & (small - 1)) + small) as u64;
        let shift = exp - sub_bits;
        let lower = m << shift;
        let upper = ((((m as u128) + 1) << shift) - 1).min(u64::MAX as u128) as u64;
        (lower, upper)
    }
}

/// Lock-free log-bucketed histogram. Record path is four relaxed
/// atomics (bucket, count, sum, max); snapshots are cheap copies.
#[derive(Debug)]
pub struct TeleHist {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    sub_bits: u32,
}

impl Default for TeleHist {
    fn default() -> TeleHist {
        TeleHist::new()
    }
}

impl TeleHist {
    /// Creates an empty histogram at [`DEFAULT_SUB_BITS`] resolution.
    pub fn new() -> TeleHist {
        TeleHist::with_sub_bits(DEFAULT_SUB_BITS)
    }

    /// Creates an empty histogram with `2^sub_bits` sub-buckets per
    /// octave (`sub_bits` clamped to `1..=6`).
    pub fn with_sub_bits(sub_bits: u32) -> TeleHist {
        let sub_bits = sub_bits.clamp(1, 6);
        let n = bucket_count(sub_bits);
        let buckets = (0..n).map(|_| AtomicU64::new(0)).collect::<Vec<_>>();
        TeleHist {
            buckets: buckets.into_boxed_slice(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            sub_bits,
        }
    }

    /// Records one observation. Saturates `sum` instead of wrapping.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v, self.sub_bits)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        // fetch_update would loop; a saturating two-step is fine under
        // relaxed semantics because sum is only ever read in snapshots.
        let prev = self.sum.fetch_add(v, Ordering::Relaxed);
        if prev.checked_add(v).is_none() {
            self.sum.store(u64::MAX, Ordering::Relaxed);
        }
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records a [`std::time::Duration`] in whole microseconds.
    #[inline]
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(d.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Copies the live buckets into a mergeable, serializable snapshot.
    pub fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            sub_bits: self.sub_bits,
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a [`TeleHist`]: plain `u64` buckets plus the
/// exact `count` / `sum` / `max` side-channels. Snapshots merge
/// bucket-wise (exactly — octave sub-buckets nest across resolutions,
/// so cross-width merges fold the finer layout into the coarser one
/// without approximation beyond the coarser layout's own width).
#[derive(Serialize, Deserialize, Clone, Debug, Default, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Sub-bucket resolution this snapshot was recorded at.
    pub sub_bits: u32,
    /// One count per bucket; length is `bucket_count(sub_bits)`.
    pub buckets: Vec<u64>,
    /// Exact number of observations.
    pub count: u64,
    /// Exact sum of observations (saturating).
    pub sum: u64,
    /// Exact maximum observation.
    pub max: u64,
}

impl HistSnapshot {
    /// An empty snapshot at the given resolution.
    pub fn empty(sub_bits: u32) -> HistSnapshot {
        let sub_bits = sub_bits.clamp(1, 6);
        HistSnapshot {
            sub_bits,
            buckets: vec![0; bucket_count(sub_bits)],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Re-buckets this snapshot into a coarser (or equal) resolution.
    /// Exact: every source bucket lies inside exactly one target
    /// bucket because sub-bucket boundaries nest between resolutions.
    pub fn fold_to(&self, sub_bits: u32) -> HistSnapshot {
        let sub_bits = sub_bits.clamp(1, self.sub_bits);
        if sub_bits == self.sub_bits {
            return self.clone();
        }
        let mut out = HistSnapshot::empty(sub_bits);
        for (i, &n) in self.buckets.iter().enumerate() {
            if n > 0 {
                let (lower, _) = bucket_bounds(i, self.sub_bits);
                out.buckets[bucket_index(lower, sub_bits)] += n;
            }
        }
        out.count = self.count;
        out.sum = self.sum;
        out.max = self.max;
        out
    }

    /// Merges `other` into `self`. Same-width merges add bucket-wise;
    /// cross-width merges first fold the finer snapshot down to the
    /// coarser resolution (which then becomes `self`'s resolution).
    pub fn merge(&mut self, other: &HistSnapshot) {
        if other.count == 0 && other.buckets.iter().all(|&b| b == 0) {
            return;
        }
        if self.sub_bits != other.sub_bits {
            let common = self.sub_bits.min(other.sub_bits);
            let folded_self = self.fold_to(common);
            let folded_other = other.fold_to(common);
            *self = folded_self;
            return self.merge(&folded_other);
        }
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (a, &b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a = a.saturating_add(b);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Quantile `q` in `[0, 1]`. Returns the upper bound of the bucket
    /// holding the `ceil(q * count)`-th observation, clamped to the
    /// exact recorded `max` (so `quantile(1.0)` is exact). Zero when
    /// empty. Accurate to the bucket's relative width (≤ `1 / 2^sub_bits`).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            cum = cum.saturating_add(n);
            if cum >= target {
                return bucket_bounds(i, self.sub_bits).1.min(self.max);
            }
        }
        self.max
    }

    /// Mean of the recorded observations (exact from `sum` / `count`).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Hist(Arc<TeleHist>),
}

/// A named collection of metrics. One process-global instance lives
/// behind [`global`]; tests may build private registries.
#[derive(Default)]
pub struct Registry {
    inner: Mutex<BTreeMap<String, Metric>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Returns the counter named `name`, registering it on first use.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut inner = self.inner.lock().unwrap();
        match inner
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::new())))
        {
            Metric::Counter(c) => Arc::clone(c),
            _ => panic!("telemetry metric {name:?} already registered with a different kind"),
        }
    }

    /// Returns the gauge named `name`, registering it on first use.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut inner = self.inner.lock().unwrap();
        match inner
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::new())))
        {
            Metric::Gauge(g) => Arc::clone(g),
            _ => panic!("telemetry metric {name:?} already registered with a different kind"),
        }
    }

    /// Returns the histogram named `name`, registering it on first use.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn hist(&self, name: &str) -> Arc<TeleHist> {
        let mut inner = self.inner.lock().unwrap();
        match inner
            .entry(name.to_string())
            .or_insert_with(|| Metric::Hist(Arc::new(TeleHist::new())))
        {
            Metric::Hist(h) => Arc::clone(h),
            _ => panic!("telemetry metric {name:?} already registered with a different kind"),
        }
    }

    /// Copies every registered metric into a serializable snapshot.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let inner = self.inner.lock().unwrap();
        let mut snap = TelemetrySnapshot::default();
        for (name, metric) in inner.iter() {
            match metric {
                Metric::Counter(c) => {
                    snap.counters.insert(name.clone(), c.get());
                }
                Metric::Gauge(g) => {
                    snap.gauges.insert(name.clone(), g.get());
                }
                Metric::Hist(h) => {
                    snap.hists.insert(name.clone(), h.snapshot());
                }
            }
        }
        snap
    }
}

/// A serializable point-in-time copy of a [`Registry`]. This is the
/// wire/disk form: the mg-serve `Stats` verb carries one, `run_cli`
/// writes one to `results/TELEMETRY_<bin>.json`, and `/metrics`
/// renders one to Prometheus text.
#[derive(Serialize, Deserialize, Clone, Debug, Default, PartialEq)]
pub struct TelemetrySnapshot {
    /// Counter values by metric name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by metric name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram snapshots by metric name.
    pub hists: BTreeMap<String, HistSnapshot>,
}

impl TelemetrySnapshot {
    /// Merges `other` into `self`: counters and gauges add (shard
    /// semantics — queue depths across shards sum), histograms merge
    /// bucket-wise per [`HistSnapshot::merge`].
    pub fn merge(&mut self, other: &TelemetrySnapshot) {
        for (name, &v) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += v;
        }
        for (name, &v) in &other.gauges {
            *self.gauges.entry(name.clone()).or_insert(0) += v;
        }
        for (name, h) in &other.hists {
            self.hists
                .entry(name.clone())
                .or_insert_with(|| HistSnapshot::empty(h.sub_bits))
                .merge(h);
        }
    }

    /// Counter value by name, zero if absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge value by name, zero if absent.
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// Renders the snapshot in Prometheus text exposition format
    /// (version 0.0.4). Histogram buckets are collapsed to cumulative
    /// counts at power-of-two `le` bounds so a 496-bucket histogram
    /// renders as at most ~64 lines.
    pub fn to_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let mut typed: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
        let base = |name: &str| -> String {
            match name.find('{') {
                Some(i) => name[..i].to_string(),
                None => name.to_string(),
            }
        };
        let mut type_line = |out: &mut String, name: &str, kind: &'static str| {
            let b = base(name);
            if typed.insert(b.clone()) {
                let _ = writeln!(out, "# TYPE {b} {kind}");
            }
        };
        for (name, v) in &self.counters {
            type_line(&mut out, name, "counter");
            let _ = writeln!(out, "{name} {v}");
        }
        for (name, v) in &self.gauges {
            type_line(&mut out, name, "gauge");
            let _ = writeln!(out, "{name} {v}");
        }
        for (name, h) in &self.hists {
            type_line(&mut out, name, "histogram");
            let mut cum = 0u64;
            let mut next_bound = 1u64 << (h.sub_bits + 1);
            let mut i = 0usize;
            while i < h.buckets.len() {
                let (_, upper) = bucket_bounds(i, h.sub_bits);
                if upper >= next_bound {
                    let _ = writeln!(out, "{name}_bucket{{le=\"{}\"}} {cum}", next_bound - 1);
                    if cum >= h.count {
                        break;
                    }
                    next_bound = next_bound.saturating_mul(2);
                    continue;
                }
                cum += h.buckets[i];
                i += 1;
            }
            let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count);
            let _ = writeln!(out, "{name}_sum {}", h.sum);
            let _ = writeln!(out, "{name}_count {}", h.count);
        }
        out
    }
}

static GLOBAL: OnceLock<Registry> = OnceLock::new();

/// The process-global registry every subsystem records into.
pub fn global() -> &'static Registry {
    GLOBAL.get_or_init(Registry::new)
}

/// Get-or-register a counter in the global registry (cold path; cache
/// the handle — see [`tele_counter!`]).
pub fn counter(name: &str) -> Arc<Counter> {
    global().counter(name)
}

/// Get-or-register a gauge in the global registry.
pub fn gauge(name: &str) -> Arc<Gauge> {
    global().gauge(name)
}

/// Get-or-register a histogram in the global registry.
pub fn hist(name: &str) -> Arc<TeleHist> {
    global().hist(name)
}

/// Snapshot of the global registry.
pub fn snapshot() -> TelemetrySnapshot {
    global().snapshot()
}

/// A cached handle to a global-registry counter: the registry mutex is
/// taken once per call site, after which each use is a relaxed atomic.
#[macro_export]
macro_rules! tele_counter {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::telemetry::Counter>> =
            ::std::sync::OnceLock::new();
        &**HANDLE.get_or_init(|| $crate::telemetry::counter($name))
    }};
}

/// A cached handle to a global-registry gauge (see [`tele_counter!`]).
#[macro_export]
macro_rules! tele_gauge {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::telemetry::Gauge>> =
            ::std::sync::OnceLock::new();
        &**HANDLE.get_or_init(|| $crate::telemetry::gauge($name))
    }};
}

/// A cached handle to a global-registry histogram (see [`tele_counter!`]).
#[macro_export]
macro_rules! tele_hist {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::telemetry::TeleHist>> =
            ::std::sync::OnceLock::new();
        &**HANDLE.get_or_init(|| $crate::telemetry::hist($name))
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_roundtrips_into_bounds() {
        for s in 1..=6u32 {
            for &v in &[0u64, 1, 2, 7, 8, 9, 15, 16, 100, 1000, 1 << 20, u64::MAX] {
                let i = bucket_index(v, s);
                let (lo, hi) = bucket_bounds(i, s);
                assert!(lo <= v && v <= hi, "v={v} s={s} i={i} lo={lo} hi={hi}");
                assert!(i < bucket_count(s));
            }
        }
    }

    #[test]
    fn small_values_are_exact() {
        let h = TeleHist::new();
        for v in 0..8 {
            h.record(v);
        }
        let s = h.snapshot();
        for v in 0..8 {
            assert_eq!(s.buckets[v as usize], 1, "value {v}");
        }
    }

    #[test]
    fn registry_returns_same_handle() {
        let r = Registry::new();
        let a = r.counter("x_total");
        let b = r.counter("x_total");
        a.add(3);
        assert_eq!(b.get(), 3);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_clash_panics() {
        let r = Registry::new();
        r.counter("clash");
        r.gauge("clash");
    }

    #[test]
    fn prometheus_text_has_type_lines() {
        let r = Registry::new();
        r.counter("mg_a_total").add(5);
        r.gauge("mg_b").set(-2);
        r.hist("mg_c_us").record(100);
        let text = r.snapshot().to_prometheus();
        assert!(text.contains("# TYPE mg_a_total counter"));
        assert!(text.contains("mg_a_total 5"));
        assert!(text.contains("mg_b -2"));
        assert!(text.contains("# TYPE mg_c_us histogram"));
        assert!(text.contains("mg_c_us_count 1"));
        assert!(text.contains("le=\"+Inf\"} 1"));
    }

    #[test]
    fn labeled_counters_share_one_type_line() {
        let r = Registry::new();
        r.counter("mg_rej_total{code=\"A\"}").add(1);
        r.counter("mg_rej_total{code=\"B\"}").add(2);
        let text = r.snapshot().to_prometheus();
        assert_eq!(text.matches("# TYPE mg_rej_total counter").count(), 1);
        assert!(text.contains("mg_rej_total{code=\"A\"} 1"));
        assert!(text.contains("mg_rej_total{code=\"B\"} 2"));
    }
}
