//! Property tests for the telemetry histogram and the span tracer.
//!
//! The histogram's contract is precise: `count`, `sum` (saturating),
//! and `max` are exact side-channels; quantiles are bucket upper
//! bounds, so they over-estimate by at most the bucket's relative
//! width (`1 / 2^sub_bits`); and cross-width merges are exact because
//! sub-bucket boundaries nest between resolutions. Each of those
//! claims gets a generative test here, driven by a seeded generator so
//! runs are reproducible.

use mg_obs::telemetry::{bucket_count, bucket_index, HistSnapshot, TeleHist};
use mg_obs::{span, ChromeTrace, TraceEvent};
use proptest::prelude::*;

/// Seeded value generator mixing magnitudes from single digits up to
/// near `u64::MAX`, so buckets from the exact small-value range, many
/// octaves, and the top octave all get exercised.
fn values_from_seed(seed: u64, n: usize) -> Vec<u64> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    (0..n)
        .map(|_| {
            let raw = next();
            // Pick a magnitude: shift the raw draw down by 0..64 bits.
            let shift = (next() % 65) as u32;
            raw.checked_shr(shift).unwrap_or(0)
        })
        .collect()
}

/// The exact `q`-quantile under the histogram's own definition: the
/// `max(1, ceil(q * n))`-th smallest observation.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let k = ((q * sorted.len() as f64).ceil() as usize).max(1);
    sorted[k.min(sorted.len()) - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Exact side-channels plus the quantile error bound: the reported
    /// quantile is at least the exact one and overshoots by at most
    /// `v >> sub_bits` (one bucket width).
    #[test]
    fn quantiles_are_within_one_bucket_width(seed in 0u64..512) {
        let n = 1 + (seed as usize % 200);
        let values = values_from_seed(seed, n);
        let hist = TeleHist::new();
        for &v in &values {
            hist.record(v);
        }
        let snap = hist.snapshot();
        let mut sorted = values.clone();
        sorted.sort_unstable();

        prop_assert_eq!(snap.count, n as u64);
        let expect_sum = values.iter().fold(0u64, |a, &v| a.saturating_add(v));
        prop_assert_eq!(snap.sum, expect_sum);
        prop_assert_eq!(snap.max, *sorted.last().unwrap());
        prop_assert_eq!(snap.quantile(1.0), snap.max, "q=1 is exact");

        for &q in &[0.0, 0.1, 0.5, 0.9, 0.99, 1.0] {
            let exact = exact_quantile(&sorted, q);
            let got = snap.quantile(q);
            prop_assert!(got >= exact, "q={q}: {got} < exact {exact}");
            prop_assert!(
                got <= exact.saturating_add(exact >> snap.sub_bits),
                "q={q}: {got} overshoots exact {exact} by more than a bucket"
            );
        }
    }

    /// Quantiles never regress as q grows.
    #[test]
    fn quantiles_are_monotone(seed in 0u64..256) {
        let values = values_from_seed(seed, 64);
        let hist = TeleHist::new();
        for &v in &values {
            hist.record(v);
        }
        let snap = hist.snapshot();
        let mut prev = 0u64;
        for i in 0..=20 {
            let q = i as f64 / 20.0;
            let cur = snap.quantile(q);
            prop_assert!(cur >= prev, "quantile({q}) = {cur} < {prev}");
            prev = cur;
        }
    }

    /// Merging a finer-resolution snapshot into a coarser one lands
    /// every observation in exactly the bucket a direct coarse
    /// recording would have used — merge is exact, not approximate.
    #[test]
    fn cross_width_merge_equals_direct_recording(seed in 0u64..256) {
        let coarse_vals = values_from_seed(seed, 40);
        let fine_vals = values_from_seed(seed.wrapping_add(1 << 32), 40);

        let coarse = TeleHist::with_sub_bits(3);
        for &v in &coarse_vals {
            coarse.record(v);
        }
        let fine = TeleHist::with_sub_bits(5);
        for &v in &fine_vals {
            fine.record(v);
        }

        let mut merged = coarse.snapshot();
        merged.merge(&fine.snapshot());

        let direct = TeleHist::with_sub_bits(3);
        for &v in coarse_vals.iter().chain(&fine_vals) {
            direct.record(v);
        }
        prop_assert_eq!(merged, direct.snapshot());
    }

    /// Same-width merge is bucket-wise addition (commutative).
    #[test]
    fn same_width_merge_commutes(seed in 0u64..128) {
        let a_vals = values_from_seed(seed, 30);
        let b_vals = values_from_seed(seed ^ 0xDEAD_BEEF, 30);
        let record = |vals: &[u64]| {
            let h = TeleHist::new();
            for &v in vals {
                h.record(v);
            }
            h.snapshot()
        };
        let (a, b) = (record(&a_vals), record(&b_vals));
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(ab, ba);
    }
}

#[test]
fn saturation_at_u64_max_does_not_wrap() {
    let hist = TeleHist::new();
    hist.record(u64::MAX);
    hist.record(u64::MAX);
    hist.record(5);
    let snap = hist.snapshot();
    assert_eq!(snap.count, 3);
    assert_eq!(snap.sum, u64::MAX, "sum saturates instead of wrapping");
    assert_eq!(snap.max, u64::MAX);
    assert_eq!(snap.quantile(1.0), u64::MAX);
    assert_eq!(snap.quantile(0.1), 5, "small values stay exact");
    // The top bucket exists: no overflow bucket, no panic.
    assert!(bucket_index(u64::MAX, 3) < bucket_count(3));
}

#[test]
fn merging_an_empty_snapshot_is_identity() {
    let hist = TeleHist::with_sub_bits(4);
    for v in [1u64, 100, 10_000] {
        hist.record(v);
    }
    let before = hist.snapshot();
    let mut after = before.clone();
    // Cross-width empty merge must not even change the resolution.
    after.merge(&HistSnapshot::empty(2));
    assert_eq!(after, before);
}

/// Span nesting and the Chrome-trace round trip share one test: the
/// span buffer is process-global, so interleaving with a second span
/// test would race on `drain()`.
#[test]
fn span_nesting_and_chrome_trace_round_trip() {
    span::set_enabled(true);
    let _ = span::drain(); // start from an empty buffer
    {
        let outer = span::span("sweep", "outer");
        assert_eq!(outer.depth(), 1, "1 = outermost");
        std::thread::sleep(std::time::Duration::from_millis(2));
        {
            let inner = span::span("bench", "inner");
            assert_eq!(inner.depth(), 2, "nesting tracked per thread");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
    }
    std::thread::Builder::new()
        .name("mg-test-span".to_string())
        .spawn(|| {
            let _s = span::span("cell", "threaded");
        })
        .unwrap()
        .join()
        .unwrap();
    span::set_enabled(false);

    let events = span::drain();
    let complete: Vec<&TraceEvent> = events.iter().filter(|e| e.ph == "X").collect();
    assert_eq!(complete.len(), 3, "outer, inner, threaded");
    let by_name = |n: &str| *complete.iter().find(|e| e.name == n).unwrap();
    let (outer, inner) = (by_name("outer"), by_name("inner"));
    assert!(inner.ts >= outer.ts, "inner starts inside outer");
    assert!(
        inner.ts + inner.dur <= outer.ts + outer.dur,
        "inner ends before outer"
    );
    assert_eq!(outer.args.get("depth").map(String::as_str), Some("1"));
    assert_eq!(inner.args.get("depth").map(String::as_str), Some("2"));
    let threaded = by_name("threaded");
    assert_ne!(threaded.tid, outer.tid, "other thread, other tid");
    assert!(
        events
            .iter()
            .any(|e| e.ph == "M" && e.args.get("name").map(String::as_str) == Some("mg-test-span")),
        "thread-name metadata emitted for the named thread"
    );

    // Round trip: what Perfetto loads is exactly what was recorded.
    let json = span::to_chrome_json(events.clone());
    let back: ChromeTrace = serde_json::from_str(&json).unwrap();
    assert_eq!(back.displayTimeUnit, "ms");
    assert_eq!(back.traceEvents, events);
}
