//! Opcodes, execution classes, latencies, and ALU semantics.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Condition of a conditional branch, comparing `src1` against `src2`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum BrCond {
    /// Taken if `src1 == src2`.
    Eq,
    /// Taken if `src1 != src2`.
    Ne,
    /// Taken if `src1 < src2` (signed).
    Lt,
    /// Taken if `src1 >= src2` (signed).
    Ge,
}

impl BrCond {
    /// All branch conditions, for exhaustive iteration (tests, random
    /// program generation).
    pub const ALL: [BrCond; 4] = [BrCond::Eq, BrCond::Ne, BrCond::Lt, BrCond::Ge];

    /// Evaluates the branch condition on two operand values.
    pub fn eval(self, a: u64, b: u64) -> bool {
        match self {
            BrCond::Eq => a == b,
            BrCond::Ne => a != b,
            BrCond::Lt => (a as i64) < (b as i64),
            BrCond::Ge => (a as i64) >= (b as i64),
        }
    }

    /// Mnemonic suffix (`eq`, `ne`, ...).
    pub fn mnemonic(self) -> &'static str {
        match self {
            BrCond::Eq => "eq",
            BrCond::Ne => "ne",
            BrCond::Lt => "lt",
            BrCond::Ge => "ge",
        }
    }
}

/// Instruction opcodes.
///
/// The set is deliberately small — a classic load/store RISC — but covers
/// every structural case mini-graph formation cares about: single-cycle
/// ALU operations, multi-cycle "complex" operations, loads, stores,
/// conditional branches, and unconditional control (jumps, calls, returns).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Opcode {
    // --- register-register ALU ---
    /// `dest = src1 + src2`
    Add,
    /// `dest = src1 - src2`
    Sub,
    /// `dest = src1 & src2`
    And,
    /// `dest = src1 | src2`
    Or,
    /// `dest = src1 ^ src2`
    Xor,
    /// `dest = src1 << (src2 & 63)`
    Shl,
    /// `dest = src1 >> (src2 & 63)` (logical)
    Shr,
    /// `dest = (src1 < src2) as u64` (signed)
    CmpLt,
    /// `dest = (src1 == src2) as u64`
    CmpEq,
    // --- register-immediate ALU ---
    /// `dest = src1 + imm`
    AddI,
    /// `dest = src1 & imm`
    AndI,
    /// `dest = src1 | imm`
    OrI,
    /// `dest = src1 ^ imm`
    XorI,
    /// `dest = src1 << (imm & 63)`
    ShlI,
    /// `dest = src1 >> (imm & 63)` (logical)
    ShrI,
    /// `dest = (src1 < imm) as u64` (signed)
    CmpLtI,
    /// `dest = imm` (load immediate)
    LoadImm,
    // --- complex integer ---
    /// `dest = src1 * src2` (multi-cycle)
    Mul,
    /// `dest = src1 / src2` (multi-cycle; division by zero yields 0)
    Div,
    // --- memory ---
    /// `dest = mem[src1 + imm]`
    Load,
    /// `mem[src1 + imm] = src2`
    Store,
    // --- control ---
    /// Conditional branch to `target` comparing `src1` vs `src2`.
    Br(BrCond),
    /// Unconditional direct jump to `target`.
    Jmp,
    /// Direct call: writes the return linkage into [`Reg::LINK`] and
    /// transfers to the target function's entry block.
    ///
    /// [`Reg::LINK`]: crate::Reg::LINK
    Call,
    /// Indirect return via [`Reg::LINK`].
    ///
    /// [`Reg::LINK`]: crate::Reg::LINK
    Ret,
    /// Terminates the program (valid only in the top-level function).
    Halt,
    /// No operation.
    Nop,
}

/// Functional-unit class an instruction executes on.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum ExecClass {
    /// Single-cycle integer ALU (includes branch condition evaluation).
    SimpleInt,
    /// Multi-cycle integer (multiply/divide).
    ComplexInt,
    /// Load port (address generation + data cache access).
    Load,
    /// Store port.
    Store,
}

impl fmt::Display for ExecClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ExecClass::SimpleInt => "simple",
            ExecClass::ComplexInt => "complex",
            ExecClass::Load => "load",
            ExecClass::Store => "store",
        };
        f.write_str(s)
    }
}

impl Opcode {
    /// All register-register ALU opcodes (two register sources, one
    /// destination), including the multi-cycle complex ones. Exhaustive
    /// iteration support for tests and random program generation.
    pub const ALU_RR: [Opcode; 11] = [
        Opcode::Add,
        Opcode::Sub,
        Opcode::And,
        Opcode::Or,
        Opcode::Xor,
        Opcode::Shl,
        Opcode::Shr,
        Opcode::CmpLt,
        Opcode::CmpEq,
        Opcode::Mul,
        Opcode::Div,
    ];

    /// All register-immediate ALU opcodes (one register source, one
    /// destination). `LoadImm` is excluded: it reads no register and has
    /// its own constructor shape.
    pub const ALU_RI: [Opcode; 7] = [
        Opcode::AddI,
        Opcode::AndI,
        Opcode::OrI,
        Opcode::XorI,
        Opcode::ShlI,
        Opcode::ShrI,
        Opcode::CmpLtI,
    ];

    /// Execution class (which issue port / functional unit services it).
    ///
    /// Control instructions evaluate on simple ALUs, as in the paper's
    /// simulated machines.
    pub fn exec_class(self) -> ExecClass {
        use Opcode::*;
        match self {
            Mul | Div => ExecClass::ComplexInt,
            Load => ExecClass::Load,
            Store => ExecClass::Store,
            _ => ExecClass::SimpleInt,
        }
    }

    /// Execution latency in cycles, *excluding* any memory hierarchy
    /// latency. Loads take `latency()` for address generation; the data
    /// cache access time is added by the timing model.
    pub fn latency(self) -> u32 {
        use Opcode::*;
        match self {
            Mul => 3,
            Div => 12,
            _ => 1,
        }
    }

    /// Optimistic end-to-end latency used when statically bounding a
    /// mini-graph's execution latency: loads are assumed to hit in the
    /// L1 data cache.
    pub fn optimistic_latency(self, l1_hit: u32) -> u32 {
        match self {
            Opcode::Load => l1_hit,
            op => op.latency(),
        }
    }

    /// Whether the instruction writes a destination register.
    ///
    /// Note `Call` writes [`Reg::LINK`] implicitly; it reports `true`.
    ///
    /// [`Reg::LINK`]: crate::Reg::LINK
    pub fn has_dest(self) -> bool {
        use Opcode::*;
        !matches!(self, Store | Br(_) | Jmp | Ret | Halt | Nop)
    }

    /// Number of register sources the opcode reads (0, 1, or 2).
    pub fn num_srcs(self) -> usize {
        use Opcode::*;
        match self {
            LoadImm | Jmp | Call | Halt | Nop => 0,
            AddI | AndI | OrI | XorI | ShlI | ShrI | CmpLtI | Load | Ret => 1,
            Store | Br(_) => 2,
            Add | Sub | And | Or | Xor | Shl | Shr | CmpLt | CmpEq | Mul | Div => 2,
        }
    }

    /// Whether the instruction references memory.
    pub fn is_mem(self) -> bool {
        matches!(self, Opcode::Load | Opcode::Store)
    }

    /// Whether the instruction is a load.
    pub fn is_load(self) -> bool {
        matches!(self, Opcode::Load)
    }

    /// Whether the instruction is a store.
    pub fn is_store(self) -> bool {
        matches!(self, Opcode::Store)
    }

    /// Whether the instruction transfers control (branch, jump, call,
    /// return, or halt).
    pub fn is_control(self) -> bool {
        use Opcode::*;
        matches!(self, Br(_) | Jmp | Call | Ret | Halt)
    }

    /// Whether the instruction is a conditional branch.
    pub fn is_cond_branch(self) -> bool {
        matches!(self, Opcode::Br(_))
    }

    /// Whether control *always* leaves the fall-through path (unconditional
    /// transfers).
    pub fn is_uncond_control(self) -> bool {
        use Opcode::*;
        matches!(self, Jmp | Call | Ret | Halt)
    }

    /// Whether the opcode ends a basic block when present.
    pub fn terminates_block(self) -> bool {
        self.is_control()
    }

    /// Whether this opcode may be a mini-graph constituent.
    ///
    /// `Call`/`Ret`/`Halt` cross function boundaries and are excluded.
    /// Multi-cycle complex operations (`Mul`/`Div`) are excluded because
    /// mini-graph constituents execute on *ALU pipelines* — chains of
    /// simple single-cycle ALUs. Everything else (including conditional
    /// branches and direct jumps, which form a mini-graph's single
    /// control transfer, and memory operations, which use a cache port)
    /// is eligible.
    pub fn mg_eligible(self) -> bool {
        use Opcode::*;
        !matches!(self, Call | Ret | Halt | Nop | Mul | Div)
    }

    /// Mnemonic for display.
    pub fn mnemonic(self) -> String {
        use Opcode::*;
        match self {
            Add => "add".into(),
            Sub => "sub".into(),
            And => "and".into(),
            Or => "or".into(),
            Xor => "xor".into(),
            Shl => "shl".into(),
            Shr => "shr".into(),
            CmpLt => "cmplt".into(),
            CmpEq => "cmpeq".into(),
            AddI => "addi".into(),
            AndI => "andi".into(),
            OrI => "ori".into(),
            XorI => "xori".into(),
            ShlI => "shli".into(),
            ShrI => "shri".into(),
            CmpLtI => "cmplti".into(),
            LoadImm => "li".into(),
            Mul => "mul".into(),
            Div => "div".into(),
            Load => "ld".into(),
            Store => "st".into(),
            Br(c) => format!("b{}", c.mnemonic()),
            Jmp => "jmp".into(),
            Call => "call".into(),
            Ret => "ret".into(),
            Halt => "halt".into(),
            Nop => "nop".into(),
        }
    }
}

/// Evaluates a (non-memory, non-control) ALU opcode.
///
/// `a` and `b` are the values of `src1` and `src2` (zero where absent);
/// `imm` is the instruction immediate. Division by zero yields 0, matching
/// the functional executor's total semantics.
///
/// # Panics
///
/// Panics if called with a memory or control opcode.
pub fn eval_alu(op: Opcode, a: u64, b: u64, imm: i64) -> u64 {
    use Opcode::*;
    match op {
        Add => a.wrapping_add(b),
        Sub => a.wrapping_sub(b),
        And => a & b,
        Or => a | b,
        Xor => a ^ b,
        Shl => a.wrapping_shl((b & 63) as u32),
        Shr => a.wrapping_shr((b & 63) as u32),
        CmpLt => ((a as i64) < (b as i64)) as u64,
        CmpEq => (a == b) as u64,
        AddI => a.wrapping_add(imm as u64),
        AndI => a & (imm as u64),
        OrI => a | (imm as u64),
        XorI => a ^ (imm as u64),
        ShlI => a.wrapping_shl((imm & 63) as u32),
        ShrI => a.wrapping_shr((imm & 63) as u32),
        CmpLtI => ((a as i64) < imm) as u64,
        LoadImm => imm as u64,
        Mul => a.wrapping_mul(b),
        Div => {
            if b == 0 {
                0
            } else {
                a.wrapping_div(b)
            }
        }
        Nop => 0,
        other => panic!("eval_alu called on non-ALU opcode {other:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_and_latencies() {
        assert_eq!(Opcode::Add.exec_class(), ExecClass::SimpleInt);
        assert_eq!(Opcode::Mul.exec_class(), ExecClass::ComplexInt);
        assert_eq!(Opcode::Load.exec_class(), ExecClass::Load);
        assert_eq!(Opcode::Store.exec_class(), ExecClass::Store);
        assert_eq!(Opcode::Br(BrCond::Eq).exec_class(), ExecClass::SimpleInt);
        assert_eq!(Opcode::Add.latency(), 1);
        assert_eq!(Opcode::Mul.latency(), 3);
        assert_eq!(Opcode::Div.latency(), 12);
    }

    #[test]
    fn optimistic_latency_uses_l1_hit_for_loads() {
        assert_eq!(Opcode::Load.optimistic_latency(3), 3);
        assert_eq!(Opcode::Add.optimistic_latency(3), 1);
        assert_eq!(Opcode::Mul.optimistic_latency(3), 3);
    }

    #[test]
    fn dest_and_src_shape() {
        assert!(Opcode::Add.has_dest());
        assert!(Opcode::Load.has_dest());
        assert!(Opcode::Call.has_dest()); // writes LINK
        assert!(!Opcode::Store.has_dest());
        assert!(!Opcode::Br(BrCond::Lt).has_dest());
        assert_eq!(Opcode::Store.num_srcs(), 2);
        assert_eq!(Opcode::Load.num_srcs(), 1);
        assert_eq!(Opcode::LoadImm.num_srcs(), 0);
        assert_eq!(Opcode::Ret.num_srcs(), 1);
    }

    #[test]
    fn control_classification() {
        assert!(Opcode::Br(BrCond::Eq).is_control());
        assert!(Opcode::Br(BrCond::Eq).is_cond_branch());
        assert!(!Opcode::Br(BrCond::Eq).is_uncond_control());
        assert!(Opcode::Jmp.is_uncond_control());
        assert!(Opcode::Ret.is_uncond_control());
        assert!(!Opcode::Add.is_control());
    }

    #[test]
    fn opcode_families_are_consistent() {
        for op in Opcode::ALU_RR {
            assert_eq!(op.num_srcs(), 2, "{op:?}");
            assert!(op.has_dest(), "{op:?}");
            assert!(!op.is_mem() && !op.is_control(), "{op:?}");
        }
        for op in Opcode::ALU_RI {
            assert_eq!(op.num_srcs(), 1, "{op:?}");
            assert!(op.has_dest(), "{op:?}");
            assert!(!op.is_mem() && !op.is_control(), "{op:?}");
        }
        for c in BrCond::ALL {
            assert!(Opcode::Br(c).is_cond_branch());
        }
    }

    #[test]
    fn mg_eligibility() {
        assert!(Opcode::Add.mg_eligible());
        assert!(Opcode::Load.mg_eligible());
        assert!(Opcode::Br(BrCond::Ne).mg_eligible());
        assert!(Opcode::Jmp.mg_eligible());
        assert!(!Opcode::Call.mg_eligible());
        assert!(!Opcode::Ret.mg_eligible());
        assert!(!Opcode::Halt.mg_eligible());
        assert!(!Opcode::Nop.mg_eligible());
    }

    #[test]
    fn branch_condition_semantics() {
        assert!(BrCond::Eq.eval(4, 4));
        assert!(!BrCond::Eq.eval(4, 5));
        assert!(BrCond::Ne.eval(4, 5));
        assert!(BrCond::Lt.eval(u64::MAX, 0)); // -1 < 0 signed
        assert!(BrCond::Ge.eval(0, u64::MAX)); // 0 >= -1 signed
    }

    #[test]
    fn alu_semantics() {
        assert_eq!(eval_alu(Opcode::Add, 2, 3, 0), 5);
        assert_eq!(eval_alu(Opcode::Sub, 2, 3, 0), u64::MAX);
        assert_eq!(eval_alu(Opcode::AddI, 10, 0, -4), 6);
        assert_eq!(eval_alu(Opcode::ShlI, 1, 0, 8), 256);
        assert_eq!(eval_alu(Opcode::CmpLt, u64::MAX, 1, 0), 1);
        assert_eq!(eval_alu(Opcode::Div, 7, 2, 0), 3);
        assert_eq!(eval_alu(Opcode::Div, 7, 0, 0), 0);
        assert_eq!(eval_alu(Opcode::LoadImm, 0, 0, -9), (-9i64) as u64);
        assert_eq!(eval_alu(Opcode::Mul, 1 << 40, 1 << 40, 0), 0); // wraps
    }

    #[test]
    #[should_panic(expected = "non-ALU opcode")]
    fn eval_alu_rejects_memory_ops() {
        let _ = eval_alu(Opcode::Load, 0, 0, 0);
    }
}
