//! Assembly-style display of instructions, blocks, and programs.

use crate::block::BasicBlock;
use crate::inst::{CfTarget, Instruction};
use crate::op::Opcode;
use crate::program::Program;
use std::fmt;

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let m = self.op.mnemonic();
        match self.op {
            Opcode::Load => write!(
                f,
                "{m} {}, {}({})",
                self.dest.unwrap(),
                self.imm,
                self.src1.unwrap()
            )?,
            Opcode::Store => write!(
                f,
                "{m} {}, {}({})",
                self.src2.unwrap(),
                self.imm,
                self.src1.unwrap()
            )?,
            Opcode::LoadImm => write!(f, "{m} {}, {}", self.dest.unwrap(), self.imm)?,
            Opcode::Br(_) => write!(
                f,
                "{m} {}, {}, {}",
                self.src1.unwrap(),
                self.src2.unwrap(),
                target_str(self)
            )?,
            Opcode::Jmp => write!(f, "{m} {}", target_str(self))?,
            Opcode::Call => write!(f, "{m} {}", target_str(self))?,
            Opcode::Ret | Opcode::Halt | Opcode::Nop => write!(f, "{m}")?,
            _ => {
                // Generic ALU forms.
                write!(f, "{m} {}", self.dest.unwrap())?;
                if let Some(s1) = self.src1 {
                    write!(f, ", {s1}")?;
                }
                if let Some(s2) = self.src2 {
                    write!(f, ", {s2}")?;
                } else if self.op.num_srcs() == 1 {
                    write!(f, ", {}", self.imm)?;
                }
            }
        }
        if let Some(tag) = self.mg {
            write!(
                f,
                "  ; mg{}[{}/{}] t{}",
                tag.instance, tag.pos, tag.len, tag.template
            )?;
        }
        Ok(())
    }
}

fn target_str(inst: &Instruction) -> String {
    match inst.target {
        Some(CfTarget::Block(b)) => b.to_string(),
        Some(CfTarget::Func(fu)) => fu.to_string(),
        None => "<none>".to_string(),
    }
}

impl fmt::Display for BasicBlock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for inst in &self.insts {
            writeln!(f, "    {inst}")?;
        }
        if let Some(fall) = self.fallthrough {
            writeln!(f, "    ; falls through to {fall}")?;
        }
        Ok(())
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "; program {}", self.name())?;
        for (fi, func) in self.funcs().iter().enumerate() {
            writeln!(f, "fn{fi} <{}>:", func.name)?;
            for &bid in &func.blocks {
                writeln!(f, "  {bid}:")?;
                write!(f, "{}", self.block(bid))?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::block::BlockId;
    use crate::inst::Instruction;
    use crate::op::BrCond;
    use crate::reg::Reg;

    #[test]
    fn instruction_formats() {
        assert_eq!(
            Instruction::add(Reg::R1, Reg::R2, Reg::R3).to_string(),
            "add r1, r2, r3"
        );
        assert_eq!(
            Instruction::addi(Reg::R1, Reg::R2, -4).to_string(),
            "addi r1, r2, -4"
        );
        assert_eq!(Instruction::li(Reg::R5, 10).to_string(), "li r5, 10");
        assert_eq!(
            Instruction::load(Reg::R1, Reg::R2, 8).to_string(),
            "ld r1, 8(r2)"
        );
        assert_eq!(
            Instruction::store(Reg::R2, Reg::R1, 8).to_string(),
            "st r1, 8(r2)"
        );
        assert_eq!(
            Instruction::br(BrCond::Eq, Reg::R1, Reg::R0, BlockId(4)).to_string(),
            "beq r1, r0, bb4"
        );
        assert_eq!(Instruction::halt().to_string(), "halt");
    }

    #[test]
    fn mg_tag_is_shown() {
        use crate::inst::MgTag;
        let i = Instruction::add(Reg::R1, Reg::R2, Reg::R3).with_mg(MgTag {
            instance: 4,
            template: 2,
            pos: 1,
            len: 3,
        });
        assert_eq!(i.to_string(), "add r1, r2, r3  ; mg4[1/3] t2");
    }
}
