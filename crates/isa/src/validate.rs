//! Structural validation of programs.
//!
//! [`Program::new`](crate::Program::new) runs these checks automatically;
//! they are exposed for tools that assemble raw block pools.

use crate::block::{BasicBlock, BlockId};
use crate::error::IsaError;
use crate::inst::CfTarget;
use crate::program::{FuncId, Function};
use std::collections::HashSet;

/// Validates a block pool and function table.
///
/// # Errors
///
/// Returns the first [`IsaError`] found. Checks, in order: entry function
/// exists; every function's blocks exist and are claimed exactly once;
/// blocks are non-empty; control instructions only terminate blocks;
/// fall-through edges are consistent with terminators; targets exist and
/// stay within the owning function; operand shapes match opcodes;
/// mini-graph tags form contiguous, well-formed instances.
pub fn validate(
    blocks: &[BasicBlock],
    funcs: &[Function],
    entry_func: FuncId,
) -> Result<(), IsaError> {
    if entry_func.index() >= funcs.len() {
        return Err(IsaError::BadEntryFunc(entry_func));
    }
    let mut claimed: HashSet<u32> = HashSet::new();
    for (fi, func) in funcs.iter().enumerate() {
        let fid = FuncId(fi as u32);
        if func.entry.index() >= blocks.len() || !func.blocks.contains(&func.entry) {
            return Err(IsaError::BadFunction(fid));
        }
        for &b in &func.blocks {
            if b.index() >= blocks.len() || !claimed.insert(b.0) {
                return Err(IsaError::BadFunction(fid));
            }
        }
    }

    for (fi, func) in funcs.iter().enumerate() {
        let func_blocks: HashSet<u32> = func.blocks.iter().map(|b| b.0).collect();
        for &bid in &func.blocks {
            let block = &blocks[bid.index()];
            check_block(bid, block, &func_blocks, funcs, fi)?;
        }
    }
    Ok(())
}

fn check_block(
    bid: BlockId,
    block: &BasicBlock,
    func_blocks: &HashSet<u32>,
    funcs: &[Function],
    _func_index: usize,
) -> Result<(), IsaError> {
    if block.is_empty() {
        return Err(IsaError::EmptyBlock(bid));
    }
    for (i, inst) in block.insts.iter().enumerate() {
        if inst.op.is_control() && i + 1 != block.insts.len() {
            return Err(IsaError::ControlNotLast(bid, i));
        }
        check_operands(bid, i, inst)?;
    }
    // Calls are unconditional transfers but control returns to the
    // fall-through block, so a call-terminated block *requires* a
    // fall-through successor; other unconditional terminators forbid one.
    let term = block.terminator();
    let needs_fall = match term {
        None => true,
        Some(t) => matches!(t.op, crate::Opcode::Br(_) | crate::Opcode::Call),
    };
    if needs_fall != block.fallthrough.is_some() {
        return Err(IsaError::BadFallthrough(bid));
    }
    if let Some(fall) = block.fallthrough {
        if !func_blocks.contains(&fall.0) {
            return Err(IsaError::DanglingTarget(bid));
        }
    }
    if let Some(t) = term {
        let dangling = match t.target {
            Some(CfTarget::Block(b)) => !func_blocks.contains(&b.0),
            Some(CfTarget::Func(f)) => f.index() >= funcs.len(),
            None => false,
        };
        if dangling {
            return Err(IsaError::DanglingTarget(bid));
        }
    }
    check_mg_tags(bid, block)?;
    Ok(())
}

fn check_operands(bid: BlockId, i: usize, inst: &crate::Instruction) -> Result<(), IsaError> {
    let op = inst.op;
    let shape_ok = inst.dest.is_some() == op.has_dest()
        && inst.src1.is_some() == (op.num_srcs() >= 1)
        && inst.src2.is_some() == (op.num_srcs() >= 2);
    let target_ok = match op {
        crate::Opcode::Br(_) | crate::Opcode::Jmp => {
            matches!(inst.target, Some(CfTarget::Block(_)))
        }
        crate::Opcode::Call => matches!(inst.target, Some(CfTarget::Func(_))),
        _ => inst.target.is_none(),
    };
    if shape_ok && target_ok {
        Ok(())
    } else {
        Err(IsaError::BadOperands(bid, i))
    }
}

fn check_mg_tags(bid: BlockId, block: &BasicBlock) -> Result<(), IsaError> {
    let mut i = 0;
    while i < block.insts.len() {
        let Some(tag) = block.insts[i].mg else {
            i += 1;
            continue;
        };
        if tag.pos != 0 {
            return Err(IsaError::BadMgTag(
                bid,
                i,
                "instance does not start at position 0",
            ));
        }
        if tag.len < 2 {
            return Err(IsaError::BadMgTag(
                bid,
                i,
                "instance shorter than 2 instructions",
            ));
        }
        let len = tag.len as usize;
        if i + len > block.insts.len() {
            return Err(IsaError::BadMgTag(
                bid,
                i,
                "instance extends past block end",
            ));
        }
        for (p, inst) in block.insts[i..i + len].iter().enumerate() {
            match inst.mg {
                Some(t)
                    if t.instance == tag.instance
                        && t.template == tag.template
                        && t.len == tag.len
                        && t.pos as usize == p => {}
                _ => {
                    return Err(IsaError::BadMgTag(bid, i + p, "inconsistent instance tags"));
                }
            }
            if !inst.op.mg_eligible() {
                return Err(IsaError::BadMgTag(
                    bid,
                    i + p,
                    "ineligible opcode in instance",
                ));
            }
            if inst.op.is_control() && p + 1 != len {
                return Err(IsaError::BadMgTag(bid, i + p, "control transfer not last"));
            }
        }
        i += len;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{Instruction, MgTag};
    use crate::op::BrCond;
    use crate::reg::Reg;

    fn func_over(blocks: &[BasicBlock]) -> Vec<Function> {
        vec![Function {
            name: "main".into(),
            entry: BlockId(0),
            blocks: (0..blocks.len() as u32).map(BlockId).collect(),
        }]
    }

    #[test]
    fn accepts_well_formed_program() {
        let mut b0 = BasicBlock::new();
        b0.push(Instruction::li(Reg::R1, 3));
        b0.push(Instruction::br(BrCond::Ne, Reg::R1, Reg::ZERO, BlockId(0)));
        b0.fallthrough = Some(BlockId(1));
        let mut b1 = BasicBlock::new();
        b1.push(Instruction::halt());
        let blocks = vec![b0, b1];
        let funcs = func_over(&blocks);
        assert_eq!(validate(&blocks, &funcs, FuncId(0)), Ok(()));
    }

    #[test]
    fn rejects_empty_block() {
        let blocks = vec![BasicBlock::new()];
        let funcs = func_over(&blocks);
        assert_eq!(
            validate(&blocks, &funcs, FuncId(0)),
            Err(IsaError::EmptyBlock(BlockId(0)))
        );
    }

    #[test]
    fn rejects_control_in_middle() {
        let mut b = BasicBlock::new();
        b.push(Instruction::halt());
        b.push(Instruction::nop());
        let blocks = vec![b];
        let funcs = func_over(&blocks);
        assert_eq!(
            validate(&blocks, &funcs, FuncId(0)),
            Err(IsaError::ControlNotLast(BlockId(0), 0))
        );
    }

    #[test]
    fn rejects_jump_with_fallthrough() {
        let mut b0 = BasicBlock::new();
        b0.push(Instruction::jmp(BlockId(1)));
        b0.fallthrough = Some(BlockId(1));
        let mut b1 = BasicBlock::new();
        b1.push(Instruction::halt());
        let blocks = vec![b0, b1];
        let funcs = func_over(&blocks);
        assert_eq!(
            validate(&blocks, &funcs, FuncId(0)),
            Err(IsaError::BadFallthrough(BlockId(0)))
        );
    }

    #[test]
    fn rejects_missing_fallthrough_after_branch() {
        let mut b0 = BasicBlock::new();
        b0.push(Instruction::br(BrCond::Eq, Reg::R1, Reg::R2, BlockId(1)));
        let mut b1 = BasicBlock::new();
        b1.push(Instruction::halt());
        let blocks = vec![b0, b1];
        let funcs = func_over(&blocks);
        assert_eq!(
            validate(&blocks, &funcs, FuncId(0)),
            Err(IsaError::BadFallthrough(BlockId(0)))
        );
    }

    #[test]
    fn rejects_dangling_branch_target() {
        let mut b0 = BasicBlock::new();
        b0.push(Instruction::br(BrCond::Eq, Reg::R1, Reg::R2, BlockId(9)));
        b0.fallthrough = Some(BlockId(1));
        let mut b1 = BasicBlock::new();
        b1.push(Instruction::halt());
        let blocks = vec![b0, b1];
        let funcs = func_over(&blocks);
        assert_eq!(
            validate(&blocks, &funcs, FuncId(0)),
            Err(IsaError::DanglingTarget(BlockId(0)))
        );
    }

    #[test]
    fn rejects_block_claimed_twice() {
        let mut b0 = BasicBlock::new();
        b0.push(Instruction::halt());
        let blocks = vec![b0];
        let funcs = vec![
            Function {
                name: "a".into(),
                entry: BlockId(0),
                blocks: vec![BlockId(0)],
            },
            Function {
                name: "b".into(),
                entry: BlockId(0),
                blocks: vec![BlockId(0)],
            },
        ];
        assert_eq!(
            validate(&blocks, &funcs, FuncId(0)),
            Err(IsaError::BadFunction(FuncId(1)))
        );
    }

    #[test]
    fn rejects_malformed_mg_instance() {
        let tag0 = MgTag {
            instance: 0,
            template: 0,
            pos: 0,
            len: 3,
        };
        let mut b = BasicBlock::new();
        b.push(Instruction::li(Reg::R1, 0).with_mg(tag0));
        b.push(Instruction::halt());
        let blocks = vec![b];
        let funcs = func_over(&blocks);
        assert!(matches!(
            validate(&blocks, &funcs, FuncId(0)),
            Err(IsaError::BadMgTag(..))
        ));
    }

    #[test]
    fn rejects_mg_instance_of_one() {
        let tag = MgTag {
            instance: 0,
            template: 0,
            pos: 0,
            len: 1,
        };
        let mut b = BasicBlock::new();
        b.push(Instruction::li(Reg::R1, 0).with_mg(tag));
        b.push(Instruction::halt());
        let blocks = vec![b];
        let funcs = func_over(&blocks);
        assert!(matches!(
            validate(&blocks, &funcs, FuncId(0)),
            Err(IsaError::BadMgTag(
                _,
                _,
                "instance shorter than 2 instructions"
            ))
        ));
    }
}
