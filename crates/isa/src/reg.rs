//! Architectural registers.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Number of architectural integer registers.
///
/// The timing simulator adds rename registers on top of these; the paper's
/// baseline has 144 physical registers (64 architectural across the Alpha's
/// integer and FP files plus 80 rename). This ISA has a single integer file
/// of 32 registers; physical register provisioning in `mg-sim` is scaled
/// accordingly.
pub const NUM_ARCH_REGS: usize = 32;

/// An architectural register name, `R0`..`R31`.
///
/// `R0` is hardwired to zero: reads return 0 and writes are discarded,
/// which also makes any value written to `R0` trivially dead for liveness
/// purposes.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Reg(u8);

impl Reg {
    /// The hardwired zero register.
    pub const ZERO: Reg = Reg(0);
    /// Conventional link register written by `call` and read by `ret`.
    pub const LINK: Reg = Reg(31);
    /// Conventional stack pointer.
    pub const SP: Reg = Reg(30);

    /// Constructs a register from its index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= NUM_ARCH_REGS`.
    pub fn new(index: u8) -> Reg {
        assert!(
            (index as usize) < NUM_ARCH_REGS,
            "register index {index} out of range"
        );
        Reg(index)
    }

    /// Constructs a register if `index` is in range.
    pub fn try_new(index: u8) -> Option<Reg> {
        ((index as usize) < NUM_ARCH_REGS).then_some(Reg(index))
    }

    /// The register's index, `0..NUM_ARCH_REGS`.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Whether this is the hardwired zero register.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Iterates over all architectural registers in index order.
    pub fn all() -> impl Iterator<Item = Reg> {
        (0..NUM_ARCH_REGS as u8).map(Reg)
    }
}

macro_rules! named_regs {
    ($($name:ident = $idx:expr),* $(,)?) => {
        impl Reg {
            $(
                #[doc = concat!("Register R", stringify!($idx), ".")]
                pub const $name: Reg = Reg($idx);
            )*
        }
    };
}

named_regs! {
    R0 = 0, R1 = 1, R2 = 2, R3 = 3, R4 = 4, R5 = 5, R6 = 6, R7 = 7,
    R8 = 8, R9 = 9, R10 = 10, R11 = 11, R12 = 12, R13 = 13, R14 = 14,
    R15 = 15, R16 = 16, R17 = 17, R18 = 18, R19 = 19, R20 = 20, R21 = 21,
    R22 = 22, R23 = 23, R24 = 24, R25 = 25, R26 = 26, R27 = 27, R28 = 28,
    R29 = 29,
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl fmt::Debug for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_register_identity() {
        assert!(Reg::ZERO.is_zero());
        assert!(!Reg::R1.is_zero());
        assert_eq!(Reg::ZERO, Reg::R0);
    }

    #[test]
    fn index_round_trip() {
        for r in Reg::all() {
            assert_eq!(Reg::new(r.index() as u8), r);
        }
    }

    #[test]
    fn try_new_bounds() {
        assert_eq!(Reg::try_new(31), Some(Reg::LINK));
        assert_eq!(Reg::try_new(32), None);
        assert_eq!(Reg::try_new(255), None);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn new_panics_out_of_range() {
        let _ = Reg::new(NUM_ARCH_REGS as u8);
    }

    #[test]
    fn all_yields_every_register_once() {
        let regs: Vec<Reg> = Reg::all().collect();
        assert_eq!(regs.len(), NUM_ARCH_REGS);
        for (i, r) in regs.iter().enumerate() {
            assert_eq!(r.index(), i);
        }
    }

    #[test]
    fn display_format() {
        assert_eq!(Reg::R7.to_string(), "r7");
        assert_eq!(format!("{:?}", Reg::LINK), "r31");
    }
}
