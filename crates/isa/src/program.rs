//! Whole-program representation and static instruction layout.

use crate::block::{BasicBlock, BlockId};
use crate::error::IsaError;
use crate::validate;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// Identifier of a function within a [`Program`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FuncId(pub u32);

impl FuncId {
    /// The function's index into the program's function table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for FuncId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fn{}", self.0)
    }
}

impl fmt::Debug for FuncId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fn{}", self.0)
    }
}

/// Program-unique identifier of a static instruction.
///
/// Assigned densely by [`Program::new`] in block order; profiles, selection
/// scores, and mini-graph maps are all keyed by `StaticId`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct StaticId(pub u32);

impl StaticId {
    /// Dense index of the static instruction.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for StaticId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

impl fmt::Debug for StaticId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Position of a static instruction: its block and index within the block.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct InstrLoc {
    /// Containing block.
    pub block: BlockId,
    /// Index within the block's instruction list.
    pub idx: u32,
}

/// A function: an entry block plus the contiguous range of pool blocks it
/// owns.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Function {
    /// Human-readable name.
    pub name: String,
    /// Entry block.
    pub entry: BlockId,
    /// Blocks belonging to this function (indices into the program pool).
    pub blocks: Vec<BlockId>,
}

/// A whole program: a pool of basic blocks partitioned into functions,
/// with a computed static-instruction layout.
///
/// Programs are immutable once constructed; the mini-graph rewriter
/// produces a *new* program rather than mutating in place.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Program {
    name: String,
    blocks: Vec<BasicBlock>,
    funcs: Vec<Function>,
    entry_func: FuncId,
    // --- computed layout ---
    first_id: Vec<u32>,  // per block: StaticId of its first instruction
    locs: Vec<InstrLoc>, // per StaticId
    pcs: Vec<u64>,       // per StaticId (handles get main-line PCs, tagged
    // constituents get outlined-region PCs)
    block_of_func: BTreeMap<u32, FuncId>, // block index -> owning function
    main_line_len: u32,                   // number of main-line fetch slots
}

/// Byte size of one encoded instruction.
pub const INST_BYTES: u64 = 4;

/// Base address of the text segment.
pub const TEXT_BASE: u64 = 0x1_0000;

impl Program {
    /// Assembles a program from its parts, validating structure and
    /// computing the static layout.
    ///
    /// # Errors
    ///
    /// Returns an [`IsaError`] describing the first structural problem
    /// found (empty blocks, misplaced control instructions, dangling
    /// targets, malformed mini-graph tags, ...).
    pub fn new(
        name: impl Into<String>,
        blocks: Vec<BasicBlock>,
        funcs: Vec<Function>,
        entry_func: FuncId,
    ) -> Result<Program, IsaError> {
        let mut prog = Program {
            name: name.into(),
            blocks,
            funcs,
            entry_func,
            first_id: Vec::new(),
            locs: Vec::new(),
            pcs: Vec::new(),
            block_of_func: BTreeMap::new(),
            main_line_len: 0,
        };
        validate::validate(&prog.blocks, &prog.funcs, prog.entry_func)?;
        prog.compute_layout();
        Ok(prog)
    }

    fn compute_layout(&mut self) {
        self.first_id.clear();
        self.locs.clear();
        self.block_of_func.clear();
        let mut next = 0u32;
        for (bi, block) in self.blocks.iter().enumerate() {
            self.first_id.push(next);
            for idx in 0..block.insts.len() {
                self.locs.push(InstrLoc {
                    block: BlockId(bi as u32),
                    idx: idx as u32,
                });
                next += 1;
            }
        }
        for (fi, func) in self.funcs.iter().enumerate() {
            for &b in &func.blocks {
                self.block_of_func.insert(b.0, FuncId(fi as u32));
            }
        }
        // Main-line PCs: every instruction that is either untagged or the
        // position-0 handle slot of a mini-graph instance occupies one
        // main-line slot, laid out block after block. Tagged constituents
        // at positions > 0 live in the outlined region that follows the
        // main line (mirroring the "outlining" encoding scheme: the main
        // line holds one handle/jump slot per instance).
        self.pcs = vec![0; self.locs.len()];
        let mut pc = TEXT_BASE;
        // Two passes over the flattened instruction list keep this simple.
        let mut flat: Vec<(usize, bool)> = Vec::with_capacity(self.locs.len());
        for (id, loc) in self.locs.iter().enumerate() {
            let inst = &self.blocks[loc.block.index()].insts[loc.idx as usize];
            let main_line = inst.mg.map(|t| t.pos == 0).unwrap_or(true);
            flat.push((id, main_line));
        }
        for &(id, main_line) in &flat {
            if main_line {
                self.pcs[id] = pc;
                pc += INST_BYTES;
            }
        }
        self.main_line_len = ((pc - TEXT_BASE) / INST_BYTES) as u32;
        // Outlined region: constituents of each instance packed after the
        // main line, in instance order. Each instance also conceptually
        // carries a trailing return jump; one extra slot per instance is
        // reserved so outlined footprints are realistic.
        let mut outlined_cursor = pc;
        let mut instance_base: HashMap<u32, u64> = HashMap::new();
        for &(id, main_line) in &flat {
            if main_line {
                continue;
            }
            let loc = self.locs[id];
            let tag = self.blocks[loc.block.index()].insts[loc.idx as usize]
                .mg
                .expect("non-main-line instruction must be tagged");
            let base = *instance_base.entry(tag.instance).or_insert_with(|| {
                let b = outlined_cursor;
                // handle slot + (len-1) constituents + return jump
                outlined_cursor += INST_BYTES * (tag.len as u64 + 1);
                b
            });
            self.pcs[id] = base + INST_BYTES * tag.pos as u64;
        }
    }

    /// The program's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The basic-block pool.
    pub fn blocks(&self) -> &[BasicBlock] {
        &self.blocks
    }

    /// A block by id.
    pub fn block(&self, id: BlockId) -> &BasicBlock {
        &self.blocks[id.index()]
    }

    /// The function table.
    pub fn funcs(&self) -> &[Function] {
        &self.funcs
    }

    /// A function by id.
    pub fn func(&self, id: FuncId) -> &Function {
        &self.funcs[id.index()]
    }

    /// The program's entry function.
    pub fn entry_func(&self) -> FuncId {
        self.entry_func
    }

    /// The function owning a block.
    pub fn func_of_block(&self, block: BlockId) -> FuncId {
        self.block_of_func[&block.0]
    }

    /// Total number of static instructions.
    pub fn static_count(&self) -> usize {
        self.locs.len()
    }

    /// Number of main-line fetch slots (instance constituents beyond the
    /// handle are outlined and do not occupy main-line instruction cache
    /// space).
    pub fn main_line_len(&self) -> u32 {
        self.main_line_len
    }

    /// The static id of instruction `idx` of `block`.
    pub fn id_of(&self, block: BlockId, idx: usize) -> StaticId {
        debug_assert!(idx < self.blocks[block.index()].insts.len());
        StaticId(self.first_id[block.index()] + idx as u32)
    }

    /// The location of a static instruction.
    pub fn loc_of(&self, id: StaticId) -> InstrLoc {
        self.locs[id.index()]
    }

    /// The instruction with the given static id.
    pub fn inst(&self, id: StaticId) -> &crate::Instruction {
        let loc = self.locs[id.index()];
        &self.blocks[loc.block.index()].insts[loc.idx as usize]
    }

    /// The fetch address of a static instruction. Handles and untagged
    /// instructions have main-line addresses; outlined constituents have
    /// addresses in the outlined region past the main line.
    pub fn pc_of(&self, id: StaticId) -> u64 {
        self.pcs[id.index()]
    }

    /// Iterates over `(StaticId, &Instruction)` in layout order.
    pub fn iter_static(&self) -> impl Iterator<Item = (StaticId, &crate::Instruction)> + '_ {
        (0..self.locs.len()).map(|i| (StaticId(i as u32), self.inst(StaticId(i as u32))))
    }

    /// Iterates over the static ids of a block's instructions.
    pub fn block_ids(&self, block: BlockId) -> impl Iterator<Item = StaticId> + '_ {
        let first = self.first_id[block.index()];
        let len = self.blocks[block.index()].insts.len() as u32;
        (first..first + len).map(StaticId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{Instruction, MgTag};
    use crate::reg::Reg;

    fn tiny_program() -> Program {
        // main: b0 -> b1(halt)
        let mut b0 = BasicBlock::new();
        b0.push(Instruction::li(Reg::R1, 1));
        b0.push(Instruction::addi(Reg::R2, Reg::R1, 1));
        b0.fallthrough = Some(BlockId(1));
        let mut b1 = BasicBlock::new();
        b1.push(Instruction::halt());
        Program::new(
            "tiny",
            vec![b0, b1],
            vec![Function {
                name: "main".into(),
                entry: BlockId(0),
                blocks: vec![BlockId(0), BlockId(1)],
            }],
            FuncId(0),
        )
        .unwrap()
    }

    #[test]
    fn static_ids_are_dense_and_ordered() {
        let p = tiny_program();
        assert_eq!(p.static_count(), 3);
        assert_eq!(p.id_of(BlockId(0), 0), StaticId(0));
        assert_eq!(p.id_of(BlockId(0), 1), StaticId(1));
        assert_eq!(p.id_of(BlockId(1), 0), StaticId(2));
        let loc = p.loc_of(StaticId(1));
        assert_eq!(loc.block, BlockId(0));
        assert_eq!(loc.idx, 1);
    }

    #[test]
    fn pcs_are_contiguous_without_minigraphs() {
        let p = tiny_program();
        assert_eq!(p.pc_of(StaticId(0)), TEXT_BASE);
        assert_eq!(p.pc_of(StaticId(1)), TEXT_BASE + INST_BYTES);
        assert_eq!(p.pc_of(StaticId(2)), TEXT_BASE + 2 * INST_BYTES);
        assert_eq!(p.main_line_len(), 3);
    }

    #[test]
    fn tagged_constituents_are_outlined() {
        let tag = |pos| MgTag {
            instance: 0,
            template: 0,
            pos,
            len: 2,
        };
        let mut b0 = BasicBlock::new();
        b0.push(Instruction::li(Reg::R1, 1).with_mg(tag(0)));
        b0.push(Instruction::addi(Reg::R2, Reg::R1, 1).with_mg(tag(1)));
        b0.push(Instruction::halt());
        let p = Program::new(
            "mg",
            vec![b0],
            vec![Function {
                name: "main".into(),
                entry: BlockId(0),
                blocks: vec![BlockId(0)],
            }],
            FuncId(0),
        )
        .unwrap();
        // Main line: handle slot + halt = 2 slots.
        assert_eq!(p.main_line_len(), 2);
        assert_eq!(p.pc_of(StaticId(0)), TEXT_BASE);
        assert_eq!(p.pc_of(StaticId(2)), TEXT_BASE + INST_BYTES);
        // Constituent 1 lives in the outlined region past the main line.
        assert!(p.pc_of(StaticId(1)) >= TEXT_BASE + 2 * INST_BYTES);
    }

    #[test]
    fn func_of_block_resolves() {
        let p = tiny_program();
        assert_eq!(p.func_of_block(BlockId(1)), FuncId(0));
    }

    #[test]
    fn block_ids_iterates_block_instructions() {
        let p = tiny_program();
        let ids: Vec<StaticId> = p.block_ids(BlockId(0)).collect();
        assert_eq!(ids, vec![StaticId(0), StaticId(1)]);
    }
}

#[cfg(test)]
mod layout_tests {
    use super::*;
    use crate::inst::Instruction;
    use crate::reg::Reg;

    /// Main-line PCs are strictly increasing by the instruction size.
    #[test]
    fn main_line_pcs_are_contiguous_across_blocks() {
        let mut pb = crate::ProgramBuilder::new("pcs");
        let f = pb.func("main");
        let b0 = pb.block(f);
        let b1 = pb.block(f);
        pb.push(b0, Instruction::li(Reg::R1, 1));
        pb.push(b0, Instruction::li(Reg::R2, 2));
        pb.set_fallthrough(b0, b1);
        pb.push(b1, Instruction::halt());
        let p = pb.build().unwrap();
        let pcs: Vec<u64> = (0..p.static_count())
            .map(|i| p.pc_of(StaticId(i as u32)))
            .collect();
        for w in pcs.windows(2) {
            assert_eq!(w[1], w[0] + INST_BYTES);
        }
        assert_eq!(pcs[0], TEXT_BASE);
    }

    #[test]
    fn loc_and_id_are_inverse() {
        let mut pb = crate::ProgramBuilder::new("inv");
        let f = pb.func("main");
        let b = pb.block(f);
        for i in 0..5 {
            pb.push(b, Instruction::li(Reg::new(1 + i), i as i64));
        }
        pb.push(b, Instruction::halt());
        let p = pb.build().unwrap();
        for i in 0..p.static_count() {
            let id = StaticId(i as u32);
            let loc = p.loc_of(id);
            assert_eq!(p.id_of(loc.block, loc.idx as usize), id);
        }
    }
}
