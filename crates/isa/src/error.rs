//! Error types.

use crate::block::BlockId;
use crate::program::FuncId;
use std::error::Error;
use std::fmt;

/// Structural problem detected while assembling or validating a program.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum IsaError {
    /// A basic block contains no instructions.
    EmptyBlock(BlockId),
    /// A control instruction appears before the end of a block.
    ControlNotLast(BlockId, usize),
    /// A block ends with an unconditional transfer but also declares a
    /// fall-through successor, or vice versa.
    BadFallthrough(BlockId),
    /// A control target refers to a block outside the program (or outside
    /// the containing function).
    DanglingTarget(BlockId),
    /// A function's entry or block list refers to a block outside the
    /// pool, or a block is claimed by two functions.
    BadFunction(FuncId),
    /// The entry function id is out of range.
    BadEntryFunc(FuncId),
    /// An instruction's operands don't match its opcode shape.
    BadOperands(BlockId, usize),
    /// Mini-graph tags are inconsistent (non-contiguous positions, length
    /// mismatch, instance split across blocks, ...).
    BadMgTag(BlockId, usize, &'static str),
}

impl fmt::Display for IsaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IsaError::EmptyBlock(b) => write!(f, "block {b} is empty"),
            IsaError::ControlNotLast(b, i) => {
                write!(
                    f,
                    "control instruction at {b}[{i}] is not last in its block"
                )
            }
            IsaError::BadFallthrough(b) => {
                write!(f, "block {b} has an inconsistent fall-through successor")
            }
            IsaError::DanglingTarget(b) => write!(f, "block {b} targets a nonexistent block"),
            IsaError::BadFunction(id) => write!(f, "function {id} has an invalid block list"),
            IsaError::BadEntryFunc(id) => write!(f, "entry function {id} does not exist"),
            IsaError::BadOperands(b, i) => {
                write!(
                    f,
                    "instruction {b}[{i}] has operands inconsistent with its opcode"
                )
            }
            IsaError::BadMgTag(b, i, why) => {
                write!(
                    f,
                    "instruction {b}[{i}] has a malformed mini-graph tag: {why}"
                )
            }
        }
    }
}

impl Error for IsaError {}
