//! Instructions and mini-graph tags.

use crate::block::BlockId;
use crate::op::{BrCond, Opcode};
use crate::program::FuncId;
use crate::reg::Reg;
use serde::{Deserialize, Serialize};

/// Target of a control-transfer instruction.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum CfTarget {
    /// A basic block within the same function (branches, jumps).
    Block(BlockId),
    /// A function entry (calls).
    Func(FuncId),
}

/// Mini-graph membership annotation attached by the binary rewriter.
///
/// Instructions carrying an `MgTag` form a mini-graph *instance*: `len`
/// consecutive instructions in a basic block with positions `0..len`. The
/// timing simulator fetches position 0 as the instance's *handle* and
/// executes the constituents MGT-driven; a disabled instance instead
/// executes in its outlined singleton form.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct MgTag {
    /// Program-unique instance identifier.
    pub instance: u32,
    /// MGT template this instance maps to.
    pub template: u16,
    /// Position of this instruction within the instance, `0..len`.
    pub pos: u8,
    /// Total number of constituent instructions in the instance.
    pub len: u8,
}

/// A single RISC instruction.
///
/// The operand fields are populated according to the opcode's shape (see
/// [`Opcode::num_srcs`] and [`Opcode::has_dest`]); the constructors below
/// enforce this, and [`validate`](crate::validate) re-checks it for
/// programs assembled by other means.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct Instruction {
    /// Operation.
    pub op: Opcode,
    /// Destination register, if the opcode writes one.
    pub dest: Option<Reg>,
    /// First register source (base address for memory operations).
    pub src1: Option<Reg>,
    /// Second register source (store data; second branch comparand).
    pub src2: Option<Reg>,
    /// Immediate operand (ALU immediate or memory displacement).
    pub imm: i64,
    /// Control-transfer target, for control opcodes other than `Ret`/`Halt`.
    pub target: Option<CfTarget>,
    /// Mini-graph membership, if the rewriter placed this instruction in
    /// a mini-graph instance.
    pub mg: Option<MgTag>,
}

impl Instruction {
    fn raw(op: Opcode) -> Instruction {
        Instruction {
            op,
            dest: None,
            src1: None,
            src2: None,
            imm: 0,
            target: None,
            mg: None,
        }
    }

    /// Register-register ALU operation `dest = src1 <op> src2`.
    ///
    /// # Panics
    ///
    /// Panics if `op` is not a two-source, destination-writing ALU opcode.
    pub fn alu_rr(op: Opcode, dest: Reg, src1: Reg, src2: Reg) -> Instruction {
        assert!(
            op.has_dest() && op.num_srcs() == 2 && !op.is_mem() && !op.is_control(),
            "{op:?} is not a reg-reg ALU opcode"
        );
        Instruction {
            dest: Some(dest),
            src1: Some(src1),
            src2: Some(src2),
            ..Instruction::raw(op)
        }
    }

    /// Register-immediate ALU operation `dest = src1 <op> imm`.
    ///
    /// # Panics
    ///
    /// Panics if `op` is not a one-source, destination-writing ALU opcode.
    pub fn alu_ri(op: Opcode, dest: Reg, src1: Reg, imm: i64) -> Instruction {
        assert!(
            op.has_dest() && op.num_srcs() == 1 && !op.is_mem() && !op.is_control(),
            "{op:?} is not a reg-imm ALU opcode"
        );
        Instruction {
            dest: Some(dest),
            src1: Some(src1),
            imm,
            ..Instruction::raw(op)
        }
    }

    /// `add` convenience constructor.
    pub fn add(dest: Reg, a: Reg, b: Reg) -> Instruction {
        Instruction::alu_rr(Opcode::Add, dest, a, b)
    }

    /// `sub` convenience constructor.
    pub fn sub(dest: Reg, a: Reg, b: Reg) -> Instruction {
        Instruction::alu_rr(Opcode::Sub, dest, a, b)
    }

    /// `and` convenience constructor.
    pub fn and(dest: Reg, a: Reg, b: Reg) -> Instruction {
        Instruction::alu_rr(Opcode::And, dest, a, b)
    }

    /// `or` convenience constructor.
    pub fn or(dest: Reg, a: Reg, b: Reg) -> Instruction {
        Instruction::alu_rr(Opcode::Or, dest, a, b)
    }

    /// `xor` convenience constructor.
    pub fn xor(dest: Reg, a: Reg, b: Reg) -> Instruction {
        Instruction::alu_rr(Opcode::Xor, dest, a, b)
    }

    /// `mul` convenience constructor.
    pub fn mul(dest: Reg, a: Reg, b: Reg) -> Instruction {
        Instruction::alu_rr(Opcode::Mul, dest, a, b)
    }

    /// `addi` convenience constructor.
    pub fn addi(dest: Reg, src: Reg, imm: i64) -> Instruction {
        Instruction::alu_ri(Opcode::AddI, dest, src, imm)
    }

    /// `shli` convenience constructor.
    pub fn shli(dest: Reg, src: Reg, imm: i64) -> Instruction {
        Instruction::alu_ri(Opcode::ShlI, dest, src, imm)
    }

    /// `li` (load immediate) convenience constructor.
    pub fn li(dest: Reg, imm: i64) -> Instruction {
        Instruction {
            dest: Some(dest),
            imm,
            ..Instruction::raw(Opcode::LoadImm)
        }
    }

    /// Load `dest = mem[base + offset]`.
    pub fn load(dest: Reg, base: Reg, offset: i64) -> Instruction {
        Instruction {
            dest: Some(dest),
            src1: Some(base),
            imm: offset,
            ..Instruction::raw(Opcode::Load)
        }
    }

    /// Store `mem[base + offset] = data`.
    pub fn store(base: Reg, data: Reg, offset: i64) -> Instruction {
        Instruction {
            src1: Some(base),
            src2: Some(data),
            imm: offset,
            ..Instruction::raw(Opcode::Store)
        }
    }

    /// Conditional branch comparing `a` vs `b`, taken to `target`.
    pub fn br(cond: BrCond, a: Reg, b: Reg, target: BlockId) -> Instruction {
        Instruction {
            src1: Some(a),
            src2: Some(b),
            target: Some(CfTarget::Block(target)),
            ..Instruction::raw(Opcode::Br(cond))
        }
    }

    /// Unconditional direct jump.
    pub fn jmp(target: BlockId) -> Instruction {
        Instruction {
            target: Some(CfTarget::Block(target)),
            ..Instruction::raw(Opcode::Jmp)
        }
    }

    /// Direct call; writes the return linkage into [`Reg::LINK`].
    pub fn call(target: FuncId) -> Instruction {
        Instruction {
            dest: Some(Reg::LINK),
            target: Some(CfTarget::Func(target)),
            ..Instruction::raw(Opcode::Call)
        }
    }

    /// Indirect return via [`Reg::LINK`].
    pub fn ret() -> Instruction {
        Instruction {
            src1: Some(Reg::LINK),
            ..Instruction::raw(Opcode::Ret)
        }
    }

    /// Program halt.
    pub fn halt() -> Instruction {
        Instruction::raw(Opcode::Halt)
    }

    /// No-operation.
    pub fn nop() -> Instruction {
        Instruction::raw(Opcode::Nop)
    }

    /// Register sources actually read, excluding the hardwired zero
    /// register (reading `r0` creates no dependence).
    pub fn uses(&self) -> impl Iterator<Item = Reg> + '_ {
        [self.src1, self.src2]
            .into_iter()
            .flatten()
            .filter(|r| !r.is_zero())
    }

    /// The destination register, if the instruction defines a live value
    /// (writes to the zero register define nothing).
    pub fn def(&self) -> Option<Reg> {
        self.dest.filter(|r| !r.is_zero())
    }

    /// Returns a copy of this instruction carrying the given mini-graph
    /// tag.
    pub fn with_mg(mut self, tag: MgTag) -> Instruction {
        self.mg = Some(tag);
        self
    }

    /// Returns a copy with any mini-graph tag removed.
    pub fn without_mg(mut self) -> Instruction {
        self.mg = None;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructor_shapes() {
        let i = Instruction::add(Reg::R1, Reg::R2, Reg::R3);
        assert_eq!(i.def(), Some(Reg::R1));
        assert_eq!(i.uses().collect::<Vec<_>>(), vec![Reg::R2, Reg::R3]);

        let s = Instruction::store(Reg::R4, Reg::R5, 8);
        assert_eq!(s.def(), None);
        assert_eq!(s.uses().collect::<Vec<_>>(), vec![Reg::R4, Reg::R5]);
        assert_eq!(s.imm, 8);

        let l = Instruction::load(Reg::R6, Reg::R7, -16);
        assert_eq!(l.def(), Some(Reg::R6));
        assert_eq!(l.uses().collect::<Vec<_>>(), vec![Reg::R7]);
    }

    #[test]
    fn zero_register_creates_no_dependences() {
        let i = Instruction::add(Reg::ZERO, Reg::ZERO, Reg::R3);
        assert_eq!(i.def(), None);
        assert_eq!(i.uses().collect::<Vec<_>>(), vec![Reg::R3]);
    }

    #[test]
    fn call_and_ret_linkage() {
        let c = Instruction::call(FuncId(2));
        assert_eq!(c.def(), Some(Reg::LINK));
        assert_eq!(c.target, Some(CfTarget::Func(FuncId(2))));
        let r = Instruction::ret();
        assert_eq!(r.uses().collect::<Vec<_>>(), vec![Reg::LINK]);
    }

    #[test]
    fn branch_operands() {
        let b = Instruction::br(BrCond::Lt, Reg::R1, Reg::R2, BlockId(7));
        assert!(b.op.is_cond_branch());
        assert_eq!(b.target, Some(CfTarget::Block(BlockId(7))));
        assert_eq!(b.uses().count(), 2);
    }

    #[test]
    fn mg_tag_round_trip() {
        let tag = MgTag {
            instance: 9,
            template: 3,
            pos: 1,
            len: 3,
        };
        let i = Instruction::add(Reg::R1, Reg::R2, Reg::R3).with_mg(tag);
        assert_eq!(i.mg, Some(tag));
        assert_eq!(i.without_mg().mg, None);
    }

    #[test]
    #[should_panic(expected = "not a reg-reg ALU opcode")]
    fn alu_rr_rejects_memory() {
        let _ = Instruction::alu_rr(Opcode::Load, Reg::R1, Reg::R2, Reg::R3);
    }

    #[test]
    #[should_panic(expected = "not a reg-imm ALU opcode")]
    fn alu_ri_rejects_two_source() {
        let _ = Instruction::alu_ri(Opcode::Add, Reg::R1, Reg::R2, 3);
    }
}
