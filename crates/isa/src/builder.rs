//! Fluent program construction.

use crate::block::{BasicBlock, BlockId};
use crate::error::IsaError;
use crate::inst::Instruction;
use crate::program::{FuncId, Function, Program};

/// Incrementally builds a [`Program`].
///
/// Blocks are created against a function and filled with [`push`]; control
/// edges are declared with [`set_fallthrough`] and the targets embedded in
/// branch/jump instructions. [`build`] validates everything and computes
/// the static layout.
///
/// [`push`]: ProgramBuilder::push
/// [`set_fallthrough`]: ProgramBuilder::set_fallthrough
/// [`build`]: ProgramBuilder::build
///
/// # Example
///
/// ```
/// use mg_isa::{Instruction, ProgramBuilder, Reg, BrCond};
///
/// # fn main() -> Result<(), mg_isa::IsaError> {
/// let mut pb = ProgramBuilder::new("count");
/// let main = pb.func("main");
/// let head = pb.block(main);
/// let body = pb.block(main);
/// let done = pb.block(main);
///
/// pb.push(head, Instruction::li(Reg::R1, 10));
/// pb.set_fallthrough(head, body);
/// pb.push(body, Instruction::addi(Reg::R1, Reg::R1, -1));
/// pb.push(body, Instruction::br(BrCond::Ne, Reg::R1, Reg::ZERO, body));
/// pb.set_fallthrough(body, done);
/// pb.push(done, Instruction::halt());
///
/// let program = pb.build()?;
/// assert_eq!(program.static_count(), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    name: String,
    blocks: Vec<BasicBlock>,
    funcs: Vec<Function>,
    entry_func: Option<FuncId>,
}

impl ProgramBuilder {
    /// Creates a builder for a program with the given name.
    pub fn new(name: impl Into<String>) -> ProgramBuilder {
        ProgramBuilder {
            name: name.into(),
            ..ProgramBuilder::default()
        }
    }

    /// Declares a function. The first declared function becomes the
    /// program entry unless [`set_entry`](ProgramBuilder::set_entry) is
    /// called.
    pub fn func(&mut self, name: impl Into<String>) -> FuncId {
        let id = FuncId(self.funcs.len() as u32);
        self.funcs.push(Function {
            name: name.into(),
            entry: BlockId(u32::MAX), // patched when the first block arrives
            blocks: Vec::new(),
        });
        if self.entry_func.is_none() {
            self.entry_func = Some(id);
        }
        id
    }

    /// Creates a new empty block in `func`. The function's first block is
    /// its entry.
    pub fn block(&mut self, func: FuncId) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(BasicBlock::new());
        let f = &mut self.funcs[func.index()];
        if f.blocks.is_empty() {
            f.entry = id;
        }
        f.blocks.push(id);
        id
    }

    /// Appends an instruction to `block`.
    pub fn push(&mut self, block: BlockId, inst: Instruction) {
        self.blocks[block.index()].push(inst);
    }

    /// Appends several instructions to `block`.
    pub fn push_all(&mut self, block: BlockId, insts: impl IntoIterator<Item = Instruction>) {
        self.blocks[block.index()].insts.extend(insts);
    }

    /// Declares `to` as the fall-through successor of `from`.
    pub fn set_fallthrough(&mut self, from: BlockId, to: BlockId) {
        self.blocks[from.index()].fallthrough = Some(to);
    }

    /// Overrides the program entry function.
    pub fn set_entry(&mut self, func: FuncId) {
        self.entry_func = Some(func);
    }

    /// Replaces the instruction at `idx` of `block`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn replace(&mut self, block: BlockId, idx: usize, inst: Instruction) {
        self.blocks[block.index()].insts[idx] = inst;
    }

    /// Re-targets the block's terminating branch/jump to `target`.
    ///
    /// Used to emit forward branches whose destination block does not
    /// exist yet: emit with a placeholder target, then patch.
    ///
    /// # Panics
    ///
    /// Panics if the block's last instruction is not a branch or jump.
    pub fn patch_branch_target(&mut self, block: BlockId, target: BlockId) {
        let inst = self.blocks[block.index()]
            .insts
            .last_mut()
            .expect("patch target of empty block");
        assert!(
            matches!(inst.op, crate::Opcode::Br(_) | crate::Opcode::Jmp),
            "patch target of non-branch {:?}",
            inst.op
        );
        inst.target = Some(crate::CfTarget::Block(target));
    }

    /// Number of instructions currently in `block`.
    pub fn block_len(&self, block: BlockId) -> usize {
        self.blocks[block.index()].len()
    }

    /// Validates and finalizes the program.
    ///
    /// # Errors
    ///
    /// Returns an [`IsaError`] if the assembled structure is invalid; see
    /// [`validate`](crate::validate::validate) for the checks performed.
    pub fn build(self) -> Result<Program, IsaError> {
        let entry = self.entry_func.ok_or(IsaError::BadEntryFunc(FuncId(0)))?;
        Program::new(self.name, self.blocks, self.funcs, entry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::BrCond;
    use crate::reg::Reg;

    #[test]
    fn builds_multi_function_program() {
        let mut pb = ProgramBuilder::new("two-funcs");
        let main = pb.func("main");
        let helper = pb.func("helper");
        let m0 = pb.block(main);
        let m1 = pb.block(main);
        let h0 = pb.block(helper);
        pb.push(m0, Instruction::call(helper));
        pb.set_fallthrough(m0, m1);
        pb.push(m1, Instruction::halt());
        pb.push(h0, Instruction::li(Reg::R2, 42));
        pb.push(h0, Instruction::ret());
        let p = pb.build().unwrap();
        assert_eq!(p.funcs().len(), 2);
        assert_eq!(p.entry_func(), main);
        assert_eq!(p.func(helper).entry, h0);
        assert_eq!(p.static_count(), 4);
    }

    #[test]
    fn first_block_is_function_entry() {
        let mut pb = ProgramBuilder::new("entry");
        let f = pb.func("main");
        let b0 = pb.block(f);
        let _b1 = pb.block(f);
        pb.push(b0, Instruction::halt());
        // _b1 is unreachable and empty; builder allows creating it but
        // build() rejects empty blocks.
        assert!(pb.build().is_err());
    }

    #[test]
    fn build_without_functions_fails() {
        let pb = ProgramBuilder::new("empty");
        assert!(pb.build().is_err());
    }

    #[test]
    fn loop_round_trips_through_build() {
        let mut pb = ProgramBuilder::new("loop");
        let f = pb.func("main");
        let head = pb.block(f);
        let exit = pb.block(f);
        pb.push(head, Instruction::addi(Reg::R1, Reg::R1, -1));
        pb.push(head, Instruction::br(BrCond::Ne, Reg::R1, Reg::ZERO, head));
        pb.set_fallthrough(head, exit);
        pb.push(exit, Instruction::halt());
        let p = pb.build().unwrap();
        let succs: Vec<BlockId> = p.block(head).successors().collect();
        assert_eq!(succs, vec![head, exit]);
    }
}
