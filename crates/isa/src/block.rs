//! Basic blocks.

use crate::inst::{CfTarget, Instruction};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a basic block within a [`Program`](crate::Program)'s
/// global block pool.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BlockId(pub u32);

impl BlockId {
    /// The block's index into the program's block pool.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

impl fmt::Debug for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

/// A basic block: straight-line instructions with a single entry at the
/// top and a single exit at the bottom.
///
/// A control-transfer instruction, if present, must be the last
/// instruction. Blocks whose last instruction is a conditional branch (or
/// no control instruction at all) additionally carry a `fallthrough`
/// successor.
#[derive(Clone, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub struct BasicBlock {
    /// The instructions, in program order.
    pub insts: Vec<Instruction>,
    /// The not-taken / sequential successor, for blocks that can fall
    /// through (conditional branch or plain straight-line blocks).
    pub fallthrough: Option<BlockId>,
}

impl BasicBlock {
    /// Creates an empty block.
    pub fn new() -> BasicBlock {
        BasicBlock::default()
    }

    /// Number of instructions in the block.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the block holds no instructions.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// The block's terminating control instruction, if any.
    pub fn terminator(&self) -> Option<&Instruction> {
        self.insts.last().filter(|i| i.op.is_control())
    }

    /// Control-flow successors within the same function: the explicit
    /// branch/jump target first, then the fall-through edge.
    ///
    /// Calls are *not* treated as block successors (control returns to the
    /// fall-through block); returns and halts have no successors.
    pub fn successors(&self) -> impl Iterator<Item = BlockId> + '_ {
        let target = self.terminator().and_then(|t| match t.target {
            Some(CfTarget::Block(b)) if !matches!(t.op, crate::Opcode::Call) => Some(b),
            _ => None,
        });
        let fall = self.fallthrough;
        target.into_iter().chain(fall)
    }

    /// Appends an instruction.
    pub fn push(&mut self, inst: Instruction) {
        self.insts.push(inst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::BrCond;
    use crate::reg::Reg;

    #[test]
    fn successors_of_conditional_branch() {
        let mut b = BasicBlock::new();
        b.push(Instruction::add(Reg::R1, Reg::R2, Reg::R3));
        b.push(Instruction::br(BrCond::Eq, Reg::R1, Reg::ZERO, BlockId(5)));
        b.fallthrough = Some(BlockId(6));
        let succs: Vec<BlockId> = b.successors().collect();
        assert_eq!(succs, vec![BlockId(5), BlockId(6)]);
    }

    #[test]
    fn successors_of_jump() {
        let mut b = BasicBlock::new();
        b.push(Instruction::jmp(BlockId(3)));
        assert_eq!(b.successors().collect::<Vec<_>>(), vec![BlockId(3)]);
    }

    #[test]
    fn successors_of_straight_line() {
        let mut b = BasicBlock::new();
        b.push(Instruction::nop());
        b.fallthrough = Some(BlockId(1));
        assert_eq!(b.successors().collect::<Vec<_>>(), vec![BlockId(1)]);
    }

    #[test]
    fn ret_has_no_successors() {
        let mut b = BasicBlock::new();
        b.push(Instruction::ret());
        assert_eq!(b.successors().count(), 0);
    }

    #[test]
    fn call_falls_through_only() {
        use crate::program::FuncId;
        let mut b = BasicBlock::new();
        b.push(Instruction::call(FuncId(1)));
        b.fallthrough = Some(BlockId(9));
        assert_eq!(b.successors().collect::<Vec<_>>(), vec![BlockId(9)]);
    }

    #[test]
    fn terminator_detection() {
        let mut b = BasicBlock::new();
        b.push(Instruction::add(Reg::R1, Reg::R2, Reg::R3));
        assert!(b.terminator().is_none());
        b.push(Instruction::halt());
        assert!(b.terminator().is_some());
    }
}
