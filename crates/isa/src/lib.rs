//! A small load/store RISC instruction set with explicit basic blocks,
//! designed as the substrate for mini-graph instruction aggregation.
//!
//! Mini-graphs (Bracy & Roth, MICRO 2004/2006) are instruction aggregates
//! with the external interface of a RISC singleton: at most three register
//! inputs, one register output, one memory reference, and one control
//! transfer. This crate provides the program representation on which
//! candidates are enumerated and on which both functional and timing
//! simulation run:
//!
//! * [`Reg`], [`Opcode`], [`Instruction`] — the instruction set proper,
//!   including ALU semantics ([`op::eval_alu`]) used by functional
//!   execution.
//! * [`BasicBlock`], [`Program`], [`ProgramBuilder`] — control-flow
//!   structure and a fluent construction API.
//! * [`dataflow`] — intra-block def/use chains and program-level liveness,
//!   the analyses mini-graph selection needs to identify "interior" values.
//! * [`MgTag`] — per-instruction mini-graph annotations which the binary
//!   rewriter (in `mg-core`) attaches and the timing simulator interprets.
//!
//! # Example
//!
//! ```
//! use mg_isa::{Instruction, ProgramBuilder, Reg};
//!
//! # fn main() -> Result<(), mg_isa::IsaError> {
//! let mut pb = ProgramBuilder::new("example");
//! let f = pb.func("main");
//! let b = pb.block(f);
//! pb.push(b, Instruction::li(Reg::R1, 40));
//! pb.push(b, Instruction::addi(Reg::R2, Reg::R1, 2));
//! pb.push(b, Instruction::halt());
//! let prog = pb.build()?;
//! assert_eq!(prog.static_count(), 3);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod block;
pub mod builder;
pub mod dataflow;
mod display;
mod error;
pub mod inst;
pub mod op;
pub mod program;
pub mod reg;
pub mod validate;

pub use block::{BasicBlock, BlockId};
pub use builder::ProgramBuilder;
pub use error::IsaError;
pub use inst::{CfTarget, Instruction, MgTag};
pub use op::{BrCond, ExecClass, Opcode};
pub use program::{FuncId, Function, InstrLoc, Program, StaticId};
pub use reg::Reg;

// Programs are shared across sweep-runner worker threads by reference;
// this fails to compile if a non-thread-safe field (Rc, RefCell, raw
// pointer) ever sneaks in.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Program>();
};
