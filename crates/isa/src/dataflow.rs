//! Intra-block def/use chains and program-level liveness.
//!
//! Mini-graph formation needs to know, for every value defined in a basic
//! block, *who consumes it*: values consumed only inside a candidate
//! aggregate (and dead beyond it) are "interior" and need no physical
//! register; everything else is part of the aggregate's external
//! interface. [`BlockDataflow`] provides exactly this, on top of a
//! conventional backward liveness fixpoint ([`liveness`]).

use crate::block::BlockId;
use crate::inst::Instruction;
use crate::op::Opcode;
use crate::program::Program;
use crate::reg::{Reg, NUM_ARCH_REGS};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A set of architectural registers, stored as a bitmask.
#[derive(Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct RegSet(u32);

impl RegSet {
    /// The empty set.
    pub const EMPTY: RegSet = RegSet(0);
    /// The set of all architectural registers.
    pub const ALL: RegSet = RegSet(u32::MAX);

    /// Inserts a register; returns whether the set changed.
    pub fn insert(&mut self, r: Reg) -> bool {
        let bit = 1u32 << r.index();
        let changed = self.0 & bit == 0;
        self.0 |= bit;
        changed
    }

    /// Removes a register.
    pub fn remove(&mut self, r: Reg) {
        self.0 &= !(1u32 << r.index());
    }

    /// Membership test.
    pub fn contains(self, r: Reg) -> bool {
        self.0 & (1u32 << r.index()) != 0
    }

    /// Set union; returns whether `self` changed.
    pub fn union_with(&mut self, other: RegSet) -> bool {
        let before = self.0;
        self.0 |= other.0;
        self.0 != before
    }

    /// Number of registers in the set.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether the set is empty.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Iterates over members in index order.
    pub fn iter(self) -> impl Iterator<Item = Reg> {
        (0..NUM_ARCH_REGS as u8)
            .map(Reg::new)
            .filter(move |r| self.contains(*r))
    }
}

impl fmt::Debug for RegSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<Reg> for RegSet {
    fn from_iter<T: IntoIterator<Item = Reg>>(iter: T) -> RegSet {
        let mut s = RegSet::EMPTY;
        for r in iter {
            s.insert(r);
        }
        s
    }
}

/// Whether an instruction must be treated as consuming every live register
/// (calls and returns cross function boundaries; we analyze liveness
/// intraprocedurally and stay conservative at those points).
pub fn uses_all_regs(inst: &Instruction) -> bool {
    matches!(inst.op, Opcode::Call | Opcode::Ret)
}

/// Per-block liveness results for a whole program.
#[derive(Clone, Debug)]
pub struct Liveness {
    live_in: Vec<RegSet>,
    live_out: Vec<RegSet>,
}

impl Liveness {
    /// Registers live on entry to `block`.
    pub fn live_in(&self, block: BlockId) -> RegSet {
        self.live_in[block.index()]
    }

    /// Registers live on exit from `block`.
    pub fn live_out(&self, block: BlockId) -> RegSet {
        self.live_out[block.index()]
    }
}

/// Computes intraprocedural backward liveness for every block.
///
/// Calls and returns are treated as using all registers (see
/// [`uses_all_regs`]), which keeps the analysis sound without an
/// interprocedural summary.
pub fn liveness(program: &Program) -> Liveness {
    let n = program.blocks().len();
    let mut live_in = vec![RegSet::EMPTY; n];
    let mut live_out = vec![RegSet::EMPTY; n];

    // Precompute per-block gen (upward-exposed uses) and kill (defs).
    let mut gen = vec![RegSet::EMPTY; n];
    let mut kill = vec![RegSet::EMPTY; n];
    let mut uses_all = vec![false; n];
    for (bi, block) in program.blocks().iter().enumerate() {
        let mut defined = RegSet::EMPTY;
        for inst in &block.insts {
            if uses_all_regs(inst) {
                uses_all[bi] = true;
                // Everything not yet defined in this block is upward-exposed.
                for r in Reg::all() {
                    if !defined.contains(r) && !r.is_zero() {
                        gen[bi].insert(r);
                    }
                }
            }
            for u in inst.uses() {
                if !defined.contains(u) {
                    gen[bi].insert(u);
                }
            }
            if let Some(d) = inst.def() {
                defined.insert(d);
                kill[bi].insert(d);
            }
        }
    }

    // Fixpoint (reverse-ish order for quick convergence).
    let mut changed = true;
    while changed {
        changed = false;
        for bi in (0..n).rev() {
            let block = &program.blocks()[bi];
            let mut out = RegSet::EMPTY;
            for succ in block.successors() {
                out.union_with(live_in[succ.index()]);
            }
            if live_out[bi] != out {
                live_out[bi] = out;
                changed = true;
            }
            let mut inn = gen[bi];
            let mut surviving = out;
            surviving.0 &= !kill[bi].0;
            inn.union_with(surviving);
            if live_in[bi] != inn {
                live_in[bi] = inn;
                changed = true;
            }
        }
    }
    Liveness { live_in, live_out }
}

/// Where a register use gets its value from.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum UseSource {
    /// Defined by an earlier instruction in the same block (position given).
    Local(usize),
    /// Live-in to the block (defined elsewhere).
    External,
}

/// Def/use structure of one basic block.
///
/// Positions index the block's instruction list.
#[derive(Clone, Debug)]
pub struct BlockDataflow {
    /// Per position, per register source (src1, src2): where the value
    /// comes from. `None` where the instruction has no such source.
    pub src_origin: Vec<[Option<UseSource>; 2]>,
    /// Per position: positions of later in-block instructions consuming
    /// this instruction's definition (before any redefinition). Includes
    /// call/return positions, which consume everything.
    pub consumers: Vec<Vec<usize>>,
    /// Per position: whether the definition escapes the block (is live-out
    /// with no later in-block redefinition).
    pub escapes: Vec<bool>,
}

impl BlockDataflow {
    /// Analyzes one block, given the registers live on exit from it.
    pub fn analyze(block: &crate::BasicBlock, live_out: RegSet) -> BlockDataflow {
        let len = block.insts.len();
        let mut last_def: [Option<usize>; NUM_ARCH_REGS] = [None; NUM_ARCH_REGS];
        let mut src_origin = vec![[None, None]; len];
        let mut consumers = vec![Vec::new(); len];

        for (i, inst) in block.insts.iter().enumerate() {
            if uses_all_regs(inst) {
                for def in last_def.iter().flatten() {
                    if !consumers[*def].contains(&i) {
                        consumers[*def].push(i);
                    }
                }
            }
            for (slot, src) in [inst.src1, inst.src2].into_iter().enumerate() {
                let Some(r) = src else { continue };
                if r.is_zero() {
                    continue;
                }
                let origin = match last_def[r.index()] {
                    Some(d) => {
                        if !consumers[d].contains(&i) {
                            consumers[d].push(i);
                        }
                        UseSource::Local(d)
                    }
                    None => UseSource::External,
                };
                src_origin[i][slot] = Some(origin);
            }
            if let Some(d) = inst.def() {
                last_def[d.index()] = Some(i);
            }
        }

        // Escapes: definition still the latest for its register at block
        // end, and the register is live-out.
        let mut escapes = vec![false; len];
        for r in Reg::all() {
            if let Some(i) = last_def[r.index()] {
                if live_out.contains(r) {
                    escapes[i] = true;
                }
            }
        }
        BlockDataflow {
            src_origin,
            consumers,
            escapes,
        }
    }

    /// Whether the value defined at `pos` is consumed anywhere outside the
    /// position set `within` (either by an in-block consumer outside the
    /// set or by escaping the block).
    pub fn value_visible_outside(&self, pos: usize, within: &[usize]) -> bool {
        self.escapes[pos] || self.consumers[pos].iter().any(|c| !within.contains(c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::BasicBlock;
    use crate::builder::ProgramBuilder;
    use crate::op::BrCond;

    #[test]
    fn regset_basics() {
        let mut s = RegSet::EMPTY;
        assert!(s.insert(Reg::R3));
        assert!(!s.insert(Reg::R3));
        assert!(s.contains(Reg::R3));
        assert_eq!(s.len(), 1);
        s.remove(Reg::R3);
        assert!(s.is_empty());
    }

    #[test]
    fn regset_from_iterator() {
        let s: RegSet = [Reg::R1, Reg::R2, Reg::R1].into_iter().collect();
        assert_eq!(s.len(), 2);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![Reg::R1, Reg::R2]);
    }

    #[test]
    fn block_dataflow_chains() {
        // r1 = li 1          (0)
        // r2 = addi r1, 1    (1) consumes 0
        // r3 = add r1, r2    (2) consumes 0 and 1
        // st r3 -> 0(r4)     (3) consumes 2, uses external r4
        let mut b = BasicBlock::new();
        b.push(Instruction::li(Reg::R1, 1));
        b.push(Instruction::addi(Reg::R2, Reg::R1, 1));
        b.push(Instruction::add(Reg::R3, Reg::R1, Reg::R2));
        b.push(Instruction::store(Reg::R4, Reg::R3, 0));
        let df = BlockDataflow::analyze(&b, RegSet::EMPTY);
        assert_eq!(df.consumers[0], vec![1, 2]);
        assert_eq!(df.consumers[1], vec![2]);
        assert_eq!(df.consumers[2], vec![3]);
        assert_eq!(df.src_origin[3][0], Some(UseSource::External)); // r4 base
        assert_eq!(df.src_origin[3][1], Some(UseSource::Local(2))); // r3 data
        assert!(!df.escapes[0]);
    }

    #[test]
    fn escape_requires_liveness() {
        let mut b = BasicBlock::new();
        b.push(Instruction::li(Reg::R1, 1));
        let mut live = RegSet::EMPTY;
        live.insert(Reg::R1);
        let df = BlockDataflow::analyze(&b, live);
        assert!(df.escapes[0]);
        let df2 = BlockDataflow::analyze(&b, RegSet::EMPTY);
        assert!(!df2.escapes[0]);
    }

    #[test]
    fn redefinition_kills_escape() {
        let mut b = BasicBlock::new();
        b.push(Instruction::li(Reg::R1, 1));
        b.push(Instruction::li(Reg::R1, 2));
        let mut live = RegSet::EMPTY;
        live.insert(Reg::R1);
        let df = BlockDataflow::analyze(&b, live);
        assert!(!df.escapes[0]);
        assert!(df.escapes[1]);
    }

    #[test]
    fn value_visible_outside_subset() {
        let mut b = BasicBlock::new();
        b.push(Instruction::li(Reg::R1, 1)); // 0
        b.push(Instruction::addi(Reg::R2, Reg::R1, 1)); // 1
        b.push(Instruction::addi(Reg::R3, Reg::R1, 2)); // 2, also consumes 0
        let df = BlockDataflow::analyze(&b, RegSet::EMPTY);
        // Value of 0 consumed by both 1 and 2: interior to {0,1,2} only.
        assert!(df.value_visible_outside(0, &[0, 1]));
        assert!(!df.value_visible_outside(0, &[0, 1, 2]));
    }

    #[test]
    fn liveness_across_loop() {
        // b0: r1=li 10        -> b1
        // b1: r1=addi r1,-1; bne r1,r0 -> b1 ; fall b2
        // b2: halt
        let mut pb = ProgramBuilder::new("loop");
        let f = pb.func("main");
        let b0 = pb.block(f);
        let b1 = pb.block(f);
        let b2 = pb.block(f);
        pb.push(b0, Instruction::li(Reg::R1, 10));
        pb.set_fallthrough(b0, b1);
        pb.push(b1, Instruction::addi(Reg::R1, Reg::R1, -1));
        pb.push(b1, Instruction::br(BrCond::Ne, Reg::R1, Reg::ZERO, b1));
        pb.set_fallthrough(b1, b2);
        pb.push(b2, Instruction::halt());
        let p = pb.build().unwrap();
        let lv = liveness(&p);
        // r1 is live around the loop back edge.
        assert!(lv.live_out(b0).contains(Reg::R1));
        assert!(lv.live_in(b1).contains(Reg::R1));
        assert!(lv.live_out(b1).contains(Reg::R1));
        // Nothing is live into b2.
        assert!(lv.live_in(b2).is_empty());
    }

    #[test]
    fn call_makes_defs_live() {
        let mut pb = ProgramBuilder::new("call");
        let main = pb.func("main");
        let callee = pb.func("callee");
        let b0 = pb.block(main);
        let b1 = pb.block(main);
        let c0 = pb.block(callee);
        pb.push(b0, Instruction::li(Reg::R9, 7));
        pb.push(b0, Instruction::call(callee));
        pb.set_fallthrough(b0, b1);
        pb.push(b1, Instruction::halt());
        pb.push(c0, Instruction::ret());
        let p = pb.build().unwrap();
        let df = BlockDataflow::analyze(p.block(b0), liveness(&p).live_out(b0));
        // The call consumes r9's definition (conservatively).
        assert_eq!(df.consumers[0], vec![1]);
    }
}
