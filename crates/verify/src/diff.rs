//! The differential harness: oracle vs. pipeline vs. engine.
//!
//! For each seed the harness generates a workload, establishes ground
//! truth by running the functional [`Executor`] (the *oracle*), then
//! pushes the program through the full mini-graph pipeline under each
//! selector variant and checks, per variant:
//!
//! 1. every *selected* candidate independently satisfies the paper's
//!    legality constraints ([`check_candidate`]);
//! 2. the rewrite succeeds and the rewritten program re-validates through
//!    `mg-isa`'s structural validator from scratch ([`revalidate`]);
//! 3. original and rewritten programs are semantically equivalent
//!    (bit-identical final registers and memory, via
//!    [`check_semantics_preserved`]);
//! 4. the cycle-level engine commits exactly the traced instruction
//!    count and stays under its cycle cap;
//! 5. an independent functional replay of the committed trace
//!    ([`replay_committed`]) reproduces the rewritten program's final
//!    architectural state bit-for-bit, and agrees with the oracle.
//!
//! Panics anywhere in a variant run are caught and reported as
//! counterexamples, never propagated: "the fuzzer found a panic" is a
//! result, not a crash.

use crate::gen::{generate, GenConfig};
use crate::invariants::{check_candidate, revalidate, InvariantViolation};
use mg_core::{
    check_semantics_preserved, enumerate, greedy_select, try_rewrite, RewriteError,
    SelectionConfig, Selector, SemanticsViolation, SlackProfileModel,
};
use mg_isa::IsaError;
use mg_sim::{
    replay_committed, simulate, DynMgConfig, MachineConfig, MgConfig, ReplayError, SimOptions,
};
use mg_workloads::{ExecError, Executor, Workload};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// One of the five checked pipeline configurations.
///
/// The first four are static selectors; `Slack-Dynamic` uses the
/// `Struct-All` static pool plus the run-time controller in
/// [`mg_sim::dynmg`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Variant {
    /// Reject every potentially-serializing candidate.
    StructNone,
    /// Admit every candidate.
    StructAll,
    /// Reject only unbounded serialization.
    StructBounded,
    /// Profile-driven slack admission.
    SlackProfile,
    /// `Struct-All` pool + run-time disable controller.
    SlackDynamic,
}

impl Variant {
    /// All five variants, in sweep order.
    pub const ALL: [Variant; 5] = [
        Variant::StructNone,
        Variant::StructAll,
        Variant::StructBounded,
        Variant::SlackProfile,
        Variant::SlackDynamic,
    ];

    /// The paper's display name.
    pub fn name(self) -> &'static str {
        match self {
            Variant::StructNone => "Struct-None",
            Variant::StructAll => "Struct-All",
            Variant::StructBounded => "Struct-Bounded",
            Variant::SlackProfile => "Slack-Profile",
            Variant::SlackDynamic => "Slack-Dynamic",
        }
    }

    /// Parses a display name (as printed by [`Variant::name`]).
    pub fn from_name(name: &str) -> Option<Variant> {
        Variant::ALL.into_iter().find(|v| v.name() == name)
    }
}

/// Configuration of a differential run.
#[derive(Clone, Debug)]
pub struct DiffConfig {
    /// Program-generator knobs.
    pub gen: GenConfig,
    /// Selection constraints (the paper's defaults).
    pub sel: SelectionConfig,
    /// Machine model for the timing runs.
    pub machine: MachineConfig,
    /// Dynamic-instruction limit for the functional executor; reaching
    /// it is reported as a generator bug, not silently truncated.
    pub exec_limit: usize,
}

impl Default for DiffConfig {
    fn default() -> DiffConfig {
        DiffConfig {
            gen: GenConfig::default(),
            sel: SelectionConfig::default(),
            machine: MachineConfig::reduced(),
            exec_limit: 10_000_000,
        }
    }
}

impl DiffConfig {
    /// Default knobs with the adversarial generator shapes enabled.
    pub fn adversarial() -> DiffConfig {
        DiffConfig {
            gen: GenConfig::adversarial(),
            ..DiffConfig::default()
        }
    }
}

/// What went wrong for one (seed, variant) run.
#[derive(Clone, Debug, PartialEq)]
pub enum MismatchKind {
    /// The oracle itself failed — a generator bug.
    OracleFailed(ExecError),
    /// The oracle hit the dynamic-instruction limit — a generator bug.
    OracleTruncated,
    /// A *selected* candidate violates a legality constraint.
    Invariant {
        /// Block-relative positions of the offending candidate.
        positions: Vec<usize>,
        /// Every violated constraint.
        violations: Vec<InvariantViolation>,
    },
    /// The rewriter rejected the selection.
    Rewrite(RewriteError),
    /// The rewritten program failed structural re-validation.
    Revalidate(IsaError),
    /// Original and rewritten programs diverge functionally.
    Semantics(SemanticsViolation),
    /// The rewritten program failed under the functional executor.
    RewrittenFailed(ExecError),
    /// The rewritten program hit the dynamic-instruction limit.
    RewrittenTruncated,
    /// The engine committed a different number of instructions than the
    /// trace contains.
    CommitCount {
        /// `SimStats::committed_instrs`.
        committed: u64,
        /// Length of the driving trace.
        trace_len: u64,
    },
    /// The engine hit its cycle cap (deadlock or runaway model).
    CycleCap,
    /// The committed trace does not replay functionally.
    Replay(ReplayError),
    /// The replayed architectural state disagrees with the executor's.
    ReplayStateDiff {
        /// Human-readable description of the first difference.
        detail: String,
    },
    /// A panic escaped some pipeline stage.
    Panic(String),
}

impl MismatchKind {
    /// Coarse bucket used by the shrinker to decide whether a reduced
    /// input still exhibits "the same" failure.
    pub fn bucket(&self) -> &'static str {
        match self {
            MismatchKind::OracleFailed(_) => "oracle-failed",
            MismatchKind::OracleTruncated => "oracle-truncated",
            MismatchKind::Invariant { .. } => "invariant",
            MismatchKind::Rewrite(_) => "rewrite",
            MismatchKind::Revalidate(_) => "revalidate",
            MismatchKind::Semantics(_) => "semantics",
            MismatchKind::RewrittenFailed(_) => "rewritten-failed",
            MismatchKind::RewrittenTruncated => "rewritten-truncated",
            MismatchKind::CommitCount { .. } => "commit-count",
            MismatchKind::CycleCap => "cycle-cap",
            MismatchKind::Replay(_) => "replay",
            MismatchKind::ReplayStateDiff { .. } => "replay-state",
            MismatchKind::Panic(_) => "panic",
        }
    }
}

impl fmt::Display for MismatchKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MismatchKind::OracleFailed(e) => write!(f, "oracle failed: {e}"),
            MismatchKind::OracleTruncated => write!(f, "oracle hit the instruction limit"),
            MismatchKind::Invariant {
                positions,
                violations,
            } => {
                write!(f, "selected candidate {positions:?} is illegal:")?;
                for v in violations {
                    write!(f, " [{v}]")?;
                }
                Ok(())
            }
            MismatchKind::Rewrite(e) => write!(f, "rewrite failed: {e}"),
            MismatchKind::Revalidate(e) => write!(f, "rewritten program invalid: {e}"),
            MismatchKind::Semantics(v) => write!(f, "semantics diverged: {v}"),
            MismatchKind::RewrittenFailed(e) => write!(f, "rewritten program failed: {e}"),
            MismatchKind::RewrittenTruncated => {
                write!(f, "rewritten program hit the instruction limit")
            }
            MismatchKind::CommitCount {
                committed,
                trace_len,
            } => write!(
                f,
                "engine committed {committed} instrs, trace has {trace_len}"
            ),
            MismatchKind::CycleCap => write!(f, "engine hit its cycle cap"),
            MismatchKind::Replay(e) => write!(f, "committed trace does not replay: {e}"),
            MismatchKind::ReplayStateDiff { detail } => {
                write!(f, "replayed state disagrees: {detail}")
            }
            MismatchKind::Panic(msg) => write!(f, "panic: {msg}"),
        }
    }
}

/// A minimized, reproducible failure report.
#[derive(Clone, Debug)]
pub struct Counterexample {
    /// Generator seed.
    pub seed: u64,
    /// Variant display name (or `"oracle"` for pre-variant failures).
    pub variant: &'static str,
    /// What went wrong.
    pub kind: MismatchKind,
    /// Disassembly of the (possibly shrunk) generated program.
    pub program: String,
    /// Initial memory image of the failing workload.
    pub init_mem: Vec<(u64, u64)>,
    /// One-line command that reproduces this failure.
    pub repro: String,
}

impl fmt::Display for Counterexample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "seed {} / {}: {}", self.seed, self.variant, self.kind)?;
        writeln!(f, "repro: {}", self.repro)?;
        if !self.init_mem.is_empty() {
            writeln!(f, "init mem: {:?}", self.init_mem)?;
        }
        write!(f, "{}", self.program)
    }
}

/// The one-line repro command embedded in every counterexample.
pub fn repro_command(seed: u64, variant: &str, adversarial: bool) -> String {
    let adv = if adversarial { " --adversarial" } else { "" };
    format!(
        "cargo run -p mg-bench --release --bin verify -- --seed {seed} --selector {variant}{adv}"
    )
}

fn describe_panic(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs the oracle for a workload: functional execution with a limit.
fn oracle(
    w: &Workload,
    cfg: &DiffConfig,
) -> Result<(mg_workloads::Trace, mg_workloads::ArchState), MismatchKind> {
    let (trace, state) = Executor::new(&w.program)
        .with_limit(cfg.exec_limit)
        .run_with_mem(&w.init_mem)
        .map_err(MismatchKind::OracleFailed)?;
    if trace.truncated {
        return Err(MismatchKind::OracleTruncated);
    }
    Ok((trace, state))
}

/// Runs one workload through one pipeline variant and checks every
/// differential property. `Ok(())` means the variant is clean on this
/// input.
///
/// # Errors
///
/// Returns the first [`MismatchKind`] detected.
pub fn run_variant(w: &Workload, variant: Variant, cfg: &DiffConfig) -> Result<(), MismatchKind> {
    let (otrace, ostate) = oracle(w, cfg)?;
    let freqs = otrace.static_freqs(&w.program);

    let selector = match variant {
        Variant::StructNone => Selector::StructNone,
        Variant::StructAll | Variant::SlackDynamic => Selector::StructAll,
        Variant::StructBounded => Selector::StructBounded,
        Variant::SlackProfile => {
            let profiled = simulate(
                &w.program,
                &otrace,
                &cfg.machine,
                SimOptions {
                    profile_slack: true,
                    ..SimOptions::default()
                },
            );
            let slack = profiled
                .slack
                .expect("profile run collects a slack profile");
            Selector::SlackProfile(SlackProfileModel::default(), slack)
        }
    };

    let pool = selector.filter(&w.program, enumerate(&w.program, &cfg.sel));
    let selection = greedy_select(&w.program, &pool, &freqs, &cfg.sel);

    for ci in &selection.chosen {
        let violations = check_candidate(&w.program, &ci.candidate, &cfg.sel);
        if !violations.is_empty() {
            return Err(MismatchKind::Invariant {
                positions: ci.candidate.positions.clone(),
                violations,
            });
        }
    }

    let rewritten = try_rewrite(&w.program, &selection.chosen).map_err(MismatchKind::Rewrite)?;
    revalidate(&rewritten).map_err(MismatchKind::Revalidate)?;

    if let Some(v) = check_semantics_preserved(&w.program, &rewritten, &w.init_mem) {
        return Err(MismatchKind::Semantics(v));
    }
    let (rtrace, rstate) = Executor::new(&rewritten)
        .with_limit(cfg.exec_limit)
        .run_with_mem(&w.init_mem)
        .map_err(MismatchKind::RewrittenFailed)?;
    if rtrace.truncated {
        return Err(MismatchKind::RewrittenTruncated);
    }

    let mg_machine = cfg.machine.clone().with_mg(MgConfig::paper());
    let opts = SimOptions {
        dyn_mg: (variant == Variant::SlackDynamic).then(DynMgConfig::slack_dynamic),
        ..SimOptions::default()
    };
    let result = simulate(&rewritten, &rtrace, &mg_machine, opts);
    if result.hit_cycle_cap {
        return Err(MismatchKind::CycleCap);
    }
    if result.stats.committed_instrs != rtrace.len() as u64 {
        return Err(MismatchKind::CommitCount {
            committed: result.stats.committed_instrs,
            trace_len: rtrace.len() as u64,
        });
    }

    // Independent functional replay of the committed trace must land on
    // the executor's exact final state...
    let replayed =
        replay_committed(&rewritten, &rtrace, &w.init_mem).map_err(MismatchKind::Replay)?;
    if replayed.regs != rstate.regs {
        let r = (0..rstate.regs.len())
            .find(|&i| replayed.regs[i] != rstate.regs[i])
            .unwrap();
        return Err(MismatchKind::ReplayStateDiff {
            detail: format!(
                "R{r}: replay {:#x}, executor {:#x}",
                replayed.regs[r], rstate.regs[r]
            ),
        });
    }
    if replayed.mem != rstate.mem {
        return Err(MismatchKind::ReplayStateDiff {
            detail: "memory image differs from executor".to_string(),
        });
    }
    // ...and agree with the oracle everywhere but the layout-dependent
    // link register (the rewrite moves code, so return addresses differ).
    let n = ostate.regs.len() - 1;
    if replayed.regs[..n] != ostate.regs[..n] || replayed.mem != ostate.mem {
        return Err(MismatchKind::ReplayStateDiff {
            detail: "state differs from the original-program oracle".to_string(),
        });
    }
    Ok(())
}

/// [`run_variant`] with panics converted into [`MismatchKind::Panic`].
pub fn run_variant_caught(
    w: &Workload,
    variant: Variant,
    cfg: &DiffConfig,
) -> Result<(), MismatchKind> {
    match catch_unwind(AssertUnwindSafe(|| run_variant(w, variant, cfg))) {
        Ok(r) => r,
        Err(payload) => Err(MismatchKind::Panic(describe_panic(payload))),
    }
}

/// Runs one seed under every variant, shrinking each failure before
/// reporting it. Returns every counterexample found (empty = clean).
pub fn run_seed(seed: u64, cfg: &DiffConfig) -> Vec<Counterexample> {
    run_seed_variants(seed, cfg, &Variant::ALL)
}

/// [`run_seed`] restricted to a subset of variants (the `--selector`
/// flag of the `verify` binary).
pub fn run_seed_variants(seed: u64, cfg: &DiffConfig, variants: &[Variant]) -> Vec<Counterexample> {
    let workload = match catch_unwind(AssertUnwindSafe(|| generate(seed, &cfg.gen))) {
        Ok(w) => w,
        Err(payload) => {
            return vec![Counterexample {
                seed,
                variant: "generator",
                kind: MismatchKind::Panic(describe_panic(payload)),
                program: String::new(),
                init_mem: Vec::new(),
                repro: repro_command(seed, "Struct-All", cfg.gen.adversarial),
            }]
        }
    };
    let mut out = Vec::new();
    for &variant in variants {
        if let Err(kind) = run_variant_caught(&workload, variant, cfg) {
            let bucket = kind.bucket();
            let shrunk = crate::shrink::shrink_workload(&workload, |cand| {
                run_variant_caught(cand, variant, cfg)
                    .err()
                    .is_some_and(|k| k.bucket() == bucket)
            });
            out.push(Counterexample {
                seed,
                variant: variant.name(),
                kind,
                program: format!("{}", shrunk.program),
                init_mem: shrunk.init_mem.clone(),
                repro: repro_command(seed, variant.name(), cfg.gen.adversarial),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variant_names_round_trip() {
        for v in Variant::ALL {
            assert_eq!(Variant::from_name(v.name()), Some(v));
        }
        assert_eq!(Variant::from_name("bogus"), None);
    }

    #[test]
    fn a_healthy_seed_is_clean_under_all_variants() {
        let cfg = DiffConfig::default();
        assert!(run_seed(3, &cfg).is_empty());
    }

    #[test]
    fn an_adversarial_seed_is_clean_under_all_variants() {
        let cfg = DiffConfig::adversarial();
        assert!(run_seed(5, &cfg).is_empty());
    }

    #[test]
    fn non_terminating_input_is_reported_not_hung() {
        // A hand-built infinite loop: the oracle must hit the
        // instruction limit and the harness must report it as a typed
        // mismatch instead of spinning or panicking.
        use mg_isa::{BrCond, Instruction, ProgramBuilder, Reg};
        let mut pb = ProgramBuilder::new("spin");
        let f = pb.func("main");
        let head = pb.block(f);
        pb.push(head, Instruction::li(Reg::R1, 1));
        let body = pb.block(f);
        pb.set_fallthrough(head, body);
        pb.push(body, Instruction::addi(Reg::R2, Reg::R2, 1));
        pb.push(body, Instruction::br(BrCond::Ne, Reg::R1, Reg::ZERO, body));
        let tail = pb.block(f);
        pb.set_fallthrough(body, tail);
        pb.push(tail, Instruction::halt());
        let w = Workload {
            program: pb.build().unwrap(),
            init_mem: Vec::new(),
        };
        let cfg = DiffConfig {
            exec_limit: 1_000,
            ..DiffConfig::default()
        };
        let r = run_variant_caught(&w, Variant::StructAll, &cfg);
        assert_eq!(r, Err(MismatchKind::OracleTruncated));
    }
}
