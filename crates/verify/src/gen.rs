//! Seeded random-program generation over the `mg-isa` builder.
//!
//! Programs are *structured*: control flow is composed from segments —
//! straight-line blocks, counted loops with reserved counter registers,
//! forward-only diamonds, and leaf calls — so every generated program
//! terminates by construction (the differential harness still runs the
//! functional executor with a limit and treats truncation as a bug in
//! the generator).
//!
//! Register discipline:
//!
//! * `R1..=R25` — the writable pool the instruction mix draws from;
//! * `R26` — memory base, set once at entry (all addresses are
//!   `R26 + small aligned offset`, keeping the touched footprint tiny);
//! * `R27`/`R28` — loop counters, never written by pool instructions;
//! * `R29` — scratch for diamond conditions;
//! * `R30`/`R31` — stack/link conventions, left alone.
//!
//! Adversarial mode additionally emits the shapes the fuzzer must not
//! choke on: 1-instruction blocks and a straight-line block longer than
//! 255 instructions (past the `u8` position range of an `MgTag`).

use mg_isa::{BrCond, Instruction, IsaError, Opcode, ProgramBuilder, Reg};
use mg_workloads::Workload;
use rand::{Rng, SeedableRng};

/// Base address of the generated programs' data segment.
pub const MEM_BASE: i64 = 0x2000;

/// Number of 8-byte slots addressable off the memory base.
pub const MEM_SLOTS: i64 = 32;

/// Knobs for random program generation.
#[derive(Clone, Debug)]
pub struct GenConfig {
    /// Number of top-level segments (straight-line / loop / diamond /
    /// call) composed in the entry function.
    pub segments: usize,
    /// Inclusive range of instructions per straight-line run.
    pub block_len: (usize, usize),
    /// Probability that an operand is drawn from recently-defined
    /// registers rather than the whole pool (dataflow density: higher
    /// means longer dependence chains and more internal dataflow).
    pub density: f64,
    /// Probability that a generated instruction is a memory operation.
    pub mem_frac: f64,
    /// Also emit adversarial shapes: 1-instruction blocks and one
    /// straight-line block with more than 255 instructions.
    pub adversarial: bool,
}

impl Default for GenConfig {
    fn default() -> GenConfig {
        GenConfig {
            segments: 6,
            block_len: (2, 10),
            density: 0.6,
            mem_frac: 0.25,
            adversarial: false,
        }
    }
}

impl GenConfig {
    /// The default mix plus every adversarial shape.
    pub fn adversarial() -> GenConfig {
        GenConfig {
            adversarial: true,
            ..GenConfig::default()
        }
    }
}

/// The writable register pool.
fn pool_reg(rng: &mut rand::rngs::StdRng) -> Reg {
    Reg::new(rng.gen_range(1u8..=25))
}

struct Emitter {
    rng: rand::rngs::StdRng,
    /// Recently defined pool registers, most recent last.
    recent: Vec<Reg>,
}

impl Emitter {
    fn src(&mut self, density: f64) -> Reg {
        if !self.recent.is_empty() && self.rng.gen_bool(density) {
            let i = self.rng.gen_range(0..self.recent.len());
            self.recent[i]
        } else {
            pool_reg(&mut self.rng)
        }
    }

    fn dest(&mut self) -> Reg {
        let d = pool_reg(&mut self.rng);
        self.recent.push(d);
        if self.recent.len() > 4 {
            self.recent.remove(0);
        }
        d
    }

    /// One random non-control instruction.
    fn work_inst(&mut self, cfg: &GenConfig) -> Instruction {
        if self.rng.gen_bool(cfg.mem_frac) {
            let offset = 8 * self.rng.gen_range(0..MEM_SLOTS);
            if self.rng.gen_bool(0.5) {
                let d = self.dest();
                Instruction::load(d, Reg::new(26), offset)
            } else {
                let data = self.src(cfg.density);
                Instruction::store(Reg::new(26), data, offset)
            }
        } else {
            match self.rng.gen_range(0u32..10) {
                // Register-register ALU (includes Mul/Div, which are
                // mg-ineligible — the enumerator must step around them).
                0..=4 => {
                    let op = Opcode::ALU_RR[self.rng.gen_range(0..Opcode::ALU_RR.len())];
                    let (a, b) = (self.src(cfg.density), self.src(cfg.density));
                    let d = self.dest();
                    Instruction::alu_rr(op, d, a, b)
                }
                // Register-immediate ALU.
                5..=8 => {
                    let op = Opcode::ALU_RI[self.rng.gen_range(0..Opcode::ALU_RI.len())];
                    let a = self.src(cfg.density);
                    let d = self.dest();
                    Instruction::alu_ri(op, d, a, self.rng.gen_range(-64i64..64))
                }
                _ => {
                    let d = self.dest();
                    Instruction::li(d, self.rng.gen_range(-256i64..256))
                }
            }
        }
    }

    fn work_run(&mut self, cfg: &GenConfig, len: usize) -> Vec<Instruction> {
        (0..len).map(|_| self.work_inst(cfg)).collect()
    }

    fn run_len(&mut self, cfg: &GenConfig) -> usize {
        let (lo, hi) = cfg.block_len;
        self.rng.gen_range(lo..=hi.max(lo))
    }
}

/// Generates a random, terminating workload from a seed.
///
/// The same seed and config always produce the same workload.
pub fn generate(seed: u64, cfg: &GenConfig) -> Workload {
    let mut em = Emitter {
        rng: rand::rngs::StdRng::seed_from_u64(seed),
        recent: Vec::new(),
    };
    let mut pb = ProgramBuilder::new(format!("fuzz-{seed}"));
    let main = pb.func("main");

    // Leaf function: straight-line work ending in ret. Declared first so
    // call segments can reference it; entry stays `main`.
    let leaf = pb.func("leaf");
    pb.set_entry(main);
    let lb = pb.block(leaf);
    let leaf_len = em.run_len(cfg);
    pb.push_all(lb, em.work_run(cfg, leaf_len));
    pb.push(lb, Instruction::ret());

    // Entry block: establish the memory base.
    let mut cur = pb.block(main);
    pb.push(cur, Instruction::li(Reg::new(26), MEM_BASE));

    let mut adversarial_shapes: Vec<u32> = if cfg.adversarial {
        // 0 = oversized block, 1 = 1-instruction block; both exactly once.
        vec![0, 1]
    } else {
        Vec::new()
    };

    for seg in 0..cfg.segments {
        match em.rng.gen_range(0u32..8) {
            // Straight-line run appended to the current block.
            0..=2 => {
                let len = em.run_len(cfg);
                pb.push_all(cur, em.work_run(cfg, len));
            }
            // Counted loop: li ctr, N; body; addi ctr,-1; bne ctr -> body.
            3..=4 => {
                let ctr = if seg % 2 == 0 {
                    Reg::new(27)
                } else {
                    Reg::new(28)
                };
                let n = em.rng.gen_range(1i64..=6);
                pb.push(cur, Instruction::li(ctr, n));
                let body = pb.block(main);
                pb.set_fallthrough(cur, body);
                let len = em.run_len(cfg);
                pb.push_all(body, em.work_run(cfg, len));
                pb.push(body, Instruction::addi(ctr, ctr, -1));
                pb.push(body, Instruction::br(BrCond::Ne, ctr, Reg::ZERO, body));
                let join = pb.block(main);
                pb.set_fallthrough(body, join);
                cur = join;
            }
            // Forward diamond: br over a side block (taken path skips it).
            5..=6 => {
                let (a, b) = (em.src(cfg.density), em.src(cfg.density));
                let cond = BrCond::ALL[em.rng.gen_range(0..BrCond::ALL.len())];
                // Placeholder target, patched once the join block exists.
                pb.push(cur, Instruction::br(cond, a, b, cur));
                let side = pb.block(main);
                pb.set_fallthrough(cur, side);
                let len = em.run_len(cfg);
                pb.push_all(side, em.work_run(cfg, len));
                let join = pb.block(main);
                pb.set_fallthrough(side, join);
                pb.patch_branch_target(cur, join);
                cur = join;
            }
            // Leaf call.
            _ => {
                pb.push(cur, Instruction::call(leaf));
                let next = pb.block(main);
                pb.set_fallthrough(cur, next);
                cur = next;
            }
        }
        if let Some(shape) = adversarial_shapes.pop() {
            // The current block may be a just-created empty join; it must
            // hold at least one instruction before gaining a fallthrough.
            if pb.block_len(cur) == 0 {
                let inst = em.work_inst(cfg);
                pb.push(cur, inst);
            }
            match shape {
                0 => {
                    // A block with more than 255 instructions: every
                    // block-relative position past 255 would truncate in
                    // an 8-bit encoding.
                    let big = pb.block(main);
                    pb.set_fallthrough(cur, big);
                    pb.push_all(big, em.work_run(cfg, 300));
                    let next = pb.block(main);
                    pb.set_fallthrough(big, next);
                    cur = next;
                }
                _ => {
                    // A 1-instruction block.
                    let tiny = pb.block(main);
                    pb.set_fallthrough(cur, tiny);
                    pb.push(tiny, em.work_inst(cfg));
                    let next = pb.block(main);
                    pb.set_fallthrough(tiny, next);
                    cur = next;
                }
            }
        }
    }
    // Make sure every block (including a just-created join) is nonempty,
    // then halt.
    if pb.block_len(cur) == 0 {
        pb.push(cur, em.work_inst(cfg));
    }
    pb.push(cur, Instruction::halt());

    let program = pb
        .build()
        .expect("generated programs are structurally valid");

    // Loader-placed initial memory: a few slots within the touched range.
    let mut init_mem = Vec::new();
    for slot in 0..MEM_SLOTS {
        if em.rng.gen_bool(0.25) {
            init_mem.push(((MEM_BASE + 8 * slot) as u64, em.rng.gen::<u64>()));
        }
    }
    Workload { program, init_mem }
}

/// Builds a program containing an empty basic block, returning the
/// structural error `mg-isa` reports. The adversarial "empty block"
/// shape cannot exist in a validated [`Program`] — this is the graceful
/// path the fuzzer asserts instead of a panic.
pub fn empty_block_error() -> IsaError {
    let mut pb = ProgramBuilder::new("empty-block");
    let f = pb.func("main");
    let b0 = pb.block(f);
    let _b1 = pb.block(f); // never filled
    pb.push(b0, Instruction::halt());
    pb.build().expect_err("empty block must not validate")
}

#[cfg(test)]
mod tests {
    use super::*;
    use mg_workloads::Executor;

    #[test]
    fn generation_is_deterministic() {
        let a = generate(42, &GenConfig::default());
        let b = generate(42, &GenConfig::default());
        assert_eq!(format!("{}", a.program), format!("{}", b.program));
        assert_eq!(a.init_mem, b.init_mem);
    }

    #[test]
    fn generated_programs_terminate() {
        for seed in 0..32 {
            let w = generate(seed, &GenConfig::default());
            let (trace, _) = Executor::new(&w.program)
                .with_limit(1_000_000)
                .run_with_mem(&w.init_mem)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert!(!trace.truncated, "seed {seed} did not terminate");
            assert!(!trace.is_empty());
        }
    }

    #[test]
    fn adversarial_mode_emits_extreme_blocks() {
        let w = generate(7, &GenConfig::adversarial());
        let lens: Vec<usize> = w.program.blocks().iter().map(|b| b.insts.len()).collect();
        assert!(
            lens.iter().any(|&l| l > 255),
            "no oversized block: {lens:?}"
        );
        assert!(lens.contains(&1), "no 1-instruction block: {lens:?}");
        // Still terminates.
        let (trace, _) = Executor::new(&w.program)
            .with_limit(1_000_000)
            .run_with_mem(&w.init_mem)
            .unwrap();
        assert!(!trace.truncated);
    }

    #[test]
    fn empty_blocks_fail_validation_gracefully() {
        assert!(matches!(empty_block_error(), IsaError::EmptyBlock(_)));
    }
}
