//! Counterexample shrinking: greedy delta-debugging over block contents.
//!
//! Given a failing workload and a predicate that re-checks the failure,
//! the shrinker repeatedly tries removing chunks of instructions (halving
//! chunk sizes, per block) and dropping the initial memory image, keeping
//! each reduction only when the *same* failure bucket still reproduces.
//! Structural validity is enforced by rebuilding through `Program::new`
//! after every edit — removals that leave an empty block or a dangling
//! fallthrough are simply skipped, so the shrinker can never manufacture
//! an invalid program.
//!
//! The predicate sees a complete [`Workload`]; callers typically close
//! over a `(variant, config)` pair and compare
//! [`MismatchKind::bucket`](crate::diff::MismatchKind::bucket) so the
//! shrink keeps the original failure mode rather than sliding into a
//! different one.

use mg_isa::Program;
use mg_workloads::Workload;

/// Upper bound on full improvement rounds (each round scans every block).
const MAX_ROUNDS: usize = 32;

/// Rebuilds `program` with `count` instructions removed from block
/// `block_idx` starting at `start`. Returns `None` when the result does
/// not validate.
fn without(program: &Program, block_idx: usize, start: usize, count: usize) -> Option<Program> {
    let mut blocks = program.blocks().to_vec();
    let insts = &mut blocks[block_idx].insts;
    if start >= insts.len() {
        return None;
    }
    let end = (start + count).min(insts.len());
    insts.drain(start..end);
    Program::new(
        program.name().to_string(),
        blocks,
        program.funcs().to_vec(),
        program.entry_func(),
    )
    .ok()
}

/// Greedily shrinks a failing workload while `still_fails` holds.
///
/// Returns the smallest workload found (possibly the input itself). If
/// the input does not satisfy `still_fails` — a flaky failure — it is
/// returned unchanged.
pub fn shrink_workload(w: &Workload, still_fails: impl Fn(&Workload) -> bool) -> Workload {
    let mut best = w.clone();
    if !still_fails(&best) {
        return best;
    }

    // Dropping the memory image first often removes an entire dimension.
    if !best.init_mem.is_empty() {
        let cand = Workload {
            program: best.program.clone(),
            init_mem: Vec::new(),
        };
        if still_fails(&cand) {
            best = cand;
        }
    }

    for _ in 0..MAX_ROUNDS {
        let mut improved = false;
        for bi in 0..best.program.blocks().len() {
            let len = best.program.blocks()[bi].insts.len();
            // Bisect: big chunks first, down to single instructions.
            let mut chunk = (len / 2).max(1);
            loop {
                let mut start = 0;
                while start < best.program.blocks()[bi].insts.len() {
                    let reduced = without(&best.program, bi, start, chunk)
                        .map(|program| Workload {
                            program,
                            init_mem: best.init_mem.clone(),
                        })
                        .filter(&still_fails);
                    if let Some(cand) = reduced {
                        best = cand;
                        improved = true;
                        // Retry the same offset: the tail shifted left.
                    } else {
                        start += chunk;
                    }
                }
                if chunk == 1 {
                    break;
                }
                chunk /= 2;
            }
        }
        if !improved {
            break;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, GenConfig};
    use mg_isa::Opcode;

    fn inst_count(w: &Workload) -> usize {
        w.program.blocks().iter().map(|b| b.insts.len()).sum()
    }

    fn has_op(w: &Workload, op: Opcode) -> bool {
        w.program
            .blocks()
            .iter()
            .any(|b| b.insts.iter().any(|i| i.op == op))
    }

    #[test]
    fn shrinks_toward_a_minimal_witness() {
        // Find a seed whose program contains a Mul, then shrink with
        // "still contains a Mul" as the failure predicate.
        let (seed, w) = (0..64)
            .map(|s| (s, generate(s, &GenConfig::default())))
            .find(|(_, w)| has_op(w, Opcode::Mul))
            .expect("some seed generates a Mul");
        let before = inst_count(&w);
        let shrunk = shrink_workload(&w, |c| has_op(c, Opcode::Mul));
        assert!(has_op(&shrunk, Opcode::Mul), "seed {seed} lost the witness");
        assert!(
            inst_count(&shrunk) < before,
            "seed {seed}: no reduction from {before}"
        );
        // Every block survives structurally (the shrinker can only emit
        // validated programs), and the witness block is tiny.
        assert!(inst_count(&shrunk) <= before / 2);
    }

    #[test]
    fn non_reproducing_failures_are_returned_unchanged() {
        let w = generate(1, &GenConfig::default());
        let out = shrink_workload(&w, |_| false);
        assert_eq!(inst_count(&out), inst_count(&w));
        assert_eq!(out.init_mem, w.init_mem);
    }

    #[test]
    fn init_mem_is_dropped_when_irrelevant() {
        let w = (0..32)
            .map(|s| generate(s, &GenConfig::default()))
            .find(|w| !w.init_mem.is_empty())
            .expect("some seed has init mem");
        let shrunk = shrink_workload(&w, |_| true);
        assert!(shrunk.init_mem.is_empty());
    }
}
