//! Candidate legality and rewritten-program structural invariants.
//!
//! The checks here are *independent*: rather than trusting the
//! [`CandidateShape`] the enumerator attached, the checker recomputes a
//! candidate's interface from the program text and validates it against
//! the paper's mini-graph legality constraints — at most
//! [`SelectionConfig::max_size`] constituents, at most
//! [`SelectionConfig::max_ext_inputs`] external register inputs, at most
//! one register output, at most one memory operation, and at most one
//! control transfer which must come last. Rewritten programs are
//! re-validated through `mg-isa`'s structural validator from scratch.

use mg_core::candidate::{Candidate, SelectionConfig, MAX_CANDIDATE_LEN};
use mg_isa::dataflow::liveness;
use mg_isa::{IsaError, Program, Reg};
use std::collections::BTreeSet;
use std::fmt;

/// One violated mini-graph legality constraint.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum InvariantViolation {
    /// Fewer than two or more than the configured maximum constituents.
    BadSize {
        /// Constituent count.
        len: usize,
    },
    /// Positions are not strictly ascending or fall outside the block.
    BadPositions,
    /// A constituent's opcode is not mini-graph eligible.
    IneligibleOpcode {
        /// Block position of the offending constituent.
        pos: usize,
    },
    /// More external register inputs than the interface allows.
    TooManyExtInputs {
        /// Distinct external input registers, recomputed.
        inputs: Vec<Reg>,
    },
    /// More than one value escapes the candidate.
    MultipleOutputs {
        /// Block positions whose defined value escapes.
        outputs: Vec<usize>,
    },
    /// More than one memory operation.
    MultipleMemOps {
        /// Number of memory constituents.
        count: usize,
    },
    /// More than one control transfer, or control not last.
    BadControl,
    /// The recorded [`CandidateShape`] disagrees with the recomputed
    /// interface.
    ///
    /// [`CandidateShape`]: mg_core::candidate::CandidateShape
    ShapeMismatch {
        /// Which interface field disagrees.
        field: &'static str,
    },
}

impl fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InvariantViolation::BadSize { len } => write!(f, "illegal size {len}"),
            InvariantViolation::BadPositions => write!(f, "positions not ascending/in range"),
            InvariantViolation::IneligibleOpcode { pos } => {
                write!(f, "ineligible opcode at block position {pos}")
            }
            InvariantViolation::TooManyExtInputs { inputs } => {
                write!(f, "{} external inputs: {inputs:?}", inputs.len())
            }
            InvariantViolation::MultipleOutputs { outputs } => {
                write!(f, "multiple escaping outputs at positions {outputs:?}")
            }
            InvariantViolation::MultipleMemOps { count } => {
                write!(f, "{count} memory operations")
            }
            InvariantViolation::BadControl => write!(f, "control transfer not unique/last"),
            InvariantViolation::ShapeMismatch { field } => {
                write!(f, "recorded shape disagrees on {field}")
            }
        }
    }
}

/// Checks one selected candidate against the paper's legality
/// constraints, recomputing its interface from the program. Returns every
/// violation found (empty = legal).
pub fn check_candidate(
    program: &Program,
    cand: &Candidate,
    cfg: &SelectionConfig,
) -> Vec<InvariantViolation> {
    let mut violations = Vec::new();
    let block = match program.blocks().get(cand.block.index()) {
        Some(b) => b,
        None => return vec![InvariantViolation::BadPositions],
    };
    let n = block.insts.len();
    if cand.positions.windows(2).any(|w| w[0] >= w[1])
        || cand.positions.iter().any(|&p| p >= n)
        || cand.positions.is_empty()
    {
        return vec![InvariantViolation::BadPositions];
    }
    if cand.len() < 2 || cand.len() > cfg.max_size.min(MAX_CANDIDATE_LEN) {
        violations.push(InvariantViolation::BadSize { len: cand.len() });
    }
    let members: BTreeSet<usize> = cand.positions.iter().copied().collect();
    for &p in &cand.positions {
        if !block.insts[p].op.mg_eligible() {
            violations.push(InvariantViolation::IneligibleOpcode { pos: p });
        }
    }

    // External inputs: a register read by a member whose reaching def is
    // not an earlier member.
    let mut ext_inputs: Vec<Reg> = Vec::new();
    for &p in &cand.positions {
        for r in block.insts[p].uses() {
            let internal = (0..p)
                .rev()
                .find(|&q| block.insts[q].def() == Some(r))
                .is_some_and(|q| members.contains(&q));
            if !internal && !ext_inputs.contains(&r) {
                ext_inputs.push(r);
            }
        }
    }
    if ext_inputs.len() > cfg.max_ext_inputs {
        violations.push(InvariantViolation::TooManyExtInputs {
            inputs: ext_inputs.clone(),
        });
    }

    // Outputs: a member def consumed by a non-member before redefinition,
    // or still live at block exit.
    let live_out = liveness(program).live_out(cand.block);
    let mut outputs: Vec<usize> = Vec::new();
    for &p in &cand.positions {
        let Some(d) = block.insts[p].def() else {
            continue;
        };
        let mut escapes = false;
        let mut redefined = false;
        for (q, inst) in block.insts.iter().enumerate().skip(p + 1) {
            if inst.uses().any(|r| r == d) && !members.contains(&q) {
                escapes = true;
            }
            if mg_isa::dataflow::uses_all_regs(inst) && !members.contains(&q) {
                escapes = true;
            }
            if inst.def() == Some(d) {
                redefined = true;
                break;
            }
        }
        if !redefined && live_out.contains(d) {
            escapes = true;
        }
        if escapes {
            outputs.push(p);
        }
    }
    if outputs.len() > 1 {
        violations.push(InvariantViolation::MultipleOutputs {
            outputs: outputs.clone(),
        });
    }

    // Memory and control counts; control must be the last member.
    let mem_count = cand
        .positions
        .iter()
        .filter(|&&p| block.insts[p].op.is_mem())
        .count();
    if mem_count > 1 {
        violations.push(InvariantViolation::MultipleMemOps { count: mem_count });
    }
    let controls: Vec<usize> = cand
        .positions
        .iter()
        .copied()
        .filter(|&p| block.insts[p].op.is_control())
        .collect();
    if controls.len() > 1 || (controls.len() == 1 && controls[0] != *cand.positions.last().unwrap())
    {
        violations.push(InvariantViolation::BadControl);
    }

    // Cross-check the recorded shape against the recomputed interface.
    if cand.shape.srcs.len() != cand.len() || cand.shape.lat_prefix.len() != cand.len() + 1 {
        violations.push(InvariantViolation::ShapeMismatch { field: "lengths" });
    }
    let shape_ext: BTreeSet<Reg> = cand.shape.ext_inputs.iter().map(|&(r, _)| r).collect();
    let recomputed_ext: BTreeSet<Reg> = ext_inputs.into_iter().collect();
    if shape_ext != recomputed_ext {
        violations.push(InvariantViolation::ShapeMismatch {
            field: "ext_inputs",
        });
    }
    let shape_out = cand.shape.output_pos.map(|op| cand.positions[op as usize]);
    if shape_out != outputs.first().copied() && outputs.len() <= 1 {
        violations.push(InvariantViolation::ShapeMismatch { field: "output" });
    }
    let shape_mem = cand.shape.mem.map(|(mp, _)| cand.positions[mp as usize]);
    let recomputed_mem = cand
        .positions
        .iter()
        .copied()
        .find(|&p| block.insts[p].op.is_mem());
    if shape_mem != recomputed_mem {
        violations.push(InvariantViolation::ShapeMismatch { field: "mem" });
    }
    violations
}

/// Re-validates a (rewritten) program through `mg-isa`'s structural
/// validator from its raw parts, including every mini-graph tag.
///
/// # Errors
///
/// Returns the structural error `Program::new` reports, if any.
pub fn revalidate(program: &Program) -> Result<(), IsaError> {
    Program::new(
        program.name().to_string(),
        program.blocks().to_vec(),
        program.funcs().to_vec(),
        program.entry_func(),
    )
    .map(|_| ())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mg_core::candidate::{enumerate, CandidateShape};
    use mg_isa::{BlockId, Instruction, ProgramBuilder};

    fn program_of(insts: Vec<Instruction>) -> Program {
        let mut pb = ProgramBuilder::new("t");
        let f = pb.func("main");
        let b = pb.block(f);
        for i in insts {
            pb.push(b, i);
        }
        pb.push(b, Instruction::halt());
        pb.build().unwrap()
    }

    #[test]
    fn enumerated_candidates_are_all_legal() {
        let p = program_of(vec![
            Instruction::li(Reg::R1, 1),
            Instruction::addi(Reg::R2, Reg::R1, 1),
            Instruction::load(Reg::R3, Reg::R2, 0),
            Instruction::add(Reg::R4, Reg::R3, Reg::R1),
            Instruction::store(Reg::R10, Reg::R4, 0),
        ]);
        let cfg = SelectionConfig::default();
        for cand in enumerate(&p, &cfg) {
            let v = check_candidate(&p, &cand, &cfg);
            assert!(v.is_empty(), "candidate {:?}: {v:?}", cand.positions);
        }
    }

    #[test]
    fn corrupt_candidates_are_flagged() {
        let p = program_of(vec![
            Instruction::li(Reg::R1, 1),
            Instruction::addi(Reg::R2, Reg::R1, 1),
        ]);
        // Descending positions.
        let bad = Candidate {
            block: BlockId(0),
            positions: vec![1, 0],
            shape: CandidateShape::default(),
        };
        assert_eq!(
            check_candidate(&p, &bad, &SelectionConfig::default()),
            vec![InvariantViolation::BadPositions]
        );
        // An otherwise-plausible pair with a fabricated empty shape must
        // at least trip the shape cross-check.
        let fake = Candidate {
            block: BlockId(0),
            positions: vec![0, 1],
            shape: CandidateShape::default(),
        };
        let v = check_candidate(&p, &fake, &SelectionConfig::default());
        assert!(
            v.iter()
                .any(|x| matches!(x, InvariantViolation::ShapeMismatch { .. })),
            "{v:?}"
        );
    }

    #[test]
    fn ineligible_and_overweight_candidates_are_flagged() {
        let p = program_of(vec![
            Instruction::load(Reg::R1, Reg::R10, 0),
            Instruction::load(Reg::R2, Reg::R10, 8),
            Instruction::mul(Reg::R3, Reg::R1, Reg::R2),
        ]);
        let bad = Candidate {
            block: BlockId(0),
            positions: vec![0, 1, 2],
            shape: CandidateShape::default(),
        };
        let v = check_candidate(&p, &bad, &SelectionConfig::default());
        assert!(v
            .iter()
            .any(|x| matches!(x, InvariantViolation::IneligibleOpcode { pos: 2 })));
        assert!(v
            .iter()
            .any(|x| matches!(x, InvariantViolation::MultipleMemOps { count: 2 })));
    }

    #[test]
    fn revalidate_accepts_valid_programs() {
        let p = program_of(vec![Instruction::li(Reg::R1, 1)]);
        assert!(revalidate(&p).is_ok());
    }
}
