//! Differential oracle and property-based fuzzing for the mini-graph
//! toolchain.
//!
//! The simulator computes no architectural values — the timing engine is
//! trace-driven — so correctness is established differentially:
//!
//! * [`gen`] — seeded random-program generation over the `mg-isa`
//!   builder: structured control flow (loops, diamonds, calls) that
//!   terminates by construction, plus adversarial shapes (1-instruction
//!   blocks, blocks past the 255-position `u8` encoding range);
//! * [`diff`] — the harness: the functional [`Executor`] is the oracle;
//!   every generated program runs through the full pipeline under all
//!   five selector variants, asserting bit-identical final architectural
//!   state, exact committed-instruction counts, and an independent
//!   functional replay of the committed trace;
//! * [`invariants`] — recomputes each *selected* candidate's interface
//!   from the program text and checks it against the paper's legality
//!   constraints (≤ 3 external inputs, ≤ 1 output, ≤ 1 memory op,
//!   ≤ 1 control op which must be last), and re-validates rewritten
//!   programs structurally from scratch;
//! * [`shrink`] — greedy delta-debugging of failing workloads, keeping
//!   the original failure bucket; every counterexample carries a
//!   one-line repro command.
//!
//! [`Executor`]: mg_workloads::Executor

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod diff;
pub mod gen;
pub mod invariants;
pub mod shrink;

pub use diff::{
    repro_command, run_seed, run_seed_variants, run_variant, run_variant_caught, Counterexample,
    DiffConfig, MismatchKind, Variant,
};
pub use gen::{generate, GenConfig};
pub use invariants::{check_candidate, revalidate, InvariantViolation};
pub use shrink::shrink_workload;
