//! Fixed-seed property tests: the differential harness over all five
//! selector variants.
//!
//! The proptest cases derive their seeds deterministically, so CI runs
//! are reproducible; the wider seed sweep (hundreds of seeds) lives in
//! the `verify` binary of `mg-bench`, which CI also runs.

use mg_verify::diff::{run_variant_caught, DiffConfig, Variant};
use mg_verify::gen::{generate, GenConfig};
use mg_verify::{run_seed, shrink_workload};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every variant is clean on every generated default-mix program.
    #[test]
    fn all_variants_clean_on_default_mix(seed in 0u64..1024) {
        let cfg = DiffConfig::default();
        let w = generate(seed, &cfg.gen);
        for variant in Variant::ALL {
            let r = run_variant_caught(&w, variant, &cfg);
            prop_assert!(
                r.is_ok(),
                "seed {seed} / {}: {}", variant.name(), r.unwrap_err()
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    /// Adversarial shapes — 1-instruction blocks and >255-instruction
    /// blocks — are handled by every variant without panics or
    /// mismatches.
    fn all_variants_clean_on_adversarial_mix(seed in 0u64..1024) {
        let cfg = DiffConfig::adversarial();
        let w = generate(seed, &cfg.gen);
        for variant in Variant::ALL {
            let r = run_variant_caught(&w, variant, &cfg);
            prop_assert!(
                r.is_ok(),
                "seed {seed} / {}: {}", variant.name(), r.unwrap_err()
            );
        }
    }

    #[test]
    /// The harness itself is deterministic: running a seed twice gives
    /// the same verdict.
    fn harness_is_deterministic(seed in 0u64..256) {
        let cfg = DiffConfig::default();
        let a = run_seed(seed, &cfg);
        let b = run_seed(seed, &cfg);
        prop_assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            prop_assert_eq!(&x.kind, &y.kind);
            prop_assert_eq!(&x.program, &y.program);
        }
    }
}

/// Empty blocks cannot exist in a validated program; the generator's
/// probe returns the typed structural error instead of panicking.
#[test]
fn empty_blocks_are_a_typed_error() {
    assert!(matches!(
        mg_verify::gen::empty_block_error(),
        mg_isa::IsaError::EmptyBlock(_)
    ));
}

/// Shrinking preserves the failure predicate and only ever produces
/// structurally valid programs.
#[test]
fn shrinking_preserves_the_failure_bucket() {
    let w = generate(11, &GenConfig::adversarial());
    // Use "some block is oversized" as a stand-in failure: shrink must
    // keep an oversized block while discarding unrelated instructions.
    let oversized =
        |c: &mg_workloads::Workload| c.program.blocks().iter().any(|b| b.insts.len() > 255);
    assert!(oversized(&w));
    let shrunk = shrink_workload(&w, oversized);
    assert!(oversized(&shrunk));
    let total = |c: &mg_workloads::Workload| -> usize {
        c.program.blocks().iter().map(|b| b.insts.len()).sum()
    };
    assert!(total(&shrunk) < total(&w));
    // The result still passes full structural validation.
    assert!(mg_verify::revalidate(&shrunk.program).is_ok());
}
