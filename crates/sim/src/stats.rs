//! Simulation statistics.

use crate::bpred::BPredStats;
use crate::cache::CacheStats;
use crate::storesets::StoreSetsStats;
use serde::{Deserialize, Serialize};

/// Counters accumulated over a timing simulation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct SimStats {
    /// Total cycles from first fetch to last commit.
    pub cycles: u64,
    /// Committed *instructions* (mini-graph constituents count
    /// individually; synthesized outlining jumps do not).
    pub committed_instrs: u64,
    /// Committed *operations* (handles and synthesized jumps count once).
    pub committed_ops: u64,
    /// Committed mini-graph handles.
    pub mg_handles: u64,
    /// Committed instructions embedded in (enabled) mini-graph handles.
    pub mg_embedded_instrs: u64,
    /// Committed instructions executed in outlined (disabled) form.
    pub outlined_instrs: u64,
    /// Synthesized outlining jumps fetched for disabled instances.
    pub outline_jumps: u64,
    /// Memory-ordering violation flushes.
    pub violation_flushes: u64,
    /// Handle executions that experienced external-serialization delay
    /// (the last-arriving operand was a serializing input and the handle
    /// issued on its arrival).
    pub serialized_handles: u64,
    /// Serialized handles whose delay propagated to a consumer.
    pub harmful_serializations: u64,
    /// Mini-graph templates dynamically disabled (final state).
    pub disabled_templates: u64,
    /// Branch prediction statistics.
    pub bpred: BPredStats,
    /// Instruction L1 statistics.
    pub il1: CacheStats,
    /// Data L1 statistics.
    pub dl1: CacheStats,
    /// Unified L2 statistics.
    pub l2: CacheStats,
    /// StoreSets statistics.
    pub storesets: StoreSetsStats,
}

impl SimStats {
    /// Committed instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed_instrs as f64 / self.cycles as f64
        }
    }

    /// Dynamic mini-graph coverage: the fraction of committed
    /// instructions embedded in enabled mini-graph handles.
    pub fn coverage(&self) -> f64 {
        if self.committed_instrs == 0 {
            0.0
        } else {
            self.mg_embedded_instrs as f64 / self.committed_instrs as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_and_coverage() {
        let s = SimStats {
            cycles: 100,
            committed_instrs: 250,
            mg_embedded_instrs: 50,
            ..SimStats::default()
        };
        assert!((s.ipc() - 2.5).abs() < 1e-12);
        assert!((s.coverage() - 0.2).abs() < 1e-12);
        assert_eq!(SimStats::default().ipc(), 0.0);
        assert_eq!(SimStats::default().coverage(), 0.0);
    }
}
