//! Simulation statistics.

use crate::bpred::BPredStats;
use crate::cache::CacheStats;
use crate::storesets::StoreSetsStats;
use serde::{Deserialize, Serialize};

/// Counters accumulated over a timing simulation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct SimStats {
    /// Total cycles from first fetch to last commit.
    pub cycles: u64,
    /// Committed *instructions* (mini-graph constituents count
    /// individually; synthesized outlining jumps do not).
    pub committed_instrs: u64,
    /// Committed *operations* (handles and synthesized jumps count once).
    pub committed_ops: u64,
    /// Committed mini-graph handles.
    pub mg_handles: u64,
    /// Committed instructions embedded in (enabled) mini-graph handles.
    pub mg_embedded_instrs: u64,
    /// Committed instructions executed in outlined (disabled) form.
    pub outlined_instrs: u64,
    /// Synthesized outlining jumps fetched for disabled instances.
    pub outline_jumps: u64,
    /// Memory-ordering violation flushes.
    pub violation_flushes: u64,
    /// Handle executions that experienced external-serialization delay
    /// (the last-arriving operand was a serializing input and the handle
    /// issued on its arrival).
    pub serialized_handles: u64,
    /// Serialized handles whose delay propagated to a consumer.
    pub harmful_serializations: u64,
    /// Mini-graph templates dynamically disabled (final state).
    pub disabled_templates: u64,
    /// Branch prediction statistics.
    pub bpred: BPredStats,
    /// Instruction L1 statistics.
    pub il1: CacheStats,
    /// Data L1 statistics.
    pub dl1: CacheStats,
    /// Unified L2 statistics.
    pub l2: CacheStats,
    /// StoreSets statistics.
    pub storesets: StoreSetsStats,
}

impl SimStats {
    /// Committed instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed_instrs as f64 / self.cycles as f64
        }
    }

    /// Dynamic mini-graph coverage: the fraction of committed
    /// instructions embedded in enabled mini-graph handles.
    pub fn coverage(&self) -> f64 {
        if self.committed_instrs == 0 {
            0.0
        } else {
            self.mg_embedded_instrs as f64 / self.committed_instrs as f64
        }
    }

    /// Committed instructions that executed as plain singletons: neither
    /// embedded in an enabled handle nor part of an outlined (disabled)
    /// instance.
    pub fn singleton_instrs(&self) -> u64 {
        self.committed_instrs
            .saturating_sub(self.mg_embedded_instrs)
            .saturating_sub(self.outlined_instrs)
    }

    /// Checks the accounting identities every run must satisfy, returning
    /// the first violated one as a message.
    ///
    /// - `committed_instrs = mg_embedded_instrs + outlined_instrs +
    ///   singleton instrs` (every committed instruction is exactly one of
    ///   the three) — checked as the two subtractions not underflowing.
    /// - `committed_ops = mg_handles + outline_jumps +
    ///   (committed_instrs - mg_embedded_instrs)`: handles commit as one
    ///   op covering their embedded instructions; every other instruction
    ///   commits as its own op, plus the synthesized jumps.
    /// - `committed_ops ≤ committed_instrs + outline_jumps` and, whenever
    ///   any instruction committed, `committed_ops ≥ 1`.
    pub fn check_invariants(&self) -> Result<(), String> {
        if self.mg_embedded_instrs + self.outlined_instrs > self.committed_instrs {
            return Err(format!(
                "mg_embedded ({}) + outlined ({}) exceed committed_instrs ({})",
                self.mg_embedded_instrs, self.outlined_instrs, self.committed_instrs
            ));
        }
        let expect_ops = self.mg_handles
            + self.outline_jumps
            + (self.committed_instrs - self.mg_embedded_instrs);
        if self.committed_ops != expect_ops {
            return Err(format!(
                "committed_ops ({}) != handles ({}) + jumps ({}) + non-embedded instrs ({})",
                self.committed_ops,
                self.mg_handles,
                self.outline_jumps,
                self.committed_instrs - self.mg_embedded_instrs
            ));
        }
        if self.committed_ops > self.committed_instrs + self.outline_jumps {
            return Err(format!(
                "committed_ops ({}) exceed committed_instrs ({}) + outline_jumps ({})",
                self.committed_ops, self.committed_instrs, self.outline_jumps
            ));
        }
        if self.committed_instrs > 0 && self.committed_ops == 0 {
            return Err("instructions committed but no ops did".to_string());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_and_coverage() {
        let s = SimStats {
            cycles: 100,
            committed_instrs: 250,
            mg_embedded_instrs: 50,
            ..SimStats::default()
        };
        assert!((s.ipc() - 2.5).abs() < 1e-12);
        assert!((s.coverage() - 0.2).abs() < 1e-12);
        assert_eq!(SimStats::default().ipc(), 0.0);
        assert_eq!(SimStats::default().coverage(), 0.0);
    }

    #[test]
    fn invariants_accept_consistent_accounting() {
        // 10 instrs: 4 embedded in 2 handles, 3 outlined (plus 2 jumps),
        // 3 plain singletons → ops = 2 + 2 + (10 - 4) = 10... jumps are
        // extra ops on top of the non-embedded instructions.
        let s = SimStats {
            cycles: 50,
            committed_instrs: 10,
            committed_ops: 2 + 2 + (10 - 4),
            mg_handles: 2,
            mg_embedded_instrs: 4,
            outlined_instrs: 3,
            outline_jumps: 2,
            ..SimStats::default()
        };
        assert_eq!(s.check_invariants(), Ok(()));
        assert_eq!(s.singleton_instrs(), 3);
        assert_eq!(SimStats::default().check_invariants(), Ok(()));
    }

    #[test]
    fn invariants_reject_bad_partitions() {
        let over_embedded = SimStats {
            committed_instrs: 5,
            mg_embedded_instrs: 4,
            outlined_instrs: 2,
            ..SimStats::default()
        };
        assert!(over_embedded.check_invariants().is_err());

        let wrong_ops = SimStats {
            committed_instrs: 5,
            committed_ops: 7,
            ..SimStats::default()
        };
        assert!(wrong_ops.check_invariants().is_err());

        let missing_ops = SimStats {
            committed_instrs: 5,
            committed_ops: 0,
            mg_handles: 0,
            mg_embedded_instrs: 5,
            ..SimStats::default()
        };
        assert!(missing_ops.check_invariants().is_err());
    }
}
