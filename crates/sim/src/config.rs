//! Machine configurations (Table 1 of the paper).

use serde::{Deserialize, Serialize};

/// A set-associative cache's geometry and hit latency.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u32,
    /// Associativity (ways).
    pub assoc: u32,
    /// Line size in bytes.
    pub line_bytes: u32,
    /// Access latency on a hit, in cycles.
    pub hit_lat: u32,
}

impl CacheConfig {
    /// Number of sets.
    pub fn sets(&self) -> u32 {
        self.size_bytes / (self.assoc * self.line_bytes)
    }

    /// Validates power-of-two geometry.
    pub fn is_valid(&self) -> bool {
        self.line_bytes.is_power_of_two()
            && self.sets().is_power_of_two()
            && self.size_bytes == self.sets() * self.assoc * self.line_bytes
    }
}

/// Branch predictor configuration: hybrid bimodal/gshare with a meta
/// chooser, a set-associative BTB, and a return address stack.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct BPredConfig {
    /// log2 of bimodal table entries.
    pub bimodal_bits: u32,
    /// log2 of gshare table entries.
    pub gshare_bits: u32,
    /// Global history length for gshare.
    pub hist_len: u32,
    /// log2 of meta-chooser entries.
    pub meta_bits: u32,
    /// BTB sets.
    pub btb_sets: u32,
    /// BTB associativity.
    pub btb_assoc: u32,
    /// Return-address-stack entries.
    pub ras_entries: u32,
}

impl BPredConfig {
    /// The paper's 24Kb hybrid predictor with a 2K-entry 4-way BTB and a
    /// 32-entry RAS.
    pub fn paper() -> BPredConfig {
        BPredConfig {
            bimodal_bits: 12,
            gshare_bits: 12,
            hist_len: 12,
            meta_bits: 12,
            btb_sets: 512,
            btb_assoc: 4,
            ras_entries: 32,
        }
    }
}

/// StoreSets memory-dependence predictor configuration.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct StoreSetsConfig {
    /// Store-set ID table entries (power of two).
    pub ssit_entries: u32,
}

impl StoreSetsConfig {
    /// The paper's 1K-entry predictor.
    pub fn paper() -> StoreSetsConfig {
        StoreSetsConfig { ssit_entries: 1024 }
    }
}

/// Mini-graph execution support.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct MgConfig {
    /// Whether handles are recognized (mini-graph processor) or every
    /// tagged instance executes in its outlined singleton form
    /// (compatibility mode).
    pub enabled: bool,
    /// Maximum handles issued per cycle.
    pub max_mg_issue: u32,
    /// Of those, maximum handles containing a memory operation.
    pub max_mem_mg_issue: u32,
    /// Mini-graph table entries (template budget).
    pub mgt_entries: u32,
    /// Number of ALU pipelines (bounds `max_mg_issue`).
    pub alu_pipelines: u32,
    /// ALU pipeline depth (bounds constituent count).
    pub alu_pipeline_depth: u32,
    /// Whether constituents execute strictly in series (the paper's ALU
    /// pipeline design; rule #2). `false` models an idealized MGT that
    /// executes constituents in dataflow order — an ablation for §4.1's
    /// claim that internal serialization is an acceptable simplification.
    pub internal_serialization: bool,
}

impl MgConfig {
    /// The paper's mini-graph support: ≤4-instruction mini-graphs, 2
    /// handles issued per cycle (one with memory), a 512-entry MGT, and
    /// two 4-stage ALU pipelines.
    pub fn paper() -> MgConfig {
        MgConfig {
            enabled: true,
            max_mg_issue: 2,
            max_mem_mg_issue: 1,
            mgt_entries: 512,
            alu_pipelines: 2,
            alu_pipeline_depth: 4,
            internal_serialization: true,
        }
    }

    /// Mini-graph support disabled entirely.
    pub fn off() -> MgConfig {
        MgConfig {
            enabled: false,
            ..MgConfig::paper()
        }
    }
}

/// A complete machine configuration.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct MachineConfig {
    /// Configuration name (for reports).
    pub name: String,
    /// Fetch width (instructions per cycle; a handle counts as one).
    pub fetch_width: u32,
    /// Rename/dispatch width.
    pub rename_width: u32,
    /// Total issue width (sum of port grants per cycle is further
    /// constrained per class below).
    pub issue_width: u32,
    /// Commit width.
    pub commit_width: u32,
    /// Issue-queue entries.
    pub iq_entries: u32,
    /// Physical registers (architectural + rename).
    pub phys_regs: u32,
    /// Reorder-buffer entries.
    pub rob_entries: u32,
    /// Load-queue entries.
    pub lq_entries: u32,
    /// Store-queue entries.
    pub sq_entries: u32,
    /// Simple-integer issues per cycle.
    pub issue_simple: u32,
    /// Complex-integer issues per cycle.
    pub issue_complex: u32,
    /// Load issues per cycle.
    pub issue_load: u32,
    /// Store issues per cycle.
    pub issue_store: u32,
    /// Front-end depth in cycles from fetch to dispatch (predict + I$ +
    /// decode + rename stages).
    pub front_depth: u32,
    /// Cycles from issue selection to execution start (schedule +
    /// register read).
    pub sched_to_exec: u32,
    /// Instruction L1 cache.
    pub il1: CacheConfig,
    /// Data L1 cache.
    pub dl1: CacheConfig,
    /// Unified L2 cache.
    pub l2: CacheConfig,
    /// Main-memory access latency in cycles.
    pub mem_lat: u32,
    /// Branch prediction.
    pub bpred: BPredConfig,
    /// Memory-dependence prediction.
    pub storesets: StoreSetsConfig,
    /// Mini-graph support.
    pub mg: MgConfig,
}

#[cfg(feature = "obs")]
impl MachineConfig {
    /// The queue capacities the observability collector sizes its
    /// occupancy histograms and stall table from.
    pub fn obs_caps(&self) -> mg_obs::MachineCaps {
        mg_obs::MachineCaps {
            issue_width: self.issue_width as usize,
            iq: self.iq_entries as usize,
            rob: self.rob_entries as usize,
            lq: self.lq_entries as usize,
            sq: self.sq_entries as usize,
        }
    }
}

/// Number of rename (non-architectural) registers in a configuration.
///
/// The paper's Alpha machine has 64 architectural registers and 144/120
/// physical ones (80/56 rename registers). This ISA has 32 architectural
/// registers; the presets below keep the paper's *rename* register counts.
pub fn rename_regs(cfg: &MachineConfig) -> u32 {
    cfg.phys_regs - mg_isa::reg::NUM_ARCH_REGS as u32
}

const PAPER_IL1: CacheConfig = CacheConfig {
    size_bytes: 32 * 1024,
    assoc: 2,
    line_bytes: 64,
    hit_lat: 3,
};
const PAPER_DL1: CacheConfig = CacheConfig {
    size_bytes: 32 * 1024,
    assoc: 2,
    line_bytes: 64,
    hit_lat: 3,
};
const PAPER_L2: CacheConfig = CacheConfig {
    size_bytes: 1024 * 1024,
    assoc: 4,
    line_bytes: 64,
    hit_lat: 12,
};

fn paper_common(name: &str) -> MachineConfig {
    MachineConfig {
        name: name.into(),
        fetch_width: 4,
        rename_width: 4,
        issue_width: 4,
        commit_width: 4,
        iq_entries: 30,
        phys_regs: 32 + 80,
        rob_entries: 128,
        lq_entries: 48,
        sq_entries: 32,
        issue_simple: 4,
        issue_complex: 1,
        issue_load: 2,
        issue_store: 1,
        front_depth: 7,   // 1 predict + 3 I$ + 1 decode + 2 rename
        sched_to_exec: 3, // 1 schedule + 2 regread
        il1: PAPER_IL1,
        dl1: PAPER_DL1,
        l2: PAPER_L2,
        mem_lat: 200,
        bpred: BPredConfig::paper(),
        storesets: StoreSetsConfig::paper(),
        mg: MgConfig::off(),
    }
}

impl MachineConfig {
    /// The fully-provisioned baseline: 4-way fetch/issue/commit, 30-entry
    /// issue queue, 80 rename registers (paper: 144 physical).
    pub fn baseline() -> MachineConfig {
        paper_common("baseline-4way")
    }

    /// The reduced machine: 3-way fetch/issue/commit, 20-entry issue
    /// queue, 56 rename registers (paper: 120 physical), 3 simple ALUs,
    /// 1 load port.
    pub fn reduced() -> MachineConfig {
        MachineConfig {
            name: "reduced-3way".into(),
            fetch_width: 3,
            rename_width: 3,
            issue_width: 3,
            commit_width: 3,
            iq_entries: 20,
            phys_regs: 32 + 56,
            issue_simple: 3,
            issue_complex: 1,
            issue_load: 1,
            issue_store: 1,
            ..paper_common("")
        }
    }

    /// A further-reduced 2-way machine (Figure 9 robustness study).
    pub fn two_way() -> MachineConfig {
        MachineConfig {
            name: "2way".into(),
            fetch_width: 2,
            rename_width: 2,
            issue_width: 2,
            commit_width: 2,
            iq_entries: 14,
            phys_regs: 32 + 40,
            issue_simple: 2,
            issue_complex: 1,
            issue_load: 1,
            issue_store: 1,
            ..paper_common("")
        }
    }

    /// An 8-way machine (Figure 9 robustness study).
    pub fn eight_way() -> MachineConfig {
        MachineConfig {
            name: "8way".into(),
            fetch_width: 8,
            rename_width: 8,
            issue_width: 8,
            commit_width: 8,
            iq_entries: 60,
            phys_regs: 32 + 160,
            rob_entries: 256,
            issue_simple: 8,
            issue_complex: 2,
            issue_load: 4,
            issue_store: 2,
            ..paper_common("")
        }
    }

    /// The reduced machine with the data-side memory hierarchy quartered:
    /// 8KB D-L1 and 256KB L2 (Figure 9's `dmem/4`).
    pub fn reduced_dmem4() -> MachineConfig {
        MachineConfig {
            name: "reduced-dmem4".into(),
            dl1: CacheConfig {
                size_bytes: 8 * 1024,
                ..PAPER_DL1
            },
            l2: CacheConfig {
                size_bytes: 256 * 1024,
                ..PAPER_L2
            },
            ..MachineConfig::reduced()
        }
    }

    /// Returns a copy with mini-graph support enabled.
    pub fn with_mg(mut self, mg: MgConfig) -> MachineConfig {
        self.mg = mg;
        self
    }

    /// Validates structural consistency.
    pub fn is_valid(&self) -> bool {
        self.fetch_width >= 1
            && self.issue_width >= 1
            && self.commit_width >= 1
            && self.iq_entries >= 2
            && self.phys_regs > mg_isa::reg::NUM_ARCH_REGS as u32
            && self.rob_entries >= 4
            && self.il1.is_valid()
            && self.dl1.is_valid()
            && self.l2.is_valid()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_valid() {
        for cfg in [
            MachineConfig::baseline(),
            MachineConfig::reduced(),
            MachineConfig::two_way(),
            MachineConfig::eight_way(),
            MachineConfig::reduced_dmem4(),
        ] {
            assert!(cfg.is_valid(), "{} invalid", cfg.name);
        }
    }

    #[test]
    fn reduced_matches_table1_ratios() {
        let base = MachineConfig::baseline();
        let red = MachineConfig::reduced();
        assert_eq!(base.fetch_width, 4);
        assert_eq!(red.fetch_width, 3);
        assert_eq!(base.iq_entries, 30);
        assert_eq!(red.iq_entries, 20);
        // 80 vs 56 rename registers, as in the paper.
        assert_eq!(rename_regs(&base), 80);
        assert_eq!(rename_regs(&red), 56);
        assert_eq!(red.issue_load, 1);
        assert_eq!(base.issue_load, 2);
    }

    #[test]
    fn cache_geometry() {
        let c = PAPER_IL1;
        assert!(c.is_valid());
        assert_eq!(c.sets(), 256);
        let l2 = PAPER_L2;
        assert_eq!(l2.sets(), 4096);
    }

    #[test]
    fn dmem4_quarters_data_caches_only() {
        let d = MachineConfig::reduced_dmem4();
        let r = MachineConfig::reduced();
        assert_eq!(d.dl1.size_bytes, r.dl1.size_bytes / 4);
        assert_eq!(d.l2.size_bytes, r.l2.size_bytes / 4);
        assert_eq!(d.il1, r.il1);
        assert_eq!(d.fetch_width, r.fetch_width);
    }

    #[test]
    fn mg_paper_config() {
        let mg = MgConfig::paper();
        assert!(mg.enabled);
        assert_eq!(mg.mgt_entries, 512);
        assert_eq!(mg.max_mg_issue, 2);
        assert!(!MgConfig::off().enabled);
    }
}
