//! Set-associative caches and the two-level memory hierarchy.

use crate::config::{CacheConfig, MachineConfig};
use serde::{Deserialize, Serialize};

/// Hit/miss statistics for one cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Number of accesses.
    pub accesses: u64,
    /// Number of misses.
    pub misses: u64,
}

impl CacheStats {
    /// Miss rate in [0, 1].
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

/// A set-associative cache with true-LRU replacement.
///
/// Timing-only: the cache tracks presence, not contents.
#[derive(Clone, Debug)]
pub struct Cache {
    cfg: CacheConfig,
    /// `tags[set * assoc + way]`; `u64::MAX` = invalid.
    tags: Vec<u64>,
    /// LRU stamps, parallel to `tags`.
    lru: Vec<u64>,
    stamp: u64,
    set_mask: u64,
    line_shift: u32,
    stats: CacheStats,
}

impl Cache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is not power-of-two shaped.
    pub fn new(cfg: CacheConfig) -> Cache {
        assert!(cfg.is_valid(), "invalid cache config {cfg:?}");
        let ways = (cfg.sets() * cfg.assoc) as usize;
        Cache {
            cfg,
            tags: vec![u64::MAX; ways],
            lru: vec![0; ways],
            stamp: 0,
            set_mask: (cfg.sets() - 1) as u64,
            line_shift: cfg.line_bytes.trailing_zeros(),
            stats: CacheStats::default(),
        }
    }

    /// The cache's configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Accesses `addr`, updating LRU state and filling on miss.
    /// Returns `true` on hit.
    pub fn access(&mut self, addr: u64) -> bool {
        self.stats.accesses += 1;
        self.stamp += 1;
        let line = addr >> self.line_shift;
        let set = (line & self.set_mask) as usize;
        let assoc = self.cfg.assoc as usize;
        let base = set * assoc;
        let ways = &mut self.tags[base..base + assoc];
        if let Some(w) = ways.iter().position(|&t| t == line) {
            self.lru[base + w] = self.stamp;
            return true;
        }
        self.stats.misses += 1;
        // Fill into LRU way.
        let victim = (0..assoc)
            .min_by_key(|&w| self.lru[base + w])
            .expect("associativity >= 1");
        self.tags[base + victim] = line;
        self.lru[base + victim] = self.stamp;
        false
    }

    /// Resets access/miss counters to a previously sampled value (used to
    /// keep prefetch traffic out of demand statistics).
    pub(crate) fn rewind_stats(&mut self, to: CacheStats) {
        self.stats = to;
    }

    /// Whether `addr`'s line is currently resident (no state change).
    pub fn probe(&self, addr: u64) -> bool {
        let line = addr >> self.line_shift;
        let set = (line & self.set_mask) as usize;
        let assoc = self.cfg.assoc as usize;
        let base = set * assoc;
        self.tags[base..base + assoc].contains(&line)
    }
}

/// The instruction-side and data-side hierarchy: split L1s over a unified
/// L2 over flat main memory.
#[derive(Clone, Debug)]
pub struct MemorySystem {
    /// Instruction L1.
    pub il1: Cache,
    /// Data L1.
    pub dl1: Cache,
    /// Unified L2.
    pub l2: Cache,
    mem_lat: u32,
}

impl MemorySystem {
    /// Builds the hierarchy described by a machine configuration.
    pub fn new(cfg: &MachineConfig) -> MemorySystem {
        MemorySystem {
            il1: Cache::new(cfg.il1),
            dl1: Cache::new(cfg.dl1),
            l2: Cache::new(cfg.l2),
            mem_lat: cfg.mem_lat,
        }
    }

    /// Latency of an instruction fetch at `addr`, in cycles.
    pub fn fetch_latency(&mut self, addr: u64) -> u32 {
        let l1 = self.il1.config().hit_lat;
        if self.il1.access(addr) {
            l1
        } else if self.l2.access(addr) {
            l1 + self.l2.config().hit_lat
        } else {
            l1 + self.l2.config().hit_lat + self.mem_lat
        }
    }

    /// Latency of a data access at `addr`, in cycles.
    ///
    /// On an L1 miss, a simple tagged next-line prefetch also installs
    /// `addr + line` into the L1 and L2 (streaming workloads would
    /// otherwise pay a full miss per line, which no modern memory system
    /// does).
    pub fn data_latency(&mut self, addr: u64) -> u32 {
        let l1 = self.dl1.config().hit_lat;
        if self.dl1.access(addr) {
            return l1;
        }
        let line = self.dl1.config().line_bytes as u64;
        let lat = if self.l2.access(addr) {
            l1 + self.l2.config().hit_lat
        } else {
            l1 + self.l2.config().hit_lat + self.mem_lat
        };
        // Next-line prefetch (does not count toward demand statistics).
        let next = addr + line;
        if !self.dl1.probe(next) {
            self.prefetch(next);
        }
        lat
    }

    fn prefetch(&mut self, addr: u64) {
        let before_l1 = self.dl1.stats();
        let before_l2 = self.l2.stats();
        self.dl1.access(addr);
        self.l2.access(addr);
        // Rewind demand statistics: prefetches are not demand accesses.
        self.dl1.rewind_stats(before_l1);
        self.l2.rewind_stats(before_l2);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MachineConfig;

    fn tiny() -> Cache {
        Cache::new(CacheConfig {
            size_bytes: 256,
            assoc: 2,
            line_bytes: 32,
            hit_lat: 1,
        })
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny();
        assert!(!c.access(0x100));
        assert!(c.access(0x100));
        assert!(c.access(0x11f)); // same 32B line
        assert!(!c.access(0x120)); // next line
        assert_eq!(c.stats().accesses, 4);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn lru_replacement_within_set() {
        let mut c = tiny(); // 4 sets, 2 ways; set = (addr>>5) & 3
                            // Three lines mapping to set 0: 0x000, 0x080, 0x100.
        assert!(!c.access(0x000));
        assert!(!c.access(0x080));
        assert!(c.access(0x000)); // refresh 0x000; 0x080 is now LRU
        assert!(!c.access(0x100)); // evicts 0x080
        assert!(c.access(0x000));
        assert!(!c.access(0x080)); // was evicted
    }

    #[test]
    fn probe_does_not_modify() {
        let mut c = tiny();
        c.access(0x40);
        let before = c.stats();
        assert!(c.probe(0x40));
        assert!(!c.probe(0x240));
        assert_eq!(c.stats(), before);
    }

    #[test]
    fn hierarchy_latencies() {
        let mut m = MemorySystem::new(&MachineConfig::baseline());
        // Cold: L1 miss + L2 miss -> 3 + 12 + 200.
        assert_eq!(m.data_latency(0x5000), 215);
        // Now resident everywhere -> 3.
        assert_eq!(m.data_latency(0x5000), 3);
        // Instruction side independent of data side.
        assert_eq!(m.fetch_latency(0x5000), 3 + 12); // L2 already has the line
    }

    #[test]
    fn miss_rate_math() {
        let s = CacheStats {
            accesses: 8,
            misses: 2,
        };
        assert!((s.miss_rate() - 0.25).abs() < 1e-12);
        assert_eq!(CacheStats::default().miss_rate(), 0.0);
    }
}
