//! Slack-Dynamic: run-time identification and disabling of mini-graphs
//! with harmful serialization (§4.4 of the paper).
//!
//! The hardware tracks last-arriving operands to handles. A handle
//! execution is *serialized* if its last-arriving operand is a serializing
//! input (an input to a constituent other than the first) and the handle
//! issued as soon as that operand arrived. The serialization is *harmful*
//! if a consumer of the mini-graph's output is in turn delayed by it. A
//! saturating counter per template provides hysteresis before disabling,
//! and slow decay supports resurrection.

use serde::{Deserialize, Serialize};

/// What evidence the controller requires before charging a template.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum DynPolicy {
    /// Full model: serialization delay *and* delayed consumer
    /// (the paper's `Slack-Dynamic`).
    DelayAndConsumer,
    /// Serialization delay only (`Ideal-Slack-Dynamic-Delay` component
    /// study).
    DelayOnly,
    /// Heuristic: serializing operand arrives last, regardless of issue
    /// timing (`SIAL`, as used by macro-op scheduling).
    SerialInputArrivesLast,
}

/// How a disabled instance executes.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum DisableCost {
    /// Realistic: outlined execution (two extra jumps + fetch redirects).
    Outlined,
    /// Idealized: constituents execute as inline singletons
    /// (`Ideal-Slack-Dynamic`).
    Free,
}

/// Slack-Dynamic controller configuration.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct DynMgConfig {
    /// Evidence policy.
    pub policy: DynPolicy,
    /// Disabled-execution cost model.
    pub cost: DisableCost,
    /// Counter value at which a template is disabled.
    pub disable_threshold: u8,
    /// Counter saturation maximum.
    pub counter_max: u8,
    /// Dynamic encounters of a disabled template before it is resurrected
    /// on probation.
    pub resurrect_after: u32,
}

impl DynMgConfig {
    /// The paper's realistic Slack-Dynamic configuration.
    pub fn slack_dynamic() -> DynMgConfig {
        DynMgConfig {
            policy: DynPolicy::DelayAndConsumer,
            cost: DisableCost::Outlined,
            disable_threshold: 6,
            counter_max: 7,
            resurrect_after: 1024,
        }
    }

    /// `Ideal-Slack-Dynamic`: no outlining penalty.
    pub fn ideal() -> DynMgConfig {
        DynMgConfig {
            cost: DisableCost::Free,
            ..DynMgConfig::slack_dynamic()
        }
    }

    /// `Ideal-Slack-Dynamic-Delay`: delay evidence only, no penalty.
    pub fn ideal_delay() -> DynMgConfig {
        DynMgConfig {
            policy: DynPolicy::DelayOnly,
            cost: DisableCost::Free,
            ..DynMgConfig::slack_dynamic()
        }
    }

    /// `Ideal-Slack-Dynamic-SIAL`: arrival-order heuristic, no penalty.
    pub fn ideal_sial() -> DynMgConfig {
        DynMgConfig {
            policy: DynPolicy::SerialInputArrivesLast,
            cost: DisableCost::Free,
            ..DynMgConfig::slack_dynamic()
        }
    }
}

/// Per-template state.
#[derive(Clone, Copy, Debug, Default)]
struct TemplateState {
    counter: u8,
    disabled: bool,
    encounters_while_disabled: u32,
}

/// The run-time controller.
#[derive(Clone, Debug)]
pub struct DynMgController {
    cfg: DynMgConfig,
    templates: Vec<TemplateState>,
    disables: u64,
    resurrections: u64,
}

impl DynMgController {
    /// Creates a controller for `template_count` templates.
    pub fn new(cfg: DynMgConfig, template_count: usize) -> DynMgController {
        DynMgController {
            cfg,
            templates: vec![TemplateState::default(); template_count],
            disables: 0,
            resurrections: 0,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &DynMgConfig {
        &self.cfg
    }

    /// Whether instances of `template` currently execute as handles
    /// (pure query; safe to call repeatedly, e.g. from fetch peek).
    pub fn enabled(&self, template: u16) -> bool {
        !self.templates[template as usize].disabled
    }

    /// Records that fetch encountered an instance of a *disabled*
    /// template; enough encounters resurrect the template on probation
    /// (affecting subsequent instances).
    pub fn note_disabled_encounter(&mut self, template: u16) {
        let threshold = self.cfg.disable_threshold;
        let after = self.cfg.resurrect_after;
        let t = &mut self.templates[template as usize];
        if !t.disabled {
            return;
        }
        t.encounters_while_disabled += 1;
        if t.encounters_while_disabled >= after {
            t.disabled = false;
            t.encounters_while_disabled = 0;
            // Probation: start near the threshold so recidivists are
            // re-disabled quickly.
            t.counter = threshold.saturating_sub(1);
            self.resurrections += 1;
        }
    }

    /// Convenience wrapper combining [`enabled`](Self::enabled) with
    /// encounter accounting: returns whether *this* instance executes as
    /// a handle, and counts the encounter if not.
    pub fn is_enabled(&mut self, template: u16) -> bool {
        if self.enabled(template) {
            return true;
        }
        self.note_disabled_encounter(template);
        self.enabled(template) // resurrection takes effect immediately
    }

    /// Reports a handle execution's serialization evidence.
    ///
    /// * `sial`: the last-arriving operand was a serializing input.
    /// * `delayed`: additionally, the handle issued on that operand's
    ///   arrival (it was actually delayed by it).
    /// * `consumer_delayed`: a consumer of the output issued exactly when
    ///   the (serialized) output arrived.
    pub fn report(&mut self, template: u16, sial: bool, delayed: bool, consumer_delayed: bool) {
        let harmful = match self.cfg.policy {
            DynPolicy::DelayAndConsumer => delayed && consumer_delayed,
            DynPolicy::DelayOnly => delayed,
            DynPolicy::SerialInputArrivesLast => sial,
        };
        let t = &mut self.templates[template as usize];
        if t.disabled {
            return;
        }
        if harmful {
            t.counter = (t.counter + 1).min(self.cfg.counter_max);
            if t.counter >= self.cfg.disable_threshold {
                t.disabled = true;
                t.encounters_while_disabled = 0;
                self.disables += 1;
            }
        } else {
            t.counter = t.counter.saturating_sub(1);
        }
    }

    /// Number of currently disabled templates.
    pub fn disabled_count(&self) -> u64 {
        self.templates.iter().filter(|t| t.disabled).count() as u64
    }

    /// Total disable events over the run.
    pub fn disables(&self) -> u64 {
        self.disables
    }

    /// Total resurrection events over the run.
    pub fn resurrections(&self) -> u64 {
        self.resurrections
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctl(policy: DynPolicy) -> DynMgController {
        DynMgController::new(
            DynMgConfig {
                policy,
                cost: DisableCost::Outlined,
                disable_threshold: 3,
                counter_max: 7,
                resurrect_after: 5,
            },
            4,
        )
    }

    #[test]
    fn repeated_harm_disables_template() {
        let mut c = ctl(DynPolicy::DelayAndConsumer);
        assert!(c.is_enabled(1));
        c.report(1, true, true, true); // counter 1
        assert!(c.is_enabled(1));
        c.report(1, true, true, true); // counter 2
        assert!(c.is_enabled(1));
        c.report(1, true, true, true); // counter 3 >= 3: disabled
        assert!(!c.is_enabled(1));
        assert_eq!(c.disabled_count(), 1);
        assert!(c.is_enabled(0), "other templates unaffected");
    }

    #[test]
    fn benign_executions_decay_counter() {
        let mut c = ctl(DynPolicy::DelayAndConsumer);
        c.report(1, true, true, true); // 1
        c.report(1, true, true, true); // 2
        c.report(1, false, false, false); // 1
        c.report(1, true, true, true); // 2 < 3
        assert!(c.is_enabled(1));
    }

    #[test]
    fn consumer_condition_matters_for_full_policy() {
        let mut c = ctl(DynPolicy::DelayAndConsumer);
        for _ in 0..10 {
            c.report(1, true, true, false); // delayed but absorbed
        }
        assert!(c.is_enabled(1));
        let mut d = ctl(DynPolicy::DelayOnly);
        d.report(1, true, true, false);
        d.report(1, true, true, false);
        d.report(1, true, true, false);
        assert!(!d.is_enabled(1));
    }

    #[test]
    fn sial_policy_uses_arrival_order_only() {
        let mut c = ctl(DynPolicy::SerialInputArrivesLast);
        c.report(1, true, false, false);
        c.report(1, true, false, false);
        c.report(1, true, false, false);
        assert!(!c.is_enabled(1));
    }

    #[test]
    fn mostly_benign_template_stays_enabled() {
        // Harmful 1/4 of the time: +1 per harmful vs -3 per three benign
        // keeps the counter pinned low.
        let mut c = ctl(DynPolicy::DelayOnly);
        for i in 0..200 {
            let harmful = i % 4 == 0;
            c.report(1, harmful, harmful, harmful);
            assert!(c.is_enabled(1), "disabled at iteration {i}");
        }
    }

    #[test]
    fn resurrection_after_encounters() {
        let mut c = ctl(DynPolicy::DelayOnly);
        c.report(2, true, true, true);
        c.report(2, true, true, true);
        c.report(2, true, true, true);
        // Disabled; 5 encounters resurrect on probation.
        for _ in 0..4 {
            assert!(!c.is_enabled(2));
        }
        assert!(c.is_enabled(2));
        assert_eq!(c.resurrections(), 1);
        // One more harmful execution re-disables immediately (probation
        // counter starts at threshold-1).
        c.report(2, true, true, true);
        assert!(!c.is_enabled(2));
    }
}
