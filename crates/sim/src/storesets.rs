//! StoreSets memory-dependence prediction (Chrysos & Emer style,
//! simplified to the SSIT/LFST structure the paper's machine uses).
//!
//! Loads are scheduled aggressively: a load with no predicted store
//! dependence may issue past older stores with unresolved addresses. When
//! that speculation is wrong (the store later writes the load's address),
//! the pipeline flushes and the load and store are placed in the same
//! *store set*; thereafter the load waits for in-flight stores of its set.

use crate::config::StoreSetsConfig;
use serde::{Deserialize, Serialize};

/// Store-set identifier.
pub type SetId = u32;

/// StoreSets statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StoreSetsStats {
    /// Memory-ordering violations detected (each causes a flush).
    pub violations: u64,
    /// Loads forced to wait on a predicted store dependence.
    pub loads_stalled: u64,
}

/// The predictor: a store-set ID table (SSIT) indexed by instruction PC.
#[derive(Clone, Debug)]
pub struct StoreSets {
    ssit: Vec<Option<SetId>>,
    next_set: SetId,
    stats: StoreSetsStats,
}

impl StoreSets {
    /// Creates an empty predictor.
    pub fn new(cfg: &StoreSetsConfig) -> StoreSets {
        StoreSets {
            ssit: vec![None; cfg.ssit_entries.next_power_of_two() as usize],
            next_set: 0,
            stats: StoreSetsStats::default(),
        }
    }

    fn idx(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) & (self.ssit.len() - 1)
    }

    /// The store set currently assigned to the instruction at `pc`.
    pub fn set_of(&self, pc: u64) -> Option<SetId> {
        self.ssit[self.idx(pc)]
    }

    /// Trains on a detected ordering violation between the load at
    /// `load_pc` and the store at `store_pc`: both are placed in the same
    /// set (merging into the smaller-numbered existing set, per the
    /// original algorithm's tie-break).
    pub fn train_violation(&mut self, load_pc: u64, store_pc: u64) {
        self.stats.violations += 1;
        let li = self.idx(load_pc);
        let si = self.idx(store_pc);
        match (self.ssit[li], self.ssit[si]) {
            (None, None) => {
                let id = self.next_set;
                self.next_set += 1;
                self.ssit[li] = Some(id);
                self.ssit[si] = Some(id);
            }
            (Some(l), None) => self.ssit[si] = Some(l),
            (None, Some(s)) => self.ssit[li] = Some(s),
            (Some(l), Some(s)) => {
                let keep = l.min(s);
                self.ssit[li] = Some(keep);
                self.ssit[si] = Some(keep);
            }
        }
    }

    /// Notes that a load stalled on a predicted dependence.
    pub fn note_stall(&mut self) {
        self.stats.loads_stalled += 1;
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> StoreSetsStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ss() -> StoreSets {
        StoreSets::new(&StoreSetsConfig::paper())
    }

    #[test]
    fn untrained_instructions_have_no_set() {
        let s = ss();
        assert_eq!(s.set_of(0x1000), None);
    }

    #[test]
    fn violation_assigns_shared_set() {
        let mut s = ss();
        s.train_violation(0x1000, 0x2000);
        let l = s.set_of(0x1000);
        assert!(l.is_some());
        assert_eq!(l, s.set_of(0x2000));
        assert_eq!(s.stats().violations, 1);
    }

    #[test]
    fn sets_merge_on_cross_violation() {
        let mut s = ss();
        s.train_violation(0x1000, 0x2000); // set 0
        s.train_violation(0x3000, 0x4000); // set 1
        s.train_violation(0x1000, 0x4000); // merge -> both keep min id
        assert_eq!(s.set_of(0x1000), s.set_of(0x4000));
    }

    #[test]
    fn second_member_joins_existing_set() {
        let mut s = ss();
        s.train_violation(0x1000, 0x2000);
        s.train_violation(0x1000, 0x5000);
        assert_eq!(s.set_of(0x5000), s.set_of(0x1000));
    }
}
