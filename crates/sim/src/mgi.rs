//! Mini-graph instance metadata, derived from a tagged program.
//!
//! The binary rewriter (`mg-core`) marks instances with
//! [`MgTag`](mg_isa::MgTag)s; this module recovers each instance's
//! *interface* — external register inputs, the single register output,
//! memory/control constituents — which is what the timing simulator needs
//! to treat the instance as a handle. Interfaces are recomputed from
//! dataflow rather than trusted from the rewriter, and validated against
//! the RISC-singleton constraints.

use mg_isa::dataflow::{self, BlockDataflow, UseSource};
use mg_isa::{BlockId, Program, Reg, StaticId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Interface and shape of one mini-graph instance.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct InstanceInfo {
    /// Instance id (program-unique, from the tags).
    pub instance: u32,
    /// Template this instance maps to.
    pub template: u16,
    /// Containing block.
    pub block: BlockId,
    /// Index of the first constituent within the block.
    pub start: usize,
    /// Number of constituents.
    pub len: usize,
    /// Static id of the handle (position-0) instruction.
    pub handle_id: StaticId,
    /// External register inputs, deduplicated, with the position of the
    /// *earliest* constituent reading each (for serialization analysis).
    pub ext_inputs: Vec<(Reg, usize)>,
    /// The register output: `(reg, producing position)`, if any value is
    /// visible outside the instance.
    pub output: Option<(Reg, usize)>,
    /// Position of the memory constituent, if any, and whether it is a
    /// load.
    pub mem: Option<(usize, bool)>,
    /// Position of the control-transfer constituent, if any (always the
    /// last position when present).
    pub control: Option<usize>,
    /// Per-position source operands resolved to either an external input
    /// register or an internal producer position.
    pub src_links: Vec<[Option<SrcLink>; 2]>,
    /// Cumulative optimistic execution latency before each position
    /// starts, assuming serial constituent execution (rule #2).
    pub lat_prefix: Vec<u32>,
}

/// Where a constituent's source operand comes from.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SrcLink {
    /// An external register input.
    External(Reg),
    /// The value produced by an earlier constituent (position given).
    Internal(usize),
}

impl InstanceInfo {
    /// Whether any external input feeds a constituent other than the
    /// first — the structural precondition for *external serialization*.
    pub fn potentially_serializing(&self) -> bool {
        self.ext_inputs.iter().any(|&(_, pos)| pos > 0)
    }

    /// Total optimistic execution latency of the instance (sum of
    /// constituent latencies, loads at the L1 hit latency baked in at
    /// construction).
    pub fn total_latency(&self) -> u32 {
        *self.lat_prefix.last().unwrap_or(&0)
    }

    /// Position of the constituent producing the register output, if any.
    pub fn output_pos(&self) -> Option<usize> {
        self.output.map(|(_, pos)| pos)
    }

    /// Latency from handle issue until the *output* value is produced
    /// (optimistic), or until the end for output-less instances.
    pub fn output_latency(&self) -> u32 {
        match self.output {
            Some((_, pos)) => self.lat_prefix[pos + 1],
            None => *self.lat_prefix.last().unwrap_or(&0),
        }
    }
}

/// All instances of a program, indexed for the simulator.
#[derive(Clone, Debug, Default)]
pub struct InstanceMap {
    /// Instances ordered by handle static id.
    pub instances: Vec<InstanceInfo>,
    /// Map from handle static id to index in `instances`.
    by_handle: HashMap<u32, usize>,
    /// Number of distinct templates.
    pub template_count: usize,
}

impl InstanceMap {
    /// Scans a tagged program and builds the instance map.
    ///
    /// # Panics
    ///
    /// Panics if an instance violates the RISC-singleton interface
    /// constraints (more than 3 external inputs or more than 1 output) —
    /// the rewriter must never emit such instances.
    pub fn build(program: &Program, l1_hit: u32) -> InstanceMap {
        let live = dataflow::liveness(program);
        let mut instances = Vec::new();
        let mut max_template = 0usize;
        for (bi, block) in program.blocks().iter().enumerate() {
            let bid = BlockId(bi as u32);
            if block.insts.iter().all(|i| i.mg.is_none()) {
                continue;
            }
            let df = BlockDataflow::analyze(block, live.live_out(bid));
            let mut i = 0usize;
            while i < block.insts.len() {
                let Some(tag) = block.insts[i].mg else {
                    i += 1;
                    continue;
                };
                debug_assert_eq!(tag.pos, 0, "validated tags start at 0");
                let len = tag.len as usize;
                let positions: Vec<usize> = (i..i + len).collect();
                let info = build_instance(
                    program,
                    bid,
                    block,
                    &df,
                    &positions,
                    tag.instance,
                    tag.template,
                    l1_hit,
                );
                max_template = max_template.max(tag.template as usize + 1);
                instances.push(info);
                i += len;
            }
        }
        instances.sort_by_key(|inst| inst.handle_id.0);
        let by_handle = instances
            .iter()
            .enumerate()
            .map(|(idx, inst)| (inst.handle_id.0, idx))
            .collect();
        InstanceMap {
            instances,
            by_handle,
            template_count: max_template,
        }
    }

    /// The instance whose handle is `id`, if any.
    pub fn at_handle(&self, id: StaticId) -> Option<&InstanceInfo> {
        self.by_handle.get(&id.0).map(|&i| &self.instances[i])
    }

    /// The index (into [`instances`](Self::instances)) of the instance
    /// whose handle is `id`, if any.
    pub fn index_of_handle(&self, id: StaticId) -> Option<u32> {
        self.by_handle.get(&id.0).map(|&i| i as u32)
    }

    /// Whether the program has any instances.
    pub fn is_empty(&self) -> bool {
        self.instances.is_empty()
    }
}

#[allow(clippy::too_many_arguments)]
fn build_instance(
    program: &Program,
    bid: BlockId,
    block: &mg_isa::BasicBlock,
    df: &BlockDataflow,
    positions: &[usize],
    instance: u32,
    template: u16,
    l1_hit: u32,
) -> InstanceInfo {
    let start = positions[0];
    let len = positions.len();
    let mut ext_inputs: Vec<(Reg, usize)> = Vec::new();
    let mut src_links: Vec<[Option<SrcLink>; 2]> = Vec::with_capacity(len);
    let mut output: Option<(Reg, usize)> = None;
    let mut mem: Option<(usize, bool)> = None;
    let mut control: Option<usize> = None;
    let mut lat_prefix = Vec::with_capacity(len + 1);
    let mut lat = 0u32;

    for (p, &pos) in positions.iter().enumerate() {
        let inst = &block.insts[pos];
        lat_prefix.push(lat);
        lat += inst.op.optimistic_latency(l1_hit);
        let mut links = [None, None];
        for (slot, src) in [inst.src1, inst.src2].into_iter().enumerate() {
            let Some(r) = src else { continue };
            if r.is_zero() {
                continue;
            }
            let link = match df.src_origin[pos][slot] {
                Some(UseSource::Local(d)) if positions.contains(&d) => SrcLink::Internal(d - start),
                _ => {
                    if !ext_inputs.iter().any(|&(er, _)| er == r) {
                        ext_inputs.push((r, p));
                    }
                    SrcLink::External(r)
                }
            };
            links[slot] = Some(link);
        }
        src_links.push(links);

        if inst.op.is_mem() {
            assert!(mem.is_none(), "instance {instance} has two memory ops");
            mem = Some((p, inst.op.is_load()));
        }
        if inst.op.is_control() {
            assert!(control.is_none(), "instance {instance} has two control ops");
            control = Some(p);
        }
        if let Some(d) = inst.def() {
            // Visible outside the instance (consumed later in the block
            // outside it, or live out of the block) => output.
            if df.value_visible_outside(pos, positions) {
                assert!(
                    output.is_none() || output.map(|(r, _)| r) == Some(d),
                    "instance {instance} has two register outputs"
                );
                output = Some((d, p));
            }
        }
    }
    lat_prefix.push(lat);
    assert!(
        ext_inputs.len() <= 3,
        "instance {instance} has {} external inputs",
        ext_inputs.len()
    );

    InstanceInfo {
        instance,
        template,
        block: bid,
        start,
        len,
        handle_id: program.id_of(bid, start),
        ext_inputs,
        output,
        mem,
        control,
        src_links,
        lat_prefix,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mg_isa::{Instruction, MgTag, ProgramBuilder};

    fn tag(instance: u32, pos: u8, len: u8) -> MgTag {
        MgTag {
            instance,
            template: instance as u16,
            pos,
            len,
        }
    }

    /// r1 = li 5; [r2 = addi r1,1 ; r3 = addi r2,2] ; st r3; halt
    fn chain_program() -> Program {
        let mut pb = ProgramBuilder::new("chain");
        let f = pb.func("main");
        let b = pb.block(f);
        pb.push(b, Instruction::li(Reg::R1, 5));
        pb.push(
            b,
            Instruction::addi(Reg::R2, Reg::R1, 1).with_mg(tag(0, 0, 2)),
        );
        pb.push(
            b,
            Instruction::addi(Reg::R3, Reg::R2, 2).with_mg(tag(0, 1, 2)),
        );
        pb.push(b, Instruction::store(Reg::R4, Reg::R3, 0));
        pb.push(b, Instruction::halt());
        pb.build().unwrap()
    }

    #[test]
    fn connected_chain_interface() {
        let p = chain_program();
        let m = InstanceMap::build(&p, 3);
        assert_eq!(m.instances.len(), 1);
        let inst = &m.instances[0];
        assert_eq!(inst.len, 2);
        assert_eq!(inst.ext_inputs, vec![(Reg::R1, 0)]);
        assert_eq!(inst.output, Some((Reg::R3, 1)));
        assert!(!inst.potentially_serializing());
        // r2 is interior: consumed only inside.
        assert_eq!(inst.src_links[1][0], Some(SrcLink::Internal(0)));
        assert_eq!(inst.lat_prefix, vec![0, 1, 2]);
        assert_eq!(inst.output_latency(), 2);
        assert_eq!(inst.total_latency(), 2);
    }

    /// Disconnected instance: two independent ALU ops; second value is
    /// interior (dead), first is the output.
    #[test]
    fn serializing_input_detected() {
        let mut pb = ProgramBuilder::new("ser");
        let f = pb.func("main");
        let b = pb.block(f);
        pb.push(b, Instruction::li(Reg::R1, 5));
        pb.push(b, Instruction::li(Reg::R4, 7));
        // Instance: out = addi r1; dead = addi r4 (external input to pos 1).
        pb.push(
            b,
            Instruction::addi(Reg::R2, Reg::R1, 1).with_mg(tag(0, 0, 2)),
        );
        pb.push(
            b,
            Instruction::addi(Reg::R5, Reg::R4, 1).with_mg(tag(0, 1, 2)),
        );
        pb.push(b, Instruction::store(Reg::R6, Reg::R2, 0));
        pb.push(b, Instruction::halt());
        let p = pb.build().unwrap();
        let m = InstanceMap::build(&p, 3);
        let inst = &m.instances[0];
        assert!(inst.potentially_serializing());
        assert_eq!(inst.output, Some((Reg::R2, 0)));
        assert_eq!(inst.ext_inputs, vec![(Reg::R1, 0), (Reg::R4, 1)]);
    }

    #[test]
    fn memory_and_handle_lookup() {
        let mut pb = ProgramBuilder::new("mem");
        let f = pb.func("main");
        let b = pb.block(f);
        pb.push(b, Instruction::li(Reg::R1, 0x2000));
        pb.push(
            b,
            Instruction::addi(Reg::R2, Reg::R1, 8).with_mg(tag(0, 0, 2)),
        );
        pb.push(
            b,
            Instruction::load(Reg::R3, Reg::R2, 0).with_mg(tag(0, 1, 2)),
        );
        pb.push(b, Instruction::store(Reg::R1, Reg::R3, 0));
        pb.push(b, Instruction::halt());
        let p = pb.build().unwrap();
        let m = InstanceMap::build(&p, 3);
        let inst = &m.instances[0];
        assert_eq!(inst.mem, Some((1, true)));
        assert_eq!(inst.output, Some((Reg::R3, 1)));
        // Load at L1 hit = 3 cycles: prefix [0, 1, 4].
        assert_eq!(inst.lat_prefix, vec![0, 1, 4]);
        let handle = p.id_of(b, 1);
        assert_eq!(m.at_handle(handle).unwrap().instance, 0);
        assert_eq!(m.at_handle(p.id_of(b, 0)), None);
    }

    #[test]
    fn untagged_program_yields_empty_map() {
        let mut pb = ProgramBuilder::new("plain");
        let f = pb.func("main");
        let b = pb.block(f);
        pb.push(b, Instruction::halt());
        let p = pb.build().unwrap();
        assert!(InstanceMap::build(&p, 3).is_empty());
    }
}
