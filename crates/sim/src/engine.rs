//! The cycle-level out-of-order timing engine.
//!
//! Trace-driven: the committed-path [`Trace`] from functional execution is
//! replayed through a detailed pipeline model — fetch (I$ + branch
//! prediction + BTB + RAS), in-order rename/dispatch against finite
//! ROB/IQ/LSQ/physical-register resources, out-of-order issue with
//! per-class port limits, StoreSets-speculative loads with
//! violation-triggered squash and replay, and in-order commit.
//!
//! Wrong-path instructions are not fetched; a mispredicted branch instead
//! stalls fetch until it resolves, which charges the same redirect + refill
//! penalty. This is the standard trace-driven substitution and preserves
//! the relative IPC effects the mini-graph experiments measure.
//!
//! Mini-graph instances (tagged by the rewriter) fetch, rename, issue and
//! commit as single *handles*; their constituents execute serially off the
//! MGT (rules #1 and #2 of the paper: the handle waits for all external
//! inputs, constituents follow each other by their execution latencies).
//! Disabled instances execute in outlined form: an outlining jump, the
//! constituents as singletons at outlined addresses, and a return jump.

use crate::bpred::{Btb, DirectionPredictor, Ras};
use crate::cache::MemorySystem;
use crate::config::MachineConfig;
use crate::dynmg::{DynMgConfig, DynMgController};
use crate::mgi::InstanceMap;
use crate::slack::{self, ProfileAccum, SlackProfile};
use crate::stats::SimStats;
use crate::storesets::StoreSets;
use mg_isa::{ExecClass, Opcode, Program, Reg, StaticId};
use mg_workloads::Trace;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

const NEVER: u64 = u64::MAX;
/// Null link in the intrusive waiter lists (no op ever has this index).
const NO_OP: u32 = u32::MAX;

/// Simulation options beyond the machine configuration.
#[derive(Clone, Copy, Debug, Default)]
pub struct SimOptions {
    /// Collect a local-slack profile (singleton runs only).
    pub profile_slack: bool,
    /// Enable the Slack-Dynamic run-time controller.
    pub dyn_mg: Option<DynMgConfig>,
    /// Hard cycle cap (0 = automatic: generous multiple of trace length).
    pub max_cycles: u64,
    /// Collect pipeline trace, stall attribution, and occupancy metrics.
    #[cfg(feature = "obs")]
    pub obs: Option<mg_obs::ObsConfig>,
}

/// Result of a timing simulation.
#[derive(Clone, Debug)]
pub struct SimResult {
    /// Statistics, including cycles and IPC.
    pub stats: SimStats,
    /// The collected slack profile, when requested.
    pub slack: Option<SlackProfile>,
    /// Whether the cycle cap was hit (indicates a modeling bug).
    pub hit_cycle_cap: bool,
    /// The observability report, when `SimOptions::obs` requested one.
    #[cfg(feature = "obs")]
    pub obs: Option<mg_obs::ObsReport>,
}

impl SimResult {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        self.stats.ipc()
    }
}

/// Runs a timing simulation of `trace` (from `program`) on `cfg`.
pub fn simulate(
    program: &Program,
    trace: &Trace,
    cfg: &MachineConfig,
    opts: SimOptions,
) -> SimResult {
    Engine::new(program, trace, cfg, opts).run()
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum OpKind {
    Singleton(StaticId),
    Handle(u32), // index into InstanceMap.instances
    OutJump(u32),
    RetJump(u32),
}

#[derive(Clone, Copy, Debug)]
struct SrcDep {
    producer: Option<u32>,
}

#[derive(Clone, Debug)]
struct Op {
    kind: OpKind,
    trace_lo: u32,
    trace_len: u8,
    pc: u64,
    dest: Option<Reg>,
    srcs: [Option<SrcDep>; 3],
    is_load: bool,
    is_store: bool,
    mem_addr: u64,
    needs_iq: bool,
    exec_class: ExecClass,
    /// First op of the outlined group this op belongs to (flush rounding).
    group_leader: Option<u32>,
    avail_at: u64,
    dispatched_at: Option<u64>,
    issued_at: Option<u64>,
    /// When the output value is available to consumers.
    ready_at: u64,
    /// When the op has fully completed (commit eligibility).
    done_at: u64,
    resolve_at: u64,
    committed: bool,
    squashed: bool,
    mispredicted: bool,
    /// Serialization flags (handles).
    sial: bool,
    ser_delayed: bool,
    consumer_delayed: bool,
    /// Minimum consumer margin observed (local slack sample).
    min_margin: u64,
    /// Per-src value ready times captured at issue (profiling).
    src_ready: [Option<u64>; 2],
    /// Head of the intrusive list of IQ ops waiting on this op's value.
    waiter_head: u32,
    /// Next op in whatever waiter list this op is chained into.
    waiter_next: u32,
}

impl Op {
    fn new(kind: OpKind, pc: u64, avail_at: u64) -> Op {
        Op {
            kind,
            trace_lo: 0,
            trace_len: 0,
            pc,
            dest: None,
            srcs: [None; 3],
            is_load: false,
            is_store: false,
            mem_addr: 0,
            needs_iq: false,
            exec_class: ExecClass::SimpleInt,
            group_leader: None,
            avail_at,
            dispatched_at: None,
            issued_at: None,
            ready_at: NEVER,
            done_at: NEVER,
            resolve_at: NEVER,
            committed: false,
            squashed: false,
            mispredicted: false,
            sial: false,
            ser_delayed: false,
            consumer_delayed: false,
            min_margin: NEVER,
            src_ready: [None; 2],
            waiter_head: NO_OP,
            waiter_next: NO_OP,
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct OutlineProgress {
    inst_idx: u32,
    leader: u32,
    next_pos: usize,
    /// Whether this disabled instance pays the outlining penalty (two
    /// jumps + outlined addresses) or executes idealized inline
    /// (`DisableCost::Free`).
    penalized: bool,
}

#[derive(Clone, Copy, Debug)]
enum FetchUnit {
    Singleton,
    Handle(u32),
    OutJumpStart(u32),
    OutConstituent(u32, usize),
    OutRetJump(u32),
}

struct Engine<'a> {
    program: &'a Program,
    trace: &'a Trace,
    cfg: &'a MachineConfig,
    opts: SimOptions,
    imap: InstanceMap,

    mem: MemorySystem,
    dirpred: DirectionPredictor,
    btb: Btb,
    ras: Ras,
    storesets: StoreSets,
    dynctl: Option<DynMgController>,

    ops: Vec<Op>,
    rob: VecDeque<u32>,
    /// IQ ops whose operands are all ready, sorted oldest-first. Entries
    /// persist across cycles while port- or disambiguation-blocked;
    /// squashed entries are filtered lazily.
    ready: Vec<u32>,
    /// Pending wakeups: `(cycle, op)` min-heap of IQ ops whose operand
    /// arrival time is known. Ops with an unissued producer instead sit in
    /// that producer's waiter list until its completion time is known.
    wakeups: BinaryHeap<Reverse<(u64, u32)>>,
    lq: VecDeque<u32>,
    sq: VecDeque<u32>,
    fetchq: VecDeque<u32>,
    rename: [Option<u32>; mg_isa::reg::NUM_ARCH_REGS],
    /// Scratch: per-constituent finish times during handle execution.
    handle_finish: Vec<u64>,

    free_regs: u32,
    iq_free: u32,
    lq_free: u32,
    sq_free: u32,
    fetchq_cap: usize,

    fetch_ptr: usize,
    outline: Option<OutlineProgress>,
    fetch_resume: u64,
    last_fetch_line: u64,
    cycle: u64,

    stats: SimStats,

    /// Observability collector, present when the run requests one.
    #[cfg(feature = "obs")]
    obs: Option<mg_obs::ObsCollector>,
    /// Why fetch last stalled (consulted by stall attribution while
    /// `cycle < fetch_resume`).
    #[cfg(feature = "obs")]
    obs_redirect: mg_obs::RedirectKind,
}

impl<'a> Engine<'a> {
    fn new(
        program: &'a Program,
        trace: &'a Trace,
        cfg: &'a MachineConfig,
        opts: SimOptions,
    ) -> Engine<'a> {
        let imap = InstanceMap::build(program, cfg.dl1.hit_lat);
        let dynctl = opts
            .dyn_mg
            .map(|dc| DynMgController::new(dc, imap.template_count.max(1)));
        Engine {
            program,
            trace,
            cfg,
            opts,
            mem: MemorySystem::new(cfg),
            dirpred: DirectionPredictor::new(&cfg.bpred),
            btb: Btb::new(&cfg.bpred),
            ras: Ras::new(cfg.bpred.ras_entries),
            storesets: StoreSets::new(&cfg.storesets),
            dynctl,
            imap,
            ops: Vec::with_capacity(trace.len() + 64),
            rob: VecDeque::with_capacity(cfg.rob_entries as usize),
            ready: Vec::with_capacity(cfg.iq_entries as usize),
            wakeups: BinaryHeap::with_capacity(2 * cfg.iq_entries as usize),
            lq: VecDeque::with_capacity(cfg.lq_entries as usize),
            sq: VecDeque::with_capacity(cfg.sq_entries as usize),
            fetchq: VecDeque::with_capacity((cfg.fetch_width * cfg.front_depth) as usize + 8),
            rename: [None; mg_isa::reg::NUM_ARCH_REGS],
            handle_finish: Vec::with_capacity(8),
            free_regs: cfg.phys_regs - mg_isa::reg::NUM_ARCH_REGS as u32,
            iq_free: cfg.iq_entries,
            lq_free: cfg.lq_entries,
            sq_free: cfg.sq_entries,
            fetchq_cap: (cfg.fetch_width * cfg.front_depth) as usize + 8,
            fetch_ptr: 0,
            outline: None,
            fetch_resume: 0,
            last_fetch_line: u64::MAX,
            cycle: 0,
            stats: SimStats::default(),
            #[cfg(feature = "obs")]
            obs: opts
                .obs
                .map(|oc| mg_obs::ObsCollector::new(oc, cfg.obs_caps())),
            #[cfg(feature = "obs")]
            obs_redirect: mg_obs::RedirectKind::None,
        }
    }

    fn run(mut self) -> SimResult {
        let cap = if self.opts.max_cycles > 0 {
            self.opts.max_cycles
        } else {
            200 * self.trace.len() as u64 + 100_000
        };
        // Always-on telemetry: cycles are accumulated locally and
        // flushed to the global counter in large batches, so the hot
        // loop pays one subtract-and-compare per cycle and one relaxed
        // atomic per batch (the perf-gate bounds this at < 3% against
        // results/BENCH_engine.json).
        const TELE_BATCH: u64 = 1 << 16;
        let tele_cycles = mg_obs::tele_counter!("mg_sim_cycles_total");
        let mut tele_flushed = 0u64;
        let mut hit_cap = false;
        while !self.finished() {
            if self.cycle >= cap {
                hit_cap = true;
                break;
            }
            self.commit();
            self.issue();
            self.dispatch();
            self.fetch();
            #[cfg(feature = "obs")]
            self.obs_end_cycle();
            self.cycle += 1;
            if self.cycle - tele_flushed >= TELE_BATCH {
                tele_cycles.add(self.cycle - tele_flushed);
                tele_flushed = self.cycle;
            }
        }
        tele_cycles.add(self.cycle - tele_flushed);
        mg_obs::tele_counter!("mg_sim_runs_total").inc();
        self.stats.cycles = self.cycle;
        if let Some(ctl) = &self.dynctl {
            self.stats.disabled_templates = ctl.disabled_count();
        }
        self.stats.bpred = self.dirpred.stats();
        self.stats.il1 = self.mem.il1.stats();
        self.stats.dl1 = self.mem.dl1.stats();
        self.stats.l2 = self.mem.l2.stats();
        self.stats.storesets = self.storesets.stats();
        let slack = self.opts.profile_slack.then(|| self.build_profile());
        #[cfg(feature = "obs")]
        let obs = self.obs.take().map(|c| c.finish(self.stats.cycles));
        SimResult {
            stats: self.stats,
            slack,
            hit_cycle_cap: hit_cap,
            #[cfg(feature = "obs")]
            obs,
        }
    }

    /// Closes the current cycle out in the observability collector:
    /// exactly one call per loop iteration, so attributed cycles equal
    /// `stats.cycles` by construction (the cap check breaks *before* any
    /// stage runs).
    #[cfg(feature = "obs")]
    fn obs_end_cycle(&mut self) {
        if self.obs.is_none() {
            return;
        }
        // Entries surviving in the ready list at end of cycle are exactly
        // the ops that were ready but not granted (port limits or a
        // memory-disambiguation hold).
        let state = mg_obs::CycleState {
            ready_left: self.ready.len(),
            iq_used: (self.cfg.iq_entries - self.iq_free) as usize,
            rob_used: self.rob.len(),
            lq_used: self.lq.len(),
            sq_used: self.sq.len(),
            fetch_stalled: self.cycle < self.fetch_resume,
            redirect: self.obs_redirect,
        };
        let cycle = self.cycle;
        if let Some(obs) = self.obs.as_mut() {
            obs.end_cycle(cycle, &state);
        }
    }

    /// Builds the pipeline-trace record for op `oi` as it leaves the
    /// window. The fetch cycle is recovered from `avail_at` (fetch cycle
    /// plus front-end depth); the operand-ready cycle is recomputed from
    /// the producers, whose completion times are final by now.
    #[cfg(feature = "obs")]
    fn obs_trace_of(&self, oi: u32, commit: Option<u64>, squash: Option<u64>) -> mg_obs::OpTrace {
        let op = &self.ops[oi as usize];
        let class = match op.kind {
            OpKind::Singleton(_) => mg_obs::OpClass::Singleton,
            OpKind::Handle(_) => mg_obs::OpClass::Handle,
            OpKind::OutJump(_) => mg_obs::OpClass::OutlineJump,
            OpKind::RetJump(_) => mg_obs::OpClass::ReturnJump,
        };
        let mut ready = None;
        if op.needs_iq {
            if let Some(d) = op.dispatched_at {
                // First issue opportunity is the cycle after dispatch.
                let mut r = d + 1;
                for dep in op.srcs.iter().flatten() {
                    if let Some(p) = dep.producer {
                        let pr = self.ops[p as usize].ready_at;
                        if pr != NEVER {
                            r = r.max(pr);
                        }
                    }
                }
                ready = Some(r);
            }
        }
        mg_obs::OpTrace {
            seq: oi as u64,
            pc: op.pc,
            class,
            fetch: op.avail_at.saturating_sub(self.cfg.front_depth as u64),
            dispatch: op.dispatched_at,
            ready,
            issue: op.issued_at,
            done: (op.done_at != NEVER).then_some(op.done_at),
            commit,
            squash,
        }
    }

    fn finished(&self) -> bool {
        self.fetch_ptr >= self.trace.len()
            && self.outline.is_none()
            && self.fetchq.is_empty()
            && self.rob.is_empty()
    }

    // ------------------------------------------------------------------
    // Commit
    // ------------------------------------------------------------------

    fn commit(&mut self) {
        for _ in 0..self.cfg.commit_width {
            let Some(&head) = self.rob.front() else { break };
            let op = &self.ops[head as usize];
            if op.done_at > self.cycle {
                break;
            }
            self.rob.pop_front();
            let op = &mut self.ops[head as usize];
            op.committed = true;
            if op.dest.is_some() {
                self.free_regs += 1;
            }
            if op.is_load {
                debug_assert_eq!(self.lq.front(), Some(&head));
                self.lq.pop_front();
                self.lq_free += 1;
            }
            if op.is_store {
                debug_assert_eq!(self.sq.front(), Some(&head));
                self.sq.pop_front();
                self.sq_free += 1;
            }
            self.stats.committed_ops += 1;
            self.stats.committed_instrs += op.trace_len as u64;
            match op.kind {
                OpKind::Handle(idx) => {
                    self.stats.mg_handles += 1;
                    self.stats.mg_embedded_instrs += op.trace_len as u64;
                    if op.ser_delayed {
                        self.stats.serialized_handles += 1;
                        if op.consumer_delayed {
                            self.stats.harmful_serializations += 1;
                        }
                    }
                    let template = self.imap.instances[idx as usize].template;
                    let (sial, delayed, cons) = (op.sial, op.ser_delayed, op.consumer_delayed);
                    if let Some(ctl) = &mut self.dynctl {
                        ctl.report(template, sial, delayed, cons);
                    }
                }
                OpKind::OutJump(_) | OpKind::RetJump(_) => {
                    self.stats.outline_jumps += 1;
                }
                OpKind::Singleton(id) => {
                    if self.program.inst(id).mg.is_some() {
                        self.stats.outlined_instrs += 1;
                    }
                }
            }
            #[cfg(feature = "obs")]
            if self.obs.is_some() {
                let t = self.obs_trace_of(head, Some(self.cycle), None);
                let n = self.ops[head as usize].trace_len as u64;
                if let Some(obs) = self.obs.as_mut() {
                    obs.note_commit_instrs(n);
                    obs.note_op(t);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Issue
    // ------------------------------------------------------------------

    fn src_ready_time(&self, dep: &SrcDep) -> u64 {
        match dep.producer {
            Some(p) => self.ops[p as usize].ready_at,
            None => 0,
        }
    }

    /// Enqueues a just-dispatched (or just-woken) IQ op for issue. If
    /// every source producer's completion time is known, the op goes into
    /// the wakeup heap at its operand-arrival cycle; otherwise it chains
    /// into the waiter list of one unissued producer and is rescheduled
    /// when that producer executes.
    fn schedule_for_issue(&mut self, oi: u32) {
        let mut wake = 0u64;
        let mut wait_on = None;
        for s in 0..3 {
            let Some(dep) = self.ops[oi as usize].srcs[s] else {
                continue;
            };
            let Some(p) = dep.producer else { continue };
            let r = self.ops[p as usize].ready_at;
            if r == NEVER {
                wait_on = Some(p);
                break;
            }
            wake = wake.max(r);
        }
        match wait_on {
            Some(p) => {
                self.ops[oi as usize].waiter_next = self.ops[p as usize].waiter_head;
                self.ops[p as usize].waiter_head = oi;
            }
            // An op is first considered the cycle after dispatch, exactly
            // as when it sat in a queue scanned by the next issue pass.
            None => self.wakeups.push(Reverse((wake.max(self.cycle + 1), oi))),
        }
    }

    /// Reschedules every op waiting on `producer`, whose completion time
    /// has just become known. Waiters blocked on a further unissued
    /// producer re-chain onto it; squashed waiters are dropped.
    fn wake_waiters(&mut self, producer: u32) {
        let mut w = self.ops[producer as usize].waiter_head;
        self.ops[producer as usize].waiter_head = NO_OP;
        while w != NO_OP {
            let next = self.ops[w as usize].waiter_next;
            self.ops[w as usize].waiter_next = NO_OP;
            if !self.ops[w as usize].squashed {
                self.schedule_for_issue(w);
            }
            w = next;
        }
    }

    fn issue(&mut self) {
        // Wakeup: pull every op whose operand-arrival cycle has come into
        // the ready list. Arrival times never change once scheduled, so no
        // per-op readiness rescan is needed.
        while let Some(&Reverse((t, oi))) = self.wakeups.peek() {
            if t > self.cycle {
                break;
            }
            self.wakeups.pop();
            if !self.ops[oi as usize].squashed {
                self.ready.push(oi);
            }
        }
        if self.ready.is_empty() {
            return;
        }
        // Oldest-first select: op indices are assigned in dispatch order.
        self.ready.sort_unstable();

        let mut simple = self.cfg.issue_simple;
        let mut complex = self.cfg.issue_complex;
        let mut load = self.cfg.issue_load;
        let mut store = self.cfg.issue_store;
        let mut mg = self.cfg.mg.max_mg_issue;
        let mut mg_mem = self.cfg.mg.max_mem_mg_issue;
        let mut issued_total = 0u32;
        let mut granted = 0u32;
        // The total issue width constrains singleton issue; handles issue
        // on the ALU pipelines and are limited separately.
        let width = self.cfg.issue_width;

        // Issuing an op can trigger a violation flush that squashes
        // younger ready entries, so membership is re-checked per op and
        // the list is reconciled at the end (iteration by index: the list
        // itself is not edited mid-pass).
        for i in 0..self.ready.len() {
            let oi = self.ready[i];
            let op = &self.ops[oi as usize];
            if op.squashed {
                continue; // squashed by a flush earlier in this pass
            }
            // Operand-arrival time (sources are ready by construction).
            let mut max_ready = 0u64;
            for dep in op.srcs.iter().flatten() {
                let r = self.src_ready_time(dep);
                max_ready = max_ready.max(r);
            }
            debug_assert!(max_ready <= self.cycle, "op {oi} woke before its operands");
            // Port availability.
            let is_handle = matches!(op.kind, OpKind::Handle(_));
            let has_mem = op.is_load || op.is_store;
            let is_load_op = op.is_load;
            let is_store_op = op.is_store;
            let class = op.exec_class;
            if is_handle {
                if mg == 0 || (has_mem && mg_mem == 0) {
                    continue;
                }
            } else {
                if issued_total >= width {
                    continue; // handles may still issue on ALU pipelines
                }
                let avail = match class {
                    ExecClass::SimpleInt => simple,
                    ExecClass::ComplexInt => complex,
                    ExecClass::Load => load,
                    ExecClass::Store => store,
                };
                if avail == 0 {
                    continue;
                }
            }
            // Memory disambiguation for loads.
            if is_load_op && !self.load_may_issue(oi) {
                continue;
            }

            // --- grant ---
            if is_handle {
                mg -= 1;
                if has_mem {
                    // The ≤1-memory-mini-graph-per-cycle limit stands in
                    // for the cache port the constituent uses when it
                    // executes off the MGT.
                    mg_mem -= 1;
                }
                let _ = is_store_op;
            } else {
                issued_total += 1;
                match class {
                    ExecClass::SimpleInt => simple -= 1,
                    ExecClass::ComplexInt => complex -= 1,
                    ExecClass::Load => load -= 1,
                    ExecClass::Store => store -= 1,
                }
            }
            granted += 1;
            #[cfg(feature = "obs")]
            if let Some(obs) = self.obs.as_mut() {
                obs.note_issue();
            }
            self.execute(oi, max_ready);
        }
        if granted > 0 {
            self.iq_free += granted;
            // Drop issued ops, and any entries squashed by a mid-pass
            // flush (flushes only happen on issue, so between passes the
            // list stays clean).
            self.ready.retain(|&oi| {
                let op = &self.ops[oi as usize];
                !op.squashed && op.issued_at.is_none()
            });
        }
    }

    /// Checks memory-dependence constraints for a load about to issue.
    /// Returns `false` if it must wait (predicted dependence on an
    /// unissued older store).
    fn load_may_issue(&mut self, load_oi: u32) -> bool {
        let load_pc = self.ops[load_oi as usize].pc;
        let Some(load_set) = self.storesets.set_of(load_pc) else {
            // A load outside every store set never stalls.
            return true;
        };
        // The SQ holds op indices in ascending age order; only the prefix
        // older than the load can constrain it.
        let older = self.sq.partition_point(|&si| si < load_oi);
        for &si in self.sq.range(..older) {
            let st = &self.ops[si as usize];
            if st.issued_at.is_none() && Some(load_set) == self.storesets.set_of(st.pc) {
                // Unresolved older store with a predicted dependence.
                self.storesets.note_stall();
                return false;
            }
        }
        true
    }

    /// Finds the youngest issued older store matching the load's address:
    /// a backward walk over the older-than-load SQ prefix, stopping at the
    /// first (youngest) match.
    fn forwarding_store(&self, load_oi: u32, addr: u64) -> Option<u32> {
        let older = self.sq.partition_point(|&si| si < load_oi);
        for &si in self.sq.range(..older).rev() {
            let st = &self.ops[si as usize];
            if st.issued_at.is_some() && st.mem_addr & !7 == addr & !7 {
                return Some(si);
            }
        }
        None
    }

    /// Detects younger already-issued loads that overlap a store's
    /// address: memory-ordering violation. Returns the oldest such load.
    /// Only the younger-than-store LQ suffix is scanned.
    fn violating_load(&self, store_oi: u32, addr: u64) -> Option<u32> {
        let younger = self.lq.partition_point(|&li| li <= store_oi);
        for &li in self.lq.range(younger..) {
            let ld = &self.ops[li as usize];
            if ld.issued_at.is_some() && ld.mem_addr & !7 == addr & !7 {
                return Some(li);
            }
        }
        None
    }

    fn execute(&mut self, oi: u32, max_src_ready: u64) {
        let now = self.cycle;
        // Consumer-delay propagation for Slack-Dynamic: if a source's
        // producer is a serialization-delayed handle, the value arrived at
        // `max_src_ready`, and we are issuing exactly then, the delay
        // propagated.
        for s in 0..3 {
            let Some(dep) = self.ops[oi as usize].srcs[s] else {
                continue;
            };
            let Some(p) = dep.producer else { continue };
            let p_ready = self.ops[p as usize].ready_at;
            // Local-slack sample: how long after the value arrived did
            // this consumer issue?
            let margin = now.saturating_sub(p_ready);
            let prod = &mut self.ops[p as usize];
            prod.min_margin = prod.min_margin.min(margin);
            if prod.ser_delayed && p_ready == max_src_ready && now == p_ready {
                prod.consumer_delayed = true;
            }
        }
        // Record per-slot value ready times for profiling.
        if self.opts.profile_slack {
            for s in 0..2 {
                if let Some(dep) = self.ops[oi as usize].srcs[s] {
                    self.ops[oi as usize].src_ready[s] = Some(self.src_ready_time(&dep));
                }
            }
        }

        let kind = self.ops[oi as usize].kind;
        self.ops[oi as usize].issued_at = Some(now);
        match kind {
            OpKind::Handle(idx) => self.execute_handle(oi, idx, max_src_ready),
            OpKind::Singleton(id) => self.execute_singleton(oi, id),
            OpKind::OutJump(_) | OpKind::RetJump(_) => unreachable!("jumps bypass the IQ"),
        }
        // The op's completion time is now final: reschedule its waiters.
        // (A violation flush above may have squashed some of them; the
        // walk drops those.)
        self.wake_waiters(oi);
    }

    fn execute_singleton(&mut self, oi: u32, id: StaticId) {
        let now = self.cycle;
        let inst = self.program.inst(id);
        match inst.op {
            Opcode::Load => {
                let addr = self.ops[oi as usize].mem_addr;
                let lat = if let Some(si) = self.forwarding_store(oi, addr) {
                    // Store-to-load forwarding: fast, and a slack sample
                    // for the store's "memory output".
                    let st = &mut self.ops[si as usize];
                    st.min_margin = st.min_margin.min(now.saturating_sub(st.done_at));
                    2
                } else {
                    self.mem.data_latency(addr)
                };
                let op = &mut self.ops[oi as usize];
                op.ready_at = now + 1 + lat as u64;
                op.done_at = op.ready_at;
                #[cfg(feature = "obs")]
                if lat > self.cfg.dl1.hit_lat {
                    let done = op.done_at;
                    if let Some(obs) = self.obs.as_mut() {
                        obs.note_load_miss(done);
                    }
                }
            }
            Opcode::Store => {
                let addr = self.ops[oi as usize].mem_addr;
                let op = &mut self.ops[oi as usize];
                op.done_at = now + 1;
                op.ready_at = now + 1;
                if let Some(li) = self.violating_load(oi, addr) {
                    self.flush_from_violation(oi, li);
                }
            }
            Opcode::Br(_) => {
                let op = &mut self.ops[oi as usize];
                op.done_at = now + 1;
                op.ready_at = now + 1;
                op.resolve_at = now + self.cfg.sched_to_exec as u64 + 1;
                if op.mispredicted {
                    op.min_margin = 0; // delaying a mispredict delays redirect
                    let resume = op.resolve_at + 1;
                    self.fetch_resume = resume;
                }
            }
            _ => {
                let lat = inst.op.latency() as u64;
                let op = &mut self.ops[oi as usize];
                op.ready_at = now + lat;
                op.done_at = now + lat;
            }
        }
    }

    fn execute_handle(&mut self, oi: u32, idx: u32, max_src_ready: u64) {
        let now = self.cycle;
        // Instance metadata is read in place; the mutations below touch
        // disjoint `Engine` fields (`ops`, `mem`, the scratch buffer), so
        // no clone of the interface Vecs is needed.
        let info = &self.imap.instances[idx as usize];

        // Serialization detection (rule of §4.4): is a serializing input
        // among the last-arriving operands?
        let mut sial = false;
        for (s, &(_, first_pos)) in info.ext_inputs.iter().enumerate() {
            if first_pos == 0 {
                continue;
            }
            if let Some(dep) = self.ops[oi as usize].srcs[s] {
                if self.src_ready_time(&dep) == max_src_ready && max_src_ready > 0 {
                    sial = true;
                }
            }
        }
        let delayed = sial && now == max_src_ready;
        {
            let op = &mut self.ops[oi as usize];
            op.sial = sial;
            op.ser_delayed = delayed;
        }

        // Constituent execution off the MGT (rule #2): with internal
        // serialization, constituent n's *slot* follows constituent n-1's
        // by the latter's execution latency — the ALU-pipeline flow, using
        // the optimistic (hit) latency the slot occupies. Data dependences
        // additionally wait for actual values (a missing load delays its
        // dependents, not independent followers, just as in a singleton
        // execution). The `internal_serialization: false` ablation drops
        // the slot chaining entirely (pure dataflow order).
        let serial = self.cfg.mg.internal_serialization;
        let l1_hit = self.cfg.dl1.hit_lat;
        let out_pos = info.output_pos();
        self.handle_finish.clear(); // scratch: per-constituent data-ready times
        let mut out_ready = NEVER;
        let mut store_event: Option<(u64, u64)> = None; // (exec cycle, addr)
        let mut resolve: Option<u64> = None;
        let mut slot_cursor = now;
        for p in 0..info.len {
            let pos = info.start + p;
            let inst = &self.program.block(info.block).insts[pos];
            let mut start = if serial { slot_cursor } else { now };
            for link in info.src_links[p] {
                if let Some(crate::mgi::SrcLink::Internal(d)) = link {
                    start = start.max(self.handle_finish[d]);
                }
            }
            let data_lat = match inst.op {
                Opcode::Load => {
                    let addr = self.ops[oi as usize].mem_addr;
                    let l = if let Some(si) = self.forwarding_store(oi, addr) {
                        let st = &mut self.ops[si as usize];
                        st.min_margin = st.min_margin.min(start.saturating_sub(st.done_at));
                        2
                    } else {
                        self.mem.data_latency(addr)
                    };
                    #[cfg(feature = "obs")]
                    if l > l1_hit {
                        let avail = start + 1 + l as u64;
                        if let Some(obs) = self.obs.as_mut() {
                            obs.note_load_miss(avail);
                        }
                    }
                    1 + l as u64
                }
                Opcode::Store => {
                    store_event = Some((start, self.ops[oi as usize].mem_addr));
                    1
                }
                op => op.latency() as u64,
            };
            let slot_lat = inst.op.optimistic_latency(l1_hit) as u64;
            slot_cursor = start + slot_lat;
            let end = start + data_lat;
            self.handle_finish.push(end);
            if out_pos == Some(p) {
                out_ready = end;
            }
            if inst.op.is_control() {
                resolve = Some(end + self.cfg.sched_to_exec as u64);
            }
        }
        let cur = *self
            .handle_finish
            .iter()
            .max()
            .expect("instances are non-empty");
        // A handle occupying more than one execution cycle is running its
        // constituents serially: that window is serialization latency.
        #[cfg(feature = "obs")]
        if cur > now + 1 {
            if let Some(obs) = self.obs.as_mut() {
                obs.note_handle_exec(cur);
            }
        }
        {
            let op = &mut self.ops[oi as usize];
            op.done_at = cur;
            op.ready_at = if out_ready == NEVER { cur } else { out_ready };
            if let Some(r) = resolve {
                op.resolve_at = r;
                if op.mispredicted {
                    op.min_margin = 0;
                    self.fetch_resume = r + 1;
                }
            }
        }
        if let Some((_, addr)) = store_event {
            if let Some(li) = self.violating_load(oi, addr) {
                self.flush_from_violation(oi, li);
            }
        }
    }

    // ------------------------------------------------------------------
    // Violation squash + replay
    // ------------------------------------------------------------------

    fn flush_from_violation(&mut self, store_oi: u32, load_oi: u32) {
        self.stats.violation_flushes += 1;
        let load = &self.ops[load_oi as usize];
        let store = &self.ops[store_oi as usize];
        self.storesets.train_violation(load.pc, store.pc);
        // Round the squash point down to the load's outline-group leader
        // so refetch reconstructs whole groups.
        let from = load.group_leader.unwrap_or(load_oi).min(load_oi);
        self.squash_from(from);
        self.fetch_resume = self.cycle + 2; // detect + redirect
        #[cfg(feature = "obs")]
        {
            self.obs_redirect = mg_obs::RedirectKind::Other;
        }
    }

    fn squash_from(&mut self, from: u32) {
        // Fetch restarts at the squashed op's first trace entry. Synthetic
        // jumps carry the trace position they were fetched at.
        self.fetch_ptr = self.ops[from as usize].trace_lo as usize;
        self.outline = None;
        self.fetchq.retain(|&oi| oi < from);
        self.rob.retain(|&oi| oi < from);
        self.lq.retain(|&oi| oi < from);
        self.sq.retain(|&oi| oi < from);
        // The ready list and wakeup heap are filtered lazily: entries for
        // squashed ops are dropped on their next touch. (A flush can fire
        // mid-issue-pass, so the ready list must not be edited here.)
        for oi in (from as usize)..self.ops.len() {
            {
                let op = &mut self.ops[oi];
                if op.squashed || op.committed {
                    continue;
                }
                op.squashed = true;
                if op.dispatched_at.is_some() {
                    if op.dest.is_some() {
                        self.free_regs += 1;
                    }
                    if op.needs_iq && op.issued_at.is_none() {
                        self.iq_free += 1;
                    }
                    if op.is_load {
                        self.lq_free += 1;
                    }
                    if op.is_store {
                        self.sq_free += 1;
                    }
                }
            }
            #[cfg(feature = "obs")]
            if self.obs.is_some() {
                let t = self.obs_trace_of(oi as u32, None, Some(self.cycle));
                if let Some(obs) = self.obs.as_mut() {
                    obs.note_op(t);
                }
            }
        }
        // Rebuild the rename table from surviving in-flight writers,
        // walking the ROB in place (oldest to youngest, so the youngest
        // writer of each register wins, as during dispatch).
        self.rename = [None; mg_isa::reg::NUM_ARCH_REGS];
        for &oi in &self.rob {
            if let Some(d) = self.ops[oi as usize].dest {
                self.rename[d.index()] = Some(oi);
            }
        }
        self.last_fetch_line = u64::MAX;
    }

    // ------------------------------------------------------------------
    // Dispatch (rename)
    // ------------------------------------------------------------------

    fn dispatch(&mut self) {
        for _ in 0..self.cfg.rename_width {
            let Some(&oi) = self.fetchq.front() else {
                break;
            };
            if self.ops[oi as usize].avail_at > self.cycle {
                break;
            }
            let op = &self.ops[oi as usize];
            // Resource checks. Each taken break reports the structural
            // cause that stopped in-order dispatch to the collector.
            if self.rob.len() >= self.cfg.rob_entries as usize {
                #[cfg(feature = "obs")]
                if let Some(obs) = self.obs.as_mut() {
                    obs.note_dispatch_block(mg_obs::DispatchBlock::Rob);
                }
                break;
            }
            if op.needs_iq && self.iq_free == 0 {
                #[cfg(feature = "obs")]
                if let Some(obs) = self.obs.as_mut() {
                    obs.note_dispatch_block(mg_obs::DispatchBlock::Iq);
                }
                break;
            }
            if op.dest.is_some() && self.free_regs == 0 {
                #[cfg(feature = "obs")]
                if let Some(obs) = self.obs.as_mut() {
                    obs.note_dispatch_block(mg_obs::DispatchBlock::Regs);
                }
                break;
            }
            if op.is_load && self.lq_free == 0 {
                #[cfg(feature = "obs")]
                if let Some(obs) = self.obs.as_mut() {
                    obs.note_dispatch_block(mg_obs::DispatchBlock::Lq);
                }
                break;
            }
            if op.is_store && self.sq_free == 0 {
                #[cfg(feature = "obs")]
                if let Some(obs) = self.obs.as_mut() {
                    obs.note_dispatch_block(mg_obs::DispatchBlock::Sq);
                }
                break;
            }
            self.fetchq.pop_front();
            // Resolve source producers through the rename table. At most
            // three sources exist (two singleton operands, or up to three
            // external inputs per the RISC-singleton interface bound).
            let kind = self.ops[oi as usize].kind;
            let mut src_regs = [None::<Reg>; 3];
            let mut n_srcs = 0usize;
            match kind {
                OpKind::Singleton(id) => {
                    let inst = self.program.inst(id);
                    for r in [inst.src1, inst.src2].into_iter().flatten() {
                        if !r.is_zero() {
                            src_regs[n_srcs] = Some(r);
                            n_srcs += 1;
                        }
                    }
                }
                OpKind::Handle(idx) => {
                    for &(r, _) in &self.imap.instances[idx as usize].ext_inputs {
                        src_regs[n_srcs] = Some(r);
                        n_srcs += 1;
                    }
                }
                _ => {}
            }
            let mut renames = [None::<u32>; 3];
            for s in 0..n_srcs {
                renames[s] = self.rename[src_regs[s].expect("filled above").index()];
            }
            {
                let op = &mut self.ops[oi as usize];
                for (s, &producer) in renames.iter().enumerate().take(n_srcs) {
                    op.srcs[s] = Some(SrcDep { producer });
                }
                op.dispatched_at = Some(self.cycle);
            }
            // Allocate.
            let op = &self.ops[oi as usize];
            if op.needs_iq {
                self.iq_free -= 1;
                self.schedule_for_issue(oi);
            } else {
                // Control-only ops complete immediately.
                let sched = self.cfg.sched_to_exec as u64;
                let op = &mut self.ops[oi as usize];
                op.issued_at = Some(self.cycle);
                op.ready_at = self.cycle + 1;
                op.done_at = self.cycle + 1;
                if op.mispredicted {
                    // A mispredicted bypass transfer (e.g. a RAS miss on a
                    // return) resolves after register read.
                    op.resolve_at = self.cycle + sched + 1;
                    self.fetch_resume = op.resolve_at + 1;
                }
            }
            let op = &self.ops[oi as usize];
            if op.is_load {
                self.lq_free -= 1;
                self.lq.push_back(oi);
            }
            if op.is_store {
                self.sq_free -= 1;
                self.sq.push_back(oi);
            }
            if let Some(d) = op.dest {
                self.free_regs -= 1;
                self.rename[d.index()] = Some(oi);
            }
            self.rob.push_back(oi);
        }
    }

    // ------------------------------------------------------------------
    // Fetch
    // ------------------------------------------------------------------

    fn peek_unit(&self) -> Option<(FetchUnit, u64)> {
        if let Some(out) = self.outline {
            let info = &self.imap.instances[out.inst_idx as usize];
            if out.next_pos < info.len {
                let id = self.program.id_of(info.block, info.start + out.next_pos);
                let pc = if out.penalized {
                    self.program.pc_of(id)
                } else {
                    // Idealized inline execution: consecutive main-line
                    // addresses from the handle slot.
                    let head = self.program.id_of(info.block, info.start);
                    self.program.pc_of(head) + mg_isa::program::INST_BYTES * out.next_pos as u64
                };
                return Some((FetchUnit::OutConstituent(out.inst_idx, out.next_pos), pc));
            }
            debug_assert!(
                out.penalized,
                "free-mode outlines end at the last constituent"
            );
            let last_id = self.program.id_of(info.block, info.start + info.len - 1);
            return Some((
                FetchUnit::OutRetJump(out.inst_idx),
                self.program.pc_of(last_id) + mg_isa::program::INST_BYTES,
            ));
        }
        if self.fetch_ptr >= self.trace.len() {
            return None;
        }
        let entry = self.trace.insts[self.fetch_ptr];
        let inst = self.program.inst(entry.id);
        if let Some(tag) = inst.mg {
            debug_assert_eq!(tag.pos, 0, "fetch must land on instance heads");
            let idx = self
                .imap
                .index_of_handle(entry.id)
                .expect("tagged head has instance info");
            let enabled = self.cfg.mg.enabled
                && self
                    .dynctl
                    .as_ref()
                    .map(|ctl| ctl.enabled(tag.template))
                    .unwrap_or(true);
            let pc = self.program.pc_of(entry.id);
            if enabled {
                Some((FetchUnit::Handle(idx), pc))
            } else if self
                .dynctl
                .as_ref()
                .map(|c| c.config().cost == crate::dynmg::DisableCost::Outlined)
                .unwrap_or(true)
            {
                Some((FetchUnit::OutJumpStart(idx), pc))
            } else {
                // Idealized disable: constituents execute inline as
                // singletons, no jumps.
                Some((FetchUnit::OutConstituent(idx, 0), pc))
            }
        } else {
            Some((FetchUnit::Singleton, self.program.pc_of(entry.id)))
        }
    }

    fn fetch(&mut self) {
        if self.cycle < self.fetch_resume {
            return;
        }
        let mut slots = self.cfg.fetch_width;
        let line_bytes = self.cfg.il1.line_bytes as u64;
        let mut cycle_line: Option<u64> = None;

        while slots > 0 && self.fetchq.len() < self.fetchq_cap {
            let Some((unit, pc)) = self.peek_unit() else {
                break;
            };
            let line = pc / line_bytes;
            match cycle_line {
                Some(l) if l != line => break, // one line per cycle
                Some(_) => {}
                None => {
                    if line != self.last_fetch_line {
                        let lat = self.mem.fetch_latency(pc);
                        self.last_fetch_line = line;
                        if lat > self.cfg.il1.hit_lat {
                            // Miss: stall fetch; the op is fetched after
                            // the fill (the line now hits).
                            self.fetch_resume = self.cycle + (lat - self.cfg.il1.hit_lat) as u64;
                            #[cfg(feature = "obs")]
                            {
                                self.obs_redirect = mg_obs::RedirectKind::Icache;
                            }
                            return;
                        }
                    }
                    cycle_line = Some(line);
                }
            }
            let broke = self.fetch_one(unit, pc);
            slots -= 1;
            if broke {
                break;
            }
        }
    }

    /// Materializes one fetch unit. Returns `true` if fetch must break
    /// (taken control transfer or redirect stall).
    fn fetch_one(&mut self, unit: FetchUnit, pc: u64) -> bool {
        let avail = self.cycle + self.cfg.front_depth as u64;
        let oi = self.ops.len() as u32;
        match unit {
            FetchUnit::Singleton => {
                let entry = self.trace.insts[self.fetch_ptr];
                self.fetch_ptr += 1;
                let mut op = Op::new(OpKind::Singleton(entry.id), pc, avail);
                op.trace_lo = (self.fetch_ptr - 1) as u32;
                op.trace_len = 1;
                self.init_singleton_op(&mut op, entry.id, entry.addr);
                let inst = self.program.inst(entry.id);
                let ctrl = inst.op.is_control();
                self.ops.push(op);
                self.fetchq.push_back(oi);
                if ctrl {
                    self.handle_control_fetch(oi, pc, inst.op, entry.taken)
                } else {
                    false
                }
            }
            FetchUnit::OutConstituent(inst_idx, next_pos) => {
                let entry = self.trace.insts[self.fetch_ptr];
                self.fetch_ptr += 1;
                // A free-mode (no-penalty) group starts directly at its
                // first constituent; it is its own flush leader.
                let (leader, penalized) = match self.outline {
                    Some(out) => (out.leader, out.penalized),
                    None => (oi, false),
                };
                let mut op = Op::new(OpKind::Singleton(entry.id), pc, avail);
                op.trace_lo = (self.fetch_ptr - 1) as u32;
                op.trace_len = 1;
                op.group_leader = Some(leader);
                self.init_singleton_op(&mut op, entry.id, entry.addr);
                let inst = self.program.inst(entry.id);
                let ctrl = inst.op.is_control();
                self.ops.push(op);
                self.fetchq.push_back(oi);
                let len = self.imap.instances[inst_idx as usize].len;
                if !penalized && next_pos + 1 == len {
                    self.outline = None; // free-mode group ends inline
                } else {
                    self.outline = Some(OutlineProgress {
                        inst_idx,
                        leader,
                        next_pos: next_pos + 1,
                        penalized,
                    });
                }
                if ctrl {
                    self.handle_control_fetch(oi, pc, inst.op, entry.taken)
                } else {
                    false
                }
            }
            FetchUnit::Handle(idx) => {
                // Read in place: the loop below only advances `fetch_ptr`,
                // which is disjoint from the instance metadata.
                let info = &self.imap.instances[idx as usize];
                let lo = self.fetch_ptr;
                // Consume the constituents' trace entries.
                let mut mem_addr = 0;
                let mut br_taken = false;
                for p in 0..info.len {
                    let entry = self.trace.insts[self.fetch_ptr];
                    debug_assert_eq!(
                        entry.id,
                        self.program.id_of(info.block, info.start + p),
                        "trace must walk instance constituents contiguously"
                    );
                    if self.program.inst(entry.id).op.is_mem() {
                        mem_addr = entry.addr;
                    }
                    if self.program.inst(entry.id).op.is_control() {
                        br_taken = entry.taken;
                    }
                    self.fetch_ptr += 1;
                }
                let mut op = Op::new(OpKind::Handle(idx), pc, avail);
                op.trace_lo = lo as u32;
                op.trace_len = info.len as u8;
                op.needs_iq = true;
                op.dest = info.output.map(|(r, _)| r);
                op.mem_addr = mem_addr;
                if let Some((_, is_load)) = info.mem {
                    op.is_load = is_load;
                    op.is_store = !is_load;
                }
                let ctrl_op = info
                    .control
                    .map(|p| self.program.block(info.block).insts[info.start + p].op);
                self.ops.push(op);
                self.fetchq.push_back(oi);
                if let Some(cop) = ctrl_op {
                    self.handle_control_fetch(oi, pc, cop, br_taken)
                } else {
                    false
                }
            }
            FetchUnit::OutJumpStart(idx) => {
                // Count the encounter toward resurrection (affects later
                // instances of the template, not this one).
                let template = self.imap.instances[idx as usize].template;
                if let Some(ctl) = &mut self.dynctl {
                    ctl.note_disabled_encounter(template);
                }
                let mut op = Op::new(OpKind::OutJump(idx), pc, avail);
                op.trace_lo = self.fetch_ptr as u32;
                op.group_leader = Some(oi);
                self.ops.push(op);
                self.fetchq.push_back(oi);
                self.outline = Some(OutlineProgress {
                    inst_idx: idx,
                    leader: oi,
                    next_pos: 0,
                    penalized: true,
                });
                // An outlining jump is an always-taken direct jump.
                self.handle_control_fetch(oi, pc, Opcode::Jmp, true)
            }
            FetchUnit::OutRetJump(idx) => {
                let leader = self.outline.expect("outline in progress").leader;
                let mut op = Op::new(OpKind::RetJump(idx), pc, avail);
                op.trace_lo = self.fetch_ptr as u32;
                op.group_leader = Some(leader);
                self.ops.push(op);
                self.fetchq.push_back(oi);
                self.outline = None;
                self.handle_control_fetch(oi, pc, Opcode::Jmp, true)
            }
        }
    }

    fn init_singleton_op(&self, op: &mut Op, id: StaticId, addr: u64) {
        let inst = self.program.inst(id);
        op.dest = inst.def();
        op.exec_class = inst.op.exec_class();
        op.is_load = inst.op.is_load();
        op.is_store = inst.op.is_store();
        op.mem_addr = addr;
        op.needs_iq = !matches!(
            inst.op,
            Opcode::Jmp | Opcode::Call | Opcode::Ret | Opcode::Halt | Opcode::Nop
        );
    }

    /// Branch-prediction bookkeeping for a just-fetched control transfer.
    /// Returns `true` if fetch must break this cycle.
    fn handle_control_fetch(&mut self, oi: u32, pc: u64, op: Opcode, taken: bool) -> bool {
        // Actual target: the next unit's pc (committed path).
        let actual_target = self.peek_target_pc();
        match op {
            Opcode::Br(_) => {
                let pred = self.dirpred.predict_and_train(pc, taken);
                if pred != taken {
                    self.ops[oi as usize].mispredicted = true;
                    self.fetch_resume = NEVER; // released at resolve
                    #[cfg(feature = "obs")]
                    {
                        self.obs_redirect = mg_obs::RedirectKind::Mispredict;
                    }
                    return true;
                }
                if taken {
                    return self.taken_target_check(pc, actual_target);
                }
                false
            }
            Opcode::Jmp => self.taken_target_check(pc, actual_target),
            Opcode::Call => {
                self.ras.push(pc + mg_isa::program::INST_BYTES);
                self.taken_target_check(pc, actual_target)
            }
            Opcode::Ret => {
                let pred = self.ras.pop();
                if pred != actual_target && actual_target.is_some() {
                    self.dirpred.note_ras_mispredict();
                    self.ops[oi as usize].mispredicted = true;
                    self.fetch_resume = NEVER;
                    #[cfg(feature = "obs")]
                    {
                        self.obs_redirect = mg_obs::RedirectKind::Mispredict;
                    }
                    return true;
                }
                true // taken transfer always breaks fetch
            }
            Opcode::Halt => true,
            _ => false,
        }
    }

    /// BTB check for a taken direct transfer: a miss costs one fetch
    /// bubble; either way taken transfers end the fetch cycle.
    fn taken_target_check(&mut self, pc: u64, actual_target: Option<u64>) -> bool {
        let Some(target) = actual_target else {
            return true;
        };
        match self.btb.lookup(pc) {
            Some(t) if t == target => {}
            _ => {
                self.dirpred.note_btb_miss();
                self.btb.update(pc, target);
                self.fetch_resume = self.cycle + 2; // one-bubble redirect
                #[cfg(feature = "obs")]
                {
                    self.obs_redirect = mg_obs::RedirectKind::Other;
                }
            }
        }
        true
    }

    fn peek_target_pc(&self) -> Option<u64> {
        self.peek_unit().map(|(_, pc)| pc)
    }

    // ------------------------------------------------------------------
    // Slack profile construction
    // ------------------------------------------------------------------

    fn build_profile(&self) -> SlackProfile {
        let mut accums = vec![ProfileAccum::default(); self.program.static_count()];
        let mut base: i64 = 0;
        for op in &self.ops {
            if op.squashed || !op.committed {
                continue;
            }
            let OpKind::Singleton(id) = op.kind else {
                continue; // profiles are collected on singleton runs
            };
            let loc = self.program.loc_of(id);
            let issued = op.issued_at.or(op.dispatched_at).unwrap_or(0) as i64;
            if loc.idx == 0 {
                base = issued;
            }
            let out_ready = if op.ready_at == NEVER {
                op.done_at.min(op.ready_at)
            } else {
                op.ready_at
            } as i64;
            let margin = if op.min_margin == NEVER {
                slack::SLACK_CAP
            } else {
                op.min_margin
            };
            accums[id.index()].add(
                issued - base,
                [
                    op.src_ready[0].map(|r| r as i64 - base),
                    op.src_ready[1].map(|r| r as i64 - base),
                ],
                out_ready - base,
                margin,
                op.mispredicted,
                (out_ready as u64).saturating_sub(issued as u64),
            );
        }
        slack::finish_profile(self.program, &accums)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MgConfig;
    use mg_isa::{BrCond, Instruction, MgTag, ProgramBuilder};
    use mg_workloads::Executor;

    fn run_on(program: &Program, cfg: &MachineConfig) -> SimResult {
        let (trace, _) = Executor::new(program).run().unwrap();
        let r = simulate(program, &trace, cfg, SimOptions::default());
        assert!(!r.hit_cycle_cap, "cycle cap hit");
        r
    }

    fn tag(instance: u32, template: u16, pos: u8, len: u8) -> MgTag {
        MgTag {
            instance,
            template,
            pos,
            len,
        }
    }

    /// A loop whose body is `n` independent addi chains, iterated `iters`
    /// times. High ILP.
    fn independent_loop(n: usize, iters: i64) -> Program {
        let mut pb = ProgramBuilder::new("ilp");
        let f = pb.func("main");
        let head = pb.block(f);
        let body = pb.block(f);
        let exit = pb.block(f);
        pb.push(head, Instruction::li(Reg::R1, iters));
        pb.set_fallthrough(head, body);
        for i in 0..n {
            let r = Reg::new((2 + i) as u8);
            pb.push(body, Instruction::addi(r, r, 1));
        }
        pb.push(body, Instruction::addi(Reg::R1, Reg::R1, -1));
        pb.push(body, Instruction::br(BrCond::Ne, Reg::R1, Reg::ZERO, body));
        pb.set_fallthrough(body, exit);
        pb.push(exit, Instruction::halt());
        pb.build().unwrap()
    }

    /// A loop whose body is a serial dependence chain.
    fn chain_loop(n: usize, iters: i64) -> Program {
        let mut pb = ProgramBuilder::new("chain");
        let f = pb.func("main");
        let head = pb.block(f);
        let body = pb.block(f);
        let exit = pb.block(f);
        pb.push(head, Instruction::li(Reg::R1, iters));
        pb.set_fallthrough(head, body);
        for _ in 0..n {
            pb.push(body, Instruction::addi(Reg::R2, Reg::R2, 1));
        }
        pb.push(body, Instruction::addi(Reg::R1, Reg::R1, -1));
        pb.push(body, Instruction::br(BrCond::Ne, Reg::R1, Reg::ZERO, body));
        pb.set_fallthrough(body, exit);
        pb.push(exit, Instruction::halt());
        pb.build().unwrap()
    }

    #[test]
    fn independent_work_approaches_issue_width() {
        let p = independent_loop(10, 400);
        let r = run_on(&p, &MachineConfig::baseline());
        // 12 instructions per iteration; 4-wide machine with 4 simple
        // ALUs should sustain IPC well above 2.5.
        assert!(r.ipc() > 2.5, "ipc {}", r.ipc());
    }

    #[test]
    fn dependence_chain_limits_ipc_to_one_ish() {
        let p = chain_loop(12, 400);
        let r = run_on(&p, &MachineConfig::baseline());
        assert!(r.ipc() < 1.35, "ipc {}", r.ipc());
        assert!(r.ipc() > 0.8, "ipc {}", r.ipc());
    }

    #[test]
    fn narrower_machine_is_slower_on_parallel_work() {
        let p = independent_loop(10, 400);
        let wide = run_on(&p, &MachineConfig::baseline());
        let narrow = run_on(&p, &MachineConfig::reduced());
        assert!(narrow.stats.cycles > wide.stats.cycles);
        // But a serial chain is insensitive to width.
        let c = chain_loop(12, 400);
        let cw = run_on(&c, &MachineConfig::baseline());
        let cn = run_on(&c, &MachineConfig::reduced());
        let ratio = cn.stats.cycles as f64 / cw.stats.cycles as f64;
        assert!(ratio < 1.1, "serial code slowed {ratio} by narrowing");
    }

    #[test]
    fn commit_counts_match_trace() {
        let p = independent_loop(4, 100);
        let (trace, _) = Executor::new(&p).run().unwrap();
        let r = simulate(
            &p,
            &trace,
            &MachineConfig::baseline(),
            SimOptions::default(),
        );
        assert_eq!(r.stats.committed_instrs, trace.len() as u64);
    }

    #[test]
    fn mispredictable_branches_cost_cycles() {
        // Loop with a data-dependent (LCG-driven) branch inside.
        let build = |with_branch: bool| {
            let mut pb = ProgramBuilder::new("br");
            let f = pb.func("main");
            let head = pb.block(f);
            let body = pb.block(f);
            let taken = pb.block(f);
            let join = pb.block(f);
            let exit = pb.block(f);
            pb.push(head, Instruction::li(Reg::R1, 600));
            pb.push(head, Instruction::li(Reg::R2, 12345));
            pb.push(head, Instruction::li(Reg::R3, 6364136223846793005));
            pb.set_fallthrough(head, body);
            pb.push(body, Instruction::mul(Reg::R2, Reg::R2, Reg::R3));
            pb.push(body, Instruction::addi(Reg::R2, Reg::R2, 7));
            pb.push(
                body,
                Instruction::alu_ri(Opcode::ShrI, Reg::R4, Reg::R2, 62),
            );
            if with_branch {
                pb.push(body, Instruction::br(BrCond::Eq, Reg::R4, Reg::ZERO, join));
            } else {
                pb.push(body, Instruction::add(Reg::R5, Reg::R4, Reg::ZERO));
            }
            pb.set_fallthrough(body, taken);
            pb.push(taken, Instruction::addi(Reg::R6, Reg::R6, 1));
            pb.set_fallthrough(taken, join);
            pb.push(join, Instruction::addi(Reg::R1, Reg::R1, -1));
            pb.push(join, Instruction::br(BrCond::Ne, Reg::R1, Reg::ZERO, body));
            pb.set_fallthrough(join, exit);
            pb.push(exit, Instruction::halt());
            pb.build().unwrap()
        };
        let with_br = run_on(&build(true), &MachineConfig::baseline());
        assert!(
            with_br.stats.bpred.dir_mispredicts > 100,
            "LCG branch should mispredict, got {}",
            with_br.stats.bpred.dir_mispredicts
        );
        // Mispredicts must cost real time: IPC clearly below the
        // branch-free variant.
        let without = run_on(&build(false), &MachineConfig::baseline());
        assert!(with_br.stats.cycles as f64 > 1.2 * without.stats.cycles as f64);
    }

    /// Program with a 3-instruction dependent chain per iteration, both
    /// plain and tagged as a mini-graph.
    fn mg_chain_program(tagged: bool) -> Program {
        let mut pb = ProgramBuilder::new("mgchain");
        let f = pb.func("main");
        let head = pb.block(f);
        let body = pb.block(f);
        let exit = pb.block(f);
        pb.push(head, Instruction::li(Reg::R1, 500));
        pb.set_fallthrough(head, body);
        let mk = |i: Instruction, pos: u8| {
            if tagged {
                i.with_mg(tag(0, 0, pos, 3))
            } else {
                i
            }
        };
        pb.push(body, mk(Instruction::addi(Reg::R2, Reg::R1, 3), 0));
        pb.push(
            body,
            mk(Instruction::alu_ri(Opcode::XorI, Reg::R3, Reg::R2, 255), 1),
        );
        pb.push(body, mk(Instruction::shli(Reg::R4, Reg::R3, 2), 2));
        pb.push(body, Instruction::add(Reg::R5, Reg::R5, Reg::R4));
        pb.push(body, Instruction::addi(Reg::R1, Reg::R1, -1));
        pb.push(body, Instruction::br(BrCond::Ne, Reg::R1, Reg::ZERO, body));
        pb.set_fallthrough(body, exit);
        pb.push(exit, Instruction::halt());
        pb.build().unwrap()
    }

    #[test]
    fn handles_amplify_a_narrow_machine() {
        let plain = mg_chain_program(false);
        let tagged = mg_chain_program(true);
        // Functional behaviour must be identical.
        let (tp, sp) = Executor::new(&plain).run().unwrap();
        let (tt, st) = Executor::new(&tagged).run().unwrap();
        assert_eq!(tp.len(), tt.len());
        assert_eq!(sp.read(Reg::R5), st.read(Reg::R5));

        // On a very narrow machine, embedding half the loop body in a
        // handle relieves fetch/issue/commit bandwidth.
        let cfg = MachineConfig::two_way().with_mg(MgConfig::paper());
        let rp = simulate(&plain, &tp, &cfg, SimOptions::default());
        let rt = simulate(&tagged, &tt, &cfg, SimOptions::default());
        assert!(!rt.hit_cycle_cap);
        assert!(
            rt.stats.mg_handles >= 499,
            "handles committed: {}",
            rt.stats.mg_handles
        );
        assert!(
            rt.stats.coverage() > 0.45,
            "coverage {}",
            rt.stats.coverage()
        );
        assert!(
            rt.stats.cycles < rp.stats.cycles,
            "mini-graphs should help: {} vs {}",
            rt.stats.cycles,
            rp.stats.cycles
        );
    }

    #[test]
    fn disabled_mg_support_runs_outlined_and_slower() {
        let tagged = mg_chain_program(true);
        let (tt, _) = Executor::new(&tagged).run().unwrap();
        let on = simulate(
            &tagged,
            &tt,
            &MachineConfig::baseline().with_mg(MgConfig::paper()),
            SimOptions::default(),
        );
        let off = simulate(
            &tagged,
            &tt,
            &MachineConfig::baseline(), // mg disabled: outlined compatibility mode
            SimOptions::default(),
        );
        assert_eq!(off.stats.mg_handles, 0);
        assert!(off.stats.outline_jumps >= 2 * 499);
        assert!(off.stats.outlined_instrs >= 3 * 499);
        assert!(off.stats.cycles > on.stats.cycles);
        // Both commit the same instruction count.
        assert_eq!(off.stats.committed_instrs, on.stats.committed_instrs);
    }

    /// Mini-graph with a serializing input: the second constituent reads a
    /// late-arriving external value (produced by a long-latency chain).
    #[test]
    fn serializing_handle_is_detected() {
        let mut pb = ProgramBuilder::new("ser");
        let f = pb.func("main");
        let head = pb.block(f);
        let body = pb.block(f);
        let exit = pb.block(f);
        pb.push(head, Instruction::li(Reg::R1, 300));
        pb.push(head, Instruction::li(Reg::R7, 99));
        pb.set_fallthrough(head, body);
        // Late value: 3-deep mul chain feeding r6.
        pb.push(body, Instruction::mul(Reg::R6, Reg::R7, Reg::R7));
        pb.push(body, Instruction::mul(Reg::R6, Reg::R6, Reg::R7));
        // Mini-graph: pos0 consumes early value r1; pos1 consumes late r6
        // (serializing, disconnected); output of pos0 is consumed below.
        pb.push(
            body,
            Instruction::addi(Reg::R2, Reg::R1, 1).with_mg(tag(0, 0, 0, 2)),
        );
        pb.push(
            body,
            Instruction::addi(Reg::R3, Reg::R6, 1).with_mg(tag(0, 0, 1, 2)),
        );
        // Consumer of the mini-graph output r2 (r3 is dead: interior).
        pb.push(body, Instruction::add(Reg::R5, Reg::R5, Reg::R2));
        pb.push(body, Instruction::addi(Reg::R1, Reg::R1, -1));
        pb.push(body, Instruction::br(BrCond::Ne, Reg::R1, Reg::ZERO, body));
        pb.set_fallthrough(body, exit);
        pb.push(exit, Instruction::halt());
        let p = pb.build().unwrap();
        let (t, _) = Executor::new(&p).run().unwrap();
        let r = simulate(
            &p,
            &t,
            &MachineConfig::baseline().with_mg(MgConfig::paper()),
            SimOptions::default(),
        );
        assert!(
            r.stats.serialized_handles > 200,
            "serialized handles: {}",
            r.stats.serialized_handles
        );
        assert!(
            r.stats.harmful_serializations > 100,
            "harmful: {}",
            r.stats.harmful_serializations
        );
    }

    #[test]
    fn slack_dynamic_disables_harmful_templates() {
        // Same serializing program as above.
        let mut pb = ProgramBuilder::new("sd");
        let f = pb.func("main");
        let head = pb.block(f);
        let body = pb.block(f);
        let exit = pb.block(f);
        pb.push(head, Instruction::li(Reg::R1, 300));
        pb.push(head, Instruction::li(Reg::R7, 99));
        pb.set_fallthrough(head, body);
        pb.push(body, Instruction::mul(Reg::R6, Reg::R7, Reg::R7));
        pb.push(body, Instruction::mul(Reg::R6, Reg::R6, Reg::R7));
        pb.push(
            body,
            Instruction::addi(Reg::R2, Reg::R1, 1).with_mg(tag(0, 0, 0, 2)),
        );
        pb.push(
            body,
            Instruction::addi(Reg::R3, Reg::R6, 1).with_mg(tag(0, 0, 1, 2)),
        );
        pb.push(body, Instruction::add(Reg::R5, Reg::R5, Reg::R2));
        pb.push(body, Instruction::addi(Reg::R1, Reg::R1, -1));
        pb.push(body, Instruction::br(BrCond::Ne, Reg::R1, Reg::ZERO, body));
        pb.set_fallthrough(body, exit);
        pb.push(exit, Instruction::halt());
        let p = pb.build().unwrap();
        let (t, _) = Executor::new(&p).run().unwrap();
        let opts = SimOptions {
            dyn_mg: Some(DynMgConfig::slack_dynamic()),
            ..SimOptions::default()
        };
        let r = simulate(
            &p,
            &t,
            &MachineConfig::baseline().with_mg(MgConfig::paper()),
            opts,
        );
        assert!(
            r.stats.disabled_templates >= 1,
            "template should be disabled, stats: {:?}",
            r.stats
        );
        assert!(r.stats.outline_jumps > 0, "disabled instances run outlined");
    }

    #[test]
    fn slack_profile_reports_plausible_values() {
        let p = chain_loop(6, 200);
        let (t, _) = Executor::new(&p).run().unwrap();
        let opts = SimOptions {
            profile_slack: true,
            ..SimOptions::default()
        };
        let r = simulate(&p, &t, &MachineConfig::baseline(), opts);
        let prof = r.slack.expect("profiling requested");
        // Chain instructions: each value consumed immediately -> slack 0.
        let body_first = StaticId(1);
        assert!(prof.executed(body_first));
        let rec = prof.get(body_first);
        assert!(rec.local_slack < 2.0, "chain slack {}", rec.local_slack);
        // Issue times grow along the chain.
        let later = prof.get(StaticId(4));
        assert!(later.issue_rel > rec.issue_rel);
    }

    #[test]
    fn store_load_forwarding_and_violations() {
        // store to addr; dependent load soon after, repeatedly.
        let mut pb = ProgramBuilder::new("fwd");
        let f = pb.func("main");
        let head = pb.block(f);
        let body = pb.block(f);
        let exit = pb.block(f);
        pb.push(head, Instruction::li(Reg::R1, 400));
        pb.push(head, Instruction::li(Reg::R2, 0x8000));
        pb.set_fallthrough(head, body);
        // Slow-ish value so the store's data arrives late.
        pb.push(body, Instruction::mul(Reg::R3, Reg::R1, Reg::R1));
        pb.push(body, Instruction::store(Reg::R2, Reg::R3, 0));
        pb.push(body, Instruction::load(Reg::R4, Reg::R2, 0));
        pb.push(body, Instruction::add(Reg::R5, Reg::R5, Reg::R4));
        pb.push(body, Instruction::addi(Reg::R1, Reg::R1, -1));
        pb.push(body, Instruction::br(BrCond::Ne, Reg::R1, Reg::ZERO, body));
        pb.set_fallthrough(body, exit);
        pb.push(exit, Instruction::halt());
        let p = pb.build().unwrap();
        let (t, _) = Executor::new(&p).run().unwrap();
        let r = simulate(&p, &t, &MachineConfig::baseline(), SimOptions::default());
        assert!(!r.hit_cycle_cap);
        // Early iterations violate (load speculates past the store);
        // StoreSets then learns the dependence and violations stop.
        assert!(r.stats.violation_flushes >= 1);
        assert!(
            r.stats.violation_flushes < 50,
            "storesets never learned: {} flushes",
            r.stats.violation_flushes
        );
        assert_eq!(r.stats.committed_instrs, t.len() as u64);
    }

    #[test]
    fn forwarding_survives_squash_with_tiny_iq() {
        // Same store->load violation pattern as above, but with a
        // 4-entry IQ so the violation squash fires while the issue
        // queue is saturated and the squashed suffix sits mid-ROB.
        // Regression for squash_from's in-place rename rebuild and the
        // lazy filtering of the ready list / wakeup heap.
        let mut pb = ProgramBuilder::new("fwd-tiny");
        let f = pb.func("main");
        let head = pb.block(f);
        let body = pb.block(f);
        let exit = pb.block(f);
        pb.push(head, Instruction::li(Reg::R1, 400));
        pb.push(head, Instruction::li(Reg::R2, 0x8000));
        pb.set_fallthrough(head, body);
        pb.push(body, Instruction::mul(Reg::R3, Reg::R1, Reg::R1));
        pb.push(body, Instruction::store(Reg::R2, Reg::R3, 0));
        pb.push(body, Instruction::load(Reg::R4, Reg::R2, 0));
        pb.push(body, Instruction::add(Reg::R5, Reg::R5, Reg::R4));
        pb.push(body, Instruction::addi(Reg::R1, Reg::R1, -1));
        pb.push(body, Instruction::br(BrCond::Ne, Reg::R1, Reg::ZERO, body));
        pb.set_fallthrough(body, exit);
        pb.push(exit, Instruction::halt());
        let p = pb.build().unwrap();
        let (t, _) = Executor::new(&p).run().unwrap();
        let mut cfg = MachineConfig::baseline();
        cfg.iq_entries = 4;
        let a = simulate(&p, &t, &cfg, SimOptions::default());
        assert!(!a.hit_cycle_cap);
        assert!(a.stats.violation_flushes >= 1);
        assert_eq!(a.stats.committed_instrs, t.len() as u64);
        // Once StoreSets learns the dependence, the per-iteration load
        // forwards from the SQ instead of re-reading the D-cache, so
        // accesses stay well below one per iteration (400 loads total).
        assert!(
            a.stats.dl1.accesses < 200,
            "forwarding broke after squash: {} dl1 accesses",
            a.stats.dl1.accesses
        );
        // Squashing under a full IQ must stay deterministic.
        let b = simulate(&p, &t, &cfg, SimOptions::default());
        assert_eq!(format!("{:?}", a.stats), format!("{:?}", b.stats));
    }

    #[test]
    fn scheduler_drains_iq_when_nothing_is_ready() {
        // A serial mul chain (3-cycle latency) feeding a mini-graph
        // handle: most cycles have a non-empty IQ but an *empty* ready
        // list, with dispatched ops parked in waiter chains or the
        // wakeup heap. Completion proves wakeups fire; the cycle lower
        // bound proves the ops really waited rather than issuing early.
        let mut pb = ProgramBuilder::new("mulchain");
        let f = pb.func("main");
        let head = pb.block(f);
        let body = pb.block(f);
        let exit = pb.block(f);
        pb.push(head, Instruction::li(Reg::R1, 200));
        pb.push(head, Instruction::li(Reg::R7, 1));
        pb.push(head, Instruction::li(Reg::R2, 3));
        pb.set_fallthrough(head, body);
        for _ in 0..4 {
            pb.push(body, Instruction::mul(Reg::R2, Reg::R2, Reg::R7));
        }
        // Handle consuming the chain value: issues only when the last
        // mul completes, i.e. from a previously-empty ready list.
        pb.push(
            body,
            Instruction::addi(Reg::R3, Reg::R2, 3).with_mg(tag(0, 0, 0, 3)),
        );
        pb.push(
            body,
            Instruction::alu_ri(Opcode::XorI, Reg::R4, Reg::R3, 255).with_mg(tag(0, 0, 1, 3)),
        );
        pb.push(
            body,
            Instruction::shli(Reg::R5, Reg::R4, 2).with_mg(tag(0, 0, 2, 3)),
        );
        pb.push(body, Instruction::addi(Reg::R1, Reg::R1, -1));
        pb.push(body, Instruction::br(BrCond::Ne, Reg::R1, Reg::ZERO, body));
        pb.set_fallthrough(body, exit);
        pb.push(exit, Instruction::halt());
        let p = pb.build().unwrap();
        let (t, _) = Executor::new(&p).run().unwrap();
        let cfg = MachineConfig::baseline().with_mg(MgConfig::paper());
        let r = simulate(&p, &t, &cfg, SimOptions::default());
        assert!(!r.hit_cycle_cap, "scheduler deadlocked");
        assert_eq!(r.stats.committed_instrs, t.len() as u64);
        assert!(r.stats.mg_handles >= 199, "handles: {}", r.stats.mg_handles);
        // 800 serially dependent muls at 3 cycles each bound the run
        // from below; hitting completion near that bound means every
        // waiter woke exactly when its producer finished.
        assert!(r.stats.cycles > 2300, "cycles {}", r.stats.cycles);
    }

    #[test]
    fn cycle_cap_halts_simulation_cleanly() {
        let p = chain_loop(12, 400);
        let (t, _) = Executor::new(&p).run().unwrap();
        let opts = SimOptions {
            max_cycles: 50,
            ..SimOptions::default()
        };
        let r = simulate(&p, &t, &MachineConfig::baseline(), opts);
        assert!(r.hit_cycle_cap);
        assert_eq!(r.stats.cycles, 50);
        assert!(r.stats.committed_instrs < t.len() as u64);
    }
}

#[cfg(test)]
mod ideal_disable_tests {
    use super::*;
    use crate::config::MgConfig;
    use crate::dynmg::DynMgConfig;
    use mg_isa::{BrCond, Instruction, MgTag, ProgramBuilder};
    use mg_workloads::Executor;

    /// A program whose single template serializes harmfully every
    /// iteration, so any Slack-Dynamic policy disables it quickly.
    fn harmful_program() -> Program {
        let mut pb = ProgramBuilder::new("harm");
        let f = pb.func("main");
        let head = pb.block(f);
        let body = pb.block(f);
        let exit = pb.block(f);
        let tag = |pos| MgTag {
            instance: 0,
            template: 0,
            pos,
            len: 2,
        };
        pb.push(head, Instruction::li(Reg::R1, 400));
        pb.push(head, Instruction::li(Reg::R7, 13));
        pb.set_fallthrough(head, body);
        pb.push(body, Instruction::mul(Reg::R6, Reg::R7, Reg::R7));
        pb.push(body, Instruction::mul(Reg::R6, Reg::R6, Reg::R7));
        pb.push(body, Instruction::addi(Reg::R2, Reg::R1, 1).with_mg(tag(0)));
        pb.push(body, Instruction::addi(Reg::R3, Reg::R6, 1).with_mg(tag(1)));
        pb.push(body, Instruction::add(Reg::R5, Reg::R5, Reg::R2));
        pb.push(body, Instruction::addi(Reg::R1, Reg::R1, -1));
        pb.push(body, Instruction::br(BrCond::Ne, Reg::R1, Reg::ZERO, body));
        pb.set_fallthrough(body, exit);
        pb.push(exit, Instruction::halt());
        pb.build().unwrap()
    }

    #[test]
    fn ideal_disable_beats_outlined_disable() {
        let p = harmful_program();
        let (t, _) = Executor::new(&p).run().unwrap();
        let cfg = MachineConfig::reduced().with_mg(MgConfig::paper());
        let run = |dc: DynMgConfig| {
            let r = simulate(
                &p,
                &t,
                &cfg,
                SimOptions {
                    dyn_mg: Some(dc),
                    ..Default::default()
                },
            );
            assert!(!r.hit_cycle_cap);
            r
        };
        let real = run(DynMgConfig::ideal_delay());
        let outlined = run(DynMgConfig {
            cost: crate::dynmg::DisableCost::Outlined,
            ..DynMgConfig::ideal_delay()
        });
        // Both disable the harmful template...
        assert!(real.stats.disabled_templates >= 1);
        assert!(outlined.stats.disabled_templates >= 1);
        // ...but only the outlined variant pays for jumps.
        assert_eq!(real.stats.outline_jumps, 0);
        assert!(outlined.stats.outline_jumps > 0);
        assert!(real.stats.cycles <= outlined.stats.cycles);
        // Committed instruction counts stay identical.
        assert_eq!(real.stats.committed_instrs, outlined.stats.committed_instrs);
    }
}

#[cfg(test)]
mod fetch_side_tests {
    use super::*;
    use mg_isa::{BrCond, Instruction, ProgramBuilder};
    use mg_workloads::Executor;

    /// A loop body split across two far-apart blocks exercises taken-jump
    /// fetch breaks and BTB behaviour.
    #[test]
    fn taken_jumps_cost_fetch_bandwidth() {
        let build = |split: bool| {
            let mut pb = ProgramBuilder::new("jmp");
            let f = pb.func("main");
            let head = pb.block(f);
            let body = pb.block(f);
            let tail = pb.block(f);
            let exit = pb.block(f);
            pb.push(head, Instruction::li(Reg::R1, 500));
            pb.set_fallthrough(head, body);
            for i in 0..3 {
                pb.push(body, Instruction::addi(Reg::new(2 + i), Reg::new(2 + i), 1));
            }
            if split {
                pb.push(body, Instruction::jmp(tail));
            } else {
                pb.set_fallthrough(body, tail);
            }
            for i in 0..3 {
                pb.push(tail, Instruction::addi(Reg::new(5 + i), Reg::new(5 + i), 1));
            }
            pb.push(tail, Instruction::addi(Reg::R1, Reg::R1, -1));
            pb.push(tail, Instruction::br(BrCond::Ne, Reg::R1, Reg::ZERO, body));
            pb.set_fallthrough(tail, exit);
            pb.push(exit, Instruction::halt());
            pb.build().unwrap()
        };
        let run = |p: &Program| {
            let (t, _) = Executor::new(p).run().unwrap();
            simulate(p, &t, &MachineConfig::baseline(), SimOptions::default())
        };
        let joined = run(&build(false));
        let split = run(&build(true));
        // The split version commits one extra instruction (the jump) per
        // iteration and breaks fetch on it: strictly more cycles.
        assert!(split.stats.cycles > joined.stats.cycles);
    }

    /// Large code footprints must show instruction-cache misses; small
    /// loops must not.
    #[test]
    fn icache_behaviour_tracks_code_footprint() {
        // Small hot loop: negligible steady-state I$ misses.
        let mut pb = ProgramBuilder::new("hot");
        let f = pb.func("main");
        let head = pb.block(f);
        let body = pb.block(f);
        let exit = pb.block(f);
        pb.push(head, Instruction::li(Reg::R1, 2000));
        pb.set_fallthrough(head, body);
        pb.push(body, Instruction::addi(Reg::R2, Reg::R2, 1));
        pb.push(body, Instruction::addi(Reg::R1, Reg::R1, -1));
        pb.push(body, Instruction::br(BrCond::Ne, Reg::R1, Reg::ZERO, body));
        pb.set_fallthrough(body, exit);
        pb.push(exit, Instruction::halt());
        let p = pb.build().unwrap();
        let (t, _) = Executor::new(&p).run().unwrap();
        let r = simulate(&p, &t, &MachineConfig::baseline(), SimOptions::default());
        assert!(
            r.stats.il1.misses < 5,
            "hot loop missed {} times",
            r.stats.il1.misses
        );
    }

    /// Slack profiles from the engine must satisfy basic sanity: issue
    /// times are non-negative relative to block starts for in-order-ish
    /// chains, slack is bounded by the cap.
    #[test]
    fn profile_values_are_sane() {
        let mut spec = mg_workloads::benchmark("media_rasta").unwrap();
        spec.params.target_dyn = 10_000;
        let w = spec.generate();
        let (t, _) = Executor::new(&w.program).run_with_mem(&w.init_mem).unwrap();
        let r = simulate(
            &w.program,
            &t,
            &MachineConfig::reduced(),
            SimOptions {
                profile_slack: true,
                ..SimOptions::default()
            },
        );
        let prof = r.slack.unwrap();
        let mut executed = 0;
        for rec in &prof.per_static {
            if rec.count == 0 {
                continue;
            }
            executed += 1;
            assert!(rec.local_slack >= 0.0 && rec.local_slack <= crate::slack::SLACK_CAP as f64);
            assert!(rec.avg_latency >= 0.0 && rec.avg_latency < 1000.0);
            assert!(rec.issue_rel.abs() < 10_000.0);
        }
        assert!(
            executed > 100,
            "only {executed} static instructions executed"
        );
    }
}
