//! Architectural-state extraction from a committed trace.
//!
//! The timing engine is trace-driven: it never computes architectural
//! values, it times the committed path the functional [`Executor`]
//! produced. That leaves a verification gap — "the engine committed the
//! right instructions" is only checkable by count. This module closes it:
//! [`replay_committed`] walks a committed trace through the program's
//! functional semantics, *independently validating every step* (the
//! control-flow successor, the recorded effective address, the recorded
//! branch direction) and returning the final [`ArchState`] the committed
//! stream architects.
//!
//! The differential harness in `mg-verify` uses this as the engine-side
//! oracle: the trace the engine commits (all of it, in order — asserted
//! via `SimStats::committed_instrs`) must replay to an architectural
//! state bit-identical to the functional executor's.
//!
//! [`Executor`]: mg_workloads::Executor

use mg_isa::{op, BlockId, CfTarget, Opcode, Program, Reg, StaticId};
use mg_workloads::{ArchState, Trace};
use std::fmt;

/// A committed trace failed to replay against its program.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReplayError {
    /// The trace entry at `index` names a different static instruction
    /// than the committed path reaches.
    PathDivergence {
        /// Trace index of the divergent entry.
        index: usize,
        /// Static instruction the committed path reaches.
        expected: StaticId,
        /// Static instruction the trace recorded.
        recorded: StaticId,
    },
    /// A memory operation's recorded effective address disagrees with
    /// the replayed one.
    AddrMismatch {
        /// Trace index of the memory operation.
        index: usize,
        /// Replayed effective address.
        expected: u64,
        /// Address the trace recorded.
        recorded: u64,
    },
    /// A conditional branch's recorded direction disagrees with the
    /// replayed one.
    TakenMismatch {
        /// Trace index of the branch.
        index: usize,
        /// Replayed direction.
        expected: bool,
        /// Direction the trace recorded.
        recorded: bool,
    },
    /// The committed path fell off a block with no fall-through.
    FellOffBlock {
        /// Trace index at which it happened.
        index: usize,
        /// The successor-less block.
        block: BlockId,
    },
    /// A `ret` committed with an empty call stack.
    ReturnFromMain {
        /// Trace index of the return.
        index: usize,
        /// Block containing the return.
        block: BlockId,
    },
    /// A non-truncated trace ended without committing `halt`.
    NotHalted,
    /// The trace continues past a committed `halt`.
    PastHalt {
        /// Index of the first entry after the halt.
        index: usize,
    },
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayError::PathDivergence {
                index,
                expected,
                recorded,
            } => write!(
                f,
                "trace[{index}]: committed path reaches {expected}, trace records {recorded}"
            ),
            ReplayError::AddrMismatch {
                index,
                expected,
                recorded,
            } => write!(
                f,
                "trace[{index}]: replayed address {expected:#x}, trace records {recorded:#x}"
            ),
            ReplayError::TakenMismatch {
                index,
                expected,
                recorded,
            } => write!(
                f,
                "trace[{index}]: replayed direction taken={expected}, trace records taken={recorded}"
            ),
            ReplayError::FellOffBlock { index, block } => {
                write!(f, "trace[{index}]: fell off successor-less block {block}")
            }
            ReplayError::ReturnFromMain { index, block } => {
                write!(f, "trace[{index}]: return with empty call stack in {block}")
            }
            ReplayError::NotHalted => write!(f, "non-truncated trace ends without halt"),
            ReplayError::PastHalt { index } => {
                write!(f, "trace[{index}]: entries continue past committed halt")
            }
        }
    }
}

impl std::error::Error for ReplayError {}

/// Replays a committed trace through `program`'s functional semantics.
///
/// Validates, per entry, that the trace follows a legal committed path
/// and that recorded effective addresses and branch directions match the
/// replayed architectural values; returns the final architectural state.
///
/// # Errors
///
/// Returns a [`ReplayError`] describing the first inconsistency between
/// the trace and the program.
pub fn replay_committed(
    program: &Program,
    trace: &Trace,
    init_mem: &[(u64, u64)],
) -> Result<ArchState, ReplayError> {
    let mut st = ArchState::default();
    st.mem.extend(init_mem.iter().copied());
    let mut call_stack: Vec<BlockId> = Vec::new();

    let mut block = program.func(program.entry_func()).entry;
    let mut idx = 0usize;
    let mut halted = false;

    for (i, dyn_inst) in trace.insts.iter().enumerate() {
        if halted {
            return Err(ReplayError::PastHalt { index: i });
        }
        // Walk fall-through edges to the next instruction slot.
        loop {
            let bb = program.block(block);
            if idx < bb.insts.len() {
                break;
            }
            match bb.fallthrough {
                Some(next) => {
                    block = next;
                    idx = 0;
                }
                None => return Err(ReplayError::FellOffBlock { index: i, block }),
            }
        }
        let expected = program.id_of(block, idx);
        if expected != dyn_inst.id {
            return Err(ReplayError::PathDivergence {
                index: i,
                expected,
                recorded: dyn_inst.id,
            });
        }
        let bb = program.block(block);
        let inst = &bb.insts[idx];
        let a = inst.src1.map(|r| st.read(r)).unwrap_or(0);
        let b = inst.src2.map(|r| st.read(r)).unwrap_or(0);

        match inst.op {
            Opcode::Load => {
                let addr = a.wrapping_add(inst.imm as u64);
                if addr != dyn_inst.addr {
                    return Err(ReplayError::AddrMismatch {
                        index: i,
                        expected: addr,
                        recorded: dyn_inst.addr,
                    });
                }
                let v = st.load(addr);
                st.write(inst.dest.expect("validated load has a destination"), v);
                idx += 1;
            }
            Opcode::Store => {
                let addr = a.wrapping_add(inst.imm as u64);
                if addr != dyn_inst.addr {
                    return Err(ReplayError::AddrMismatch {
                        index: i,
                        expected: addr,
                        recorded: dyn_inst.addr,
                    });
                }
                st.store(addr, b);
                idx += 1;
            }
            Opcode::Br(cond) => {
                let taken = cond.eval(a, b);
                if taken != dyn_inst.taken {
                    return Err(ReplayError::TakenMismatch {
                        index: i,
                        expected: taken,
                        recorded: dyn_inst.taken,
                    });
                }
                if taken {
                    let Some(CfTarget::Block(t)) = inst.target else {
                        unreachable!("validated branch has a block target")
                    };
                    block = t;
                    idx = 0;
                } else {
                    match bb.fallthrough {
                        Some(next) => {
                            block = next;
                            idx = 0;
                        }
                        None => return Err(ReplayError::FellOffBlock { index: i, block }),
                    }
                }
            }
            Opcode::Jmp => {
                let Some(CfTarget::Block(t)) = inst.target else {
                    unreachable!("validated jump has a block target")
                };
                block = t;
                idx = 0;
            }
            Opcode::Call => {
                let Some(CfTarget::Func(fd)) = inst.target else {
                    unreachable!("validated call has a function target")
                };
                let fall = bb
                    .fallthrough
                    .expect("validated call block has a fall-through");
                call_stack.push(fall);
                st.write(Reg::LINK, program.pc_of(program.id_of(fall, 0)));
                block = program.func(fd).entry;
                idx = 0;
            }
            Opcode::Ret => match call_stack.pop() {
                Some(fall) => {
                    block = fall;
                    idx = 0;
                }
                None => return Err(ReplayError::ReturnFromMain { index: i, block }),
            },
            Opcode::Halt => {
                halted = true;
            }
            Opcode::Nop => {
                idx += 1;
            }
            alu => {
                let v = op::eval_alu(alu, a, b, inst.imm);
                if let Some(d) = inst.dest {
                    st.write(d, v);
                }
                idx += 1;
            }
        }
    }
    if !halted && !trace.truncated {
        return Err(ReplayError::NotHalted);
    }
    Ok(st)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mg_isa::{BrCond, Instruction, ProgramBuilder};
    use mg_workloads::Executor;

    fn loop_program() -> Program {
        let mut pb = ProgramBuilder::new("loop");
        let f = pb.func("main");
        let head = pb.block(f);
        let body = pb.block(f);
        let exit = pb.block(f);
        pb.push(head, Instruction::li(Reg::R1, 5));
        pb.push(head, Instruction::li(Reg::R10, 0x2000));
        pb.set_fallthrough(head, body);
        pb.push(body, Instruction::addi(Reg::R2, Reg::R2, 3));
        pb.push(body, Instruction::store(Reg::R10, Reg::R2, 0));
        pb.push(body, Instruction::addi(Reg::R1, Reg::R1, -1));
        pb.push(body, Instruction::br(BrCond::Ne, Reg::R1, Reg::ZERO, body));
        pb.set_fallthrough(body, exit);
        pb.push(exit, Instruction::halt());
        pb.build().unwrap()
    }

    #[test]
    fn replay_matches_executor_state() {
        let p = loop_program();
        let init = [(0x2000u64, 7u64), (0x2008, 9)];
        let (trace, st) = Executor::new(&p).run_with_mem(&init).unwrap();
        let replayed = replay_committed(&p, &trace, &init).unwrap();
        assert_eq!(st.regs, replayed.regs);
        assert_eq!(st.mem, replayed.mem);
    }

    #[test]
    fn corrupted_path_is_detected() {
        let p = loop_program();
        let (mut trace, _) = Executor::new(&p).run().unwrap();
        // Swap one committed id for its neighbour's.
        trace.insts[3].id = trace.insts[2].id;
        match replay_committed(&p, &trace, &[]) {
            Err(ReplayError::PathDivergence { index: 3, .. }) => {}
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn corrupted_address_is_detected() {
        let p = loop_program();
        let (mut trace, _) = Executor::new(&p).run().unwrap();
        let mem_i = trace
            .insts
            .iter()
            .position(|d| p.inst(d.id).op.is_mem())
            .unwrap();
        trace.insts[mem_i].addr ^= 0x8;
        match replay_committed(&p, &trace, &[]) {
            Err(ReplayError::AddrMismatch { index, .. }) if index == mem_i => {}
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn corrupted_direction_is_detected() {
        let p = loop_program();
        let (mut trace, _) = Executor::new(&p).run().unwrap();
        let br_i = trace
            .insts
            .iter()
            .position(|d| p.inst(d.id).op.is_cond_branch())
            .unwrap();
        trace.insts[br_i].taken = !trace.insts[br_i].taken;
        match replay_committed(&p, &trace, &[]) {
            Err(ReplayError::TakenMismatch { index, .. }) if index == br_i => {}
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn missing_halt_is_detected() {
        let p = loop_program();
        let (mut trace, _) = Executor::new(&p).run().unwrap();
        trace.insts.pop();
        assert!(matches!(
            replay_committed(&p, &trace, &[]),
            Err(ReplayError::NotHalted)
        ));
        // But a truncated prefix is fine — that is what the limit means.
        trace.truncated = true;
        assert!(replay_committed(&p, &trace, &[]).is_ok());
    }

    #[test]
    fn entries_past_halt_are_detected() {
        let p = loop_program();
        let (mut trace, _) = Executor::new(&p).run().unwrap();
        let last = *trace.insts.last().unwrap();
        trace.insts.push(last);
        let n = trace.insts.len();
        match replay_committed(&p, &trace, &[]) {
            Err(ReplayError::PastHalt { index }) if index == n - 1 => {}
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn replay_is_layout_independent_across_rewrite() {
        // The same committed ids replay identically whether or not the
        // program carries mini-graph tags (tags are timing-only).
        let p = loop_program();
        let (trace, st) = Executor::new(&p).run().unwrap();
        let replayed = replay_committed(&p, &trace, &[]).unwrap();
        assert_eq!(st.regs[..31], replayed.regs[..31]);
    }
}
