//! Branch prediction: hybrid bimodal/gshare direction predictor, a
//! set-associative branch target buffer, and a return address stack.

use crate::config::BPredConfig;
use serde::{Deserialize, Serialize};

/// Direction/target prediction statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BPredStats {
    /// Conditional branches predicted.
    pub cond_branches: u64,
    /// Conditional direction mispredictions.
    pub dir_mispredicts: u64,
    /// Taken transfers whose target missed in the BTB.
    pub btb_misses: u64,
    /// Return-address-stack mispredictions.
    pub ras_mispredicts: u64,
}

impl BPredStats {
    /// Direction misprediction rate in [0, 1].
    pub fn mispredict_rate(&self) -> f64 {
        if self.cond_branches == 0 {
            0.0
        } else {
            self.dir_mispredicts as f64 / self.cond_branches as f64
        }
    }
}

fn ctr_update(ctr: &mut u8, taken: bool) {
    if taken {
        *ctr = (*ctr + 1).min(3);
    } else {
        *ctr = ctr.saturating_sub(1);
    }
}

/// Hybrid bimodal/gshare direction predictor with a meta chooser.
#[derive(Clone, Debug)]
pub struct DirectionPredictor {
    bimodal: Vec<u8>,
    gshare: Vec<u8>,
    meta: Vec<u8>,
    ghist: u64,
    hist_mask: u64,
    stats: BPredStats,
}

impl DirectionPredictor {
    /// Creates a predictor per the configuration, counters initialized
    /// weakly-not-taken.
    pub fn new(cfg: &BPredConfig) -> DirectionPredictor {
        DirectionPredictor {
            bimodal: vec![1; 1 << cfg.bimodal_bits],
            gshare: vec![1; 1 << cfg.gshare_bits],
            meta: vec![2; 1 << cfg.meta_bits], // slight gshare preference
            ghist: 0,
            hist_mask: (1u64 << cfg.hist_len) - 1,
            stats: BPredStats::default(),
        }
    }

    fn bim_idx(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) & (self.bimodal.len() - 1)
    }

    fn gs_idx(&self, pc: u64) -> usize {
        (((pc >> 2) ^ self.ghist) as usize) & (self.gshare.len() - 1)
    }

    fn meta_idx(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) & (self.meta.len() - 1)
    }

    /// Predicts the direction of the conditional branch at `pc`, then
    /// immediately trains with the actual outcome (trace-driven use:
    /// prediction and resolution happen on the committed path).
    ///
    /// Returns the *predicted* direction.
    pub fn predict_and_train(&mut self, pc: u64, taken: bool) -> bool {
        self.stats.cond_branches += 1;
        let bi = self.bim_idx(pc);
        let gi = self.gs_idx(pc);
        let mi = self.meta_idx(pc);
        let bim_pred = self.bimodal[bi] >= 2;
        let gs_pred = self.gshare[gi] >= 2;
        let pred = if self.meta[mi] >= 2 {
            gs_pred
        } else {
            bim_pred
        };
        if pred != taken {
            self.stats.dir_mispredicts += 1;
        }
        // Train meta toward the component that was right.
        if bim_pred != gs_pred {
            ctr_update(&mut self.meta[mi], gs_pred == taken);
        }
        ctr_update(&mut self.bimodal[bi], taken);
        ctr_update(&mut self.gshare[gi], taken);
        self.ghist = ((self.ghist << 1) | taken as u64) & self.hist_mask;
        pred
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> BPredStats {
        self.stats
    }

    /// Charges a RAS misprediction to the statistics.
    pub fn note_ras_mispredict(&mut self) {
        self.stats.ras_mispredicts += 1;
    }

    /// Charges a BTB target miss to the statistics.
    pub fn note_btb_miss(&mut self) {
        self.stats.btb_misses += 1;
    }
}

/// A set-associative branch target buffer.
#[derive(Clone, Debug)]
pub struct Btb {
    /// `(tag, target)` per way; tag `u64::MAX` = invalid.
    entries: Vec<(u64, u64)>,
    lru: Vec<u64>,
    stamp: u64,
    sets: usize,
    assoc: usize,
}

impl Btb {
    /// Creates an empty BTB.
    pub fn new(cfg: &BPredConfig) -> Btb {
        let sets = cfg.btb_sets as usize;
        let assoc = cfg.btb_assoc as usize;
        Btb {
            entries: vec![(u64::MAX, 0); sets * assoc],
            lru: vec![0; sets * assoc],
            stamp: 0,
            sets,
            assoc,
        }
    }

    fn set_of(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) & (self.sets - 1)
    }

    /// Looks up the predicted target for the transfer at `pc`.
    pub fn lookup(&mut self, pc: u64) -> Option<u64> {
        self.stamp += 1;
        let base = self.set_of(pc) * self.assoc;
        let tag = pc >> 2;
        for w in 0..self.assoc {
            if self.entries[base + w].0 == tag {
                self.lru[base + w] = self.stamp;
                return Some(self.entries[base + w].1);
            }
        }
        None
    }

    /// Installs/updates the target for the transfer at `pc`.
    pub fn update(&mut self, pc: u64, target: u64) {
        self.stamp += 1;
        let base = self.set_of(pc) * self.assoc;
        let tag = pc >> 2;
        // Update in place if present.
        for w in 0..self.assoc {
            if self.entries[base + w].0 == tag {
                self.entries[base + w].1 = target;
                self.lru[base + w] = self.stamp;
                return;
            }
        }
        let victim = (0..self.assoc)
            .min_by_key(|&w| self.lru[base + w])
            .expect("assoc >= 1");
        self.entries[base + victim] = (tag, target);
        self.lru[base + victim] = self.stamp;
    }
}

/// A return address stack.
#[derive(Clone, Debug)]
pub struct Ras {
    stack: Vec<u64>,
    cap: usize,
}

impl Ras {
    /// Creates an empty RAS with the given capacity.
    pub fn new(entries: u32) -> Ras {
        Ras {
            stack: Vec::new(),
            cap: entries.max(1) as usize,
        }
    }

    /// Pushes a return address (oldest entry drops when full).
    pub fn push(&mut self, addr: u64) {
        if self.stack.len() == self.cap {
            self.stack.remove(0);
        }
        self.stack.push(addr);
    }

    /// Pops the predicted return address.
    pub fn pop(&mut self) -> Option<u64> {
        self.stack.pop()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pred() -> DirectionPredictor {
        DirectionPredictor::new(&BPredConfig::paper())
    }

    #[test]
    fn learns_constant_direction() {
        let mut p = pred();
        for _ in 0..8 {
            p.predict_and_train(0x1000, true);
        }
        assert!(p.predict_and_train(0x1000, true));
        // After warmup, a monotone branch is always predicted correctly.
        let before = p.stats().dir_mispredicts;
        for _ in 0..100 {
            p.predict_and_train(0x1000, true);
        }
        assert_eq!(p.stats().dir_mispredicts, before);
    }

    #[test]
    fn learns_periodic_pattern_via_history() {
        let mut p = pred();
        // Pattern T T T N repeating: gshare should capture it.
        let pattern = [true, true, true, false];
        for i in 0..400 {
            p.predict_and_train(0x2000, pattern[i % 4]);
        }
        let before = p.stats().dir_mispredicts;
        for i in 0..200 {
            p.predict_and_train(0x2000, pattern[i % 4]);
        }
        let steady = p.stats().dir_mispredicts - before;
        assert!(steady <= 4, "steady-state mispredicts {steady} too high");
    }

    #[test]
    fn random_branch_mispredicts_often() {
        let mut p = pred();
        // A branch taken iff popcount parity of a pseudo-random word:
        // effectively unpredictable.
        let mut x = 0x12345678u64;
        let mut miss = 0;
        for _ in 0..2000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let t = (x >> 62) & 1 == 1;
            if p.predict_and_train(0x3000, t) != t {
                miss += 1;
            }
        }
        assert!(
            miss > 600,
            "unpredictable branch mispredicted only {miss}/2000"
        );
    }

    #[test]
    fn btb_fills_and_replaces() {
        let mut b = Btb::new(&BPredConfig::paper());
        assert_eq!(b.lookup(0x1000), None);
        b.update(0x1000, 0x9000);
        assert_eq!(b.lookup(0x1000), Some(0x9000));
        b.update(0x1000, 0x9004);
        assert_eq!(b.lookup(0x1000), Some(0x9004));
    }

    #[test]
    fn ras_round_trip_and_overflow() {
        let mut r = Ras::new(2);
        r.push(1);
        r.push(2);
        r.push(3); // drops 1
        assert_eq!(r.pop(), Some(3));
        assert_eq!(r.pop(), Some(2));
        assert_eq!(r.pop(), None);
    }
}
