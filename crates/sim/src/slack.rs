//! Local slack profiles (Fields, Bodik & Hill [7], as used by the
//! Slack-Profile selector).
//!
//! A *local slack* profile records, per static instruction and averaged
//! over its dynamic instances:
//!
//! * its issue time relative to the issue of the first instruction of its
//!   basic block instance (the paper's "convenient fixed reference
//!   point");
//! * the ready times of its source operands, on the same base;
//! * the ready time of its output value, on the same base;
//! * its output's *local slack*: the number of cycles the value could
//!   have been delayed without delaying any consumer.
//!
//! Stores report slack against forwarding consumers; branches report zero
//! slack on instances that mispredict (delaying a mispredicted branch
//! delays the redirect) and the cap otherwise.

use mg_isa::{Program, StaticId};
use serde::{Deserialize, Serialize};

/// Maximum slack / margin recorded, in cycles. Values beyond this are
/// indistinguishable for selection purposes.
pub const SLACK_CAP: u64 = 64;

/// Per-static-instruction profile record (averages over dynamic
/// instances).
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct StaticProfile {
    /// Dynamic execution count.
    pub count: u64,
    /// Average issue time, relative to the block-instance base issue.
    pub issue_rel: f64,
    /// Average operand ready times (slot 0/1), relative to the base.
    /// Meaningless for absent slots.
    pub src_ready_rel: [f64; 2],
    /// Average output-value ready time, relative to the base.
    pub out_ready_rel: f64,
    /// Average local slack of the output value, capped at [`SLACK_CAP`].
    pub local_slack: f64,
    /// Average observed execution latency (issue to output-ready), in
    /// cycles. For loads this includes actual memory-hierarchy time —
    /// the basis of the miss-aware Slack-Profile extension.
    pub avg_latency: f64,
}

/// A whole-program local slack profile.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct SlackProfile {
    /// Records indexed by [`StaticId`].
    pub per_static: Vec<StaticProfile>,
}

impl SlackProfile {
    /// An empty profile shaped for `program`.
    pub fn empty(program: &Program) -> SlackProfile {
        SlackProfile {
            per_static: vec![StaticProfile::default(); program.static_count()],
        }
    }

    /// The record for a static instruction.
    pub fn get(&self, id: StaticId) -> &StaticProfile {
        &self.per_static[id.index()]
    }

    /// Whether the instruction was ever executed in the profiled run.
    pub fn executed(&self, id: StaticId) -> bool {
        self.per_static[id.index()].count > 0
    }
}

/// Accumulates per-static sums during profile construction.
#[derive(Clone, Debug, Default)]
pub(crate) struct ProfileAccum {
    count: u64,
    issue_rel: f64,
    src_ready_rel: [f64; 2],
    out_ready_rel: f64,
    local_slack: f64,
    latency: f64,
    /// Instances where a delay would have hit a *critical event* (a
    /// mispredicted control transfer whose resolution any delay pushes
    /// out). Averaging would wash these out; a meaningful rate of them
    /// zeroes the instruction's usable slack instead.
    critical: u64,
}

/// Fraction of critical (mispredicted) instances beyond which an
/// instruction's output is treated as having no absorbable slack.
pub(crate) const CRITICAL_FRACTION: f64 = 0.02;

impl ProfileAccum {
    pub(crate) fn add(
        &mut self,
        issue_rel: i64,
        src_ready_rel: [Option<i64>; 2],
        out_ready_rel: i64,
        local_slack: u64,
        critical: bool,
        latency: u64,
    ) {
        self.count += 1;
        self.latency += latency as f64;
        self.issue_rel += issue_rel as f64;
        for (slot, v) in src_ready_rel.into_iter().enumerate() {
            if let Some(v) = v {
                self.src_ready_rel[slot] += v as f64;
            }
        }
        self.out_ready_rel += out_ready_rel as f64;
        self.local_slack += local_slack.min(SLACK_CAP) as f64;
        self.critical += critical as u64;
    }

    pub(crate) fn finish(&self) -> StaticProfile {
        let n = self.count.max(1) as f64;
        let slack = if self.count == 0 {
            SLACK_CAP as f64
        } else if self.critical as f64 > CRITICAL_FRACTION * self.count as f64 {
            0.0
        } else {
            self.local_slack / n
        };
        StaticProfile {
            count: self.count,
            issue_rel: self.issue_rel / n,
            src_ready_rel: [self.src_ready_rel[0] / n, self.src_ready_rel[1] / n],
            out_ready_rel: self.out_ready_rel / n,
            local_slack: slack,
            avg_latency: self.latency / n,
        }
    }
}

/// Builds a [`SlackProfile`] from per-static accumulators.
pub(crate) fn finish_profile(program: &Program, accums: &[ProfileAccum]) -> SlackProfile {
    debug_assert_eq!(accums.len(), program.static_count());
    SlackProfile {
        per_static: accums.iter().map(ProfileAccum::finish).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulator_averages() {
        let mut a = ProfileAccum::default();
        a.add(2, [Some(1), None], 4, 10, false, 2);
        a.add(4, [Some(3), None], 6, 20, false, 4);
        let p = a.finish();
        assert_eq!(p.count, 2);
        assert!((p.avg_latency - 3.0).abs() < 1e-12);
        assert!((p.issue_rel - 3.0).abs() < 1e-12);
        assert!((p.src_ready_rel[0] - 2.0).abs() < 1e-12);
        assert!((p.out_ready_rel - 5.0).abs() < 1e-12);
        assert!((p.local_slack - 15.0).abs() < 1e-12);
    }

    #[test]
    fn slack_is_capped() {
        let mut a = ProfileAccum::default();
        a.add(0, [None, None], 0, 1000, false, 1);
        assert!((a.finish().local_slack - SLACK_CAP as f64).abs() < 1e-12);
    }

    #[test]
    fn critical_instances_zero_the_slack() {
        let mut a = ProfileAccum::default();
        for i in 0..20 {
            a.add(0, [None, None], 0, 30, i == 0, 1); // 5% critical
        }
        assert_eq!(a.finish().local_slack, 0.0);
        let mut b = ProfileAccum::default();
        for _ in 0..100 {
            b.add(0, [None, None], 0, 30, false, 1);
        }
        assert!((b.finish().local_slack - 30.0).abs() < 1e-12);
    }

    #[test]
    fn unexecuted_records_default_to_full_slack() {
        let a = ProfileAccum::default();
        let p = a.finish();
        assert_eq!(p.count, 0);
        assert!((p.local_slack - SLACK_CAP as f64).abs() < 1e-12);
    }
}
