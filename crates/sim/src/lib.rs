//! Cycle-level dynamically-scheduled superscalar timing simulator with
//! mini-graph execution support.
//!
//! This crate is the reproduction's substrate for the paper's
//! SimpleScalar-based machine model (Table 1): a 13-stage pipeline with a
//! hybrid branch predictor, BTB and RAS, split L1 caches over a unified
//! L2, StoreSets-speculative load scheduling with violation squash, finite
//! issue queue / physical registers / ROB / load-store queues, per-class
//! issue ports, and — when the program carries mini-graph tags — handle
//! execution off a mini-graph table with serial ("ALU pipeline")
//! constituent execution.
//!
//! The entry point is [`simulate`]; machine presets live on
//! [`MachineConfig`] (baseline, reduced, 2-way, 8-way, dmem/4).
//!
//! # Example
//!
//! ```
//! use mg_sim::{simulate, MachineConfig, SimOptions};
//! use mg_workloads::{suite, Executor};
//!
//! let spec = &suite()[40];
//! let w = spec.generate();
//! let (trace, _) = Executor::new(&w.program)
//!     .run_with_mem(&w.init_mem)
//!     .expect("workloads run to completion");
//! let result = simulate(&w.program, &trace, &MachineConfig::baseline(), SimOptions::default());
//! assert!(result.ipc() > 0.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod archcheck;
pub mod bpred;
pub mod cache;
pub mod config;
pub mod dynmg;
pub mod engine;
pub mod mgi;
pub mod slack;
pub mod stats;
pub mod storesets;

pub use archcheck::{replay_committed, ReplayError};
pub use config::{BPredConfig, CacheConfig, MachineConfig, MgConfig, StoreSetsConfig};
pub use dynmg::{DisableCost, DynMgConfig, DynMgController, DynPolicy};
pub use engine::{simulate, SimOptions, SimResult};
#[cfg(feature = "obs")]
pub use mg_obs::{ObsConfig, ObsReport};
pub use mgi::{InstanceInfo, InstanceMap, SrcLink};
pub use slack::{SlackProfile, StaticProfile, SLACK_CAP};
pub use stats::SimStats;

/// Commonly used items, for glob import via the facade prelude.
pub mod prelude {
    pub use crate::{
        simulate, DynMgConfig, InstanceMap, MachineConfig, MgConfig, SimOptions, SimResult,
        SimStats, SlackProfile,
    };
}

// The sweep runner hands these to worker threads by reference; keep them
// structurally thread-safe.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<MachineConfig>();
    assert_send_sync::<MgConfig>();
    assert_send_sync::<SlackProfile>();
    assert_send_sync::<SimResult>();
};
