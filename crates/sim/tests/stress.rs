//! Stress tests: the engine must stay deadlock-free and account
//! resources correctly under extreme (non-paper) configurations.

use mg_sim::{simulate, MachineConfig, SimOptions};
use mg_workloads::{benchmark, Executor, Workload};

fn workload() -> Workload {
    let mut spec = benchmark("mib_qsort").unwrap();
    spec.params.target_dyn = 8_000;
    spec.generate()
}

fn run(w: &Workload, cfg: &MachineConfig) -> mg_sim::SimResult {
    let (trace, _) = Executor::new(&w.program).run_with_mem(&w.init_mem).unwrap();
    let r = simulate(&w.program, &trace, cfg, SimOptions::default());
    assert!(!r.hit_cycle_cap, "{}: hit cycle cap", cfg.name);
    assert_eq!(r.stats.committed_instrs, trace.len() as u64);
    r
}

#[test]
fn minimal_physical_registers() {
    let w = workload();
    let mut cfg = MachineConfig::reduced();
    cfg.name = "tiny-regs".into();
    cfg.phys_regs = 34; // two rename registers
    let tiny = run(&w, &cfg);
    let normal = run(&w, &MachineConfig::reduced());
    assert!(tiny.stats.cycles > normal.stats.cycles);
}

#[test]
fn minimal_issue_queue() {
    let w = workload();
    let mut cfg = MachineConfig::reduced();
    cfg.name = "tiny-iq".into();
    cfg.iq_entries = 2;
    let tiny = run(&w, &cfg);
    let normal = run(&w, &MachineConfig::reduced());
    assert!(tiny.stats.cycles > normal.stats.cycles);
}

#[test]
fn minimal_rob_and_queues() {
    let w = workload();
    let mut cfg = MachineConfig::reduced();
    cfg.name = "tiny-rob".into();
    cfg.rob_entries = 4;
    cfg.lq_entries = 2;
    cfg.sq_entries = 2;
    run(&w, &cfg);
}

#[test]
fn single_wide_machine() {
    let w = workload();
    let mut cfg = MachineConfig::reduced();
    cfg.name = "1wide".into();
    cfg.fetch_width = 1;
    cfg.rename_width = 1;
    cfg.issue_width = 1;
    cfg.commit_width = 1;
    cfg.issue_simple = 1;
    cfg.issue_load = 1;
    let one = run(&w, &cfg);
    assert!(one.ipc() <= 1.0 + 1e-9);
}

#[test]
fn glacial_memory() {
    let w = workload();
    let mut cfg = MachineConfig::reduced();
    cfg.name = "slow-mem".into();
    cfg.mem_lat = 2000;
    run(&w, &cfg);
}

#[test]
fn tiny_caches() {
    let w = workload();
    let mut cfg = MachineConfig::reduced();
    cfg.name = "tiny-caches".into();
    cfg.il1.size_bytes = 1024;
    cfg.dl1.size_bytes = 1024;
    cfg.l2.size_bytes = 8 * 1024;
    let tiny = run(&w, &cfg);
    assert!(tiny.stats.dl1.miss_rate() > run(&w, &MachineConfig::reduced()).stats.dl1.miss_rate());
}

#[test]
fn zero_length_trace() {
    let w = workload();
    let trace = mg_workloads::Trace::default();
    let r = simulate(
        &w.program,
        &trace,
        &MachineConfig::reduced(),
        SimOptions::default(),
    );
    assert_eq!(r.stats.committed_instrs, 0);
    assert!(!r.hit_cycle_cap);
}
