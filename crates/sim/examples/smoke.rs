use mg_sim::{simulate, MachineConfig, SimOptions};
use mg_workloads::{suite, Executor};

fn main() {
    println!(
        "{:<18} {:>9} {:>8} {:>8} {:>8} {:>7} {:>7} {:>7}",
        "name", "insts", "ipc4", "ipc3", "ratio", "mpki", "dl1m%", "flush"
    );
    for spec in suite().iter().step_by(9) {
        let w = spec.generate();
        let (trace, _) = Executor::new(&w.program).run_with_mem(&w.init_mem).unwrap();
        let base = simulate(
            &w.program,
            &trace,
            &MachineConfig::baseline(),
            SimOptions::default(),
        );
        let red = simulate(
            &w.program,
            &trace,
            &MachineConfig::reduced(),
            SimOptions::default(),
        );
        assert!(!base.hit_cycle_cap && !red.hit_cycle_cap, "cycle cap hit");
        let mpki = 1000.0 * base.stats.bpred.dir_mispredicts as f64 / trace.len() as f64;
        println!(
            "{:<18} {:>9} {:>8.3} {:>8.3} {:>8.3} {:>7.1} {:>7.2} {:>7}",
            spec.name,
            trace.len(),
            base.ipc(),
            red.ipc(),
            red.ipc() / base.ipc(),
            mpki,
            100.0 * base.stats.dl1.miss_rate(),
            base.stats.violation_flushes
        );
    }
}
