//! Daemon configuration: typed, argument-driven, no environment reads.
//!
//! The serve crate follows the harness's config discipline
//! ([`mg_bench::config`]): every knob is a typed field with one parse
//! point, and nothing in the library reads `std::env`. The daemon
//! binary parses its command line into a [`ServeConfig`]; tests and the
//! loadtest construct one directly.

use crate::jobs::machine_by_tag;
use crate::protocol::DEFAULT_MAX_LINE_BYTES;
use crate::shed::ShedConfig;
use mg_sim::MachineConfig;
use std::path::PathBuf;
use std::time::Duration;

/// Everything the server needs, with defaults suitable for tests
/// (ephemeral port) and overridable per knob.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Listen address. The default `127.0.0.1:0` picks an ephemeral
    /// port; the daemon prints the bound address on startup.
    pub addr: String,
    /// Job-queue capacity; a full queue rejects with `QueueFull`.
    pub queue_cap: usize,
    /// Worker threads draining the queue. Zero is legal
    /// ("admission-only", used by the queue-full tests): jobs queue but
    /// never run, and a drain aborts them with `ShuttingDown`.
    pub workers: usize,
    /// Per-cell wall-clock watchdog handed to the supervisor.
    pub watchdog: Option<Duration>,
    /// Per-cell retry budget for transient failures.
    pub retries: u32,
    /// Request-line size cap; longer lines reject with `OverLong`.
    pub max_line_bytes: usize,
    /// Whether benchmark contexts use the on-disk cache layer.
    pub disk_cache: bool,
    /// Training machine for every job's profiling run (uniform across
    /// the server so identical requests share context-cache entries).
    pub train_machine: MachineConfig,
    /// Listen address for the Prometheus `/metrics` HTTP endpoint;
    /// `None` (the default) serves no metrics socket. The line protocol
    /// `Stats` verb works either way.
    pub metrics_addr: Option<String>,
    /// Per-connection write timeout: a peer that stops reading its
    /// replies (slow-loris reader) fails its writer thread instead of
    /// wedging it. `None` disables.
    pub write_timeout: Option<Duration>,
    /// Shed new jobs when this many are already queued; `None`
    /// disables depth-based shedding.
    pub shed_depth: Option<usize>,
    /// Shed new jobs when the recent queue-wait p99 exceeds this;
    /// `None` disables wait-based shedding.
    pub shed_wait_p99: Option<Duration>,
    /// Floor for the `retry_after_ms` hint on `Overloaded` rejects.
    pub shed_retry_after: Duration,
    /// Root directory for the crash-recovery journal: finished cells
    /// are persisted under it (one record per cell, keyed by
    /// [`crate::jobs::JobSpec::cell_keys`]) and replayed after a
    /// daemon crash instead of re-running. `None` (the default)
    /// journals nothing.
    pub journal_dir: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            queue_cap: 64,
            workers: mg_bench::config::available_jobs(),
            watchdog: None,
            retries: 1,
            max_line_bytes: DEFAULT_MAX_LINE_BYTES,
            disk_cache: true,
            train_machine: MachineConfig::reduced(),
            metrics_addr: None,
            write_timeout: Some(Duration::from_secs(10)),
            shed_depth: None,
            shed_wait_p99: None,
            shed_retry_after: Duration::from_millis(100),
            journal_dir: None,
        }
    }
}

impl ServeConfig {
    /// Parses daemon command-line flags:
    ///
    /// * `--addr HOST:PORT` — listen address
    /// * `--queue-cap N` — queue capacity
    /// * `--workers N` — worker threads
    /// * `--watchdog-ms MS` — per-cell watchdog (0 disables)
    /// * `--retries N` — per-cell retry budget
    /// * `--train TAG` — training machine tag (see
    ///   [`machine_by_tag`])
    /// * `--no-disk-cache` — in-memory context cache only
    /// * `--metrics-addr HOST:PORT` — serve Prometheus text on
    ///   `GET /metrics` at this address (off unless given)
    /// * `--write-timeout-ms MS` — per-connection write timeout
    ///   (0 disables; default 10000)
    /// * `--shed-depth N` — shed new jobs at this queue depth
    ///   (0 disables; off by default)
    /// * `--shed-p99-ms MS` — shed new jobs when the recent
    ///   queue-wait p99 exceeds this (0 disables; off by default)
    /// * `--shed-retry-ms MS` — floor for the `retry_after_ms` hint
    ///   on `Overloaded` rejects (default 100)
    /// * `--journal-dir PATH` — journal finished cells under `PATH`
    ///   for crash recovery (off unless given)
    pub fn from_args<I, S>(args: I) -> Result<ServeConfig, String>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut cfg = ServeConfig::default();
        let mut args = args.into_iter();
        while let Some(arg) = args.next() {
            let arg = arg.as_ref();
            let mut value = |flag: &str| {
                args.next()
                    .map(|v| v.as_ref().to_string())
                    .ok_or_else(|| format!("{flag} needs a value"))
            };
            match arg {
                "--addr" => cfg.addr = value("--addr")?,
                "--queue-cap" => {
                    cfg.queue_cap = parse_num(&value("--queue-cap")?, "--queue-cap")?;
                    if cfg.queue_cap == 0 {
                        return Err("--queue-cap must be at least 1".to_string());
                    }
                }
                "--workers" => cfg.workers = parse_num(&value("--workers")?, "--workers")?,
                "--watchdog-ms" => {
                    let ms: u64 = parse_num(&value("--watchdog-ms")?, "--watchdog-ms")?;
                    cfg.watchdog = (ms > 0).then(|| Duration::from_millis(ms));
                }
                "--retries" => cfg.retries = parse_num(&value("--retries")?, "--retries")?,
                "--train" => {
                    let tag = value("--train")?;
                    cfg.train_machine = machine_by_tag(&tag)
                        .ok_or_else(|| format!("unknown machine tag {tag:?}"))?;
                }
                "--no-disk-cache" => cfg.disk_cache = false,
                "--metrics-addr" => cfg.metrics_addr = Some(value("--metrics-addr")?),
                "--write-timeout-ms" => {
                    let ms: u64 = parse_num(&value("--write-timeout-ms")?, "--write-timeout-ms")?;
                    cfg.write_timeout = (ms > 0).then(|| Duration::from_millis(ms));
                }
                "--shed-depth" => {
                    let depth: usize = parse_num(&value("--shed-depth")?, "--shed-depth")?;
                    cfg.shed_depth = (depth > 0).then_some(depth);
                }
                "--shed-p99-ms" => {
                    let ms: u64 = parse_num(&value("--shed-p99-ms")?, "--shed-p99-ms")?;
                    cfg.shed_wait_p99 = (ms > 0).then(|| Duration::from_millis(ms));
                }
                "--shed-retry-ms" => {
                    let ms: u64 = parse_num(&value("--shed-retry-ms")?, "--shed-retry-ms")?;
                    cfg.shed_retry_after = Duration::from_millis(ms);
                }
                "--journal-dir" => cfg.journal_dir = Some(PathBuf::from(value("--journal-dir")?)),
                other => return Err(format!("unknown flag {other:?}")),
            }
        }
        Ok(cfg)
    }

    /// The admission-control thresholds as a [`ShedConfig`].
    pub fn shed_config(&self) -> ShedConfig {
        ShedConfig {
            depth: self.shed_depth,
            wait_p99: self.shed_wait_p99,
            retry_after: self.shed_retry_after,
        }
    }
}

fn parse_num<T: std::str::FromStr>(value: &str, flag: &str) -> Result<T, String> {
    value
        .parse()
        .map_err(|_| format!("{flag} got unparseable value {value:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_override_defaults() {
        let cfg = ServeConfig::from_args([
            "--addr",
            "0.0.0.0:7700",
            "--queue-cap",
            "8",
            "--workers",
            "2",
            "--watchdog-ms",
            "1500",
            "--train",
            "8way",
            "--no-disk-cache",
            "--metrics-addr",
            "127.0.0.1:9100",
            "--write-timeout-ms",
            "2500",
            "--shed-depth",
            "5",
            "--shed-p99-ms",
            "750",
            "--shed-retry-ms",
            "40",
            "--journal-dir",
            "results/journal",
        ])
        .unwrap();
        assert_eq!(cfg.addr, "0.0.0.0:7700");
        assert_eq!(cfg.metrics_addr.as_deref(), Some("127.0.0.1:9100"));
        assert_eq!(cfg.write_timeout, Some(Duration::from_millis(2500)));
        assert_eq!(cfg.shed_depth, Some(5));
        assert_eq!(cfg.shed_wait_p99, Some(Duration::from_millis(750)));
        assert_eq!(cfg.shed_retry_after, Duration::from_millis(40));
        assert_eq!(cfg.journal_dir, Some(PathBuf::from("results/journal")));
        assert_eq!(cfg.queue_cap, 8);
        assert_eq!(cfg.workers, 2);
        assert_eq!(cfg.watchdog, Some(Duration::from_millis(1500)));
        assert!(!cfg.disk_cache);
        assert_eq!(
            cfg.train_machine.fetch_width,
            MachineConfig::eight_way().fetch_width
        );
    }

    #[test]
    fn bad_flags_are_rejected_with_a_reason() {
        assert!(ServeConfig::from_args(["--mystery"]).is_err());
        assert!(ServeConfig::from_args(["--queue-cap"]).is_err());
        assert!(ServeConfig::from_args(["--queue-cap", "zero"]).is_err());
        assert!(ServeConfig::from_args(["--queue-cap", "0"]).is_err());
        assert!(ServeConfig::from_args(["--train", "11way"]).is_err());
        assert!(ServeConfig::from_args(["--shed-depth", "many"]).is_err());
        assert!(ServeConfig::from_args(["--write-timeout-ms", "-1"]).is_err());
    }

    #[test]
    fn zero_disables_the_optional_thresholds() {
        let cfg = ServeConfig::from_args([
            "--write-timeout-ms",
            "0",
            "--shed-depth",
            "0",
            "--shed-p99-ms",
            "0",
        ])
        .unwrap();
        assert_eq!(cfg.write_timeout, None);
        assert_eq!(cfg.shed_depth, None);
        assert_eq!(cfg.shed_wait_p99, None);
        assert_eq!(cfg.journal_dir, None, "journaling is opt-in");
    }
}
