//! The server: accept loop, per-connection reader/writer threads, and
//! the worker pool that actually runs jobs.
//!
//! Layout per connection:
//!
//! * a *writer* thread owns the socket's sending half and drains an
//!   `mpsc` channel of pre-rendered protocol lines — the store and the
//!   reader both just `send` strings, so interleaving is a channel
//!   property, not a locking discipline;
//! * a *reader* thread parses request lines (with a read timeout so it
//!   can observe shutdown), validates them into jobs, and registers
//!   them on the [`ResultStore`].
//!
//! The worker pool pops jobs off the [`FairQueue`] (round-robin across
//! clients) and commits rows through the store as each cell finishes.
//! Shutdown is cooperative via [`mg_bench::shutdown_requested`]: the
//! accept loop stops, the queue closes, workers drain what is already
//! queued (cells started after the request come back `Interrupted`,
//! so a drain is prompt but every stream still terminates with `Done`),
//! and leftover jobs that no worker will run are aborted with a typed
//! `ShuttingDown` reject.

use crate::config::ServeConfig;
use crate::jobs::JobSpec;
use crate::metrics;
use crate::protocol::{
    decode_request, reply_line, ErrorCode, Reply, RequestBody, PROTOCOL_VERSION,
};
use crate::queue::{FairQueue, Pop, PushError};
use crate::shed::Shed;
use crate::store::{Begin, CounterSnapshot, ResultStore, Sub};
use mg_bench::{machine_fingerprint, shutdown_requested, BenchContext, BenchError, Journal};
use mg_obs::mg_error;
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How often blocked loops re-check the shutdown flag.
const POLL: Duration = Duration::from_millis(50);

/// One queued unit of work: a validated job under its content key.
struct QueuedJob {
    key: u64,
    spec: JobSpec,
    /// When the owner pushed it — queue-wait and end-to-end latency
    /// telemetry measure from here.
    queued_at: Instant,
    /// Absolute expiry derived from the request's `deadline_ms` at
    /// admission. A job claimed past this is dropped with a typed
    /// `DeadlineExceeded` instead of burning the worker; one expiring
    /// mid-run reports its remaining cells as timed out.
    deadline: Option<Instant>,
}

/// What [`Server::run`] reports after draining.
#[derive(Clone, Copy, Debug, serde::Serialize)]
pub struct ServeStats {
    /// Connections accepted over the server's lifetime.
    pub connections: u64,
    /// Result-store counters at drain time.
    pub store: CounterSnapshot,
}

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    cfg: ServeConfig,
    store: Arc<ResultStore>,
    queue: Arc<FairQueue<QueuedJob>>,
    shed: Arc<Shed>,
    local_addr: SocketAddr,
}

impl Server {
    /// Binds the listen socket; nothing is served until [`Server::run`].
    pub fn bind(cfg: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        Ok(Server {
            listener,
            queue: Arc::new(FairQueue::new(cfg.queue_cap)),
            store: Arc::new(ResultStore::new()),
            shed: Arc::new(Shed::new(cfg.shed_config())),
            cfg,
            local_addr,
        })
    }

    /// The bound address (resolves the ephemeral port of the default
    /// `127.0.0.1:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The shared result store (counters are read from here).
    pub fn store(&self) -> Arc<ResultStore> {
        Arc::clone(&self.store)
    }

    /// Serves until [`mg_bench::request_shutdown`] (typically wired to
    /// SIGINT/SIGTERM by the daemon binary), then drains: the queue
    /// closes, workers finish what was queued, jobs nothing will run
    /// are aborted with `ShuttingDown`. Returns lifetime stats.
    pub fn run(self) -> ServeStats {
        mg_obs::tele_gauge!(metrics::WORKERS).set(self.cfg.workers as i64);
        let workers: Vec<JoinHandle<()>> = (0..self.cfg.workers)
            .map(|w| {
                let queue = Arc::clone(&self.queue);
                let store = Arc::clone(&self.store);
                let shed = Arc::clone(&self.shed);
                let cfg = self.cfg.clone();
                std::thread::Builder::new()
                    .name(format!("mg-serve-worker-{w}"))
                    .spawn(move || worker_loop(&queue, &store, &shed, &cfg))
                    .expect("spawn worker thread")
            })
            .collect();

        let client_ids = AtomicU64::new(0);
        let mut connections = 0u64;
        while !shutdown_requested() {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    connections += 1;
                    mg_obs::tele_counter!(metrics::CONNECTIONS).inc();
                    let client = client_ids.fetch_add(1, Ordering::Relaxed);
                    let store = Arc::clone(&self.store);
                    let queue = Arc::clone(&self.queue);
                    let shed = Arc::clone(&self.shed);
                    let cfg = self.cfg.clone();
                    // Connection threads are detached: they exit when
                    // the peer hangs up (or at process exit); the store
                    // prunes their subscriptions on the first failed
                    // send either way.
                    let _ = std::thread::Builder::new()
                        .name(format!("mg-serve-conn-{client}"))
                        .spawn(move || {
                            serve_connection(stream, client, &store, &queue, &shed, &cfg)
                        });
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(POLL),
                Err(_) => std::thread::sleep(POLL),
            }
        }

        self.queue.close();
        for w in workers {
            let _ = w.join();
        }
        // With zero workers (or if a worker died), refuse whatever is
        // still queued in typed form rather than leaving streams open.
        for job in self.queue.drain_now() {
            self.store
                .abort(job.key, ErrorCode::ShuttingDown, "server is draining", None);
        }
        mg_obs::tele_gauge!(metrics::QUEUE_DEPTH).set(0);
        ServeStats {
            connections,
            store: self.store.counters(),
        }
    }
}

fn worker_loop(queue: &FairQueue<QueuedJob>, store: &ResultStore, shed: &Shed, cfg: &ServeConfig) {
    loop {
        match queue.pop(POLL) {
            Pop::Item(job) => {
                mg_obs::tele_gauge!(metrics::QUEUE_DEPTH).dec();
                let waited = job.queued_at.elapsed();
                mg_obs::tele_hist!(metrics::QUEUE_WAIT_US).record_duration(waited);
                shed.record_wait(waited);
                mg_obs::tele_gauge!(metrics::SHED_WAIT_P99_US)
                    .set(i64::try_from(shed.recent_wait_p99().as_micros()).unwrap_or(i64::MAX));
                if job.deadline.is_some_and(|d| Instant::now() >= d) {
                    // The job out-sat its budget in the queue; drop it
                    // without burning the worker. The client retries
                    // with a fresh budget if it still cares.
                    mg_obs::tele_counter!(metrics::DEADLINE_DROPS).inc();
                    store.abort(
                        job.key,
                        ErrorCode::DeadlineExceeded,
                        &format!(
                            "job waited {}ms in queue, past its deadline",
                            waited.as_millis()
                        ),
                        None,
                    );
                    continue;
                }
                let busy = Instant::now();
                run_job(job, store, cfg);
                mg_obs::tele_counter!(metrics::WORKER_BUSY_US)
                    .add(u64::try_from(busy.elapsed().as_micros()).unwrap_or(u64::MAX));
            }
            Pop::TimedOut => continue,
            Pop::Closed => return,
        }
    }
}

/// Runs one job to completion: context build (shared through the
/// process-wide cache), then one supervised cell at a time, each
/// committed to the store the moment it finishes.
///
/// With a journal directory configured, every finished cell is
/// journaled *before* it is streamed (so any row a client ever saw is
/// recoverable), and cells already journaled by a previous —
/// possibly SIGKILL'd — daemon on the same directory are committed
/// from the journal instead of re-running. Transient failures
/// (panic, timeout) and interruptions are deliberately not journaled:
/// a resubmit should re-run those, not replay them.
fn run_job(job: QueuedJob, store: &ResultStore, cfg: &ServeConfig) {
    let spec = job.spec;
    let journal = cfg
        .journal_dir
        .as_ref()
        .map(|root| Journal::new(root, job.key, spec.cell_keys()));
    // Admission-to-Done latency, recorded on every exit path right
    // after the store finishes the job.
    let finish = |key: u64| {
        store.finish(key);
        mg_obs::tele_hist!(metrics::JOB_US).record_duration(job.queued_at.elapsed());
    };
    let built = catch_unwind(AssertUnwindSafe(|| {
        BenchContext::builder(&spec.bench, &spec.train_cfg)
            .disk_cache(cfg.disk_cache)
            .build()
    }));
    let ctx = match built {
        Ok(Ok(ctx)) => Arc::new(ctx),
        Ok(Err(e)) => {
            for cell in 0..spec.cells.len() {
                store.commit_row(job.key, cell, Err(e.clone()));
            }
            finish(job.key);
            return;
        }
        Err(payload) => {
            let rendered = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            for cell in 0..spec.cells.len() {
                store.commit_row(
                    job.key,
                    cell,
                    Err(mg_bench::BenchError::Panicked {
                        bench: spec.bench.name.clone(),
                        cell,
                        payload: rendered.clone(),
                    }),
                );
            }
            finish(job.key);
            return;
        }
    };
    let mut recovered = 0u64;
    for (idx, cell) in spec.cells.iter().enumerate() {
        if let Some(outcome) = journal.as_ref().and_then(|j| j.load_cell(idx)) {
            mg_obs::tele_counter!(metrics::CELLS_RECOVERED).inc();
            recovered += 1;
            store.commit_row(job.key, idx, outcome);
            continue;
        }
        let started = Instant::now();
        let (res, _retries) = mg_bench::supervise_cell_until(
            &ctx,
            cell,
            idx,
            cfg.watchdog,
            cfg.retries,
            job.deadline,
        );
        if let Some(j) = &journal {
            if !matches!(
                res,
                Err(BenchError::Panicked { .. }
                    | BenchError::TimedOut { .. }
                    | BenchError::Interrupted { .. })
            ) {
                j.store_cell(idx, &spec.bench.name, &res, started.elapsed());
            }
        }
        store.commit_row(job.key, idx, res);
    }
    if recovered > 0 {
        mg_obs::tele_counter!(metrics::JOBS_RECOVERED).inc();
    }
    finish(job.key);
}

fn serve_connection(
    stream: TcpStream,
    client: u64,
    store: &ResultStore,
    queue: &FairQueue<QueuedJob>,
    shed: &Shed,
    cfg: &ServeConfig,
) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    // A socket that refuses its timeouts is closed on the spot: without
    // a read timeout the reader thread cannot observe shutdown, and
    // without a write timeout a peer that stops reading (slow-loris)
    // would wedge the writer thread forever.
    if let Err(e) = stream.set_read_timeout(Some(Duration::from_millis(100))) {
        mg_error!("conn {client}: set_read_timeout failed, closing: {e}");
        return;
    }
    if let Err(e) = write_half.set_write_timeout(cfg.write_timeout) {
        mg_error!("conn {client}: set_write_timeout failed, closing: {e}");
        return;
    }
    let (tx, rx) = channel::<String>();
    let writer = std::thread::Builder::new()
        .name(format!("mg-serve-write-{client}"))
        .spawn(move || {
            let mut out = write_half;
            while let Ok(line) = rx.recv() {
                if out.write_all(line.as_bytes()).is_err() || out.flush().is_err() {
                    // Peer is gone; drain and drop remaining lines so
                    // senders keep succeeding until the store prunes us.
                    break;
                }
            }
        });
    if writer.is_err() {
        return;
    }
    let _ = tx.send(reply_line(Reply::Hello {
        protocol: PROTOCOL_VERSION,
        fingerprint: machine_fingerprint(),
    }));
    read_requests(stream, client, &tx, store, queue, shed, cfg);
    // Dropping `tx` here does NOT end the writer: the store may still
    // hold subscription clones streaming rows for this client's jobs.
}

/// The reader loop: one request line at a time, with overlong lines
/// rejected once and then discarded up to their terminating newline.
fn read_requests(
    stream: TcpStream,
    client: u64,
    tx: &Sender<String>,
    store: &ResultStore,
    queue: &FairQueue<QueuedJob>,
    shed: &Shed,
    cfg: &ServeConfig,
) {
    let mut reader = BufReader::new(stream);
    let mut buf = String::new();
    let mut discarding = false;
    loop {
        match reader.read_line(&mut buf) {
            Ok(0) => return, // peer closed its sending half
            Ok(_) => {
                let was_discarding = discarding;
                discarding = false;
                if !was_discarding && !overlong_reject(&buf, tx, cfg) {
                    handle_line(buf.trim(), client, tx, store, queue, shed, cfg);
                }
                buf.clear();
            }
            Err(e)
                if matches!(
                    e.kind(),
                    ErrorKind::WouldBlock | ErrorKind::TimedOut | ErrorKind::Interrupted
                ) =>
            {
                // Timeout mid-line: `read_line` has appended whatever
                // arrived so far, so an overlong line can be rejected
                // (once) before its newline ever shows up.
                if !discarding && buf.len() > cfg.max_line_bytes {
                    overlong_reject(&buf, tx, cfg);
                    discarding = true;
                }
                if discarding {
                    buf.clear();
                }
            }
            Err(_) => return,
        }
    }
}

/// Rejects an overlong line. Returns whether it was overlong.
fn overlong_reject(buf: &str, tx: &Sender<String>, cfg: &ServeConfig) -> bool {
    if buf.len() <= cfg.max_line_bytes {
        return false;
    }
    let _ = tx.send(metrics::rejected_line(
        String::new(),
        ErrorCode::OverLong,
        format!("request line exceeds the {}-byte cap", cfg.max_line_bytes),
        None,
    ));
    true
}

fn handle_line(
    line: &str,
    client: u64,
    tx: &Sender<String>,
    store: &ResultStore,
    queue: &FairQueue<QueuedJob>,
    shed: &Shed,
    cfg: &ServeConfig,
) {
    if line.is_empty() {
        return;
    }
    // Every rejection renders through `metrics::rejected_line`, so the
    // labeled reject counters equal the `Rejected` replies on the wire.
    let reject = |id: String, code: ErrorCode, detail: String| {
        let _ = tx.send(metrics::rejected_line(id, code, detail, None));
    };
    let request = match decode_request(line) {
        Ok(RequestBody::Job(request)) => request,
        Ok(RequestBody::Stats { id }) => {
            let _ = tx.send(reply_line(Reply::Stats {
                id,
                queue_depth: queue.len() as u64,
                workers: cfg.workers as u64,
                telemetry: mg_obs::telemetry::snapshot(),
            }));
            return;
        }
        Err((code, detail)) => return reject(String::new(), code, detail),
    };
    let job = match JobSpec::from_request(&request, &cfg.train_machine) {
        Ok(job) => job,
        Err((code, detail)) => return reject(request.id, code, detail),
    };
    if shutdown_requested() {
        return reject(
            request.id,
            ErrorCode::ShuttingDown,
            "server is draining".to_string(),
        );
    }
    let key = job.content_key();
    let cells = job.cells.len() as u64;
    mg_obs::tele_counter!(metrics::ACCEPTS).inc();
    let _ = tx.send(reply_line(Reply::Accepted {
        id: request.id.clone(),
        key: format!("{key:016x}"),
        cells,
    }));
    let sub = Sub {
        id: request.id,
        tx: tx.clone(),
        dedup: false,
        resume_from: job.resume_from,
    };
    if store.subscribe(key, sub) == Begin::Owner {
        // Admission control applies to owners only: coalescing onto an
        // in-flight execution or replaying a finished one adds no queue
        // load, so those are never shed.
        if let Err(over) = shed.admit(queue.len()) {
            mg_obs::tele_counter!(metrics::SHED_JOBS).inc();
            return store.abort(
                key,
                ErrorCode::Overloaded,
                &over.detail,
                Some(over.retry_after_ms),
            );
        }
        let deadline = job.deadline.map(|d| Instant::now() + d);
        let push = queue.push(
            client,
            QueuedJob {
                key,
                spec: job,
                queued_at: Instant::now(),
                deadline,
            },
        );
        match push {
            Ok(()) => {
                mg_obs::tele_gauge!(metrics::QUEUE_DEPTH).inc();
            }
            Err(PushError::Full) => store.abort(
                key,
                ErrorCode::QueueFull,
                &format!("job queue is at its {}-job capacity", queue.cap()),
                Some(
                    u64::try_from(cfg.shed_retry_after.as_millis())
                        .unwrap_or(u64::MAX)
                        .max(1),
                ),
            ),
            Err(PushError::Closed) => {
                store.abort(key, ErrorCode::ShuttingDown, "server is draining", None)
            }
        }
    }
}
