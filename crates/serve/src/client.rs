//! A small blocking client for the wire protocol, used by the loadtest,
//! the smoke client, and the protocol tests — plus [`Session`], the
//! resilient wrapper that survives drops, restarts, and overload by
//! reconnecting with exponential backoff and resuming idempotently
//! from its row cursor.

use crate::metrics;
use crate::protocol::{decode_reply, request_line, stats_line, ErrorCode, Reply, Request};
use mg_bench::{BenchError, SchemeRun};
use mg_obs::TelemetrySnapshot;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Everything a finished request produced.
#[derive(Debug, Default)]
pub struct JobOutcome {
    /// `(cell index, outcome)` in arrival order.
    pub rows: Vec<(u64, Result<SchemeRun, BenchError>)>,
    /// The `Done` reply's dedup flag (false for the owning request).
    pub dedup: bool,
    /// Set instead of rows/dedup when the request was rejected.
    pub rejected: Option<(ErrorCode, String)>,
    /// The reject's `retry_after_ms` hint, if any.
    pub retry_after_ms: Option<u64>,
    /// One past the highest stream cursor received — what a resumed
    /// request passes as `resume_from`.
    pub next_cursor: u64,
    /// [`Session`] only: reconnects performed while serving this job.
    pub reconnects: u64,
    /// [`Session`] only: transient rejects absorbed by backing off and
    /// resubmitting (`Overloaded`, `QueueFull`, ...).
    pub transient_rejects: u64,
}

impl JobOutcome {
    /// Whether the request streamed to completion (not rejected).
    pub fn completed(&self) -> bool {
        self.rejected.is_none()
    }
}

/// The server's answer to a `Stats` request.
#[derive(Debug)]
pub struct ServerStats {
    /// Jobs admitted but not yet claimed by a worker.
    pub queue_depth: u64,
    /// Size of the worker pool.
    pub workers: u64,
    /// The server's live telemetry registry at reply time.
    pub telemetry: TelemetrySnapshot,
}

/// One connection to an `mg-serve` daemon. The server's `Hello` is
/// consumed at connect time and exposed via [`Client::fingerprint`].
pub struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
    fingerprint: String,
}

impl Client {
    /// Connects and consumes the `Hello` line.
    pub fn connect(addr: &str) -> Result<Client, String> {
        let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
        let read_half = stream
            .try_clone()
            .map_err(|e| format!("clone stream: {e}"))?;
        let mut client = Client {
            stream,
            reader: BufReader::new(read_half),
            fingerprint: String::new(),
        };
        match client.read_reply()? {
            Reply::Hello { fingerprint, .. } => client.fingerprint = fingerprint,
            other => return Err(format!("expected Hello, got {other:?}")),
        }
        Ok(client)
    }

    /// Retries [`Client::connect`] until `deadline` elapses — for
    /// scripts racing a freshly spawned daemon.
    pub fn connect_with_retry(addr: &str, deadline: Duration) -> Result<Client, String> {
        let start = Instant::now();
        loop {
            match Client::connect(addr) {
                Ok(client) => return Ok(client),
                Err(e) if start.elapsed() >= deadline => return Err(e),
                Err(_) => std::thread::sleep(Duration::from_millis(100)),
            }
        }
    }

    /// The serving machine's fingerprint, from its `Hello`.
    pub fn fingerprint(&self) -> &str {
        &self.fingerprint
    }

    /// Sends one request line.
    pub fn submit(&mut self, request: &Request) -> Result<(), String> {
        self.send_raw(&request_line(request))
    }

    /// Sends a raw line verbatim (protocol tests craft invalid ones).
    pub fn send_raw(&mut self, line: &str) -> Result<(), String> {
        self.stream
            .write_all(line.as_bytes())
            .and_then(|()| self.stream.flush())
            .map_err(|e| format!("send: {e}"))
    }

    /// Reads and decodes the next reply line (blocking).
    pub fn read_reply(&mut self) -> Result<Reply, String> {
        let mut line = String::new();
        let n = self
            .reader
            .read_line(&mut line)
            .map_err(|e| format!("read: {e}"))?;
        if n == 0 {
            return Err("server closed the connection".to_string());
        }
        decode_reply(line.trim_end())
    }

    /// Asks the server for its live telemetry ([`ServerStats`]). Not
    /// for use while job replies are in flight on this connection —
    /// like [`Client::run_job`], it expects the next matching reply.
    pub fn stats(&mut self, id: &str) -> Result<ServerStats, String> {
        self.send_raw(&stats_line(id))?;
        match self.read_reply()? {
            Reply::Stats {
                id: got,
                queue_depth,
                workers,
                telemetry,
            } if got == id => Ok(ServerStats {
                queue_depth,
                workers,
                telemetry,
            }),
            other => Err(format!("expected Stats for {id:?}, got {other:?}")),
        }
    }

    /// Submits `request` and collects its whole stream: replies until
    /// the matching `Done` or a `Rejected`. Replies for other request
    /// ids (a pipelining client) are an error here — use raw
    /// [`Client::read_reply`] to demultiplex manually.
    pub fn run_job(&mut self, request: &Request) -> Result<JobOutcome, String> {
        self.submit(request)?;
        self.collect(&request.id)
    }

    /// Collects one request's stream (see [`Client::run_job`]).
    pub fn collect(&mut self, want_id: &str) -> Result<JobOutcome, String> {
        let mut outcome = JobOutcome::default();
        self.collect_into(want_id, &mut outcome)?;
        Ok(outcome)
    }

    /// Collects one request's stream into an existing outcome,
    /// deduplicating by cursor: rows below `outcome.next_cursor` are
    /// already held (a resumed stream never double-counts). Advances
    /// `next_cursor`, sets `dedup`/`rejected`, and leaves the
    /// session-level counters alone.
    fn collect_into(&mut self, want_id: &str, outcome: &mut JobOutcome) -> Result<(), String> {
        loop {
            match self.read_reply()? {
                Reply::Accepted { id, .. } if id == want_id => {}
                Reply::Row {
                    id,
                    cell,
                    cursor,
                    run,
                    ..
                } if id == want_id => {
                    if cursor >= outcome.next_cursor {
                        outcome.rows.push((cell, Ok(run)));
                        outcome.next_cursor = cursor + 1;
                    }
                }
                Reply::CellError {
                    id,
                    cell,
                    cursor,
                    error,
                } if id == want_id => {
                    if cursor >= outcome.next_cursor {
                        outcome.rows.push((cell, Err(error)));
                        outcome.next_cursor = cursor + 1;
                    }
                }
                Reply::Done { id, dedup, .. } if id == want_id => {
                    outcome.dedup = dedup;
                    return Ok(());
                }
                Reply::Rejected {
                    id,
                    code,
                    detail,
                    retry_after_ms,
                } if id == want_id || id.is_empty() => {
                    outcome.rejected = Some((code, detail));
                    outcome.retry_after_ms = retry_after_ms;
                    return Ok(());
                }
                other => return Err(format!("interleaved reply for another id: {other:?}")),
            }
        }
    }
}

/// Reconnect/backoff policy for a [`Session`]: exponential backoff from
/// `base` to `cap` with deterministic ±50% jitter (seeded, so chaos
/// runs reproduce), all bounded by an overall `deadline`.
#[derive(Clone, Debug)]
pub struct BackoffPolicy {
    /// First-retry delay; doubles per attempt.
    pub base: Duration,
    /// Upper bound on a single delay (pre-jitter).
    pub cap: Duration,
    /// Total budget across connects, retries, and streaming; when it
    /// runs out the session reports its last error.
    pub deadline: Duration,
    /// Jitter seed. Sessions with different seeds desynchronize their
    /// retry storms; equal seeds replay identical schedules.
    pub seed: u64,
}

impl Default for BackoffPolicy {
    fn default() -> BackoffPolicy {
        BackoffPolicy {
            base: Duration::from_millis(50),
            cap: Duration::from_secs(2),
            deadline: Duration::from_secs(10),
            seed: 0x6d67,
        }
    }
}

impl BackoffPolicy {
    /// The pre-jitter delay for retry `attempt` (0-based).
    fn raw_delay(&self, attempt: u32) -> Duration {
        let factor = 1u32.checked_shl(attempt.min(16)).unwrap_or(u32::MAX);
        self.base.saturating_mul(factor).min(self.cap)
    }
}

/// A resilient client session: submits jobs like [`Client::run_job`],
/// but survives connection drops, daemon restarts, and transient
/// rejects by reconnecting (exponential backoff + jitter) and
/// resubmitting with `resume_from` set to its cursor watermark. Rows
/// are deduplicated by cursor, so the merged outcome is bit-identical
/// to an uninterrupted stream.
pub struct Session {
    addr: String,
    policy: BackoffPolicy,
    rng: u64,
}

impl Session {
    /// A session against `addr` with the given policy.
    pub fn new(addr: &str, policy: BackoffPolicy) -> Session {
        let rng = policy.seed | 1;
        Session {
            addr: addr.to_string(),
            policy,
            rng,
        }
    }

    /// Deterministic jitter factor in `[0.5, 1.5)` (splitmix-style LCG
    /// step; no `std` RNG exists and the schedule must reproduce).
    fn jitter(&mut self) -> f64 {
        self.rng = self
            .rng
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        0.5 + (self.rng >> 40) as f64 / (1u64 << 24) as f64
    }

    fn backoff(&mut self, attempt: u32, floor: Option<u64>) -> Duration {
        let raw = self.policy.raw_delay(attempt);
        let jittered = raw.mul_f64(self.jitter());
        match floor {
            Some(ms) => jittered.max(Duration::from_millis(ms)),
            None => jittered,
        }
    }

    /// Whether a reject is worth retrying: load and lifecycle rejects
    /// clear with time; the rest would fail identically forever.
    fn retryable(code: ErrorCode) -> bool {
        matches!(
            code,
            ErrorCode::Overloaded
                | ErrorCode::QueueFull
                | ErrorCode::ShuttingDown
                | ErrorCode::DeadlineExceeded
        )
    }

    /// Runs `request` to completion across as many connections as it
    /// takes, within the policy deadline. `Ok` outcomes either
    /// completed (possibly after reconnects/resumes — see the
    /// `reconnects` and `transient_rejects` counters) or carry the
    /// final non-retryable rejection; `Err` means the deadline ran out.
    pub fn run_job(&mut self, request: &Request) -> Result<JobOutcome, String> {
        let start = Instant::now();
        let mut outcome = JobOutcome {
            next_cursor: request.resume_from.unwrap_or(0),
            ..JobOutcome::default()
        };
        let mut attempt = 0u32;
        let mut last_err;
        loop {
            match self.try_stream(request, &mut outcome) {
                Ok(None) => return Ok(outcome),
                Ok(Some((code, detail))) => {
                    if !Self::retryable(code) {
                        return Ok(outcome);
                    }
                    outcome.transient_rejects += 1;
                    mg_obs::tele_counter!(metrics::CLIENT_RETRIED_REJECTS).inc();
                    last_err = format!("transient reject {code:?}: {detail}");
                    // A fresh attempt must not inherit the stale
                    // rejection if the deadline expires later.
                    outcome.rejected = None;
                }
                Err(e) => last_err = e,
            }
            let delay = self.backoff(attempt, outcome.retry_after_ms.take());
            attempt += 1;
            if start.elapsed() + delay >= self.policy.deadline {
                return Err(format!(
                    "session gave up after {attempt} attempts over {}ms: {last_err}",
                    start.elapsed().as_millis()
                ));
            }
            std::thread::sleep(delay);
            outcome.reconnects += 1;
            mg_obs::tele_counter!(metrics::CLIENT_RECONNECTS).inc();
        }
    }

    /// One connection's worth of progress: connect, resubmit from the
    /// watermark, stream into `outcome`. `Ok(None)` means done,
    /// `Ok(Some(reject))` a typed rejection, `Err` an I/O failure
    /// (connection refused, dropped mid-stream, malformed reply).
    fn try_stream(
        &mut self,
        request: &Request,
        outcome: &mut JobOutcome,
    ) -> Result<Option<(ErrorCode, String)>, String> {
        let mut client = Client::connect(&self.addr)?;
        let mut resumed = request.clone();
        resumed.resume_from = Some(outcome.next_cursor);
        client.submit(&resumed)?;
        client.collect_into(&request.id, outcome)?;
        Ok(outcome.rejected.clone().map(|(code, detail)| {
            outcome.rejected = Some((code, detail.clone()));
            (code, detail)
        }))
    }

    /// Asks the server for its live telemetry over a fresh connection,
    /// retrying connects within the policy deadline (a daemon may be
    /// mid-restart).
    pub fn stats(&mut self, id: &str) -> Result<ServerStats, String> {
        let start = Instant::now();
        let mut attempt = 0u32;
        loop {
            let err = match Client::connect(&self.addr) {
                Ok(mut client) => match client.stats(id) {
                    Ok(stats) => return Ok(stats),
                    Err(e) => e,
                },
                Err(e) => e,
            };
            let delay = self.backoff(attempt, None);
            attempt += 1;
            if start.elapsed() + delay >= self.policy.deadline {
                return Err(err);
            }
            std::thread::sleep(delay);
        }
    }
}
