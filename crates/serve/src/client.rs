//! A small blocking client for the wire protocol, used by the loadtest,
//! the smoke client, and the protocol tests.

use crate::protocol::{decode_reply, request_line, stats_line, ErrorCode, Reply, Request};
use mg_bench::{BenchError, SchemeRun};
use mg_obs::TelemetrySnapshot;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Everything a finished request produced.
#[derive(Debug, Default)]
pub struct JobOutcome {
    /// `(cell index, outcome)` in arrival order.
    pub rows: Vec<(u64, Result<SchemeRun, BenchError>)>,
    /// The `Done` reply's dedup flag (false for the owning request).
    pub dedup: bool,
    /// Set instead of rows/dedup when the request was rejected.
    pub rejected: Option<(ErrorCode, String)>,
}

impl JobOutcome {
    /// Whether the request streamed to completion (not rejected).
    pub fn completed(&self) -> bool {
        self.rejected.is_none()
    }
}

/// The server's answer to a `Stats` request.
#[derive(Debug)]
pub struct ServerStats {
    /// Jobs admitted but not yet claimed by a worker.
    pub queue_depth: u64,
    /// Size of the worker pool.
    pub workers: u64,
    /// The server's live telemetry registry at reply time.
    pub telemetry: TelemetrySnapshot,
}

/// One connection to an `mg-serve` daemon. The server's `Hello` is
/// consumed at connect time and exposed via [`Client::fingerprint`].
pub struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
    fingerprint: String,
}

impl Client {
    /// Connects and consumes the `Hello` line.
    pub fn connect(addr: &str) -> Result<Client, String> {
        let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
        let read_half = stream
            .try_clone()
            .map_err(|e| format!("clone stream: {e}"))?;
        let mut client = Client {
            stream,
            reader: BufReader::new(read_half),
            fingerprint: String::new(),
        };
        match client.read_reply()? {
            Reply::Hello { fingerprint, .. } => client.fingerprint = fingerprint,
            other => return Err(format!("expected Hello, got {other:?}")),
        }
        Ok(client)
    }

    /// Retries [`Client::connect`] until `deadline` elapses — for
    /// scripts racing a freshly spawned daemon.
    pub fn connect_with_retry(addr: &str, deadline: Duration) -> Result<Client, String> {
        let start = Instant::now();
        loop {
            match Client::connect(addr) {
                Ok(client) => return Ok(client),
                Err(e) if start.elapsed() >= deadline => return Err(e),
                Err(_) => std::thread::sleep(Duration::from_millis(100)),
            }
        }
    }

    /// The serving machine's fingerprint, from its `Hello`.
    pub fn fingerprint(&self) -> &str {
        &self.fingerprint
    }

    /// Sends one request line.
    pub fn submit(&mut self, request: &Request) -> Result<(), String> {
        self.send_raw(&request_line(request))
    }

    /// Sends a raw line verbatim (protocol tests craft invalid ones).
    pub fn send_raw(&mut self, line: &str) -> Result<(), String> {
        self.stream
            .write_all(line.as_bytes())
            .and_then(|()| self.stream.flush())
            .map_err(|e| format!("send: {e}"))
    }

    /// Reads and decodes the next reply line (blocking).
    pub fn read_reply(&mut self) -> Result<Reply, String> {
        let mut line = String::new();
        let n = self
            .reader
            .read_line(&mut line)
            .map_err(|e| format!("read: {e}"))?;
        if n == 0 {
            return Err("server closed the connection".to_string());
        }
        decode_reply(line.trim_end())
    }

    /// Asks the server for its live telemetry ([`ServerStats`]). Not
    /// for use while job replies are in flight on this connection —
    /// like [`Client::run_job`], it expects the next matching reply.
    pub fn stats(&mut self, id: &str) -> Result<ServerStats, String> {
        self.send_raw(&stats_line(id))?;
        match self.read_reply()? {
            Reply::Stats {
                id: got,
                queue_depth,
                workers,
                telemetry,
            } if got == id => Ok(ServerStats {
                queue_depth,
                workers,
                telemetry,
            }),
            other => Err(format!("expected Stats for {id:?}, got {other:?}")),
        }
    }

    /// Submits `request` and collects its whole stream: replies until
    /// the matching `Done` or a `Rejected`. Replies for other request
    /// ids (a pipelining client) are an error here — use raw
    /// [`Client::read_reply`] to demultiplex manually.
    pub fn run_job(&mut self, request: &Request) -> Result<JobOutcome, String> {
        self.submit(request)?;
        self.collect(&request.id)
    }

    /// Collects one request's stream (see [`Client::run_job`]).
    pub fn collect(&mut self, want_id: &str) -> Result<JobOutcome, String> {
        let mut outcome = JobOutcome::default();
        loop {
            match self.read_reply()? {
                Reply::Accepted { id, .. } if id == want_id => {}
                Reply::Row { id, cell, run } if id == want_id => {
                    outcome.rows.push((cell, Ok(run)));
                }
                Reply::CellError { id, cell, error } if id == want_id => {
                    outcome.rows.push((cell, Err(error)));
                }
                Reply::Done { id, dedup, .. } if id == want_id => {
                    outcome.dedup = dedup;
                    return Ok(outcome);
                }
                Reply::Rejected { id, code, detail } if id == want_id || id.is_empty() => {
                    outcome.rejected = Some((code, detail));
                    return Ok(outcome);
                }
                other => return Err(format!("interleaved reply for another id: {other:?}")),
            }
        }
    }
}
