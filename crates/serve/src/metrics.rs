//! The Prometheus `/metrics` listener and the serve-side metric names.
//!
//! `mg-serve` exposes the process-global telemetry registry
//! ([`mg_obs::telemetry`]) over a deliberately tiny HTTP/1.0 responder:
//! `GET /metrics` returns the registry rendered in Prometheus text
//! exposition format (version 0.0.4). The same numbers are available
//! in-protocol through the `Stats` verb — both views read the same
//! registry, so they agree up to scrape timing.
//!
//! This module also owns the serve-side metric *names*, so the server,
//! the loadtest, and the integration tests can never drift apart on
//! spelling.

use crate::protocol::{reply_line, ErrorCode, Reply};
use mg_obs::telemetry;
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::Duration;

/// Connections accepted over the server's lifetime.
pub const CONNECTIONS: &str = "mg_serve_connections_total";
/// Requests answered with `Accepted` (admitted toward a job).
pub const ACCEPTS: &str = "mg_serve_accepts_total";
/// Job executions that ran to completion (each may serve many
/// coalesced/replayed requests).
pub const JOBS_COMPLETED: &str = "mg_serve_jobs_completed_total";
/// Requests that registered on the result store.
pub const JOBS_SUBMITTED: &str = "mg_serve_jobs_submitted_total";
/// Requests that joined an in-flight execution instead of running.
pub const JOBS_COALESCED: &str = "mg_serve_jobs_coalesced_total";
/// Requests replayed from a finished entry without queueing at all.
pub const JOBS_REPLAYED: &str = "mg_serve_jobs_replayed_total";
/// `Done` replies streamed to clients (one per served request).
pub const DONE_REPLIES: &str = "mg_serve_done_replies_total";
/// `Done` replies with the dedup flag set (coalesced or replayed).
pub const DEDUP_REPLIES: &str = "mg_serve_dedup_replies_total";
/// Cell rows committed by workers (one per cell execution, not per
/// subscriber).
pub const ROWS_COMMITTED: &str = "mg_serve_rows_committed_total";
/// Jobs admitted to the queue and not yet claimed by a worker.
pub const QUEUE_DEPTH: &str = "mg_serve_queue_depth";
/// Time jobs spent queued before a worker claimed them (microseconds).
pub const QUEUE_WAIT_US: &str = "mg_serve_queue_wait_us";
/// End-to-end job latency: admission to `Done` (microseconds).
pub const JOB_US: &str = "mg_serve_job_us";
/// Total worker time spent running jobs (microseconds); divide by
/// wall time × [`WORKERS`] for utilization.
pub const WORKER_BUSY_US: &str = "mg_serve_worker_busy_us_total";
/// Size of the worker pool.
pub const WORKERS: &str = "mg_serve_workers";
/// Cells served from the crash-recovery journal instead of re-running.
pub const CELLS_RECOVERED: &str = "mg_serve_cells_recovered_total";
/// Jobs that recovered at least one cell from the journal.
pub const JOBS_RECOVERED: &str = "mg_serve_jobs_recovered_total";
/// Jobs dropped at claim time because they out-sat their deadline.
pub const DEADLINE_DROPS: &str = "mg_serve_deadline_drops_total";
/// Jobs refused by admission control (also counted under the
/// `Overloaded` reject code; this name exists for cheap dashboards).
pub const SHED_JOBS: &str = "mg_serve_shed_jobs_total";
/// Recent queue-wait p99 as seen by the load shedder (microseconds).
pub const SHED_WAIT_P99_US: &str = "mg_serve_shed_wait_p99_us";
/// Client-side: reconnects performed by resilient sessions. Lives in
/// whatever process runs the [`crate::client::Session`] (the loadtest's
/// in-process runs land it in the same registry as the server's
/// numbers; a remote client keeps its own registry).
pub const CLIENT_RECONNECTS: &str = "mg_serve_client_reconnects_total";
/// Client-side: transient rejects a resilient session absorbed by
/// backing off and resubmitting.
pub const CLIENT_RETRIED_REJECTS: &str = "mg_serve_client_retried_rejects_total";

/// The labeled counter name for one typed rejection reason.
pub fn reject_counter(code: ErrorCode) -> String {
    format!("mg_serve_rejects_total{{code=\"{code:?}\"}}")
}

/// Sum of every `mg_serve_rejects_total{code=...}` series in a
/// snapshot — the total `Rejected` replies sent.
pub fn total_rejects(snapshot: &mg_obs::TelemetrySnapshot) -> u64 {
    snapshot
        .counters
        .iter()
        .filter(|(name, _)| name.starts_with("mg_serve_rejects_total{"))
        .map(|(_, &v)| v)
        .sum()
}

/// Renders a `Rejected` reply line, counting it under the code's
/// labeled reject counter. Every rejection the server sends goes
/// through here, so the counters equal the replies on the wire.
pub fn rejected_line(
    id: String,
    code: ErrorCode,
    detail: String,
    retry_after_ms: Option<u64>,
) -> String {
    // The name varies by code, so this must take the registry lookup
    // rather than `tele_counter!` (whose per-call-site cache would pin
    // the first code ever seen here). Rejections are rare and already
    // off the hot path.
    telemetry::counter(&reject_counter(code)).inc();
    reply_line(Reply::Rejected {
        id,
        code,
        detail,
        retry_after_ms,
    })
}

/// Renders a `Done` reply line, counting it (and its dedup flag).
pub fn done_line(id: String, cells: u64, dedup: bool) -> String {
    mg_obs::tele_counter!(DONE_REPLIES).inc();
    if dedup {
        mg_obs::tele_counter!(DEDUP_REPLIES).inc();
    }
    reply_line(Reply::Done { id, cells, dedup })
}

/// How often the accept loop re-checks the shutdown flag.
const POLL: Duration = Duration::from_millis(50);

/// A bound, not-yet-serving `/metrics` listener.
pub struct MetricsServer {
    listener: TcpListener,
    local_addr: SocketAddr,
}

impl MetricsServer {
    /// Binds the metrics socket; nothing is served until
    /// [`MetricsServer::run`].
    pub fn bind(addr: &str) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        Ok(MetricsServer {
            listener,
            local_addr,
        })
    }

    /// The bound address (resolves an ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Serves scrapes until [`mg_bench::request_shutdown`]. Each
    /// connection gets one response and is closed (HTTP/1.0 style) —
    /// scrapers reconnect per scrape, which keeps the listener a
    /// single thread with no connection bookkeeping.
    pub fn run(self) {
        while !mg_bench::shutdown_requested() {
            match self.listener.accept() {
                Ok((stream, peer)) => {
                    // Scrape failures close the connection (the stream
                    // drops here) and are logged rather than swallowed:
                    // a socket that refuses its timeouts must not be
                    // served, or a stalled scraper wedges this thread.
                    if let Err(e) = serve_scrape(stream) {
                        mg_obs::mg_debug!("metrics scrape from {peer} failed: {e}");
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(POLL),
                Err(_) => std::thread::sleep(POLL),
            }
        }
    }

    /// Spawns the listener on a named background thread.
    pub fn spawn(self) -> std::thread::JoinHandle<()> {
        std::thread::Builder::new()
            .name("mg-serve-metrics".to_string())
            .spawn(move || self.run())
            .expect("spawn metrics thread")
    }
}

/// Answers one scrape: `GET /metrics` with the rendered registry, 404
/// for any other path, 400 for lines that are not HTTP requests.
fn serve_scrape(stream: TcpStream) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    // Drain headers until the blank line so the peer's send completes.
    let mut header = String::new();
    while reader.read_line(&mut header)? > 2 {
        header.clear();
    }
    let mut out = stream;
    let mut parts = request_line.split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    let (status, content_type, body) = match (method, path) {
        ("GET", "/metrics") => (
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            telemetry::snapshot().to_prometheus(),
        ),
        ("GET", _) => ("404 Not Found", "text/plain", "try /metrics\n".to_string()),
        _ => ("400 Bad Request", "text/plain", "not HTTP\n".to_string()),
    };
    write!(
        out,
        "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    out.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reject_counter_names_are_stable() {
        assert_eq!(
            reject_counter(ErrorCode::QueueFull),
            "mg_serve_rejects_total{code=\"QueueFull\"}"
        );
    }

    #[test]
    fn total_rejects_sums_only_reject_series() {
        let mut snap = mg_obs::TelemetrySnapshot::default();
        snap.counters
            .insert(reject_counter(ErrorCode::Malformed), 2);
        snap.counters
            .insert(reject_counter(ErrorCode::QueueFull), 3);
        snap.counters.insert(ACCEPTS.to_string(), 99);
        assert_eq!(total_rejects(&snap), 5);
    }
}
