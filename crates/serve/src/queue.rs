//! Bounded, per-client-fair job queue.
//!
//! Admission control and fairness live here: the queue holds at most
//! `cap` jobs *total* (a full queue rejects, it never blocks the
//! submitting connection), and jobs are dequeued round-robin across the
//! clients that have work queued — a client that dumps 50 jobs cannot
//! starve one that submitted a single job; their next jobs alternate.
//!
//! Shutdown is a drain: [`FairQueue::close`] stops admission while
//! [`FairQueue::pop`] keeps delivering until the queue is empty, then
//! reports [`Pop::Closed`] so workers exit.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// Why a push was refused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at capacity; nothing was enqueued.
    Full,
    /// The queue is closed for shutdown; nothing was enqueued.
    Closed,
}

/// What a pop produced.
#[derive(Debug, PartialEq, Eq)]
pub enum Pop<T> {
    /// The next job, round-robin across clients.
    Item(T),
    /// Nothing arrived within the timeout; check shutdown and retry.
    TimedOut,
    /// The queue is closed *and* drained; the worker should exit.
    Closed,
}

struct State<T> {
    /// One FIFO per client with queued work, in round-robin rotation
    /// order; emptied queues leave the rotation.
    queues: VecDeque<(u64, VecDeque<T>)>,
    len: usize,
    closed: bool,
}

/// The bounded multi-client queue. All methods are `&self`; the queue
/// is shared behind an `Arc`.
pub struct FairQueue<T> {
    state: Mutex<State<T>>,
    cond: Condvar,
    cap: usize,
}

impl<T> FairQueue<T> {
    /// Locks the queue state, recovering from poisoning. Every mutation
    /// under the lock (`len`, the rotation, `closed`) is completed
    /// before any call that could panic, so a panicking thread — worker
    /// or connection — leaves the state consistent; propagating the
    /// poison would instead cascade one thread's panic into every
    /// other queue user.
    fn lock_state(&self) -> MutexGuard<'_, State<T>> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// A queue admitting at most `cap` jobs at once (floored at 1).
    pub fn new(cap: usize) -> FairQueue<T> {
        FairQueue {
            state: Mutex::new(State {
                queues: VecDeque::new(),
                len: 0,
                closed: false,
            }),
            cond: Condvar::new(),
            cap: cap.max(1),
        }
    }

    /// The configured capacity.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Jobs currently queued (across all clients).
    pub fn len(&self) -> usize {
        self.lock_state().len
    }

    /// Whether no jobs are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueues one job for `client`. Full or closed queues refuse
    /// immediately — admission control must never block the connection
    /// that asked.
    pub fn push(&self, client: u64, item: T) -> Result<(), PushError> {
        let mut s = self.lock_state();
        if s.closed {
            return Err(PushError::Closed);
        }
        if s.len >= self.cap {
            return Err(PushError::Full);
        }
        match s.queues.iter_mut().find(|(c, _)| *c == client) {
            Some((_, q)) => q.push_back(item),
            None => {
                let mut q = VecDeque::new();
                q.push_back(item);
                s.queues.push_back((client, q));
            }
        }
        s.len += 1;
        drop(s);
        self.cond.notify_one();
        Ok(())
    }

    /// Dequeues the next job, rotating across clients: the serving
    /// client's queue moves to the back of the rotation (or leaves it
    /// when emptied). Waits up to `wait` for work.
    pub fn pop(&self, wait: Duration) -> Pop<T> {
        let mut s = self.lock_state();
        loop {
            if s.len > 0 {
                let (client, mut q) = s.queues.pop_front().expect("len>0 implies a queue");
                let item = q.pop_front().expect("client queues are never empty");
                if !q.is_empty() {
                    s.queues.push_back((client, q));
                }
                s.len -= 1;
                return Pop::Item(item);
            }
            if s.closed {
                return Pop::Closed;
            }
            let (next, timeout) = self
                .cond
                .wait_timeout(s, wait)
                .unwrap_or_else(PoisonError::into_inner);
            s = next;
            if timeout.timed_out() && s.len == 0 && !s.closed {
                return Pop::TimedOut;
            }
        }
    }

    /// Closes admission: pushes refuse from now on, pops drain what is
    /// queued and then report [`Pop::Closed`].
    pub fn close(&self) {
        self.lock_state().closed = true;
        self.cond.notify_all();
    }

    /// Drains everything still queued right now (used to refuse leftover
    /// jobs in typed form when shutting down with no workers to run
    /// them).
    pub fn drain_now(&self) -> Vec<T> {
        let mut s = self.lock_state();
        let mut out = Vec::with_capacity(s.len);
        while let Some((_, mut q)) = s.queues.pop_front() {
            out.extend(q.drain(..));
        }
        s.len = 0;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    const WAIT: Duration = Duration::from_millis(10);

    #[test]
    fn round_robins_across_clients() {
        let q = FairQueue::new(16);
        // Client 1 floods before client 2 gets a word in.
        for i in 0..3 {
            q.push(1, (1, i)).unwrap();
        }
        for i in 0..2 {
            q.push(2, (2, i)).unwrap();
        }
        let order: Vec<(u64, u64)> = std::iter::from_fn(|| match q.pop(WAIT) {
            Pop::Item(x) => Some(x),
            _ => None,
        })
        .collect();
        assert_eq!(order, vec![(1, 0), (2, 0), (1, 1), (2, 1), (1, 2)]);
    }

    #[test]
    fn full_queue_rejects_instead_of_blocking() {
        let q = FairQueue::new(2);
        q.push(1, "a").unwrap();
        q.push(2, "b").unwrap();
        assert_eq!(q.push(1, "c"), Err(PushError::Full));
        assert_eq!(q.len(), 2, "the rejected job was not enqueued");
        // Freeing a slot re-admits.
        assert!(matches!(q.pop(WAIT), Pop::Item("a")));
        q.push(1, "c").unwrap();
    }

    #[test]
    fn close_drains_then_reports_closed() {
        let q = FairQueue::new(4);
        q.push(1, 10).unwrap();
        q.push(1, 11).unwrap();
        q.close();
        assert_eq!(q.push(1, 12), Err(PushError::Closed));
        assert!(matches!(q.pop(WAIT), Pop::Item(10)));
        assert!(matches!(q.pop(WAIT), Pop::Item(11)));
        assert!(matches!(q.pop(WAIT), Pop::Closed));
    }

    #[test]
    fn pop_wakes_on_push_from_another_thread() {
        let q = Arc::new(FairQueue::new(4));
        let q2 = Arc::clone(&q);
        let t = std::thread::spawn(move || q2.pop(Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(20));
        q.push(7, 99).unwrap();
        assert!(matches!(t.join().unwrap(), Pop::Item(99)));
    }

    #[test]
    fn empty_pop_times_out() {
        let q: FairQueue<u8> = FairQueue::new(1);
        assert!(matches!(q.pop(Duration::from_millis(5)), Pop::TimedOut));
    }

    #[test]
    fn survives_a_panic_while_the_lock_is_held() {
        let q = Arc::new(FairQueue::new(4));
        q.push(1, 7).unwrap();
        // Poison the mutex: panic with the guard held.
        let q2 = Arc::clone(&q);
        let poisoner = std::thread::spawn(move || {
            let _guard = q2.state.lock().unwrap();
            panic!("worker died holding the queue lock");
        });
        assert!(poisoner.join().is_err());
        assert!(q.state.is_poisoned(), "the panic did poison the mutex");
        // Every path still works: the state was consistent at the panic.
        assert_eq!(q.len(), 1);
        q.push(2, 8).unwrap();
        assert!(matches!(q.pop(WAIT), Pop::Item(7)));
        assert!(matches!(q.pop(WAIT), Pop::Item(8)));
        q.close();
        assert!(matches!(q.pop(WAIT), Pop::Closed));
    }
}
