//! `mg-serve`: simulation-as-a-service for the mini-graph harness.
//!
//! A TCP daemon speaking a line-delimited JSON protocol
//! ([`protocol`]): clients submit (benchmark, scheme × machine grid)
//! jobs and receive per-cell rows streamed as they commit —
//! bit-identical to what a batch-mode [`mg_bench::SweepSpec`] run would
//! produce, because both paths run the same supervised cells on the
//! same content-keyed contexts.
//!
//! The moving parts:
//!
//! * [`jobs`] — request validation and the journal-compatible content
//!   key that makes identical requests *coalesce*;
//! * [`queue`] — bounded admission with round-robin per-client
//!   fairness;
//! * [`store`] — the streaming result store: owner / coalesced /
//!   replayed subscriptions, disconnect pruning;
//! * [`server`] — accept loop, connection threads, worker pool, and
//!   graceful drain on shutdown;
//! * [`shed`] — load shedding: depth- and queue-wait-p99-based
//!   admission control with typed `Overloaded` rejects;
//! * [`client`] — a blocking client used by the bundled binaries and
//!   tests, plus the resilient [`client::Session`] wrapper (reconnect,
//!   backoff, idempotent resume);
//! * [`metrics`] — serve-side metric names, counted reply rendering,
//!   and the Prometheus `/metrics` HTTP listener;
//! * [`config`] — the daemon's typed configuration (no `std::env`
//!   reads anywhere in this crate).

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod client;
pub mod config;
pub mod jobs;
pub mod metrics;
pub mod protocol;
pub mod queue;
pub mod server;
pub mod shed;
pub mod store;

pub use client::{BackoffPolicy, Client, JobOutcome, ServerStats, Session};
pub use config::ServeConfig;
pub use jobs::JobSpec;
pub use metrics::MetricsServer;
pub use protocol::{ErrorCode, Reply, Request, RequestBody, PROTOCOL_VERSION};
pub use server::{ServeStats, Server};
pub use store::ResultStore;
