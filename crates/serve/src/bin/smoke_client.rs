//! CI smoke client: submits a small batch to a running daemon and
//! asserts the streamed rows are bit-identical to a batch-mode
//! [`SweepSpec`] run of the same cells in this process.
//!
//! Exits 0 only if every streamed row matches its batch-mode twin
//! byte-for-byte under JSON serialization. Assumes the daemon trains on
//! the default `reduced` machine (mg-serve's default).
//!
//! Jobs run through the resilient [`Session`] wrapper, so a daemon
//! restart or dropped connection mid-smoke is ridden out by reconnect
//! + resume instead of failing the job.
//!
//! Flags: `--addr HOST:PORT` (required), `--connect-timeout-secs N`
//! (default 30, to ride out a daemon that is still starting),
//! `--backoff-base-ms MS` / `--backoff-cap-ms MS` (reconnect backoff
//! shape). Numeric flags are strict-parsed: a bad value exits 2.

use mg_bench::SweepSpec;
use mg_serve::protocol::Request;
use mg_serve::{BackoffPolicy, Client, JobSpec, Session};
use mg_sim::MachineConfig;
use std::time::Duration;

fn smoke_requests() -> Vec<Request> {
    mg_workloads::suite()
        .iter()
        .take(2)
        .map(|bench| Request {
            id: format!("smoke-{}", bench.name),
            bench: bench.name.clone(),
            schemes: vec![
                "no-minigraphs".into(),
                "Struct-All".into(),
                "Slack-Dynamic".into(),
            ],
            machines: vec!["reduced".into(), "8way".into()],
            target_dyn: Some(2_000),
            deadline_ms: None,
            resume_from: None,
        })
        .collect()
}

fn main() {
    mg_bench::Config::init_cli();
    let mut addr: Option<String> = None;
    let mut policy = BackoffPolicy {
        deadline: Duration::from_secs(30),
        ..BackoffPolicy::default()
    };
    let mut args = std::env::args().skip(1);
    let flag_ms = |args: &mut std::iter::Skip<std::env::Args>, flag: &str| {
        let ms: u64 = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
            eprintln!("smoke-client: {flag} needs a millisecond count");
            std::process::exit(2);
        });
        Duration::from_millis(ms)
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => addr = args.next(),
            "--connect-timeout-secs" => {
                let secs: u64 = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("smoke-client: --connect-timeout-secs needs an integer");
                    std::process::exit(2);
                });
                policy.deadline = Duration::from_secs(secs);
            }
            "--backoff-base-ms" => policy.base = flag_ms(&mut args, "--backoff-base-ms"),
            "--backoff-cap-ms" => policy.cap = flag_ms(&mut args, "--backoff-cap-ms"),
            other => {
                eprintln!("smoke-client: unknown flag {other:?}");
                std::process::exit(2);
            }
        }
    }
    let Some(addr) = addr else {
        eprintln!("smoke-client: --addr HOST:PORT is required");
        std::process::exit(2);
    };

    // One plain connect up front for the banner (and to wait out a
    // still-starting daemon); the jobs themselves go through Session.
    let client = Client::connect_with_retry(&addr, policy.deadline).unwrap_or_else(|e| {
        eprintln!("smoke-client: {e}");
        std::process::exit(1);
    });
    println!(
        "smoke-client: connected to {addr} (fingerprint {})",
        client.fingerprint()
    );
    drop(client);
    let mut session = Session::new(&addr, policy);

    let train = MachineConfig::reduced();
    let mut mismatches = 0usize;
    for request in smoke_requests() {
        // The streamed answer.
        let outcome = session.run_job(&request).unwrap_or_else(|e| {
            eprintln!("smoke-client: {}: {e}", request.id);
            std::process::exit(1);
        });
        if let Some((code, detail)) = &outcome.rejected {
            eprintln!("smoke-client: {} rejected: {code:?}: {detail}", request.id);
            std::process::exit(1);
        }

        // The batch-mode twin: same validated job, run through the
        // stock sweep runner in this process.
        let job = JobSpec::from_request(&request, &train).unwrap_or_else(|(code, e)| {
            eprintln!("smoke-client: {}: {code:?}: {e}", request.id);
            std::process::exit(1);
        });
        let batch = SweepSpec::new(&train)
            .bench(&job.bench)
            .cells(job.cells.iter().cloned())
            .quiet(true)
            .run();
        let batch_runs = &batch.rows[0].runs;

        if outcome.rows.len() != batch_runs.len() {
            eprintln!(
                "smoke-client: {}: {} streamed rows vs {} batch rows",
                request.id,
                outcome.rows.len(),
                batch_runs.len()
            );
            std::process::exit(1);
        }
        let mut streamed = outcome.rows;
        streamed.sort_by_key(|(cell, _)| *cell);
        for (cell, served) in &streamed {
            let batch_run = &batch_runs[*cell as usize];
            let same = match (served, batch_run) {
                (Ok(a), Ok(b)) => {
                    serde_json::to_string(a).unwrap() == serde_json::to_string(b).unwrap()
                }
                (Err(a), Err(b)) => a == b,
                _ => false,
            };
            if same {
                continue;
            }
            mismatches += 1;
            eprintln!(
                "smoke-client: MISMATCH {} cell {cell}: served {:?} vs batch {:?}",
                request.id, served, batch_run
            );
        }
        println!(
            "smoke-client: {}: {} cells bit-identical to batch mode",
            request.id,
            streamed.len()
        );
    }
    if mismatches > 0 {
        eprintln!("smoke-client: FAILED with {mismatches} mismatching cells");
        std::process::exit(1);
    }
    println!("smoke-client: all rows bit-identical to batch mode");
}
