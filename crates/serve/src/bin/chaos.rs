//! `mg-chaos`: a deterministic chaos harness for the `mg-serve` daemon.
//!
//! Each scenario spawns a real daemon process, drives a seeded fault —
//! mid-stream disconnects, slow-loris peers, malformed floods, queue
//! saturation, injected worker panics, SIGKILL + restart — and then
//! asserts the service invariants the rest of the stack relies on:
//!
//! * **bit-identical rows** — whatever survives the fault must match an
//!   in-process batch-mode run of the same cells byte-for-byte;
//! * **zero hung connections** — every client thread finishes within a
//!   timeout, and held-open sockets never wedge the drain;
//! * **clean exit** — SIGTERM after the scenario drains to exit 0.
//!
//! Everything is seeded (`--seed N`): the fault schedule, the garbage
//! generator, and the reconnect jitter all derive from one LCG, so a
//! failing run reproduces with its printed seed.
//!
//! The log is duplicated to `results/CHAOS_log.txt` so CI can attach it
//! as an artifact on failure.
//!
//! Flags: `--seed N` (default 42), `--serve-bin PATH` (default: the
//! `mg-serve` binary next to this one), `--only NAME` (run a single
//! scenario). Numeric flags are strict-parsed: a bad value exits 2.
//!
//! The worker-panic scenario needs a daemon built with the
//! `fault-inject` feature; it probes for the feature at runtime and
//! reports `SKIP` when the hooks are compiled out.

use mg_bench::{BenchError, SchemeRun, SweepSpec};
use mg_serve::protocol::{Request, PROTOCOL_VERSION};
use mg_serve::{BackoffPolicy, Client, ErrorCode, JobSpec, Reply, Session};
use mg_sim::MachineConfig;
use std::fs::File;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::process::{Child, Command, ExitStatus, Stdio};
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// How long a daemon gets to drain after SIGTERM, and how long any
/// client thread gets to finish, before the scenario declares a hang.
const HANG_TIMEOUT: Duration = Duration::from_secs(120);

fn main() {
    mg_bench::Config::init_cli();
    let mut seed: u64 = 42;
    let mut serve_bin: Option<PathBuf> = None;
    let mut only: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => {
                seed = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("mg-chaos: --seed needs an integer");
                    std::process::exit(2);
                });
            }
            "--serve-bin" => serve_bin = args.next().map(PathBuf::from),
            "--only" => only = args.next(),
            other => {
                eprintln!("mg-chaos: unknown flag {other:?}");
                std::process::exit(2);
            }
        }
    }
    let serve_bin = serve_bin.unwrap_or_else(|| {
        // The cargo layout puts every workspace binary in one dir.
        std::env::current_exe()
            .expect("current_exe")
            .with_file_name("mg-serve")
    });
    if !serve_bin.exists() {
        eprintln!(
            "mg-chaos: daemon binary {} not found (build mg-serve or pass --serve-bin)",
            serve_bin.display()
        );
        std::process::exit(2);
    }

    let mut chaos = Chaos::new(seed, serve_bin);
    type Scenario = fn(&mut Chaos) -> Result<Outcome, String>;
    let scenarios: [(&str, Scenario); 6] = [
        ("disconnect", mid_stream_disconnects),
        ("slow-loris", slow_loris_peers),
        ("flood", malformed_flood),
        ("saturation", queue_saturation),
        ("worker-panic", worker_panics),
        ("kill-restart", kill_and_restart),
    ];

    let mut failures = 0u32;
    for (name, run) in scenarios {
        if only.as_deref().is_some_and(|want| want != name) {
            continue;
        }
        chaos.log(&format!("=== scenario {name} (seed {seed}) ==="));
        match run(&mut chaos) {
            Ok(Outcome::Pass) => chaos.log(&format!("--- {name}: OK")),
            Ok(Outcome::Skip(why)) => chaos.log(&format!("--- {name}: SKIP ({why})")),
            Err(e) => {
                failures += 1;
                chaos.log(&format!("--- {name}: FAILED: {e}"));
            }
        }
    }
    if failures > 0 {
        chaos.log(&format!("mg-chaos: {failures} scenario(s) FAILED"));
        std::process::exit(1);
    }
    chaos.log("mg-chaos: all scenarios passed");
}

enum Outcome {
    Pass,
    Skip(String),
}

struct Chaos {
    rng: u64,
    serve_bin: PathBuf,
    log_file: File,
}

impl Chaos {
    fn new(seed: u64, serve_bin: PathBuf) -> Chaos {
        std::fs::create_dir_all("results").expect("create results dir");
        let log_file = File::create("results/CHAOS_log.txt").expect("create chaos log");
        Chaos {
            rng: seed | 1,
            serve_bin,
            log_file,
        }
    }

    fn log(&mut self, line: &str) {
        println!("{line}");
        let _ = writeln!(self.log_file, "{line}");
        let _ = self.log_file.flush();
    }

    fn next_u64(&mut self) -> u64 {
        self.rng = self
            .rng
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.rng >> 16
    }

    /// Spawns a daemon on an ephemeral port (or `addr` when pinned) and
    /// waits for its banner.
    fn spawn_daemon(
        &mut self,
        addr: &str,
        extra: &[&str],
        env: &[(&str, &str)],
    ) -> Result<Daemon, String> {
        let mut child = Command::new(&self.serve_bin)
            .args(["--addr", addr, "--no-disk-cache"])
            .args(extra)
            .envs(env.iter().map(|(k, v)| (k.to_string(), v.to_string())))
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .map_err(|e| format!("spawn {}: {e}", self.serve_bin.display()))?;
        let stdout = child.stdout.take().expect("daemon stdout");
        let mut lines = BufReader::new(stdout).lines();
        let banner = match lines.next() {
            Some(Ok(line)) => line,
            other => {
                let _ = child.kill();
                return Err(format!("no startup banner: {other:?}"));
            }
        };
        let bound = banner
            .rsplit(' ')
            .next()
            .ok_or_else(|| format!("unparseable banner {banner:?}"))?
            .to_string();
        std::thread::spawn(move || for _line in lines.map_while(Result::ok) {});
        self.log(&format!("    daemon up on {bound} ({extra:?})"));
        Ok(Daemon { child, addr: bound })
    }
}

struct Daemon {
    child: Child,
    addr: String,
}

impl Daemon {
    /// SIGTERM, then assert the drain finishes with exit 0.
    fn stop_clean(mut self) -> Result<(), String> {
        let kill = Command::new("kill")
            .args(["-TERM", &self.child.id().to_string()])
            .status()
            .map_err(|e| format!("run kill: {e}"))?;
        if !kill.success() {
            return Err("kill -TERM failed".to_string());
        }
        match wait_timeout(&mut self.child, HANG_TIMEOUT) {
            Some(status) if status.code() == Some(0) => Ok(()),
            Some(status) => Err(format!("daemon drained with status {status}")),
            None => {
                let _ = self.child.kill();
                Err("daemon hung in drain past the timeout".to_string())
            }
        }
    }

    /// SIGKILL — the crash half of the crash-recovery scenario.
    fn kill9(mut self) -> Result<(), String> {
        self.child.kill().map_err(|e| format!("SIGKILL: {e}"))?;
        self.child.wait().map_err(|e| format!("reap: {e}"))?;
        Ok(())
    }
}

fn wait_timeout(child: &mut Child, timeout: Duration) -> Option<ExitStatus> {
    let start = Instant::now();
    loop {
        if let Some(status) = child.try_wait().expect("try_wait") {
            return Some(status);
        }
        if start.elapsed() > timeout {
            return None;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// Joins a set of client threads through a channel, failing the
/// scenario if any of them is still running after [`HANG_TIMEOUT`] —
/// the "zero hung connections" assertion.
fn join_all<T>(rx: mpsc::Receiver<T>, expected: usize, what: &str) -> Result<Vec<T>, String> {
    let mut out = Vec::with_capacity(expected);
    for i in 0..expected {
        match rx.recv_timeout(HANG_TIMEOUT) {
            Ok(v) => out.push(v),
            Err(_) => return Err(format!("{what}: client {i} of {expected} hung")),
        }
    }
    Ok(out)
}

fn request(id: &str, schemes: &[&str], machines: &[&str], target_dyn: u64) -> Request {
    Request {
        id: id.to_string(),
        bench: mg_workloads::suite()[0].name.clone(),
        schemes: schemes.iter().map(|s| s.to_string()).collect(),
        machines: machines.iter().map(|s| s.to_string()).collect(),
        target_dyn: Some(target_dyn),
        deadline_ms: None,
        resume_from: None,
    }
}

/// A streamed or recomputed row: cursor plus the cell's outcome.
type Row = (u64, Result<SchemeRun, BenchError>);

/// The batch-mode twin of a request: the same validated cells run
/// through the stock sweep runner in this process (no faults are ever
/// installed here).
fn batch_rows(req: &Request) -> Result<Vec<Row>, String> {
    let train = MachineConfig::reduced();
    let job = JobSpec::from_request(req, &train).map_err(|(code, e)| format!("{code:?}: {e}"))?;
    let batch = SweepSpec::new(&train)
        .bench(&job.bench)
        .cells(job.cells.iter().cloned())
        .quiet(true)
        .run();
    Ok(batch.rows[0]
        .runs
        .iter()
        .enumerate()
        .map(|(cell, run)| (cell as u64, run.clone()))
        .collect())
}

/// Canonical render of a row set for bit-identity comparison.
fn render(rows: &[Row]) -> Vec<String> {
    let mut out: Vec<String> = rows
        .iter()
        .map(|(cell, run)| match run {
            Ok(r) => format!("{cell}:ok:{}", serde_json::to_string(r).unwrap()),
            Err(e) => format!("{cell}:err:{}", serde_json::to_string(e).unwrap()),
        })
        .collect();
    out.sort();
    out
}

fn assert_bit_identical(served: &[Row], req: &Request, what: &str) -> Result<(), String> {
    let batch = batch_rows(req)?;
    if render(served) != render(&batch) {
        return Err(format!(
            "{what}: served rows differ from the batch-mode run\n  served: {:?}\n  batch:  {:?}",
            render(served),
            render(&batch)
        ));
    }
    Ok(())
}

fn session(addr: &str, seed: u64) -> Session {
    Session::new(
        addr,
        BackoffPolicy {
            deadline: Duration::from_secs(60),
            seed,
            ..BackoffPolicy::default()
        },
    )
}

// ---------------------------------------------------------------------
// Scenarios
// ---------------------------------------------------------------------

/// Clients that vanish mid-stream: submit, read a seeded number of
/// replies, drop the socket. The pool must shrug, and a resilient
/// session must then stream the same content bit-identically.
fn mid_stream_disconnects(chaos: &mut Chaos) -> Result<Outcome, String> {
    let daemon = chaos.spawn_daemon("127.0.0.1:0", &[], &[])?;
    let req = request(
        "disc",
        &["no-minigraphs", "Struct-All"],
        &["reduced"],
        4_100,
    );

    let (tx, rx) = mpsc::channel();
    for k in 0..4u64 {
        let reads = (chaos.next_u64() % 3) as usize; // 0..=2 replies, then vanish
        let addr = daemon.addr.clone();
        let mut ghost = req.clone();
        ghost.id = format!("disc-ghost-{k}");
        let tx = tx.clone();
        std::thread::spawn(move || {
            let result = (|| {
                let mut client = Client::connect(&addr)?;
                client.submit(&ghost)?;
                for _ in 0..reads {
                    client.read_reply()?;
                }
                Ok::<(), String>(())
            })();
            let _ = tx.send(result);
        });
    }
    for r in join_all(rx, 4, "disconnect ghosts")? {
        r?;
    }

    let outcome = session(&daemon.addr, chaos.next_u64())
        .run_job(&req)
        .map_err(|e| format!("survivor session: {e}"))?;
    if !outcome.completed() {
        return Err(format!("survivor rejected: {:?}", outcome.rejected));
    }
    assert_bit_identical(&outcome.rows, &req, "disconnect survivor")?;
    daemon.stop_clean()?;
    Ok(Outcome::Pass)
}

/// Peers that stall: one writes half a request line and goes silent,
/// one submits a job and never reads a reply. Neither may wedge normal
/// service or the drain.
fn slow_loris_peers(chaos: &mut Chaos) -> Result<Outcome, String> {
    let daemon = chaos.spawn_daemon("127.0.0.1:0", &["--write-timeout-ms", "1000"], &[])?;

    // Loris writer: an eternally unfinished line, held open to the end.
    let mut writer = TcpStream::connect(&daemon.addr).map_err(|e| format!("loris connect: {e}"))?;
    writer
        .write_all(b"{\"schema_version\":3,\"request")
        .map_err(|e| format!("loris write: {e}"))?;

    // Deaf reader: submits real work, never reads a single reply. The
    // daemon's write timeout (not our patience) bounds its damage.
    let deaf_req = request(
        "deaf",
        &["no-minigraphs", "Struct-All"],
        &["reduced"],
        4_200,
    );
    let mut deaf = Client::connect(&daemon.addr)?;
    deaf.submit(&deaf_req)?;

    // Normal service must be unaffected throughout.
    let req = request(
        "healthy",
        &["no-minigraphs", "Struct-All"],
        &["reduced"],
        4_250,
    );
    let outcome = session(&daemon.addr, chaos.next_u64())
        .run_job(&req)
        .map_err(|e| format!("healthy session: {e}"))?;
    if !outcome.completed() {
        return Err(format!("healthy job rejected: {:?}", outcome.rejected));
    }
    assert_bit_identical(&outcome.rows, &req, "job next to slow-loris peers")?;

    // Drain with both degenerate peers still attached: exit 0, no hang.
    daemon.stop_clean()?;
    drop(writer);
    drop(deaf);
    Ok(Outcome::Pass)
}

/// A seeded flood of garbage — binary junk, wrong versions, overlong
/// lines, unknown names. Every line must earn a typed reject, the
/// connections must survive, and real work must still stream after.
fn malformed_flood(chaos: &mut Chaos) -> Result<Outcome, String> {
    let daemon = chaos.spawn_daemon("127.0.0.1:0", &[], &[])?;
    let (tx, rx) = mpsc::channel();
    const CONNS: usize = 4;
    const LINES: usize = 25;
    for c in 0..CONNS {
        let addr = daemon.addr.clone();
        let tx = tx.clone();
        let seeds: Vec<u64> = (0..LINES).map(|_| chaos.next_u64()).collect();
        let probe = {
            let mut r = request(
                "flood-probe",
                &["no-minigraphs", "Struct-All"],
                &["reduced"],
                4_300,
            );
            r.id = format!("flood-probe-{c}");
            r
        };
        std::thread::spawn(move || {
            let result = (|| {
                let mut client = Client::connect(&addr)?;
                for (i, seed) in seeds.iter().enumerate() {
                    let line = match seed % 4 {
                        0 => format!("!!not json at all {seed:x}\n"),
                        1 => format!(
                            "{{\"schema_version\":{},\"request\":{{}}}}\n",
                            PROTOCOL_VERSION + 1 + (seed % 90) as u32
                        ),
                        2 => {
                            // Valid envelope, bogus body.
                            let mut bad = probe.clone();
                            bad.id = format!("junk-{c}-{i}");
                            bad.bench = format!("no_such_bench_{seed:x}");
                            mg_serve::protocol::request_line(&bad)
                        }
                        _ => format!("{}\n", "x".repeat(70_000)),
                    };
                    client.send_raw(&line)?;
                    match client.read_reply()? {
                        Reply::Rejected { .. } => {}
                        other => return Err(format!("garbage line got {other:?}")),
                    }
                }
                // The same connection still does real work.
                let outcome = client.run_job(&probe)?;
                if !outcome.completed() {
                    return Err(format!("post-flood job rejected: {:?}", outcome.rejected));
                }
                Ok::<_, String>(outcome.rows)
            })();
            let _ = tx.send(result);
        });
    }
    let probe = request(
        "flood-probe",
        &["no-minigraphs", "Struct-All"],
        &["reduced"],
        4_300,
    );
    for rows in join_all(rx, CONNS, "flood connections")? {
        assert_bit_identical(&rows?, &probe, "post-flood job")?;
    }
    daemon.stop_clean()?;
    Ok(Outcome::Pass)
}

/// Saturation: one worker, a tiny queue, and a burst of distinct jobs.
/// The shed must answer typed `Overloaded` rejects with backoff hints
/// while the jobs it *did* accept keep a bounded p99.
fn queue_saturation(chaos: &mut Chaos) -> Result<Outcome, String> {
    let daemon = chaos.spawn_daemon(
        "127.0.0.1:0",
        &[
            "--workers",
            "1",
            "--queue-cap",
            "4",
            "--shed-depth",
            "2",
            "--shed-retry-ms",
            "50",
        ],
        &[],
    )?;

    const BURST: usize = 12;
    let (tx, rx) = mpsc::channel();
    for i in 0..BURST {
        let addr = daemon.addr.clone();
        let tx = tx.clone();
        // Distinct content per job: coalescing must not soak the burst.
        let req = request(
            &format!("sat-{i}"),
            &["no-minigraphs"],
            &["reduced"],
            4_400 + i as u64,
        );
        std::thread::spawn(move || {
            let result = Client::connect(&addr).and_then(|mut c| c.run_job(&req));
            let _ = tx.send(result);
        });
    }
    let outcomes = join_all(rx, BURST, "saturation burst")?;

    let mut completed = 0usize;
    let mut shed = 0usize;
    let mut hinted = 0usize;
    for outcome in outcomes {
        let outcome = outcome.map_err(|e| format!("burst client errored untyped: {e}"))?;
        match &outcome.rejected {
            None => completed += 1,
            Some((ErrorCode::Overloaded | ErrorCode::QueueFull, _)) => {
                shed += 1;
                if outcome.retry_after_ms.unwrap_or(0) >= 1 {
                    hinted += 1;
                }
            }
            Some(other) => return Err(format!("unexpected reject under load: {other:?}")),
        }
    }
    chaos.log(&format!(
        "    saturation: {completed} completed, {shed} shed ({hinted} with hints)"
    ));
    if completed == 0 {
        return Err("no job completed under saturation".to_string());
    }
    if shed == 0 {
        return Err("burst of 12 on a depth-2 shed never shed anything".to_string());
    }
    if hinted != shed {
        return Err(format!(
            "{shed} shed but only {hinted} carried retry_after_ms"
        ));
    }

    // The accepted jobs' end-to-end p99 stays bounded: with a depth-2
    // shed nothing waits behind more than a couple of tiny jobs. 10s is
    // generous for machinery, impossible for an unbounded queue.
    let stats = Client::connect(&daemon.addr)
        .and_then(|mut c| c.stats("chaos-sat"))
        .map_err(|e| format!("stats verb: {e}"))?;
    let job_p99_us = stats
        .telemetry
        .hists
        .get(mg_serve::metrics::JOB_US)
        .map(|h| h.quantile(0.99))
        .unwrap_or(0);
    chaos.log(&format!("    saturation: accepted-job p99 {job_p99_us}us"));
    if job_p99_us == 0 {
        return Err("no job latency histogram after completed jobs".to_string());
    }
    if job_p99_us > 10_000_000 {
        return Err(format!("accepted-job p99 {job_p99_us}us is unbounded"));
    }
    daemon.stop_clean()?;
    Ok(Outcome::Pass)
}

/// Injected worker panics (`MG_FAULT`): with a retry budget, flaky
/// cells must still produce rows bit-identical to a healthy batch run.
/// Probes first whether the daemon was built with `fault-inject`.
fn worker_panics(chaos: &mut Chaos) -> Result<Outcome, String> {
    // Canary: a daemon told to panic every cell, with no retries. If
    // the cell comes back Ok, the hooks are compiled out.
    let canary =
        chaos.spawn_daemon("127.0.0.1:0", &["--retries", "0"], &[("MG_FAULT", "panic")])?;
    let creq = request("canary", &["no-minigraphs"], &["reduced"], 4_500);
    let canary_out = Client::connect(&canary.addr)
        .and_then(|mut c| c.run_job(&creq))
        .map_err(|e| format!("canary: {e}"))?;
    canary.stop_clean()?;
    let faults_active = canary_out
        .rows
        .first()
        .is_some_and(|(_, run)| matches!(run, Err(BenchError::Panicked { .. })));
    if !faults_active {
        return Ok(Outcome::Skip(
            "mg-serve built without the fault-inject feature".to_string(),
        ));
    }

    // The real run: every cell panics on its first attempt and the
    // retry budget absorbs it.
    let daemon = chaos.spawn_daemon(
        "127.0.0.1:0",
        &["--retries", "2"],
        &[("MG_FAULT", "flaky:times=1")],
    )?;
    let req = request(
        "flaky",
        &["no-minigraphs", "Struct-All"],
        &["reduced"],
        4_550,
    );
    let outcome = session(&daemon.addr, chaos.next_u64())
        .run_job(&req)
        .map_err(|e| format!("flaky session: {e}"))?;
    if !outcome.completed() {
        return Err(format!("flaky job rejected: {:?}", outcome.rejected));
    }
    if let Some((cell, err)) = outcome
        .rows
        .iter()
        .find_map(|(c, r)| r.as_ref().err().map(|e| (c, e.clone())))
    {
        return Err(format!("cell {cell} not healed by retry: {err}"));
    }
    assert_bit_identical(&outcome.rows, &req, "retried flaky job")?;
    daemon.stop_clean()?;
    Ok(Outcome::Pass)
}

/// SIGKILL mid-job, restart on the same port and journal dir: the
/// finished cells come back from the crash-recovery journal and a
/// resumed session completes the job bit-identically.
fn kill_and_restart(chaos: &mut Chaos) -> Result<Outcome, String> {
    // Reserve a port so the restarted daemon can reuse the address the
    // client knows. (Tiny bind race after the drop; acceptable here.)
    let pinned = {
        let probe = TcpListener::bind("127.0.0.1:0").map_err(|e| format!("probe bind: {e}"))?;
        probe.local_addr().map_err(|e| e.to_string())?.to_string()
    };
    let journal_dir = format!("results/chaos-journal-{:x}", chaos.next_u64());
    let _ = std::fs::remove_dir_all(&journal_dir);
    let daemon_args = ["--workers", "1", "--journal-dir", journal_dir.as_str()];

    let daemon = chaos.spawn_daemon(&pinned, &daemon_args, &[])?;
    let req = request(
        "kill-a",
        &["no-minigraphs", "Struct-All", "Slack-Dynamic"],
        &["reduced", "8way"],
        100_000,
    );

    // Stream until two cells have landed, then SIGKILL the daemon.
    let mut client = Client::connect(&daemon.addr)?;
    client.submit(&req)?;
    let mut held: Vec<Row> = Vec::new();
    let mut next_cursor = 0u64;
    while held.len() < 2 {
        match client
            .read_reply()
            .map_err(|e| format!("pre-kill read: {e}"))?
        {
            Reply::Accepted { .. } => {}
            Reply::Row {
                cell, cursor, run, ..
            } => {
                held.push((cell, Ok(run)));
                next_cursor = cursor + 1;
            }
            Reply::CellError {
                cell,
                cursor,
                error,
                ..
            } => {
                held.push((cell, Err(error)));
                next_cursor = cursor + 1;
            }
            other => return Err(format!("pre-kill reply {other:?}")),
        }
    }
    daemon.kill9()?;
    drop(client);
    chaos.log(&format!("    SIGKILL after {next_cursor} rows; restarting"));

    // Restart on the same address and journal; resume from the cursor.
    let daemon = chaos.spawn_daemon(&pinned, &daemon_args, &[])?;
    let mut resumed = req.clone();
    resumed.id = "kill-b".to_string();
    resumed.resume_from = Some(next_cursor);
    let tail = session(&daemon.addr, chaos.next_u64())
        .run_job(&resumed)
        .map_err(|e| format!("resumed session: {e}"))?;
    if !tail.completed() {
        return Err(format!("resumed job rejected: {:?}", tail.rejected));
    }

    // Merged pre-kill + post-restart rows are bit-identical to batch.
    held.extend(tail.rows);
    assert_bit_identical(&held, &req, "rows across the crash")?;

    // And the finished cells genuinely came from the journal.
    let stats = Client::connect(&daemon.addr)
        .and_then(|mut c| c.stats("chaos-recovery"))
        .map_err(|e| format!("stats verb: {e}"))?;
    let recovered = stats.telemetry.counter(mg_serve::metrics::CELLS_RECOVERED);
    chaos.log(&format!("    recovered {recovered} cells from the journal"));
    if recovered < next_cursor {
        return Err(format!(
            "only {recovered} cells recovered; {next_cursor} were journaled before the kill"
        ));
    }
    if stats.telemetry.counter(mg_serve::metrics::JOBS_RECOVERED) == 0 {
        return Err("no job counted as recovered".to_string());
    }

    daemon.stop_clean()?;
    let _ = std::fs::remove_dir_all(&journal_dir);
    Ok(Outcome::Pass)
}
