//! The `mg-serve` daemon: binds, prints the bound address, serves until
//! SIGINT/SIGTERM, drains, and exits 0.
//!
//! This binary is the only place in the serve stack that touches
//! process-level concerns: `MG_*` environment compatibility
//! ([`mg_bench::Config::init_cli`]), command-line flags
//! ([`ServeConfig::from_args`]), and signal wiring (first signal
//! requests a graceful drain; a second one exits immediately with the
//! conventional `128 + signo`).

use mg_serve::{MetricsServer, ServeConfig, Server};

fn main() {
    mg_bench::Config::init_cli();
    let cfg = match ServeConfig::from_args(std::env::args().skip(1)) {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("mg-serve: {e}");
            std::process::exit(2);
        }
    };
    let metrics_addr = cfg.metrics_addr.clone();
    let server = match Server::bind(cfg) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("mg-serve: bind: {e}");
            std::process::exit(2);
        }
    };
    println!("mg-serve listening on {}", server.local_addr());
    // Bind the metrics listener now (so a bad --metrics-addr fails
    // fast), but only spawn its thread after SignalWatch below has
    // blocked SIGINT/SIGTERM on this thread: spawned threads inherit
    // the mask, and an unmasked thread would let a process-directed
    // signal bypass the graceful drain via the default disposition.
    let metrics = match metrics_addr {
        Some(addr) => match MetricsServer::bind(&addr) {
            Ok(metrics) => {
                println!(
                    "mg-serve metrics on http://{}/metrics",
                    metrics.local_addr()
                );
                Some(metrics)
            }
            Err(e) => {
                eprintln!("mg-serve: metrics bind {addr}: {e}");
                std::process::exit(2);
            }
        },
        None => None,
    };
    let _watch = mg_bench::signals::SignalWatch::install(|signo, count| {
        if count == 1 {
            eprintln!("mg-serve: signal {signo}: draining");
            mg_bench::request_shutdown();
        } else {
            eprintln!("mg-serve: signal {signo} again: exiting now");
            std::process::exit(128 + signo);
        }
    });
    if let Some(metrics) = metrics {
        metrics.spawn();
    }
    let stats = server.run();
    println!(
        "mg-serve drained: {} connections, {} jobs completed, {} coalesced, {} replayed",
        stats.connections, stats.store.completed, stats.store.coalesced, stats.store.replayed
    );
}
