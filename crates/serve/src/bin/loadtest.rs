//! Load test: hundreds of concurrent client sessions against one
//! server, reporting throughput, dedup hit rate, and tail latency to
//! `results/BENCH_serve.json`.
//!
//! By default the server runs in-process on an ephemeral port (so the
//! binary is self-contained for CI); `--addr HOST:PORT` points it at an
//! external daemon instead. Sessions deliberately outnumber distinct
//! jobs by an order of magnitude: most sessions should be served by
//! coalescing onto an in-flight execution or replaying a finished one,
//! and the test fails if none are.
//!
//! Flags: `--sessions N` (default 240), `--addr HOST:PORT`.

use mg_serve::protocol::Request;
use mg_serve::{Client, ServeConfig, Server};
use serde::Serialize;
use std::time::{Duration, Instant};

/// The row written to `results/BENCH_serve.json`.
#[derive(Serialize)]
struct LoadReport {
    sessions: u64,
    distinct_jobs: u64,
    completed: u64,
    rejected: u64,
    client_errors: u64,
    panics: u64,
    wall_ms: u64,
    sessions_per_sec: f64,
    dedup_hits: u64,
    dedup_rate: f64,
    latency_p50_ms: u64,
    latency_p90_ms: u64,
    latency_p99_ms: u64,
    latency_max_ms: u64,
}

/// The distinct job mix: a handful of benchmarks crossed with two
/// scheme sets, at a small dynamic-instruction target so the load test
/// exercises the service machinery rather than the simulator. Sessions
/// outnumber these jobs ~20:1, keeping the job set well inside the
/// default 64-slot queue while making dedup the common case.
fn job_mix() -> Vec<Request> {
    let scheme_sets: [&[&str]; 2] = [
        &["no-minigraphs", "Struct-All"],
        &["Slack-Profile", "Slack-Dynamic"],
    ];
    mg_workloads::suite()
        .iter()
        .take(6)
        .flat_map(|bench| {
            scheme_sets
                .iter()
                .enumerate()
                .map(move |(i, schemes)| Request {
                    id: format!("{}-{i}", bench.name),
                    bench: bench.name.clone(),
                    schemes: schemes.iter().map(|s| s.to_string()).collect(),
                    machines: vec!["reduced".to_string()],
                    target_dyn: Some(2_000),
                })
        })
        .collect()
}

struct SessionResult {
    completed: bool,
    dedup: bool,
    error: Option<String>,
    latency: Duration,
}

fn run_session(addr: &str, mut request: Request, session: usize) -> SessionResult {
    let start = Instant::now();
    // Each session uses its own request id: dedup must come from the
    // content key, never from the id.
    request.id = format!("{}-s{session}", request.id);
    let outcome = Client::connect_with_retry(addr, Duration::from_secs(10))
        .and_then(|mut client| client.run_job(&request));
    match outcome {
        Ok(outcome) if outcome.completed() => SessionResult {
            completed: true,
            dedup: outcome.dedup,
            error: None,
            latency: start.elapsed(),
        },
        Ok(outcome) => SessionResult {
            completed: false,
            dedup: false,
            error: outcome
                .rejected
                .map(|(code, detail)| format!("{code:?}: {detail}")),
            latency: start.elapsed(),
        },
        Err(e) => SessionResult {
            completed: false,
            dedup: false,
            error: Some(e),
            latency: start.elapsed(),
        },
    }
}

fn percentile(sorted_ms: &[u64], p: f64) -> u64 {
    if sorted_ms.is_empty() {
        return 0;
    }
    let idx = ((sorted_ms.len() as f64 - 1.0) * p).round() as usize;
    sorted_ms[idx.min(sorted_ms.len() - 1)]
}

fn main() {
    mg_bench::Config::init_cli();
    let mut sessions = 240usize;
    let mut external: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--sessions" => {
                sessions = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("loadtest: --sessions needs a positive integer");
                    std::process::exit(2);
                });
            }
            "--addr" => external = args.next(),
            other => {
                eprintln!("loadtest: unknown flag {other:?}");
                std::process::exit(2);
            }
        }
    }

    // In-process server unless an external daemon was named.
    let (addr, server_thread) = match &external {
        Some(addr) => (addr.clone(), None),
        None => {
            let server = Server::bind(ServeConfig::default()).unwrap_or_else(|e| {
                eprintln!("loadtest: bind: {e}");
                std::process::exit(2);
            });
            let addr = server.local_addr().to_string();
            (addr, Some(std::thread::spawn(move || server.run())))
        }
    };

    let jobs = job_mix();
    let distinct_jobs = jobs.len();
    println!("loadtest: {sessions} sessions over {distinct_jobs} distinct jobs at {addr}");

    let start = Instant::now();
    let handles: Vec<_> = (0..sessions)
        .map(|s| {
            let addr = addr.clone();
            let request = jobs[s % distinct_jobs].clone();
            std::thread::spawn(move || run_session(&addr, request, s))
        })
        .collect();
    let mut results = Vec::with_capacity(sessions);
    let mut panics = 0u64;
    for h in handles {
        match h.join() {
            Ok(r) => results.push(r),
            Err(_) => panics += 1,
        }
    }
    let wall = start.elapsed();

    if let Some(thread) = server_thread {
        mg_bench::request_shutdown();
        let stats = thread.join().expect("server thread");
        mg_bench::clear_shutdown();
        println!(
            "server: {} connections, store counters {:?}",
            stats.connections, stats.store
        );
    }

    let completed = results.iter().filter(|r| r.completed).count() as u64;
    let dedup_hits = results.iter().filter(|r| r.completed && r.dedup).count() as u64;
    let rejected = results
        .iter()
        .filter(|r| !r.completed && r.error.is_some())
        .count() as u64;
    let client_errors = results.iter().filter(|r| !r.completed).count() as u64;
    for r in results.iter().filter(|r| !r.completed).take(5) {
        eprintln!("loadtest: failed session: {:?}", r.error);
    }
    let mut latencies_ms: Vec<u64> = results
        .iter()
        .filter(|r| r.completed)
        .map(|r| r.latency.as_millis() as u64)
        .collect();
    latencies_ms.sort_unstable();

    let report = LoadReport {
        sessions: sessions as u64,
        distinct_jobs: distinct_jobs as u64,
        completed,
        rejected,
        client_errors,
        panics,
        wall_ms: wall.as_millis() as u64,
        sessions_per_sec: completed as f64 / wall.as_secs_f64().max(1e-9),
        dedup_hits,
        dedup_rate: dedup_hits as f64 / (completed.max(1)) as f64,
        latency_p50_ms: percentile(&latencies_ms, 0.50),
        latency_p90_ms: percentile(&latencies_ms, 0.90),
        latency_p99_ms: percentile(&latencies_ms, 0.99),
        latency_max_ms: percentile(&latencies_ms, 1.00),
    };
    let path = mg_bench::save_json("BENCH_serve", &report);
    println!(
        "loadtest: {}/{} sessions completed in {} ms ({:.1}/s), dedup rate {:.3}, \
         p50/p90/p99/max = {}/{}/{}/{} ms -> {}",
        report.completed,
        report.sessions,
        report.wall_ms,
        report.sessions_per_sec,
        report.dedup_rate,
        report.latency_p50_ms,
        report.latency_p90_ms,
        report.latency_p99_ms,
        report.latency_max_ms,
        path.display()
    );

    if panics > 0 || completed != sessions as u64 {
        eprintln!("loadtest: FAILED — {panics} panics, {client_errors} incomplete sessions");
        std::process::exit(1);
    }
    if sessions > distinct_jobs && dedup_hits == 0 {
        eprintln!("loadtest: FAILED — no session was served by coalescing/replay");
        std::process::exit(1);
    }
}
