//! Load test: hundreds of concurrent client sessions against one
//! server, reporting throughput, dedup hit rate, and tail latency to
//! `results/BENCH_serve.json`.
//!
//! By default the server runs in-process on an ephemeral port (so the
//! binary is self-contained for CI); `--addr HOST:PORT` points it at an
//! external daemon instead. Sessions deliberately outnumber distinct
//! jobs by an order of magnitude: most sessions should be served by
//! coalescing onto an in-flight execution or replaying a finished one,
//! and the test fails if none are.
//!
//! Latency aggregation uses the shared telemetry histogram
//! ([`mg_obs::TeleHist`]) rather than a sorted sample vector, which is
//! what lets the report quote p99.9 without holding every sample. For
//! in-process runs the loadtest also stands up the `/metrics` listener
//! and cross-checks the server's own counters against what the clients
//! independently observed — done replies, dedup replies, and typed
//! rejects must agree exactly.
//!
//! Flags: `--sessions N` (default 240), `--addr HOST:PORT`,
//! `--connect-timeout-ms MS` (overall per-session retry budget,
//! default 10000), `--backoff-base-ms MS` / `--backoff-cap-ms MS`
//! (reconnect backoff shape, defaults 50/2000). All numeric flags are
//! strict-parsed: a bad value exits 2.

use mg_obs::TeleHist;
use mg_serve::metrics::{self, MetricsServer};
use mg_serve::protocol::Request;
use mg_serve::{BackoffPolicy, Client, ServeConfig, Server, Session};
use serde::Serialize;
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// `results/BENCH_serve.json` row format version. Bumped to 3 when the
/// sessions moved to the resilient client (adding the reconnect and
/// retried-reject counters).
const LOAD_SCHEMA: u32 = 3;

/// The row written to `results/BENCH_serve.json`.
#[derive(Serialize)]
struct LoadReport {
    load_schema: u32,
    sessions: u64,
    distinct_jobs: u64,
    completed: u64,
    rejected: u64,
    rejected_by_code: BTreeMap<String, u64>,
    client_errors: u64,
    panics: u64,
    wall_ms: u64,
    sessions_per_sec: f64,
    dedup_hits: u64,
    dedup_rate: f64,
    latency_p50_ms: u64,
    latency_p90_ms: u64,
    latency_p99_ms: u64,
    latency_p999_ms: u64,
    latency_max_ms: u64,
    reconnects: u64,
    transient_rejects: u64,
}

/// The distinct job mix: a handful of benchmarks crossed with two
/// scheme sets, at a small dynamic-instruction target so the load test
/// exercises the service machinery rather than the simulator. Sessions
/// outnumber these jobs ~20:1, keeping the job set well inside the
/// default 64-slot queue while making dedup the common case.
fn job_mix() -> Vec<Request> {
    let scheme_sets: [&[&str]; 2] = [
        &["no-minigraphs", "Struct-All"],
        &["Slack-Profile", "Slack-Dynamic"],
    ];
    mg_workloads::suite()
        .iter()
        .take(6)
        .flat_map(|bench| {
            scheme_sets
                .iter()
                .enumerate()
                .map(move |(i, schemes)| Request {
                    id: format!("{}-{i}", bench.name),
                    bench: bench.name.clone(),
                    schemes: schemes.iter().map(|s| s.to_string()).collect(),
                    machines: vec!["reduced".to_string()],
                    target_dyn: Some(2_000),
                    deadline_ms: None,
                    resume_from: None,
                })
        })
        .collect()
}

struct SessionResult {
    completed: bool,
    dedup: bool,
    reject_code: Option<String>,
    error: Option<String>,
    latency: Duration,
    reconnects: u64,
    transient_rejects: u64,
}

fn run_session(
    addr: &str,
    mut request: Request,
    session: usize,
    policy: &BackoffPolicy,
) -> SessionResult {
    let start = Instant::now();
    // Each session uses its own request id: dedup must come from the
    // content key, never from the id.
    request.id = format!("{}-s{session}", request.id);
    // Per-session jitter seed so concurrent sessions desynchronize
    // their retry schedules instead of thundering back together.
    let mut policy = policy.clone();
    policy.seed ^= session as u64;
    let outcome = Session::new(addr, policy).run_job(&request);
    match outcome {
        Ok(outcome) if outcome.completed() => SessionResult {
            completed: true,
            dedup: outcome.dedup,
            reject_code: None,
            error: None,
            latency: start.elapsed(),
            reconnects: outcome.reconnects,
            transient_rejects: outcome.transient_rejects,
        },
        Ok(outcome) => SessionResult {
            completed: false,
            dedup: false,
            reject_code: outcome
                .rejected
                .as_ref()
                .map(|(code, _)| format!("{code:?}")),
            error: outcome
                .rejected
                .as_ref()
                .map(|(code, detail)| format!("{code:?}: {detail}")),
            latency: start.elapsed(),
            reconnects: outcome.reconnects,
            transient_rejects: outcome.transient_rejects,
        },
        Err(e) => SessionResult {
            completed: false,
            dedup: false,
            reject_code: None,
            error: Some(e),
            latency: start.elapsed(),
            reconnects: 0,
            transient_rejects: 0,
        },
    }
}

/// One `GET /metrics` scrape, returned as the raw exposition text.
fn scrape(addr: &str) -> Result<String, String> {
    let mut stream =
        TcpStream::connect(addr).map_err(|e| format!("connect metrics {addr}: {e}"))?;
    stream
        .write_all(b"GET /metrics HTTP/1.0\r\n\r\n")
        .map_err(|e| format!("send scrape: {e}"))?;
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .map_err(|e| format!("read scrape: {e}"))?;
    match response.split_once("\r\n\r\n") {
        Some((head, body)) if head.contains("200") => Ok(body.to_string()),
        _ => Err(format!("scrape failed: {response:.100}")),
    }
}

/// The value of one counter series in Prometheus text (0 if absent).
fn prom_value(text: &str, series: &str) -> u64 {
    text.lines()
        .filter_map(|line| line.strip_prefix(series))
        .filter_map(|rest| rest.trim().parse::<f64>().ok())
        .map(|v| v as u64)
        .next()
        .unwrap_or(0)
}

/// Sum of every `mg_serve_rejects_total{code=...}` series in a scrape.
fn prom_total_rejects(text: &str) -> u64 {
    text.lines()
        .filter(|line| line.starts_with("mg_serve_rejects_total{"))
        .filter_map(|line| line.rsplit(' ').next()?.parse::<f64>().ok())
        .map(|v| v as u64)
        .sum()
}

/// Strict-parses the next argument as a millisecond count; a missing
/// or unparseable value exits 2.
fn flag_ms(args: &mut impl Iterator<Item = String>, flag: &str) -> Duration {
    let ms: u64 = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
        eprintln!("loadtest: {flag} needs a millisecond count");
        std::process::exit(2);
    });
    Duration::from_millis(ms)
}

fn main() {
    mg_bench::Config::init_cli();
    let mut sessions = 240usize;
    let mut external: Option<String> = None;
    let mut policy = BackoffPolicy::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--sessions" => {
                sessions = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("loadtest: --sessions needs a positive integer");
                    std::process::exit(2);
                });
            }
            "--addr" => external = args.next(),
            "--connect-timeout-ms" => policy.deadline = flag_ms(&mut args, "--connect-timeout-ms"),
            "--backoff-base-ms" => policy.base = flag_ms(&mut args, "--backoff-base-ms"),
            "--backoff-cap-ms" => policy.cap = flag_ms(&mut args, "--backoff-cap-ms"),
            other => {
                eprintln!("loadtest: unknown flag {other:?}");
                std::process::exit(2);
            }
        }
    }

    // In-process server unless an external daemon was named. The
    // in-process path also gets a `/metrics` listener so the scrape
    // cross-check below runs against a real HTTP socket.
    let (addr, metrics_addr, server_thread) = match &external {
        Some(addr) => (addr.clone(), None, None),
        None => {
            let server = Server::bind(ServeConfig::default()).unwrap_or_else(|e| {
                eprintln!("loadtest: bind: {e}");
                std::process::exit(2);
            });
            let metrics = MetricsServer::bind("127.0.0.1:0").unwrap_or_else(|e| {
                eprintln!("loadtest: metrics bind: {e}");
                std::process::exit(2);
            });
            let metrics_addr = metrics.local_addr().to_string();
            metrics.spawn();
            let addr = server.local_addr().to_string();
            (
                addr,
                Some(metrics_addr),
                Some(std::thread::spawn(move || server.run())),
            )
        }
    };

    let jobs = job_mix();
    let distinct_jobs = jobs.len();
    println!("loadtest: {sessions} sessions over {distinct_jobs} distinct jobs at {addr}");

    // Deltas, not absolutes: the in-process server shares this
    // process's global registry, which may already hold counts (e.g.
    // context-cache metrics from a warmup).
    let before = mg_obs::telemetry::snapshot();

    let start = Instant::now();
    let handles: Vec<_> = (0..sessions)
        .map(|s| {
            let addr = addr.clone();
            let request = jobs[s % distinct_jobs].clone();
            let policy = policy.clone();
            std::thread::spawn(move || run_session(&addr, request, s, &policy))
        })
        .collect();
    let mut results = Vec::with_capacity(sessions);
    let mut panics = 0u64;
    for h in handles {
        match h.join() {
            Ok(r) => results.push(r),
            Err(_) => panics += 1,
        }
    }
    let wall = start.elapsed();

    let completed = results.iter().filter(|r| r.completed).count() as u64;
    let dedup_hits = results.iter().filter(|r| r.completed && r.dedup).count() as u64;
    let rejected = results.iter().filter(|r| r.reject_code.is_some()).count() as u64;
    let reconnects: u64 = results.iter().map(|r| r.reconnects).sum();
    let transient_rejects: u64 = results.iter().map(|r| r.transient_rejects).sum();
    let mut rejected_by_code: BTreeMap<String, u64> = BTreeMap::new();
    for code in results.iter().filter_map(|r| r.reject_code.as_deref()) {
        *rejected_by_code.entry(code.to_string()).or_insert(0) += 1;
    }
    let client_errors = results.iter().filter(|r| !r.completed).count() as u64;
    for r in results.iter().filter(|r| !r.completed).take(5) {
        eprintln!("loadtest: failed session: {:?}", r.error);
    }

    // Tail latency through the shared histogram: exact count/max, ≤12.5%
    // relative error on interior quantiles, no per-sample storage.
    let hist = TeleHist::new();
    for r in results.iter().filter(|r| r.completed) {
        hist.record_duration(r.latency);
    }
    let lat = hist.snapshot();
    let q_ms = |q: f64| lat.quantile(q) / 1_000;

    // Cross-check the server's own view against what the clients
    // counted, over both exposure paths: the Prometheus scrape and the
    // in-protocol `Stats` verb. Only meaningful for the in-process
    // server (an external daemon has history we didn't observe).
    let mut check_failures = 0u32;
    if let Some(metrics_addr) = &metrics_addr {
        fn check(failures: &mut u32, what: &str, server_count: u64, client_count: u64) {
            if server_count != client_count {
                eprintln!(
                    "loadtest: MISMATCH {what}: server says {server_count}, \
                     clients counted {client_count}"
                );
                *failures += 1;
            }
        }
        match scrape(metrics_addr) {
            Ok(text) => {
                let done = prom_value(&text, &format!("{} ", metrics::DONE_REPLIES));
                let dedup = prom_value(&text, &format!("{} ", metrics::DEDUP_REPLIES));
                let rejects = prom_total_rejects(&text);
                let base_done = before.counter(metrics::DONE_REPLIES);
                let base_dedup = before.counter(metrics::DEDUP_REPLIES);
                let base_rejects = metrics::total_rejects(&before);
                check(
                    &mut check_failures,
                    "/metrics done replies",
                    done - base_done,
                    completed,
                );
                check(
                    &mut check_failures,
                    "/metrics dedup replies",
                    dedup - base_dedup,
                    dedup_hits,
                );
                // Sessions absorb transient rejects by retrying; the
                // server still counted each one it sent.
                check(
                    &mut check_failures,
                    "/metrics rejects",
                    rejects - base_rejects,
                    rejected + transient_rejects,
                );
            }
            Err(e) => {
                eprintln!("loadtest: scrape failed: {e}");
                check_failures += 1;
            }
        }
        match Client::connect(&addr).and_then(|mut c| c.stats("loadtest-stats")) {
            Ok(stats) => {
                let done = stats.telemetry.counter(metrics::DONE_REPLIES)
                    - before.counter(metrics::DONE_REPLIES);
                check(&mut check_failures, "Stats done replies", done, completed);
            }
            Err(e) => {
                eprintln!("loadtest: Stats verb failed: {e}");
                check_failures += 1;
            }
        }
    }

    if let Some(thread) = server_thread {
        mg_bench::request_shutdown();
        let stats = thread.join().expect("server thread");
        mg_bench::clear_shutdown();
        println!(
            "server: {} connections, store counters {:?}",
            stats.connections, stats.store
        );
    }

    let report = LoadReport {
        load_schema: LOAD_SCHEMA,
        sessions: sessions as u64,
        distinct_jobs: distinct_jobs as u64,
        completed,
        rejected,
        rejected_by_code,
        client_errors,
        panics,
        wall_ms: u64::try_from(wall.as_millis()).unwrap_or(u64::MAX),
        sessions_per_sec: completed as f64 / wall.as_secs_f64().max(1e-9),
        dedup_hits,
        dedup_rate: dedup_hits as f64 / (completed.max(1)) as f64,
        latency_p50_ms: q_ms(0.50),
        latency_p90_ms: q_ms(0.90),
        latency_p99_ms: q_ms(0.99),
        latency_p999_ms: q_ms(0.999),
        latency_max_ms: q_ms(1.00),
        reconnects,
        transient_rejects,
    };
    let path = mg_bench::save_json("BENCH_serve", &report);
    println!(
        "loadtest: {}/{} sessions completed in {} ms ({:.1}/s), dedup rate {:.3}, \
         p50/p90/p99/p99.9/max = {}/{}/{}/{}/{} ms -> {}",
        report.completed,
        report.sessions,
        report.wall_ms,
        report.sessions_per_sec,
        report.dedup_rate,
        report.latency_p50_ms,
        report.latency_p90_ms,
        report.latency_p99_ms,
        report.latency_p999_ms,
        report.latency_max_ms,
        path.display()
    );

    if panics > 0 || completed != sessions as u64 {
        eprintln!("loadtest: FAILED — {panics} panics, {client_errors} incomplete sessions");
        std::process::exit(1);
    }
    if sessions > distinct_jobs && dedup_hits == 0 {
        eprintln!("loadtest: FAILED — no session was served by coalescing/replay");
        std::process::exit(1);
    }
    if check_failures > 0 {
        eprintln!("loadtest: FAILED — {check_failures} telemetry cross-check mismatches");
        std::process::exit(1);
    }
}
