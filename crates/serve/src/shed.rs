//! Load shedding: admission control for the worker queue.
//!
//! A queue that only rejects when *full* still lets latency grow
//! without bound — by the time the 64th job is queued behind one slow
//! worker, every accepted job waits minutes. [`Shed`] refuses work
//! earlier, on either of two signals:
//!
//! * **queue depth** — jobs admitted but not yet claimed by a worker;
//! * **recent queue-wait p99** — the tail of how long claimed jobs sat
//!   queued, measured over a short rotating window (current + previous
//!   [`TeleHist`] buckets, so the estimate forgets old load within two
//!   window lengths instead of averaging over the process lifetime).
//!
//! A shed job gets a typed [`crate::protocol::ErrorCode::Overloaded`]
//! reject carrying a `retry_after_ms` hint — the larger of the
//! configured floor and the recent p99, i.e. "come back when the
//! backlog you would have joined has likely cleared". Only would-be
//! *owners* are ever shed: coalescing onto an in-flight execution or
//! replaying a finished one adds no queue load, so those are always
//! admitted.
//!
//! Both thresholds are optional ([`ShedConfig`]); with neither set the
//! shed admits everything and only the bounded queue itself pushes
//! back.

use mg_obs::telemetry::{HistSnapshot, TeleHist};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Thresholds for [`Shed`]; `None` disables that signal.
#[derive(Clone, Debug, Default)]
pub struct ShedConfig {
    /// Shed when this many jobs are already queued.
    pub depth: Option<usize>,
    /// Shed when the recent queue-wait p99 exceeds this.
    pub wait_p99: Option<Duration>,
    /// Floor for the `retry_after_ms` hint on shed rejects.
    pub retry_after: Duration,
}

/// Why a job was shed, with the backoff hint to send the client.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Overload {
    /// Human-readable reason (which signal tripped, at what value).
    pub detail: String,
    /// Suggested client backoff.
    pub retry_after_ms: u64,
}

struct Windows {
    current: TeleHist,
    previous: HistSnapshot,
    rotated_at: Instant,
}

/// The admission controller. One per server, shared behind an `Arc`.
pub struct Shed {
    cfg: ShedConfig,
    window: Duration,
    state: Mutex<Windows>,
}

/// How long one wait-observation window lasts; the p99 estimate spans
/// the current and previous windows, so it covers 10–20 s of history.
const WINDOW: Duration = Duration::from_secs(10);

impl Shed {
    /// A controller with the given thresholds and the default window.
    pub fn new(cfg: ShedConfig) -> Shed {
        Shed::with_window(cfg, WINDOW)
    }

    /// A controller with an explicit window length (tests use tiny
    /// windows to exercise rotation deterministically).
    pub fn with_window(cfg: ShedConfig, window: Duration) -> Shed {
        Shed {
            cfg,
            window,
            state: Mutex::new(Windows {
                current: TeleHist::new(),
                previous: HistSnapshot::empty(mg_obs::telemetry::DEFAULT_SUB_BITS),
                rotated_at: Instant::now(),
            }),
        }
    }

    /// Records how long a claimed job sat queued. Workers call this at
    /// claim time, mirroring the `mg_serve_queue_wait_us` histogram but
    /// windowed so the p99 tracks *recent* load.
    pub fn record_wait(&self, wait: Duration) {
        let mut s = self.state.lock().unwrap_or_else(|p| p.into_inner());
        Self::rotate_if_due(&mut s, self.window);
        s.current.record_duration(wait);
    }

    /// The queue-wait p99 over the last one-to-two windows.
    pub fn recent_wait_p99(&self) -> Duration {
        let mut s = self.state.lock().unwrap_or_else(|p| p.into_inner());
        Self::rotate_if_due(&mut s, self.window);
        let mut merged = s.current.snapshot();
        merged.merge(&s.previous);
        Duration::from_micros(merged.quantile(0.99))
    }

    fn rotate_if_due(s: &mut Windows, window: Duration) {
        if s.rotated_at.elapsed() >= window {
            s.previous = s.current.snapshot();
            s.current = TeleHist::new();
            s.rotated_at = Instant::now();
        }
    }

    /// Admission check for a would-be owner, given the current queue
    /// depth. `Err` carries the typed overload with its backoff hint.
    pub fn admit(&self, queue_depth: usize) -> Result<(), Overload> {
        if let Some(limit) = self.cfg.depth {
            if queue_depth >= limit {
                return Err(self.overload(format!(
                    "queue depth {queue_depth} at the {limit}-job shed threshold"
                )));
            }
        }
        if let Some(limit) = self.cfg.wait_p99 {
            let p99 = self.recent_wait_p99();
            if p99 > limit {
                return Err(self.overload(format!(
                    "recent queue-wait p99 {}ms over the {}ms shed threshold",
                    p99.as_millis(),
                    limit.as_millis()
                )));
            }
        }
        Ok(())
    }

    fn overload(&self, detail: String) -> Overload {
        let hint = self.recent_wait_p99().max(self.cfg.retry_after);
        Overload {
            detail,
            retry_after_ms: u64::try_from(hint.as_millis()).unwrap_or(u64::MAX).max(1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(depth: Option<usize>, wait_p99_ms: Option<u64>) -> ShedConfig {
        ShedConfig {
            depth,
            wait_p99: wait_p99_ms.map(Duration::from_millis),
            retry_after: Duration::from_millis(100),
        }
    }

    #[test]
    fn unconfigured_shed_admits_everything() {
        let shed = Shed::new(ShedConfig::default());
        shed.record_wait(Duration::from_secs(30));
        assert!(shed.admit(usize::MAX).is_ok());
    }

    #[test]
    fn depth_threshold_sheds_with_a_floored_hint() {
        let shed = Shed::new(cfg(Some(4), None));
        assert!(shed.admit(3).is_ok());
        let over = shed.admit(4).unwrap_err();
        assert!(over.detail.contains("queue depth 4"), "{}", over.detail);
        assert_eq!(over.retry_after_ms, 100, "no wait data: the floor wins");
    }

    #[test]
    fn wait_p99_threshold_sheds_and_scales_the_hint() {
        let shed = Shed::new(cfg(None, Some(50)));
        assert!(shed.admit(0).is_ok(), "no observations yet");
        for _ in 0..100 {
            shed.record_wait(Duration::from_millis(400));
        }
        let over = shed.admit(0).unwrap_err();
        assert!(over.detail.contains("queue-wait p99"), "{}", over.detail);
        assert!(
            over.retry_after_ms >= 400,
            "hint {}ms tracks the observed tail",
            over.retry_after_ms
        );
    }

    #[test]
    fn old_load_rotates_out_of_the_estimate() {
        // A zero-length window rotates on every touch: after two
        // touches with no new observations, the estimate is empty.
        let shed = Shed::with_window(cfg(None, Some(50)), Duration::ZERO);
        for _ in 0..100 {
            shed.record_wait(Duration::from_millis(400));
        }
        assert!(shed.admit(0).is_err(), "tail is hot right after the burst");
        assert_eq!(
            shed.recent_wait_p99(),
            Duration::ZERO,
            "history rotated out"
        );
        assert!(
            shed.admit(0).is_ok(),
            "estimate recovered with the load gone"
        );
    }
}
