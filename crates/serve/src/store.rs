//! Content-keyed result store: streaming, coalescing, replay.
//!
//! Every admitted job registers here under its content key (see
//! [`crate::jobs::JobSpec::content_key`]). The first request for a key
//! becomes the *owner* and actually runs; identical requests arriving
//! while it is in flight *coalesce* — they subscribe to the same entry
//! and receive the same rows, each rendered against their own request
//! id. Requests arriving after the job finished are *replayed* from the
//! retained rows without touching the queue at all.
//!
//! Subscribers hand in the sending half of their connection's outbound
//! channel. A subscriber whose connection died simply fails `send` and
//! is pruned — a mid-stream disconnect never poisons the job, the other
//! subscribers, or the worker pool.

use crate::metrics;
use crate::protocol::{reply_line, ErrorCode, Reply};
use mg_bench::{BenchError, SchemeRun};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Mutex};

/// Finished jobs retained for replay. The cap bounds memory; eviction
/// is FIFO by completion order.
const DONE_RETENTION: usize = 4096;

/// One cell outcome as committed by a worker.
pub type CellOutcome = (usize, Result<SchemeRun, BenchError>);

/// A request listening on a key: its id (stamped on every reply) and
/// the outbound line channel of its connection.
pub struct Sub {
    /// The client-chosen request id.
    pub id: String,
    /// Sending half of the connection's writer channel.
    pub tx: Sender<String>,
    /// Whether this request coalesced/replayed rather than owning the
    /// execution — echoed in its `Done` reply.
    pub dedup: bool,
}

enum Entry {
    InFlight {
        rows: Vec<CellOutcome>,
        subs: Vec<Sub>,
    },
    Done {
        rows: Arc<Vec<CellOutcome>>,
    },
}

/// How a subscription began.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Begin {
    /// First request for this key: the caller must enqueue the job.
    Owner,
    /// Joined an in-flight execution; rows will stream as they commit.
    Coalesced,
    /// The job already finished; all rows were replayed immediately.
    Replayed,
}

/// Monotonic service counters, readable without the store lock.
#[derive(Debug, Default)]
pub struct Counters {
    /// Requests that registered on the store (accepted jobs).
    pub submitted: AtomicU64,
    /// Requests that joined an in-flight execution.
    pub coalesced: AtomicU64,
    /// Requests replayed from a finished entry.
    pub replayed: AtomicU64,
    /// Jobs that ran to completion.
    pub completed: AtomicU64,
}

/// A snapshot of [`Counters`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, serde::Serialize)]
pub struct CounterSnapshot {
    /// Requests that registered on the store.
    pub submitted: u64,
    /// Requests that joined an in-flight execution.
    pub coalesced: u64,
    /// Requests replayed from a finished entry.
    pub replayed: u64,
    /// Jobs that ran to completion.
    pub completed: u64,
}

/// The shared store. One per server, behind an `Arc`.
pub struct ResultStore {
    entries: Mutex<StoreState>,
    counters: Counters,
}

struct StoreState {
    by_key: HashMap<u64, Entry>,
    done_order: VecDeque<u64>,
}

impl Default for ResultStore {
    fn default() -> ResultStore {
        ResultStore::new()
    }
}

impl ResultStore {
    /// An empty store.
    pub fn new() -> ResultStore {
        ResultStore {
            entries: Mutex::new(StoreState {
                by_key: HashMap::new(),
                done_order: VecDeque::new(),
            }),
            counters: Counters::default(),
        }
    }

    /// Current counter values.
    pub fn counters(&self) -> CounterSnapshot {
        CounterSnapshot {
            submitted: self.counters.submitted.load(Ordering::Relaxed),
            coalesced: self.counters.coalesced.load(Ordering::Relaxed),
            replayed: self.counters.replayed.load(Ordering::Relaxed),
            completed: self.counters.completed.load(Ordering::Relaxed),
        }
    }

    /// Registers a request on `key`. Exactly one of three things
    /// happens, atomically under the store lock:
    ///
    /// * no entry → the request becomes [`Begin::Owner`] and must
    ///   enqueue the job;
    /// * in-flight entry → already-committed rows are sent immediately
    ///   (no gap: commit and replay serialize on the lock) and the sub
    ///   joins the stream ([`Begin::Coalesced`]);
    /// * finished entry → every row plus `Done` is sent immediately
    ///   ([`Begin::Replayed`]).
    pub fn subscribe(&self, key: u64, mut sub: Sub) -> Begin {
        let mut s = self.entries.lock().expect("store lock");
        self.counters.submitted.fetch_add(1, Ordering::Relaxed);
        mg_obs::tele_counter!(metrics::JOBS_SUBMITTED).inc();
        match s.by_key.get_mut(&key) {
            None => {
                sub.dedup = false;
                s.by_key.insert(
                    key,
                    Entry::InFlight {
                        rows: Vec::new(),
                        subs: vec![sub],
                    },
                );
                Begin::Owner
            }
            Some(Entry::InFlight { rows, subs, .. }) => {
                sub.dedup = true;
                self.counters.coalesced.fetch_add(1, Ordering::Relaxed);
                mg_obs::tele_counter!(metrics::JOBS_COALESCED).inc();
                for row in rows.iter() {
                    // A dead subscriber is pruned below on the next
                    // commit; here it simply stops receiving.
                    let _ = sub.tx.send(render_row(&sub.id, row));
                }
                subs.push(sub);
                Begin::Coalesced
            }
            Some(Entry::Done { rows }) => {
                self.counters.replayed.fetch_add(1, Ordering::Relaxed);
                mg_obs::tele_counter!(metrics::JOBS_REPLAYED).inc();
                for row in rows.iter() {
                    let _ = sub.tx.send(render_row(&sub.id, row));
                }
                let _ = sub
                    .tx
                    .send(metrics::done_line(sub.id, rows.len() as u64, true));
                Begin::Replayed
            }
        }
    }

    /// Commits one cell outcome: recorded for late subscribers and
    /// streamed to every live one. Subscribers whose connection has
    /// gone away are pruned here.
    pub fn commit_row(&self, key: u64, cell: usize, outcome: Result<SchemeRun, BenchError>) {
        let mut s = self.entries.lock().expect("store lock");
        if let Some(Entry::InFlight { rows, subs, .. }) = s.by_key.get_mut(&key) {
            mg_obs::tele_counter!(metrics::ROWS_COMMITTED).inc();
            let row = (cell, outcome);
            subs.retain(|sub| sub.tx.send(render_row(&sub.id, &row)).is_ok());
            rows.push(row);
        }
    }

    /// Finishes a job: sends `Done` to every subscriber (with their own
    /// dedup flag) and converts the entry for replay, releasing the
    /// subscriber list.
    pub fn finish(&self, key: u64) {
        let mut s = self.entries.lock().expect("store lock");
        let Some(Entry::InFlight { rows, subs }) = s.by_key.remove(&key) else {
            return;
        };
        self.counters.completed.fetch_add(1, Ordering::Relaxed);
        mg_obs::tele_counter!(metrics::JOBS_COMPLETED).inc();
        let cells = rows.len() as u64;
        for sub in subs {
            let dedup = sub.dedup;
            let _ = sub.tx.send(metrics::done_line(sub.id, cells, dedup));
        }
        s.by_key.insert(
            key,
            Entry::Done {
                rows: Arc::new(rows),
            },
        );
        s.done_order.push_back(key);
        while s.done_order.len() > DONE_RETENTION {
            if let Some(old) = s.done_order.pop_front() {
                if matches!(s.by_key.get(&old), Some(Entry::Done { .. })) {
                    s.by_key.remove(&old);
                }
            }
        }
    }

    /// Aborts an in-flight entry: every subscriber gets a typed
    /// [`Reply::Rejected`] and the entry is removed so a retry can own
    /// the key afresh. Used when the owner failed to enqueue
    /// (queue-full, shutdown).
    pub fn abort(&self, key: u64, code: ErrorCode, detail: &str) {
        let mut s = self.entries.lock().expect("store lock");
        if let Some(Entry::InFlight { subs, .. }) = s.by_key.remove(&key) {
            for sub in subs {
                let _ = sub
                    .tx
                    .send(metrics::rejected_line(sub.id, code, detail.to_string()));
            }
        }
    }
}

fn render_row(id: &str, row: &CellOutcome) -> String {
    let (cell, outcome) = row;
    match outcome {
        Ok(run) => reply_line(Reply::Row {
            id: id.to_string(),
            cell: *cell as u64,
            run: run.clone(),
        }),
        Err(error) => reply_line(Reply::CellError {
            id: id.to_string(),
            cell: *cell as u64,
            error: error.clone(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::decode_reply;
    use std::sync::mpsc::{channel, Receiver};

    fn sub(id: &str) -> (Sub, Receiver<String>) {
        let (tx, rx) = channel();
        (
            Sub {
                id: id.into(),
                tx,
                dedup: false,
            },
            rx,
        )
    }

    fn replies(rx: &Receiver<String>) -> Vec<Reply> {
        rx.try_iter()
            .map(|line| decode_reply(line.trim_end()).unwrap())
            .collect()
    }

    fn fake_err(msg: &str) -> BenchError {
        BenchError::Interrupted {
            bench: msg.to_string(),
        }
    }

    #[test]
    fn owner_then_coalesce_then_replay() {
        let store = ResultStore::new();
        let (a, rx_a) = sub("a");
        assert_eq!(store.subscribe(7, a), Begin::Owner);

        store.commit_row(7, 0, Err(fake_err("cell 0")));

        // B arrives mid-flight: gets the committed row replayed, then
        // streams the rest live.
        let (b, rx_b) = sub("b");
        assert_eq!(store.subscribe(7, b), Begin::Coalesced);
        store.commit_row(7, 1, Err(fake_err("cell 1")));
        store.finish(7);

        let a_replies = replies(&rx_a);
        let b_replies = replies(&rx_b);
        assert_eq!(a_replies.len(), 3, "two cells + done");
        assert_eq!(b_replies.len(), 3, "replayed cell + live cell + done");
        assert!(
            matches!(&a_replies[2], Reply::Done { dedup: false, id, .. } if id == "a"),
            "owner is not a dedup"
        );
        assert!(
            matches!(&b_replies[2], Reply::Done { dedup: true, id, .. } if id == "b"),
            "coalesced request is a dedup"
        );

        // C arrives after the fact: full replay, no queue involvement.
        let (c, rx_c) = sub("c");
        assert_eq!(store.subscribe(7, c), Begin::Replayed);
        let c_replies = replies(&rx_c);
        assert_eq!(c_replies.len(), 3);
        assert!(matches!(&c_replies[2], Reply::Done { dedup: true, .. }));

        let counters = store.counters();
        assert_eq!(counters.submitted, 3);
        assert_eq!(counters.coalesced, 1);
        assert_eq!(counters.replayed, 1);
        assert_eq!(counters.completed, 1);
    }

    #[test]
    fn dead_subscriber_is_pruned_not_fatal() {
        let store = ResultStore::new();
        let (a, rx_a) = sub("a");
        store.subscribe(9, a);
        drop(rx_a); // Client A disconnects mid-stream.
        let (b, rx_b) = sub("b");
        store.subscribe(9, b);
        store.commit_row(9, 0, Err(fake_err("row")));
        store.finish(9);
        let b_replies = replies(&rx_b);
        assert_eq!(b_replies.len(), 2, "B still gets its row and done");
    }

    #[test]
    fn abort_rejects_all_subscribers_and_frees_the_key() {
        let store = ResultStore::new();
        let (a, rx_a) = sub("a");
        assert_eq!(store.subscribe(3, a), Begin::Owner);
        store.abort(3, ErrorCode::QueueFull, "queue at capacity");
        let a_replies = replies(&rx_a);
        assert!(
            matches!(
                &a_replies[0],
                Reply::Rejected {
                    code: ErrorCode::QueueFull,
                    ..
                }
            ),
            "subscriber saw the typed reject"
        );
        // The key is free again: a retry becomes a fresh owner.
        let (b, _rx_b) = sub("b");
        assert_eq!(store.subscribe(3, b), Begin::Owner);
    }
}
