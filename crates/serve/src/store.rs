//! Content-keyed result store: streaming, coalescing, replay.
//!
//! Every admitted job registers here under its content key (see
//! [`crate::jobs::JobSpec::content_key`]). The first request for a key
//! becomes the *owner* and actually runs; identical requests arriving
//! while it is in flight *coalesce* — they subscribe to the same entry
//! and receive the same rows, each rendered against their own request
//! id. Requests arriving after the job finished are *replayed* from the
//! retained rows without touching the queue at all.
//!
//! Subscribers hand in the sending half of their connection's outbound
//! channel. A subscriber whose connection died simply fails `send` and
//! is pruned — a mid-stream disconnect never poisons the job, the other
//! subscribers, or the worker pool.

use crate::metrics;
use crate::protocol::{reply_line, ErrorCode, Reply};
use mg_bench::{BenchError, SchemeRun};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Finished jobs retained for replay. The cap bounds memory; eviction
/// is FIFO by completion order.
const DONE_RETENTION: usize = 4096;

/// One cell outcome as committed by a worker.
pub type CellOutcome = (usize, Result<SchemeRun, BenchError>);

/// A request listening on a key: its id (stamped on every reply) and
/// the outbound line channel of its connection.
pub struct Sub {
    /// The client-chosen request id.
    pub id: String,
    /// Sending half of the connection's writer channel.
    pub tx: Sender<String>,
    /// Whether this request coalesced/replayed rather than owning the
    /// execution — echoed in its `Done` reply.
    pub dedup: bool,
    /// Stream cursor to resume from: rows before this position are not
    /// re-sent (the client already holds them from a previous
    /// connection). `0` streams everything.
    pub resume_from: u64,
}

enum Entry {
    InFlight {
        rows: Vec<CellOutcome>,
        subs: Vec<Sub>,
    },
    Done {
        rows: Arc<Vec<CellOutcome>>,
    },
}

/// How a subscription began.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Begin {
    /// First request for this key: the caller must enqueue the job.
    Owner,
    /// Joined an in-flight execution; rows will stream as they commit.
    Coalesced,
    /// The job already finished; all rows were replayed immediately.
    Replayed,
}

/// Monotonic service counters, readable without the store lock.
#[derive(Debug, Default)]
pub struct Counters {
    /// Requests that registered on the store (accepted jobs).
    pub submitted: AtomicU64,
    /// Requests that joined an in-flight execution.
    pub coalesced: AtomicU64,
    /// Requests replayed from a finished entry.
    pub replayed: AtomicU64,
    /// Jobs that ran to completion.
    pub completed: AtomicU64,
}

/// A snapshot of [`Counters`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, serde::Serialize)]
pub struct CounterSnapshot {
    /// Requests that registered on the store.
    pub submitted: u64,
    /// Requests that joined an in-flight execution.
    pub coalesced: u64,
    /// Requests replayed from a finished entry.
    pub replayed: u64,
    /// Jobs that ran to completion.
    pub completed: u64,
}

/// The shared store. One per server, behind an `Arc`.
pub struct ResultStore {
    entries: Mutex<StoreState>,
    counters: Counters,
}

struct StoreState {
    by_key: HashMap<u64, Entry>,
    done_order: VecDeque<u64>,
}

impl Default for ResultStore {
    fn default() -> ResultStore {
        ResultStore::new()
    }
}

impl ResultStore {
    /// An empty store.
    pub fn new() -> ResultStore {
        ResultStore {
            entries: Mutex::new(StoreState {
                by_key: HashMap::new(),
                done_order: VecDeque::new(),
            }),
            counters: Counters::default(),
        }
    }

    /// Locks the store state, recovering from poisoning: every mutation
    /// under the lock completes before anything that can panic (sends
    /// into an mpsc channel do not), so a panicking thread leaves the
    /// map consistent and propagating the poison would only turn one
    /// panic into a store-wide outage.
    fn lock_entries(&self) -> MutexGuard<'_, StoreState> {
        self.entries.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Current counter values.
    pub fn counters(&self) -> CounterSnapshot {
        CounterSnapshot {
            submitted: self.counters.submitted.load(Ordering::Relaxed),
            coalesced: self.counters.coalesced.load(Ordering::Relaxed),
            replayed: self.counters.replayed.load(Ordering::Relaxed),
            completed: self.counters.completed.load(Ordering::Relaxed),
        }
    }

    /// Registers a request on `key`. Exactly one of three things
    /// happens, atomically under the store lock:
    ///
    /// * no entry → the request becomes [`Begin::Owner`] and must
    ///   enqueue the job;
    /// * in-flight entry → already-committed rows from the sub's
    ///   `resume_from` cursor on are sent immediately (no gap: commit
    ///   and replay serialize on the lock) and the sub joins the stream
    ///   ([`Begin::Coalesced`]);
    /// * finished entry → every row from the cursor on plus `Done` is
    ///   sent immediately ([`Begin::Replayed`]).
    pub fn subscribe(&self, key: u64, mut sub: Sub) -> Begin {
        let mut s = self.lock_entries();
        self.counters.submitted.fetch_add(1, Ordering::Relaxed);
        mg_obs::tele_counter!(metrics::JOBS_SUBMITTED).inc();
        match s.by_key.get_mut(&key) {
            None => {
                sub.dedup = false;
                s.by_key.insert(
                    key,
                    Entry::InFlight {
                        rows: Vec::new(),
                        subs: vec![sub],
                    },
                );
                Begin::Owner
            }
            Some(Entry::InFlight { rows, subs, .. }) => {
                sub.dedup = true;
                self.counters.coalesced.fetch_add(1, Ordering::Relaxed);
                mg_obs::tele_counter!(metrics::JOBS_COALESCED).inc();
                for (cursor, row) in rows.iter().enumerate().skip(sub.resume_from as usize) {
                    // A dead subscriber is pruned below on the next
                    // commit; here it simply stops receiving.
                    let _ = sub.tx.send(render_row(&sub.id, cursor as u64, row));
                }
                subs.push(sub);
                Begin::Coalesced
            }
            Some(Entry::Done { rows }) => {
                self.counters.replayed.fetch_add(1, Ordering::Relaxed);
                mg_obs::tele_counter!(metrics::JOBS_REPLAYED).inc();
                for (cursor, row) in rows.iter().enumerate().skip(sub.resume_from as usize) {
                    let _ = sub.tx.send(render_row(&sub.id, cursor as u64, row));
                }
                let _ = sub
                    .tx
                    .send(metrics::done_line(sub.id, rows.len() as u64, true));
                Begin::Replayed
            }
        }
    }

    /// Commits one cell outcome: recorded for late subscribers and
    /// streamed to every live one. Subscribers whose connection has
    /// gone away are pruned here.
    pub fn commit_row(&self, key: u64, cell: usize, outcome: Result<SchemeRun, BenchError>) {
        let mut s = self.lock_entries();
        if let Some(Entry::InFlight { rows, subs, .. }) = s.by_key.get_mut(&key) {
            mg_obs::tele_counter!(metrics::ROWS_COMMITTED).inc();
            let cursor = rows.len() as u64;
            let row = (cell, outcome);
            // A sub whose resume cursor is still ahead of this row keeps
            // its slot without receiving it (the client already has it).
            subs.retain(|sub| {
                cursor < sub.resume_from || sub.tx.send(render_row(&sub.id, cursor, &row)).is_ok()
            });
            rows.push(row);
        }
    }

    /// Finishes a job: sends `Done` to every subscriber (with their own
    /// dedup flag) and converts the entry for replay, releasing the
    /// subscriber list.
    pub fn finish(&self, key: u64) {
        let mut s = self.lock_entries();
        let Some(Entry::InFlight { rows, subs }) = s.by_key.remove(&key) else {
            return;
        };
        self.counters.completed.fetch_add(1, Ordering::Relaxed);
        mg_obs::tele_counter!(metrics::JOBS_COMPLETED).inc();
        let cells = rows.len() as u64;
        for sub in subs {
            let dedup = sub.dedup;
            let _ = sub.tx.send(metrics::done_line(sub.id, cells, dedup));
        }
        s.by_key.insert(
            key,
            Entry::Done {
                rows: Arc::new(rows),
            },
        );
        s.done_order.push_back(key);
        while s.done_order.len() > DONE_RETENTION {
            if let Some(old) = s.done_order.pop_front() {
                if matches!(s.by_key.get(&old), Some(Entry::Done { .. })) {
                    s.by_key.remove(&old);
                }
            }
        }
    }

    /// Aborts an in-flight entry: every subscriber gets a typed
    /// [`Reply::Rejected`] (with the backoff hint, when the reason is
    /// retryable) and the entry is removed so a retry can own the key
    /// afresh. Used when the owner failed admission (queue-full,
    /// overload shedding, expired deadline, shutdown).
    pub fn abort(&self, key: u64, code: ErrorCode, detail: &str, retry_after_ms: Option<u64>) {
        let mut s = self.lock_entries();
        if let Some(Entry::InFlight { subs, .. }) = s.by_key.remove(&key) {
            for sub in subs {
                let _ = sub.tx.send(metrics::rejected_line(
                    sub.id,
                    code,
                    detail.to_string(),
                    retry_after_ms,
                ));
            }
        }
    }
}

fn render_row(id: &str, cursor: u64, row: &CellOutcome) -> String {
    let (cell, outcome) = row;
    match outcome {
        Ok(run) => reply_line(Reply::Row {
            id: id.to_string(),
            cell: *cell as u64,
            cursor,
            run: run.clone(),
        }),
        Err(error) => reply_line(Reply::CellError {
            id: id.to_string(),
            cell: *cell as u64,
            cursor,
            error: error.clone(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::decode_reply;
    use std::sync::mpsc::{channel, Receiver};

    fn sub(id: &str) -> (Sub, Receiver<String>) {
        sub_from(id, 0)
    }

    fn sub_from(id: &str, resume_from: u64) -> (Sub, Receiver<String>) {
        let (tx, rx) = channel();
        (
            Sub {
                id: id.into(),
                tx,
                dedup: false,
                resume_from,
            },
            rx,
        )
    }

    fn replies(rx: &Receiver<String>) -> Vec<Reply> {
        rx.try_iter()
            .map(|line| decode_reply(line.trim_end()).unwrap())
            .collect()
    }

    fn fake_err(msg: &str) -> BenchError {
        BenchError::Interrupted {
            bench: msg.to_string(),
        }
    }

    #[test]
    fn owner_then_coalesce_then_replay() {
        let store = ResultStore::new();
        let (a, rx_a) = sub("a");
        assert_eq!(store.subscribe(7, a), Begin::Owner);

        store.commit_row(7, 0, Err(fake_err("cell 0")));

        // B arrives mid-flight: gets the committed row replayed, then
        // streams the rest live.
        let (b, rx_b) = sub("b");
        assert_eq!(store.subscribe(7, b), Begin::Coalesced);
        store.commit_row(7, 1, Err(fake_err("cell 1")));
        store.finish(7);

        let a_replies = replies(&rx_a);
        let b_replies = replies(&rx_b);
        assert_eq!(a_replies.len(), 3, "two cells + done");
        assert_eq!(b_replies.len(), 3, "replayed cell + live cell + done");
        assert!(
            matches!(&a_replies[2], Reply::Done { dedup: false, id, .. } if id == "a"),
            "owner is not a dedup"
        );
        assert!(
            matches!(&b_replies[2], Reply::Done { dedup: true, id, .. } if id == "b"),
            "coalesced request is a dedup"
        );

        // C arrives after the fact: full replay, no queue involvement.
        let (c, rx_c) = sub("c");
        assert_eq!(store.subscribe(7, c), Begin::Replayed);
        let c_replies = replies(&rx_c);
        assert_eq!(c_replies.len(), 3);
        assert!(matches!(&c_replies[2], Reply::Done { dedup: true, .. }));

        let counters = store.counters();
        assert_eq!(counters.submitted, 3);
        assert_eq!(counters.coalesced, 1);
        assert_eq!(counters.replayed, 1);
        assert_eq!(counters.completed, 1);
    }

    #[test]
    fn dead_subscriber_is_pruned_not_fatal() {
        let store = ResultStore::new();
        let (a, rx_a) = sub("a");
        store.subscribe(9, a);
        drop(rx_a); // Client A disconnects mid-stream.
        let (b, rx_b) = sub("b");
        store.subscribe(9, b);
        store.commit_row(9, 0, Err(fake_err("row")));
        store.finish(9);
        let b_replies = replies(&rx_b);
        assert_eq!(b_replies.len(), 2, "B still gets its row and done");
    }

    #[test]
    fn abort_rejects_all_subscribers_and_frees_the_key() {
        let store = ResultStore::new();
        let (a, rx_a) = sub("a");
        assert_eq!(store.subscribe(3, a), Begin::Owner);
        store.abort(3, ErrorCode::QueueFull, "queue at capacity", Some(120));
        let a_replies = replies(&rx_a);
        assert!(
            matches!(
                &a_replies[0],
                Reply::Rejected {
                    code: ErrorCode::QueueFull,
                    retry_after_ms: Some(120),
                    ..
                }
            ),
            "subscriber saw the typed reject with the backoff hint"
        );
        // The key is free again: a retry becomes a fresh owner.
        let (b, _rx_b) = sub("b");
        assert_eq!(store.subscribe(3, b), Begin::Owner);
    }

    #[test]
    fn resume_cursor_skips_rows_the_client_already_holds() {
        let store = ResultStore::new();
        let (owner, rx_owner) = sub("owner");
        assert_eq!(store.subscribe(5, owner), Begin::Owner);
        store.commit_row(5, 0, Err(fake_err("cell 0")));
        store.commit_row(5, 1, Err(fake_err("cell 1")));

        // A client reconnecting mid-flight with 2 rows in hand gets
        // nothing replayed and only the live tail, cursors intact.
        let (resumer, rx_resumer) = sub_from("resumer", 2);
        assert_eq!(store.subscribe(5, resumer), Begin::Coalesced);
        assert!(replies(&rx_resumer).is_empty(), "held rows are not resent");
        store.commit_row(5, 2, Err(fake_err("cell 2")));
        store.finish(5);
        let got = replies(&rx_resumer);
        assert_eq!(got.len(), 2, "live tail row + done");
        assert!(matches!(
            &got[0],
            Reply::CellError {
                cursor: 2,
                cell: 2,
                ..
            }
        ));
        assert!(matches!(&got[1], Reply::Done { cells: 3, .. }));

        // After the fact, a resume replays only the missing tail.
        let (late, rx_late) = sub_from("late", 1);
        assert_eq!(store.subscribe(5, late), Begin::Replayed);
        let got = replies(&rx_late);
        assert_eq!(got.len(), 3, "two tail rows + done");
        assert!(matches!(&got[0], Reply::CellError { cursor: 1, .. }));
        assert!(matches!(&got[1], Reply::CellError { cursor: 2, .. }));

        // The owner saw every row exactly once, cursors monotonic.
        let owner_replies = replies(&rx_owner);
        let cursors: Vec<u64> = owner_replies
            .iter()
            .filter_map(|r| match r {
                Reply::CellError { cursor, .. } | Reply::Row { cursor, .. } => Some(*cursor),
                _ => None,
            })
            .collect();
        assert_eq!(cursors, vec![0, 1, 2]);
    }
}
