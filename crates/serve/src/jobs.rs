//! Request validation: turning a wire [`Request`] into a runnable,
//! content-keyed [`JobSpec`].
//!
//! The content key is derived with exactly the journal's machinery
//! ([`mg_bench::journal::row_key`] over
//! [`mg_bench::journal::sweep_repr`]), so a server-submitted job and
//! the equivalent CLI sweep name the same work: identical requests
//! coalesce in the server's result store, and their artifacts share the
//! process-wide context cache.

use crate::protocol::{ErrorCode, Request};
use mg_bench::cache::stable_hash64;
use mg_bench::{journal, InputSel, Scheme, SweepCell};
use mg_sim::MachineConfig;
use mg_workloads::BenchmarkSpec;
use std::time::Duration;

/// Cap on cells per request: a full scheme × machine grid is 12 × 5.
pub const MAX_CELLS: usize = 64;

/// `target_dyn` overrides outside this range are refused — below the
/// generator's validity floor or far past any figure's budget.
pub const TARGET_DYN_RANGE: (u64, u64) = (1_000, 10_000_000);

/// A validated job: one benchmark, an ordered cell grid, and the
/// training machine every context for this job is profiled on.
#[derive(Clone, Debug)]
pub struct JobSpec {
    /// The benchmark (with any `target_dyn` override applied, so the
    /// override participates in the content key).
    pub bench: BenchmarkSpec,
    /// Cells in request order: scheme-major, machine-minor.
    pub cells: Vec<SweepCell>,
    /// Training machine (the server's, uniform across jobs so the
    /// context cache coalesces maximally).
    pub train_cfg: MachineConfig,
    /// Per-job execution budget, measured from admission; `None` means
    /// unbounded. Not part of the content key.
    pub deadline: Option<Duration>,
    /// Stream rows starting at this cursor (rows before it are the
    /// client's from a previous connection). Not part of the content
    /// key.
    pub resume_from: u64,
}

/// Resolves a machine tag the same way `mgtool` spells them.
pub fn machine_by_tag(tag: &str) -> Option<MachineConfig> {
    match tag.trim().to_ascii_lowercase().as_str() {
        "baseline" | "base" | "4way" => Some(MachineConfig::baseline()),
        "reduced" | "red" | "3way" => Some(MachineConfig::reduced()),
        "2way" => Some(MachineConfig::two_way()),
        "8way" => Some(MachineConfig::eight_way()),
        "dmem4" => Some(MachineConfig::reduced_dmem4()),
        _ => None,
    }
}

impl JobSpec {
    /// Validates a request against the server's training machine.
    /// Every failure is a typed reject naming what was wrong.
    pub fn from_request(
        req: &Request,
        train_cfg: &MachineConfig,
    ) -> Result<JobSpec, (ErrorCode, String)> {
        let mut bench = mg_workloads::benchmark(&req.bench).ok_or_else(|| {
            (
                ErrorCode::UnknownBench,
                format!("unknown benchmark {:?}", req.bench),
            )
        })?;
        if let Some(dyn_target) = req.target_dyn {
            let (lo, hi) = TARGET_DYN_RANGE;
            if dyn_target < lo || dyn_target > hi {
                return Err((
                    ErrorCode::BadRequest,
                    format!("target_dyn {dyn_target} outside [{lo}, {hi}]"),
                ));
            }
            bench.params.target_dyn = dyn_target as usize;
        }
        if req.schemes.is_empty() || req.machines.is_empty() {
            return Err((
                ErrorCode::BadRequest,
                "schemes and machines must be non-empty".to_string(),
            ));
        }
        let schemes: Vec<Scheme> = req
            .schemes
            .iter()
            .map(|name| {
                Scheme::from_name(name)
                    .ok_or_else(|| (ErrorCode::UnknownScheme, format!("unknown scheme {name:?}")))
            })
            .collect::<Result<_, _>>()?;
        let machines: Vec<MachineConfig> = req
            .machines
            .iter()
            .map(|tag| {
                machine_by_tag(tag).ok_or_else(|| {
                    (
                        ErrorCode::UnknownMachine,
                        format!("unknown machine tag {tag:?}"),
                    )
                })
            })
            .collect::<Result<_, _>>()?;
        let cells: Vec<SweepCell> = schemes
            .iter()
            .flat_map(|&s| machines.iter().map(move |m| SweepCell::new(s, m)))
            .collect();
        if cells.len() > MAX_CELLS {
            return Err((
                ErrorCode::BadRequest,
                format!("{} cells exceeds the {MAX_CELLS}-cell cap", cells.len()),
            ));
        }
        if req.deadline_ms == Some(0) {
            return Err((
                ErrorCode::BadRequest,
                "deadline_ms must be positive (omit it for no deadline)".to_string(),
            ));
        }
        let resume_from = req.resume_from.unwrap_or(0);
        if resume_from > cells.len() as u64 {
            return Err((
                ErrorCode::BadRequest,
                format!(
                    "resume_from {resume_from} exceeds the job's {} cells",
                    cells.len()
                ),
            ));
        }
        Ok(JobSpec {
            bench,
            cells,
            train_cfg: train_cfg.clone(),
            deadline: req.deadline_ms.map(Duration::from_millis),
            resume_from,
        })
    }

    /// The job's content key — bit-compatible with the journal row key
    /// of the equivalent CLI sweep (same bench, same cells, same
    /// training machine, primary inputs).
    pub fn content_key(&self) -> u64 {
        let repr = journal::sweep_repr(
            &self.train_cfg,
            &InputSel::Primary,
            &InputSel::Primary,
            &self.cells,
        );
        journal::row_key(&self.bench, &repr)
    }

    /// Per-cell journal keys for crash recovery: the job's content key
    /// salted with the cell index. Cells are journaled one record each
    /// (a daemon killed mid-job loses at most the cell in flight), and
    /// because the salt includes [`JobSpec::content_key`], a record can
    /// never replay into a different job's cell grid.
    pub fn cell_keys(&self) -> Vec<u64> {
        let key = self.content_key();
        (0..self.cells.len())
            .map(|i| stable_hash64(format!("{key:016x}|cell{i}").as_bytes()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_request() -> Request {
        Request {
            id: "j".into(),
            bench: mg_workloads::suite()[0].name.clone(),
            schemes: vec!["Struct-All".into(), "slack-dynamic".into()],
            machines: vec!["reduced".into(), "8way".into()],
            target_dyn: Some(2_000),
            deadline_ms: None,
            resume_from: None,
        }
    }

    #[test]
    fn valid_request_builds_a_scheme_major_grid() {
        let red = MachineConfig::reduced();
        let job = JobSpec::from_request(&demo_request(), &red).unwrap();
        assert_eq!(job.cells.len(), 4);
        assert_eq!(job.cells[0].scheme, Scheme::StructAll);
        assert_eq!(job.cells[1].scheme, Scheme::StructAll);
        assert_eq!(job.cells[2].scheme, Scheme::SlackDynamic);
        assert_eq!(job.cells[0].machine.fetch_width, red.fetch_width);
        assert_eq!(job.bench.params.target_dyn, 2_000, "override applied");
    }

    #[test]
    fn unknown_names_yield_their_specific_codes() {
        let red = MachineConfig::reduced();
        let mut r = demo_request();
        r.bench = "no_such_bench".into();
        assert_eq!(
            JobSpec::from_request(&r, &red).unwrap_err().0,
            ErrorCode::UnknownBench
        );
        let mut r = demo_request();
        r.schemes[1] = "warp-drive".into();
        assert_eq!(
            JobSpec::from_request(&r, &red).unwrap_err().0,
            ErrorCode::UnknownScheme
        );
        let mut r = demo_request();
        r.machines[0] = "5way".into();
        assert_eq!(
            JobSpec::from_request(&r, &red).unwrap_err().0,
            ErrorCode::UnknownMachine
        );
        let mut r = demo_request();
        r.schemes.clear();
        assert_eq!(
            JobSpec::from_request(&r, &red).unwrap_err().0,
            ErrorCode::BadRequest
        );
        let mut r = demo_request();
        r.target_dyn = Some(10);
        assert_eq!(
            JobSpec::from_request(&r, &red).unwrap_err().0,
            ErrorCode::BadRequest
        );
    }

    #[test]
    fn content_key_tracks_what_changes_results() {
        let red = MachineConfig::reduced();
        let base = JobSpec::from_request(&demo_request(), &red).unwrap();
        let same = JobSpec::from_request(&demo_request(), &red).unwrap();
        assert_eq!(base.content_key(), same.content_key(), "key is stable");

        let mut r = demo_request();
        r.target_dyn = Some(4_000);
        let bigger = JobSpec::from_request(&r, &red).unwrap();
        assert_ne!(base.content_key(), bigger.content_key());

        let mut r = demo_request();
        r.machines.pop();
        let fewer = JobSpec::from_request(&r, &red).unwrap();
        assert_ne!(base.content_key(), fewer.content_key());

        // The id is the client's business, not the job's identity.
        let mut r = demo_request();
        r.id = "something-else".into();
        let renamed = JobSpec::from_request(&r, &red).unwrap();
        assert_eq!(base.content_key(), renamed.content_key());

        // Deadlines and resume cursors describe the session, not the
        // work: same key, so resumed/budgeted requests still coalesce.
        let mut r = demo_request();
        r.deadline_ms = Some(5_000);
        r.resume_from = Some(2);
        let budgeted = JobSpec::from_request(&r, &red).unwrap();
        assert_eq!(base.content_key(), budgeted.content_key());
        assert_eq!(budgeted.deadline, Some(Duration::from_millis(5_000)));
        assert_eq!(budgeted.resume_from, 2);
    }

    #[test]
    fn deadline_and_resume_bounds_are_validated() {
        let red = MachineConfig::reduced();
        let mut r = demo_request();
        r.deadline_ms = Some(0);
        assert_eq!(
            JobSpec::from_request(&r, &red).unwrap_err().0,
            ErrorCode::BadRequest
        );
        let mut r = demo_request();
        r.resume_from = Some(5); // the demo grid has 4 cells
        assert_eq!(
            JobSpec::from_request(&r, &red).unwrap_err().0,
            ErrorCode::BadRequest
        );
        let mut r = demo_request();
        r.resume_from = Some(4); // == cells: nothing left to stream, but legal
        assert_eq!(JobSpec::from_request(&r, &red).unwrap().resume_from, 4);
    }

    #[test]
    fn cell_keys_are_distinct_and_job_scoped() {
        let red = MachineConfig::reduced();
        let job = JobSpec::from_request(&demo_request(), &red).unwrap();
        let keys = job.cell_keys();
        assert_eq!(keys.len(), job.cells.len());
        let mut uniq = keys.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), keys.len(), "cell keys are distinct");
        let mut r = demo_request();
        r.target_dyn = Some(4_000);
        let other = JobSpec::from_request(&r, &red).unwrap();
        assert_ne!(keys[0], other.cell_keys()[0], "keys are job-scoped");
    }
}
