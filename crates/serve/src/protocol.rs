//! The `mg-serve` wire protocol: line-delimited JSON with versioned
//! envelopes.
//!
//! Every message is one JSON object on one `\n`-terminated line.
//! Requests and replies are wrapped in envelopes carrying a
//! `schema_version`, following the same convention as the
//! [`mg_bench::save_json`] results [`mg_bench::Envelope`]; a version
//! mismatch is a typed reject, never a silent misparse.
//!
//! Conversation shape, per connection:
//!
//! 1. Server sends [`Reply::Hello`] (protocol version + machine
//!    fingerprint, so a client can refuse to mix results across
//!    machine families).
//! 2. Client sends any number of [`RequestBody`] messages: a
//!    [`RequestBody::Job`] names a benchmark and a scheme × machine
//!    cell grid; a [`RequestBody::Stats`] asks for the server's live
//!    telemetry. Requests are independent; a client may pipeline them.
//! 3. For each job the server replies [`Reply::Accepted`] (with the
//!    job's content key), then streams one [`Reply::Row`] or
//!    [`Reply::CellError`] per cell *as it commits*, then
//!    [`Reply::Done`] — or a single [`Reply::Rejected`] with a typed
//!    [`ErrorCode`] if the request never became a job. A `Stats`
//!    request gets a single [`Reply::Stats`] carrying a
//!    [`mg_obs::TelemetrySnapshot`] — the same numbers the
//!    `/metrics` Prometheus listener renders.
//!
//! Replies for different in-flight requests may interleave; every reply
//! carries the client-chosen request `id` so streams can be
//! demultiplexed.

use mg_bench::{BenchError, SchemeRun};
use mg_obs::TelemetrySnapshot;
use serde::{Deserialize, Serialize};

/// Version of the wire protocol. Bump on any change to the envelope or
/// message shapes; mismatched requests are rejected with
/// [`ErrorCode::WrongVersion`].
///
/// History: v1 carried a bare job as the envelope's `request`; v2
/// introduced the [`RequestBody`] verb enum (`Job` / `Stats`) and the
/// [`Reply::Stats`] telemetry reply; v3 added fault-tolerance fields —
/// per-job `deadline_ms` and `resume_from` on [`Request`], a monotonic
/// `cursor` on [`Reply::Row`] / [`Reply::CellError`], `retry_after_ms`
/// on [`Reply::Rejected`], and the [`ErrorCode::DeadlineExceeded`] /
/// [`ErrorCode::Overloaded`] reject codes.
pub const PROTOCOL_VERSION: u32 = 3;

/// Default cap on one request line, in bytes. Longer lines are rejected
/// with [`ErrorCode::OverLong`] — a whole job description is a few
/// hundred bytes, so anything larger is a confused or hostile client.
pub const DEFAULT_MAX_LINE_BYTES: usize = 64 * 1024;

/// A client request wrapped in its versioned envelope.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RequestEnvelope {
    /// Must equal [`PROTOCOL_VERSION`].
    pub schema_version: u32,
    /// The request verb and its payload.
    pub request: RequestBody,
}

/// Every message a client can send.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum RequestBody {
    /// Submit a benchmark job (the v1 request shape).
    Job(Request),
    /// Ask for the server's live telemetry snapshot; answered with a
    /// single [`Reply::Stats`].
    Stats {
        /// Client-chosen identifier echoed on the reply.
        id: String,
    },
}

/// One job: a benchmark swept over a scheme × machine cell grid.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Request {
    /// Client-chosen identifier echoed on every reply for this job.
    pub id: String,
    /// Benchmark name (see `mg_workloads::suite`), e.g. `mib_sha`.
    pub bench: String,
    /// Scheme names ([`mg_bench::Scheme::from_name`], case-insensitive
    /// paper spellings like `Slack-Dynamic`). Cells are ordered
    /// scheme-major: every machine of scheme 0, then scheme 1, …
    pub schemes: Vec<String>,
    /// Machine tags: `baseline`/`base`/`4way`, `reduced`/`red`/`3way`,
    /// `2way`, `8way`, `dmem4`.
    pub machines: Vec<String>,
    /// Dynamic-instruction target override; `null` keeps the
    /// benchmark's default. Changing it changes the job's content key.
    pub target_dyn: Option<u64>,
    /// Optional per-job deadline, measured from admission. A job still
    /// queued past its deadline is rejected with
    /// [`ErrorCode::DeadlineExceeded`] instead of burning a worker; a
    /// job expiring mid-run reports its remaining cells as timed-out
    /// cell errors. Deliberately *not* part of the job's content key:
    /// the same work under a different budget is still the same work.
    pub deadline_ms: Option<u64>,
    /// Resume cursor: skip the first `resume_from` rows of the stream.
    /// A client that reconnects after a drop sets this to the number of
    /// rows it already holds and replays only the missing tail (rows
    /// are content-keyed and committed in deterministic order, so the
    /// replayed tail is bit-identical). Also excluded from the content
    /// key. `null` means `0`.
    pub resume_from: Option<u64>,
}

/// A server reply wrapped in its versioned envelope.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ReplyEnvelope {
    /// Equals [`PROTOCOL_VERSION`].
    pub schema_version: u32,
    /// The reply payload.
    pub reply: Reply,
}

/// Every message the server sends.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum Reply {
    /// First line on every connection.
    Hello {
        /// Wire protocol version this server speaks.
        protocol: u32,
        /// [`mg_bench::machine_fingerprint`] of the serving machine.
        fingerprint: String,
    },
    /// The request was validated and registered (or coalesced onto an
    /// identical in-flight/finished job). If the job subsequently fails
    /// admission — queue full, server draining — a [`Reply::Rejected`]
    /// follows and supersedes this.
    Accepted {
        /// Echo of the request id.
        id: String,
        /// Content key of the job (hex), shared with the sweep journal
        /// — see `mg_bench::journal`'s *Key derivation*.
        key: String,
        /// Number of cells the job will stream.
        cells: u64,
    },
    /// One finished cell.
    Row {
        /// Echo of the request id.
        id: String,
        /// Cell index in the request's scheme-major order.
        cell: u64,
        /// Monotonic position of this row in the job's commit-order
        /// stream (0-based). A resuming client passes the next cursor
        /// it has not seen as `resume_from`.
        cursor: u64,
        /// The condensed run, bit-identical to a batch-mode sweep.
        run: SchemeRun,
    },
    /// One failed cell (the job continues; failures are data).
    CellError {
        /// Echo of the request id.
        id: String,
        /// Cell index in the request's scheme-major order.
        cell: u64,
        /// Monotonic stream position, exactly as on [`Reply::Row`]
        /// (errors are data and replay like rows).
        cursor: u64,
        /// What felled the cell.
        error: BenchError,
    },
    /// The job finished; every cell has been streamed.
    Done {
        /// Echo of the request id.
        id: String,
        /// Cells streamed (rows + cell errors).
        cells: u64,
        /// Whether this request was served by coalescing onto another
        /// request's execution (in-flight or already finished) instead
        /// of running itself.
        dedup: bool,
    },
    /// The request was refused; nothing was or will be executed for it.
    Rejected {
        /// Echo of the request id (empty if the request never parsed).
        id: String,
        /// Typed reason.
        code: ErrorCode,
        /// Human-readable detail.
        detail: String,
        /// For retryable rejects ([`ErrorCode::Overloaded`],
        /// [`ErrorCode::QueueFull`]): how long a well-behaved client
        /// should back off before resubmitting, derived from the
        /// server's recent queue-wait p99. `null` when retrying is
        /// pointless or the server has no estimate.
        retry_after_ms: Option<u64>,
    },
    /// Answer to a [`RequestBody::Stats`] request: the server's live
    /// telemetry, as of this reply.
    Stats {
        /// Echo of the request id.
        id: String,
        /// Current queue depth (jobs admitted but not yet claimed by a
        /// worker).
        queue_depth: u64,
        /// Size of the worker pool.
        workers: u64,
        /// Snapshot of the server's global telemetry registry — the
        /// same registry the `/metrics` Prometheus listener renders,
        /// so the two views always agree up to scrape timing.
        telemetry: TelemetrySnapshot,
    },
}

/// Typed rejection reasons.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ErrorCode {
    /// The line was not a valid request envelope.
    Malformed,
    /// The envelope's `schema_version` is not [`PROTOCOL_VERSION`].
    WrongVersion,
    /// The line exceeded the server's size cap.
    OverLong,
    /// The job queue is at capacity; retry later.
    QueueFull,
    /// Unknown benchmark name.
    UnknownBench,
    /// Unknown scheme name.
    UnknownScheme,
    /// Unknown machine tag.
    UnknownMachine,
    /// The request is structurally valid but describes no runnable job
    /// (empty grids, out-of-range `target_dyn`, too many cells).
    BadRequest,
    /// The server is draining and admits no new jobs.
    ShuttingDown,
    /// The job sat queued past its `deadline_ms`; it was dropped
    /// without burning a worker. Resubmitting starts a fresh budget.
    DeadlineExceeded,
    /// Admission control shed the job: queue depth or recent queue-wait
    /// p99 is over the configured threshold. Retry after the reply's
    /// `retry_after_ms`.
    Overloaded,
}

/// Renders one reply as a wire line (newline included).
pub fn reply_line(reply: Reply) -> String {
    let envelope = ReplyEnvelope {
        schema_version: PROTOCOL_VERSION,
        reply,
    };
    let mut line = serde_json::to_string(&envelope).expect("replies always serialize");
    line.push('\n');
    line
}

/// Renders one job request as a wire line (newline included).
pub fn request_line(request: &Request) -> String {
    body_line(&RequestBody::Job(request.clone()))
}

/// Renders a stats request as a wire line (newline included).
pub fn stats_line(id: &str) -> String {
    body_line(&RequestBody::Stats { id: id.to_string() })
}

/// Renders any request body as a wire line (newline included).
pub fn body_line(body: &RequestBody) -> String {
    let envelope = RequestEnvelope {
        schema_version: PROTOCOL_VERSION,
        request: body.clone(),
    };
    let mut line = serde_json::to_string(&envelope).expect("requests always serialize");
    line.push('\n');
    line
}

/// Just the version field of an envelope — probed before the body is
/// parsed, so a client speaking an older protocol (whose body shape no
/// longer parses) still gets the accurate [`ErrorCode::WrongVersion`]
/// instead of [`ErrorCode::Malformed`].
#[derive(Deserialize)]
struct VersionProbe {
    schema_version: u32,
}

/// Parses one request line: the version gate first (anything without a
/// parseable `schema_version` is [`ErrorCode::Malformed`]), then the
/// body.
pub fn decode_request(line: &str) -> Result<RequestBody, (ErrorCode, String)> {
    let probe: VersionProbe = serde_json::from_str(line)
        .map_err(|e| (ErrorCode::Malformed, format!("request does not parse: {e}")))?;
    if probe.schema_version != PROTOCOL_VERSION {
        return Err((
            ErrorCode::WrongVersion,
            format!(
                "protocol version {} is not {PROTOCOL_VERSION}",
                probe.schema_version
            ),
        ));
    }
    let envelope: RequestEnvelope = serde_json::from_str(line)
        .map_err(|e| (ErrorCode::Malformed, format!("request does not parse: {e}")))?;
    Ok(envelope.request)
}

/// Parses one reply line (the client side of [`reply_line`]).
pub fn decode_reply(line: &str) -> Result<Reply, String> {
    let envelope: ReplyEnvelope =
        serde_json::from_str(line).map_err(|e| format!("reply does not parse: {e}"))?;
    if envelope.schema_version != PROTOCOL_VERSION {
        return Err(format!(
            "reply protocol version {} is not {PROTOCOL_VERSION}",
            envelope.schema_version
        ));
    }
    Ok(envelope.reply)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_request() -> Request {
        Request {
            id: "job-1".into(),
            bench: "mib_sha".into(),
            schemes: vec!["Slack-Dynamic".into(), "no-minigraphs".into()],
            machines: vec!["reduced".into()],
            target_dyn: Some(2_000),
            deadline_ms: Some(30_000),
            resume_from: None,
        }
    }

    #[test]
    fn request_round_trips_through_the_wire_encoding() {
        let line = request_line(&demo_request());
        assert!(line.ends_with('\n'));
        let RequestBody::Job(back) = decode_request(line.trim_end()).unwrap() else {
            panic!("expected a Job body");
        };
        assert_eq!(back.id, "job-1");
        assert_eq!(back.schemes.len(), 2);
        assert_eq!(back.target_dyn, Some(2_000));
        assert_eq!(back.deadline_ms, Some(30_000));
        assert_eq!(back.resume_from, None);
    }

    #[test]
    fn stats_request_round_trips() {
        let line = stats_line("health-check");
        let RequestBody::Stats { id } = decode_request(line.trim_end()).unwrap() else {
            panic!("expected a Stats body");
        };
        assert_eq!(id, "health-check");
    }

    #[test]
    fn wrong_version_is_a_typed_reject() {
        let mut env = RequestEnvelope {
            schema_version: PROTOCOL_VERSION + 1,
            request: RequestBody::Job(demo_request()),
        };
        let line = serde_json::to_string(&env).unwrap();
        let (code, _) = decode_request(&line).unwrap_err();
        assert_eq!(code, ErrorCode::WrongVersion);
        env.schema_version = PROTOCOL_VERSION;
        let line = serde_json::to_string(&env).unwrap();
        assert!(decode_request(&line).is_ok());
    }

    #[test]
    fn v1_shaped_requests_get_wrong_version_not_malformed() {
        // A v1 client sends the bare job as `request`; the version
        // probe must flag the version before the body shape confuses
        // the diagnosis.
        let line = "{\"schema_version\":1,\"request\":{\"id\":\"old\",\"bench\":\"x\",\
                    \"schemes\":[],\"machines\":[],\"target_dyn\":null}}";
        let (code, detail) = decode_request(line).unwrap_err();
        assert_eq!(code, ErrorCode::WrongVersion, "{detail}");
    }

    #[test]
    fn v2_shaped_requests_get_wrong_version_not_malformed() {
        // A v2 job lacks the v3 deadline/resume fields; the version
        // probe must still diagnose the version, not the body shape.
        let line = "{\"schema_version\":2,\"request\":{\"Job\":{\"id\":\"old\",\
                    \"bench\":\"mib_sha\",\"schemes\":[\"no-minigraphs\"],\
                    \"machines\":[\"baseline\"],\"target_dyn\":null}}}";
        let (code, detail) = decode_request(line).unwrap_err();
        assert_eq!(code, ErrorCode::WrongVersion, "{detail}");
    }

    #[test]
    fn garbage_is_malformed() {
        let (code, _) = decode_request("not json at all").unwrap_err();
        assert_eq!(code, ErrorCode::Malformed);
        let (code, _) =
            decode_request(&format!("{{\"schema_version\":{PROTOCOL_VERSION}}}")).unwrap_err();
        assert_eq!(code, ErrorCode::Malformed, "missing request body");
    }

    #[test]
    fn replies_round_trip() {
        for reply in [
            Reply::Hello {
                protocol: PROTOCOL_VERSION,
                fingerprint: "fp".into(),
            },
            Reply::Done {
                id: "j".into(),
                cells: 3,
                dedup: true,
            },
            Reply::Rejected {
                id: String::new(),
                code: ErrorCode::QueueFull,
                detail: "cap 64".into(),
                retry_after_ms: Some(250),
            },
            Reply::Rejected {
                id: "late".into(),
                code: ErrorCode::DeadlineExceeded,
                detail: "queued 2000ms past deadline".into(),
                retry_after_ms: None,
            },
            Reply::CellError {
                id: "j".into(),
                cell: 4,
                cursor: 2,
                error: BenchError::Interrupted { bench: "b".into() },
            },
            Reply::Stats {
                id: "health".into(),
                queue_depth: 2,
                workers: 4,
                telemetry: TelemetrySnapshot::default(),
            },
        ] {
            let line = reply_line(reply.clone());
            let back = decode_reply(line.trim_end()).unwrap();
            assert_eq!(
                serde_json::to_string(&back).unwrap(),
                serde_json::to_string(&reply).unwrap()
            );
        }
    }
}
