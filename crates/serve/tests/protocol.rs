//! Wire-protocol coverage against a real in-process server: typed
//! rejects, admission control, coalescing, and disconnect resilience.
//!
//! The server's shutdown flag and the context cache are process-global,
//! so every test serializes on one lock and cleans the flag up around
//! itself.

use mg_serve::protocol::{Request, PROTOCOL_VERSION};
use mg_serve::{Client, ErrorCode, Reply, ServeConfig, ServeStats, Server};
use std::sync::{Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Duration;

static LOCK: Mutex<()> = Mutex::new(());

struct TestServer {
    addr: String,
    thread: Option<JoinHandle<ServeStats>>,
    _guard: MutexGuard<'static, ()>,
}

impl TestServer {
    fn start(cfg: ServeConfig) -> TestServer {
        let guard = LOCK.lock().unwrap_or_else(|poison| poison.into_inner());
        mg_bench::clear_shutdown();
        let server = Server::bind(cfg).expect("bind ephemeral port");
        let addr = server.local_addr().to_string();
        TestServer {
            addr,
            thread: Some(std::thread::spawn(move || server.run())),
            _guard: guard,
        }
    }

    fn stop(mut self) -> ServeStats {
        mg_bench::request_shutdown();
        let stats = self
            .thread
            .take()
            .expect("not yet stopped")
            .join()
            .expect("server thread");
        mg_bench::clear_shutdown();
        stats
    }
}

impl Drop for TestServer {
    fn drop(&mut self) {
        if let Some(thread) = self.thread.take() {
            mg_bench::request_shutdown();
            let _ = thread.join();
            mg_bench::clear_shutdown();
        }
    }
}

fn tiny_cfg() -> ServeConfig {
    ServeConfig {
        disk_cache: false,
        ..ServeConfig::default()
    }
}

/// A small real job; `target_dyn` varies per test so each test's
/// content key (and context-cache key) is its own.
fn request(id: &str, target_dyn: u64) -> Request {
    Request {
        id: id.to_string(),
        bench: mg_workloads::suite()[0].name.clone(),
        schemes: vec!["no-minigraphs".into(), "Struct-All".into()],
        machines: vec!["reduced".into()],
        target_dyn: Some(target_dyn),
        deadline_ms: None,
        resume_from: None,
    }
}

fn connect(addr: &str) -> Client {
    Client::connect_with_retry(addr, Duration::from_secs(10)).expect("connect")
}

#[test]
fn malformed_and_wrong_version_lines_get_typed_rejects() {
    let server = TestServer::start(tiny_cfg());
    let mut client = connect(&server.addr);

    client.send_raw("this is not json\n").unwrap();
    match client.read_reply().unwrap() {
        Reply::Rejected { code, .. } => assert_eq!(code, ErrorCode::Malformed),
        other => panic!("expected Malformed reject, got {other:?}"),
    }

    let versioned = format!(
        "{{\"schema_version\":{},\"request\":{{\"id\":\"v\",\"bench\":\"x\",\"schemes\":[\"Struct-All\"],\"machines\":[\"reduced\"],\"target_dyn\":null}}}}\n",
        PROTOCOL_VERSION + 7
    );
    client.send_raw(&versioned).unwrap();
    match client.read_reply().unwrap() {
        Reply::Rejected { code, .. } => assert_eq!(code, ErrorCode::WrongVersion),
        other => panic!("expected WrongVersion reject, got {other:?}"),
    }

    // Unknown names are rejected with their specific codes and the
    // request's own id.
    let mut bad = request("bad-bench", 2_100);
    bad.bench = "no_such_bench".into();
    client.submit(&bad).unwrap();
    match client.read_reply().unwrap() {
        Reply::Rejected { id, code, .. } => {
            assert_eq!(code, ErrorCode::UnknownBench);
            assert_eq!(id, "bad-bench");
        }
        other => panic!("expected UnknownBench reject, got {other:?}"),
    }
    server.stop();
}

#[test]
fn overlong_lines_reject_without_killing_the_connection() {
    let cfg = ServeConfig {
        max_line_bytes: 1024,
        workers: 0,
        ..tiny_cfg()
    };
    let server = TestServer::start(cfg);
    let mut client = connect(&server.addr);

    let long = format!("{}\n", "x".repeat(5_000));
    client.send_raw(&long).unwrap();
    match client.read_reply().unwrap() {
        Reply::Rejected { code, .. } => assert_eq!(code, ErrorCode::OverLong),
        other => panic!("expected OverLong reject, got {other:?}"),
    }

    // The connection survives and still validates the next line.
    let mut bad = request("after-overlong", 2_200);
    bad.schemes = vec!["warp-drive".into()];
    client.submit(&bad).unwrap();
    match client.read_reply().unwrap() {
        Reply::Rejected { code, .. } => assert_eq!(code, ErrorCode::UnknownScheme),
        other => panic!("expected UnknownScheme reject, got {other:?}"),
    }
    server.stop();
}

#[test]
fn full_queue_rejects_but_duplicates_still_coalesce() {
    // Admission-only server: jobs queue and never run, so the single
    // queue slot stays occupied for the whole test.
    let cfg = ServeConfig {
        workers: 0,
        queue_cap: 1,
        ..tiny_cfg()
    };
    let server = TestServer::start(cfg);
    let mut client = connect(&server.addr);

    // First job takes the only slot.
    client.submit(&request("first", 2_300)).unwrap();
    assert!(matches!(client.read_reply().unwrap(), Reply::Accepted { id, .. } if id == "first"));

    // A *different* job cannot be admitted: Accepted, then the typed
    // queue-full reject supersedes it.
    client.submit(&request("second", 2_400)).unwrap();
    assert!(matches!(client.read_reply().unwrap(), Reply::Accepted { id, .. } if id == "second"));
    match client.read_reply().unwrap() {
        Reply::Rejected { id, code, .. } => {
            assert_eq!(code, ErrorCode::QueueFull);
            assert_eq!(id, "second");
        }
        other => panic!("expected QueueFull reject, got {other:?}"),
    }

    // An *identical* job (same content, new id) needs no queue slot: it
    // coalesces onto the queued one and is NOT rejected.
    client.submit(&request("first-again", 2_300)).unwrap();
    assert!(
        matches!(client.read_reply().unwrap(), Reply::Accepted { id, .. } if id == "first-again")
    );

    // Drain: the queued job never ran, so both its subscriptions are
    // refused in typed form.
    mg_bench::request_shutdown();
    let mut codes = Vec::new();
    for _ in 0..2 {
        match client.read_reply().unwrap() {
            Reply::Rejected { id, code, .. } => codes.push((id, code)),
            other => panic!("expected ShuttingDown rejects, got {other:?}"),
        }
    }
    codes.sort_by(|a, b| a.0.cmp(&b.0));
    assert_eq!(
        codes,
        vec![
            ("first".to_string(), ErrorCode::ShuttingDown),
            ("first-again".to_string(), ErrorCode::ShuttingDown),
        ]
    );
    let stats = server.stop();
    assert_eq!(stats.store.coalesced, 1);
    assert_eq!(stats.store.completed, 0);
}

#[test]
fn identical_requests_coalesce_onto_one_execution() {
    let server = TestServer::start(tiny_cfg());
    let before = mg_bench::cache::counters();

    let addr_a = server.addr.clone();
    let addr_b = server.addr.clone();
    let a =
        std::thread::spawn(move || connect(&addr_a).run_job(&request("twin-a", 2_500)).unwrap());
    let b =
        std::thread::spawn(move || connect(&addr_b).run_job(&request("twin-b", 2_500)).unwrap());
    let out_a = a.join().expect("client a");
    let out_b = b.join().expect("client b");

    for out in [&out_a, &out_b] {
        assert!(out.completed(), "rejected: {:?}", out.rejected);
        assert_eq!(out.rows.len(), 2, "both schemes streamed");
        assert!(out.rows.iter().all(|(_, r)| r.is_ok()));
    }
    // Same content key, same rows, byte for byte.
    let render = |out: &mg_serve::JobOutcome| {
        let mut rows: Vec<String> = out
            .rows
            .iter()
            .map(|(cell, run)| {
                format!(
                    "{cell}:{}",
                    serde_json::to_string(run.as_ref().unwrap()).unwrap()
                )
            })
            .collect();
        rows.sort();
        rows
    };
    assert_eq!(render(&out_a), render(&out_b));
    assert_eq!(
        u32::from(out_a.dedup) + u32::from(out_b.dedup),
        1,
        "exactly one of the twins owned the execution"
    );

    // The context cache saw exactly one build for this key: the twin
    // was served without touching the simulator.
    let delta = mg_bench::cache::counters().since(&before);
    assert_eq!(delta.misses, 1, "one fresh context build");
    assert_eq!(delta.total(), 1, "and no second context request at all");

    let stats = server.stop();
    assert_eq!(stats.store.completed, 1, "one execution served both");
    assert_eq!(stats.store.coalesced + stats.store.replayed, 1);
}

#[test]
fn mid_stream_disconnect_does_not_poison_the_pool() {
    let server = TestServer::start(tiny_cfg());

    // Client A submits and vanishes without reading a single reply.
    {
        let mut a = connect(&server.addr);
        a.submit(&request("ghost", 2_600)).unwrap();
    }

    // Client B asks for the same content and must get everything,
    // whether it joins the in-flight run or replays the finished one.
    let mut b = connect(&server.addr);
    let same = b.run_job(&request("same-as-ghost", 2_600)).unwrap();
    assert!(same.completed(), "rejected: {:?}", same.rejected);
    assert_eq!(same.rows.len(), 2);
    assert!(same.rows.iter().all(|(_, r)| r.is_ok()));

    // And the pool still serves fresh work afterwards.
    let fresh = b.run_job(&request("fresh", 2_700)).unwrap();
    assert!(fresh.completed(), "rejected: {:?}", fresh.rejected);
    assert!(!fresh.dedup, "a new content key runs for real");

    let stats = server.stop();
    assert!(stats.store.completed >= 2);
    server_stats_sane(&stats);
}

#[test]
fn queued_jobs_past_their_deadline_get_typed_rejects() {
    // One worker: a slow job occupies it while a tight-deadline job
    // waits in the queue past its budget.
    let cfg = ServeConfig {
        workers: 1,
        ..tiny_cfg()
    };
    let server = TestServer::start(cfg);

    // Client A owns the worker with a slow job and holds its stream.
    let mut a = connect(&server.addr);
    a.submit(&request("slow", 60_000)).unwrap();
    assert!(matches!(a.read_reply().unwrap(), Reply::Accepted { id, .. } if id == "slow"));

    // Client B's job can only wait — and its 1ms deadline expires in
    // the queue, so the claiming worker drops it with a typed reject.
    let mut b = connect(&server.addr);
    let mut hurried = request("hurried", 2_800);
    hurried.deadline_ms = Some(1);
    b.submit(&hurried).unwrap();
    let out = b.collect("hurried").unwrap();
    match &out.rejected {
        Some((ErrorCode::DeadlineExceeded, detail)) => {
            assert!(detail.contains("deadline"), "{detail}")
        }
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }

    // The slow job itself is unaffected.
    let slow = a.collect("slow").unwrap();
    assert!(slow.completed(), "rejected: {:?}", slow.rejected);
    server.stop();
}

#[test]
fn depth_shedding_rejects_owners_but_never_dedup_traffic() {
    // Admission-only server shedding at depth 1: the first job takes
    // the queue to the threshold, so the next *distinct* job is shed.
    let cfg = ServeConfig {
        workers: 0,
        shed_depth: Some(1),
        shed_retry_after: Duration::from_millis(75),
        ..tiny_cfg()
    };
    let server = TestServer::start(cfg);
    let mut client = connect(&server.addr);

    client.submit(&request("first", 2_900)).unwrap();
    assert!(matches!(client.read_reply().unwrap(), Reply::Accepted { id, .. } if id == "first"));

    client.submit(&request("shed-me", 3_000)).unwrap();
    assert!(matches!(client.read_reply().unwrap(), Reply::Accepted { id, .. } if id == "shed-me"));
    match client.read_reply().unwrap() {
        Reply::Rejected {
            id,
            code,
            retry_after_ms,
            ..
        } => {
            assert_eq!(id, "shed-me");
            assert_eq!(code, ErrorCode::Overloaded);
            assert!(
                retry_after_ms.unwrap_or(0) >= 75,
                "hint carries the configured floor: {retry_after_ms:?}"
            );
        }
        other => panic!("expected Overloaded reject, got {other:?}"),
    }

    // Identical content coalesces without touching the queue, so it is
    // admitted even while the shed is refusing new work.
    client.submit(&request("first-twin", 2_900)).unwrap();
    assert!(
        matches!(client.read_reply().unwrap(), Reply::Accepted { id, .. } if id == "first-twin")
    );

    mg_bench::request_shutdown();
    for _ in 0..2 {
        match client.read_reply().unwrap() {
            Reply::Rejected { code, .. } => assert_eq!(code, ErrorCode::ShuttingDown),
            other => panic!("expected drain rejects, got {other:?}"),
        }
    }
    server.stop();
}

#[test]
fn resumed_requests_replay_only_the_missing_rows() {
    let server = TestServer::start(tiny_cfg());

    // Full run first: two cells, cursors 0 and 1.
    let mut a = connect(&server.addr);
    let full = a.run_job(&request("orig", 3_300)).unwrap();
    assert!(full.completed(), "rejected: {:?}", full.rejected);
    assert_eq!(full.rows.len(), 2);
    assert_eq!(full.next_cursor, 2);

    // A client that already holds cursor 0 resumes from 1 and gets
    // exactly the tail.
    let mut resumed = request("resumer", 3_300);
    resumed.resume_from = Some(1);
    let mut b = connect(&server.addr);
    let tail = b.run_job(&resumed).unwrap();
    assert!(tail.completed(), "rejected: {:?}", tail.rejected);
    assert!(tail.dedup, "resume replays the finished execution");
    assert_eq!(tail.rows.len(), 1, "only the missing row is replayed");
    assert_eq!(tail.next_cursor, 2);
    assert_eq!(tail.rows[0].0, full.rows[1].0, "same cell index");
    assert_eq!(
        serde_json::to_string(tail.rows[0].1.as_ref().unwrap()).unwrap(),
        serde_json::to_string(full.rows[1].1.as_ref().unwrap()).unwrap(),
        "the replayed tail is bit-identical to the original stream"
    );

    // Resuming from one past the end streams nothing but still Done.
    let mut nothing = request("caught-up", 3_300);
    nothing.resume_from = Some(2);
    let none = b.run_job(&nothing).unwrap();
    assert!(none.completed());
    assert_eq!(none.rows.len(), 0);
    server.stop();
}

#[test]
fn journal_recovery_serves_cells_without_rerunning_them() {
    let journal_dir = std::env::temp_dir().join(format!(
        "mg-serve-test-journal-{}-{:x}",
        std::process::id(),
        mg_bench::cache::stable_hash64(b"journal_recovery_test")
    ));
    let _ = std::fs::remove_dir_all(&journal_dir);
    let cfg = ServeConfig {
        journal_dir: Some(journal_dir.clone()),
        ..tiny_cfg()
    };

    // First daemon lifetime: run the job, journaling each cell.
    let server = TestServer::start(cfg.clone());
    let addr = server.addr.clone();
    let first = connect(&addr)
        .run_job(&request("before-crash", 3_400))
        .unwrap();
    assert!(first.completed(), "rejected: {:?}", first.rejected);
    server.stop();

    // Second daemon lifetime on the same journal dir: its in-memory
    // store is empty (no coalesce/replay possible), so the identical
    // job runs again — but every cell comes back from the journal.
    let before = mg_obs::telemetry::snapshot();
    let server = TestServer::start(cfg);
    let second = connect(&server.addr)
        .run_job(&request("after-crash", 3_400))
        .unwrap();
    assert!(second.completed(), "rejected: {:?}", second.rejected);
    assert!(!second.dedup, "the restarted store has no entry to replay");
    let after = mg_obs::telemetry::snapshot();
    assert_eq!(
        after.counter(mg_serve::metrics::CELLS_RECOVERED)
            - before.counter(mg_serve::metrics::CELLS_RECOVERED),
        first.rows.len() as u64,
        "every cell was served from the journal"
    );
    assert!(
        after.counter(mg_serve::metrics::JOBS_RECOVERED)
            > before.counter(mg_serve::metrics::JOBS_RECOVERED)
    );

    // And the recovered rows are bit-identical to the original run.
    let render = |rows: &[(u64, Result<mg_bench::SchemeRun, mg_bench::BenchError>)]| {
        let mut out: Vec<String> = rows
            .iter()
            .map(|(cell, run)| match run {
                Ok(r) => format!("{cell}:ok:{}", serde_json::to_string(r).unwrap()),
                Err(e) => format!("{cell}:err:{}", serde_json::to_string(e).unwrap()),
            })
            .collect();
        out.sort();
        out
    };
    assert_eq!(render(&first.rows), render(&second.rows));

    server.stop();
    let _ = std::fs::remove_dir_all(&journal_dir);
}

fn server_stats_sane(stats: &ServeStats) {
    assert!(stats.connections >= 1);
    assert!(stats.store.submitted >= stats.store.completed);
}
