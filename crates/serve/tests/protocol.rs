//! Wire-protocol coverage against a real in-process server: typed
//! rejects, admission control, coalescing, and disconnect resilience.
//!
//! The server's shutdown flag and the context cache are process-global,
//! so every test serializes on one lock and cleans the flag up around
//! itself.

use mg_serve::protocol::{Request, PROTOCOL_VERSION};
use mg_serve::{Client, ErrorCode, Reply, ServeConfig, ServeStats, Server};
use std::sync::{Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Duration;

static LOCK: Mutex<()> = Mutex::new(());

struct TestServer {
    addr: String,
    thread: Option<JoinHandle<ServeStats>>,
    _guard: MutexGuard<'static, ()>,
}

impl TestServer {
    fn start(cfg: ServeConfig) -> TestServer {
        let guard = LOCK.lock().unwrap_or_else(|poison| poison.into_inner());
        mg_bench::clear_shutdown();
        let server = Server::bind(cfg).expect("bind ephemeral port");
        let addr = server.local_addr().to_string();
        TestServer {
            addr,
            thread: Some(std::thread::spawn(move || server.run())),
            _guard: guard,
        }
    }

    fn stop(mut self) -> ServeStats {
        mg_bench::request_shutdown();
        let stats = self
            .thread
            .take()
            .expect("not yet stopped")
            .join()
            .expect("server thread");
        mg_bench::clear_shutdown();
        stats
    }
}

impl Drop for TestServer {
    fn drop(&mut self) {
        if let Some(thread) = self.thread.take() {
            mg_bench::request_shutdown();
            let _ = thread.join();
            mg_bench::clear_shutdown();
        }
    }
}

fn tiny_cfg() -> ServeConfig {
    ServeConfig {
        disk_cache: false,
        ..ServeConfig::default()
    }
}

/// A small real job; `target_dyn` varies per test so each test's
/// content key (and context-cache key) is its own.
fn request(id: &str, target_dyn: u64) -> Request {
    Request {
        id: id.to_string(),
        bench: mg_workloads::suite()[0].name.clone(),
        schemes: vec!["no-minigraphs".into(), "Struct-All".into()],
        machines: vec!["reduced".into()],
        target_dyn: Some(target_dyn),
    }
}

fn connect(addr: &str) -> Client {
    Client::connect_with_retry(addr, Duration::from_secs(10)).expect("connect")
}

#[test]
fn malformed_and_wrong_version_lines_get_typed_rejects() {
    let server = TestServer::start(tiny_cfg());
    let mut client = connect(&server.addr);

    client.send_raw("this is not json\n").unwrap();
    match client.read_reply().unwrap() {
        Reply::Rejected { code, .. } => assert_eq!(code, ErrorCode::Malformed),
        other => panic!("expected Malformed reject, got {other:?}"),
    }

    let versioned = format!(
        "{{\"schema_version\":{},\"request\":{{\"id\":\"v\",\"bench\":\"x\",\"schemes\":[\"Struct-All\"],\"machines\":[\"reduced\"],\"target_dyn\":null}}}}\n",
        PROTOCOL_VERSION + 7
    );
    client.send_raw(&versioned).unwrap();
    match client.read_reply().unwrap() {
        Reply::Rejected { code, .. } => assert_eq!(code, ErrorCode::WrongVersion),
        other => panic!("expected WrongVersion reject, got {other:?}"),
    }

    // Unknown names are rejected with their specific codes and the
    // request's own id.
    let mut bad = request("bad-bench", 2_100);
    bad.bench = "no_such_bench".into();
    client.submit(&bad).unwrap();
    match client.read_reply().unwrap() {
        Reply::Rejected { id, code, .. } => {
            assert_eq!(code, ErrorCode::UnknownBench);
            assert_eq!(id, "bad-bench");
        }
        other => panic!("expected UnknownBench reject, got {other:?}"),
    }
    server.stop();
}

#[test]
fn overlong_lines_reject_without_killing_the_connection() {
    let cfg = ServeConfig {
        max_line_bytes: 1024,
        workers: 0,
        ..tiny_cfg()
    };
    let server = TestServer::start(cfg);
    let mut client = connect(&server.addr);

    let long = format!("{}\n", "x".repeat(5_000));
    client.send_raw(&long).unwrap();
    match client.read_reply().unwrap() {
        Reply::Rejected { code, .. } => assert_eq!(code, ErrorCode::OverLong),
        other => panic!("expected OverLong reject, got {other:?}"),
    }

    // The connection survives and still validates the next line.
    let mut bad = request("after-overlong", 2_200);
    bad.schemes = vec!["warp-drive".into()];
    client.submit(&bad).unwrap();
    match client.read_reply().unwrap() {
        Reply::Rejected { code, .. } => assert_eq!(code, ErrorCode::UnknownScheme),
        other => panic!("expected UnknownScheme reject, got {other:?}"),
    }
    server.stop();
}

#[test]
fn full_queue_rejects_but_duplicates_still_coalesce() {
    // Admission-only server: jobs queue and never run, so the single
    // queue slot stays occupied for the whole test.
    let cfg = ServeConfig {
        workers: 0,
        queue_cap: 1,
        ..tiny_cfg()
    };
    let server = TestServer::start(cfg);
    let mut client = connect(&server.addr);

    // First job takes the only slot.
    client.submit(&request("first", 2_300)).unwrap();
    assert!(matches!(client.read_reply().unwrap(), Reply::Accepted { id, .. } if id == "first"));

    // A *different* job cannot be admitted: Accepted, then the typed
    // queue-full reject supersedes it.
    client.submit(&request("second", 2_400)).unwrap();
    assert!(matches!(client.read_reply().unwrap(), Reply::Accepted { id, .. } if id == "second"));
    match client.read_reply().unwrap() {
        Reply::Rejected { id, code, .. } => {
            assert_eq!(code, ErrorCode::QueueFull);
            assert_eq!(id, "second");
        }
        other => panic!("expected QueueFull reject, got {other:?}"),
    }

    // An *identical* job (same content, new id) needs no queue slot: it
    // coalesces onto the queued one and is NOT rejected.
    client.submit(&request("first-again", 2_300)).unwrap();
    assert!(
        matches!(client.read_reply().unwrap(), Reply::Accepted { id, .. } if id == "first-again")
    );

    // Drain: the queued job never ran, so both its subscriptions are
    // refused in typed form.
    mg_bench::request_shutdown();
    let mut codes = Vec::new();
    for _ in 0..2 {
        match client.read_reply().unwrap() {
            Reply::Rejected { id, code, .. } => codes.push((id, code)),
            other => panic!("expected ShuttingDown rejects, got {other:?}"),
        }
    }
    codes.sort_by(|a, b| a.0.cmp(&b.0));
    assert_eq!(
        codes,
        vec![
            ("first".to_string(), ErrorCode::ShuttingDown),
            ("first-again".to_string(), ErrorCode::ShuttingDown),
        ]
    );
    let stats = server.stop();
    assert_eq!(stats.store.coalesced, 1);
    assert_eq!(stats.store.completed, 0);
}

#[test]
fn identical_requests_coalesce_onto_one_execution() {
    let server = TestServer::start(tiny_cfg());
    let before = mg_bench::cache::counters();

    let addr_a = server.addr.clone();
    let addr_b = server.addr.clone();
    let a =
        std::thread::spawn(move || connect(&addr_a).run_job(&request("twin-a", 2_500)).unwrap());
    let b =
        std::thread::spawn(move || connect(&addr_b).run_job(&request("twin-b", 2_500)).unwrap());
    let out_a = a.join().expect("client a");
    let out_b = b.join().expect("client b");

    for out in [&out_a, &out_b] {
        assert!(out.completed(), "rejected: {:?}", out.rejected);
        assert_eq!(out.rows.len(), 2, "both schemes streamed");
        assert!(out.rows.iter().all(|(_, r)| r.is_ok()));
    }
    // Same content key, same rows, byte for byte.
    let render = |out: &mg_serve::JobOutcome| {
        let mut rows: Vec<String> = out
            .rows
            .iter()
            .map(|(cell, run)| {
                format!(
                    "{cell}:{}",
                    serde_json::to_string(run.as_ref().unwrap()).unwrap()
                )
            })
            .collect();
        rows.sort();
        rows
    };
    assert_eq!(render(&out_a), render(&out_b));
    assert_eq!(
        u32::from(out_a.dedup) + u32::from(out_b.dedup),
        1,
        "exactly one of the twins owned the execution"
    );

    // The context cache saw exactly one build for this key: the twin
    // was served without touching the simulator.
    let delta = mg_bench::cache::counters().since(&before);
    assert_eq!(delta.misses, 1, "one fresh context build");
    assert_eq!(delta.total(), 1, "and no second context request at all");

    let stats = server.stop();
    assert_eq!(stats.store.completed, 1, "one execution served both");
    assert_eq!(stats.store.coalesced + stats.store.replayed, 1);
}

#[test]
fn mid_stream_disconnect_does_not_poison_the_pool() {
    let server = TestServer::start(tiny_cfg());

    // Client A submits and vanishes without reading a single reply.
    {
        let mut a = connect(&server.addr);
        a.submit(&request("ghost", 2_600)).unwrap();
    }

    // Client B asks for the same content and must get everything,
    // whether it joins the in-flight run or replays the finished one.
    let mut b = connect(&server.addr);
    let same = b.run_job(&request("same-as-ghost", 2_600)).unwrap();
    assert!(same.completed(), "rejected: {:?}", same.rejected);
    assert_eq!(same.rows.len(), 2);
    assert!(same.rows.iter().all(|(_, r)| r.is_ok()));

    // And the pool still serves fresh work afterwards.
    let fresh = b.run_job(&request("fresh", 2_700)).unwrap();
    assert!(fresh.completed(), "rejected: {:?}", fresh.rejected);
    assert!(!fresh.dedup, "a new content key runs for real");

    let stats = server.stop();
    assert!(stats.store.completed >= 2);
    server_stats_sane(&stats);
}

fn server_stats_sane(stats: &ServeStats) {
    assert!(stats.connections >= 1);
    assert!(stats.store.submitted >= stats.store.completed);
}
