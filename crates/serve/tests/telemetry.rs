//! End-to-end telemetry agreement: after a smoke sweep through a real
//! in-process server, the Prometheus `/metrics` scrape and the
//! in-protocol `Stats` verb must both match what the clients counted —
//! `Done` replies, dedup flags, executions, and committed rows.
//!
//! The registry is process-global, so everything is asserted on deltas
//! against a snapshot taken before the sweep.

use mg_serve::metrics::{self, MetricsServer};
use mg_serve::protocol::Request;
use mg_serve::{Client, ServeConfig, Server};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

fn request(id: &str, target_dyn: u64) -> Request {
    Request {
        id: id.to_string(),
        bench: mg_workloads::suite()[0].name.clone(),
        schemes: vec!["no-minigraphs".into(), "Struct-All".into()],
        machines: vec!["reduced".into()],
        target_dyn: Some(target_dyn),
        deadline_ms: None,
        resume_from: None,
    }
}

fn scrape(addr: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect metrics");
    stream
        .write_all(b"GET /metrics HTTP/1.0\r\n\r\n")
        .expect("send scrape");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read scrape");
    let (head, body) = response.split_once("\r\n\r\n").expect("http response");
    assert!(head.contains("200"), "scrape failed: {head}");
    body.to_string()
}

fn prom_value(text: &str, series: &str) -> u64 {
    text.lines()
        .filter_map(|line| line.strip_prefix(series))
        .filter_map(|rest| rest.trim().parse::<f64>().ok())
        .map(|v| v as u64)
        .next()
        .unwrap_or(0)
}

#[test]
fn metrics_and_stats_agree_with_done_counts() {
    mg_bench::clear_shutdown();
    let server = Server::bind(ServeConfig {
        disk_cache: false,
        ..ServeConfig::default()
    })
    .expect("bind server");
    let addr = server.local_addr().to_string();
    let metrics_srv = MetricsServer::bind("127.0.0.1:0").expect("bind metrics");
    let metrics_addr = metrics_srv.local_addr().to_string();
    metrics_srv.spawn();
    let server_thread = std::thread::spawn(move || server.run());

    let before = mg_obs::telemetry::snapshot();

    // The smoke sweep: two distinct jobs plus one duplicate of the
    // first (same content, different id), each on its own connection.
    let mut outcomes = Vec::new();
    for (id, target) in [("smoke-a", 3_100), ("smoke-b", 3_200), ("smoke-a2", 3_100)] {
        let mut client =
            Client::connect_with_retry(&addr, Duration::from_secs(10)).expect("connect");
        outcomes.push(client.run_job(&request(id, target)).expect("run job"));
    }
    for out in &outcomes {
        assert!(out.completed(), "rejected: {:?}", out.rejected);
    }

    // What the clients observed, independently of the server.
    let done_seen = outcomes.len() as u64;
    let dedup_seen = outcomes.iter().filter(|o| o.dedup).count() as u64;
    let executions = outcomes.iter().filter(|o| !o.dedup).count() as u64;
    let rows_per_job = outcomes[0].rows.len() as u64;
    assert!(dedup_seen >= 1, "the duplicate request was served by dedup");

    // View 1: the Prometheus scrape.
    let text = scrape(&metrics_addr);
    let delta = |name: &str| prom_value(&text, &format!("{name} ")) - before.counter(name);
    assert_eq!(delta(metrics::DONE_REPLIES), done_seen);
    assert_eq!(delta(metrics::DEDUP_REPLIES), dedup_seen);
    assert_eq!(delta(metrics::JOBS_COMPLETED), executions);
    assert_eq!(delta(metrics::JOBS_SUBMITTED), done_seen);
    assert_eq!(
        delta(metrics::ROWS_COMMITTED),
        executions * rows_per_job,
        "rows are committed once per execution, not per subscriber"
    );
    assert!(
        text.contains(&format!("# TYPE {} counter", metrics::DONE_REPLIES)),
        "exposition declares metric types"
    );

    // View 2: the in-protocol Stats verb — same registry, same counts.
    let mut stats_client =
        Client::connect_with_retry(&addr, Duration::from_secs(10)).expect("connect for stats");
    let stats = stats_client.stats("telemetry-check").expect("stats verb");
    let sdelta = |name: &str| stats.telemetry.counter(name) - before.counter(name);
    assert_eq!(sdelta(metrics::DONE_REPLIES), done_seen);
    assert_eq!(sdelta(metrics::DEDUP_REPLIES), dedup_seen);
    assert_eq!(sdelta(metrics::JOBS_COMPLETED), executions);
    assert_eq!(stats.queue_depth, 0, "nothing left queued after the sweep");
    assert!(stats.workers >= 1);

    mg_bench::request_shutdown();
    let _ = server_thread.join();
    mg_bench::clear_shutdown();
}
