//! Process-level signal behavior of the real daemon binary: a first
//! SIGTERM drains gracefully (in-flight work finishes or is refused in
//! typed form, exit 0), a second one aborts immediately with the
//! conventional `128 + signo` code.
//!
//! These run `mg-serve` itself (via `CARGO_BIN_EXE_mg-serve`), not an
//! in-process server, because the behavior under test — SignalWatch's
//! two-stage handler and the process exit codes — only exists in the
//! binary.

use mg_serve::protocol::Request;
use mg_serve::{Client, ErrorCode, Reply};
use std::io::{BufRead, BufReader};
use std::process::{Child, Command, ExitStatus, Stdio};
use std::time::{Duration, Instant};

/// Spawns the daemon on an ephemeral port and returns it with the
/// bound address parsed from its startup banner.
fn spawn_daemon(extra: &[&str]) -> (Child, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_mg-serve"))
        .args(["--addr", "127.0.0.1:0", "--no-disk-cache"])
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn mg-serve");
    let stdout = child.stdout.take().expect("daemon stdout");
    let mut lines = BufReader::new(stdout).lines();
    let banner = lines.next().expect("startup banner").expect("banner io");
    let addr = banner
        .rsplit(' ')
        .next()
        .expect("address in banner")
        .to_string();
    // Keep draining stdout so the daemon never blocks on a full pipe.
    std::thread::spawn(move || for _line in lines.map_while(Result::ok) {});
    (child, addr)
}

fn signal(child: &Child, sig: &str) {
    let status = Command::new("kill")
        .args([sig, &child.id().to_string()])
        .status()
        .expect("run kill");
    assert!(status.success(), "kill {sig} failed");
}

fn wait_timeout(child: &mut Child, timeout: Duration) -> Option<ExitStatus> {
    let start = Instant::now();
    loop {
        if let Some(status) = child.try_wait().expect("try_wait") {
            return Some(status);
        }
        if start.elapsed() > timeout {
            return None;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn request(id: &str, target_dyn: u64) -> Request {
    Request {
        id: id.to_string(),
        bench: mg_workloads::suite()[0].name.clone(),
        schemes: vec!["no-minigraphs".into(), "Struct-All".into()],
        machines: vec!["reduced".into()],
        target_dyn: Some(target_dyn),
        deadline_ms: None,
        resume_from: None,
    }
}

#[test]
fn first_signal_drains_gracefully_under_load() {
    let (mut child, addr) = spawn_daemon(&[]);
    let mut client = Client::connect_with_retry(&addr, Duration::from_secs(10)).expect("connect");
    client.submit(&request("drain-load", 200_000)).unwrap();
    assert!(matches!(
        client.read_reply().unwrap(),
        Reply::Accepted { .. }
    ));

    signal(&child, "-TERM");

    // The in-flight stream must end in typed form — completed rows or
    // a ShuttingDown reject — never a hang or a silent close.
    let outcome = client.collect("drain-load").expect("typed stream end");
    match &outcome.rejected {
        Some((code, _)) => assert_eq!(*code, ErrorCode::ShuttingDown),
        None => assert_eq!(outcome.rows.len(), 2, "both cells streamed"),
    }

    let status = wait_timeout(&mut child, Duration::from_secs(60)).expect("daemon exited");
    assert_eq!(status.code(), Some(0), "graceful drain exits 0");
}

#[test]
fn second_signal_aborts_immediately_with_the_conventional_code() {
    // One worker and a heavy job (6 cells at a 5M-instruction target)
    // so the graceful drain genuinely has work to wait on when the
    // second signal lands.
    let (mut child, addr) = spawn_daemon(&["--workers", "1"]);
    let mut client = Client::connect_with_retry(&addr, Duration::from_secs(10)).expect("connect");
    let mut heavy = request("heavy", 5_000_000);
    heavy.schemes = vec![
        "no-minigraphs".into(),
        "Struct-All".into(),
        "Slack-Dynamic".into(),
    ];
    heavy.machines = vec!["reduced".into(), "8way".into()];
    client.submit(&heavy).unwrap();
    assert!(matches!(
        client.read_reply().unwrap(),
        Reply::Accepted { .. }
    ));

    signal(&child, "-TERM");
    std::thread::sleep(Duration::from_millis(300));
    signal(&child, "-TERM");

    let status = wait_timeout(&mut child, Duration::from_secs(10)).expect("daemon aborted");
    assert_eq!(status.code(), Some(143), "exit code is 128 + SIGTERM(15)");
}
