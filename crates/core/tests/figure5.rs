//! Replication of the paper's Figure 5 walk-through: the four
//! Slack-Profile rules applied to the mini-graph "BDE" with hand-set
//! profile values.
//!
//! Singleton schedule (block-relative): B issues at 2 (its input, from A,
//! is ready at 2); C's value is ready at 6; D issues at 6 (waits for C);
//! E issues at 7. Forming BDE forces the aggregate to wait for the
//! serializing input (rule #1: `Issue_MG(B) = max(2, 6) = 6`), chain D
//! and E behind it (rule #2: 7, 8), delaying E by 1 cycle (rule #3).
//! With zero local slack on E, the candidate degrades and is rejected
//! (rule #4); with enough slack it is accepted.

use mg_core::candidate::{enumerate, SelectionConfig};
use mg_core::select::{delay_model, slack_profile_admits, SlackProfileModel, SpKind};
use mg_isa::{Instruction, Program, ProgramBuilder, Reg, StaticId};
use mg_sim::{SlackProfile, StaticProfile};

/// Block: B (pos 0), D (pos 1), E (pos 2), F (store, consumer of E).
fn figure5_program() -> Program {
    let mut pb = ProgramBuilder::new("fig5");
    let f = pb.func("main");
    let b = pb.block(f);
    // r1 = A's value (external), r2 = C's value (external, late).
    pb.push(b, Instruction::addi(Reg::R3, Reg::R1, 1)); // B
    pb.push(b, Instruction::add(Reg::R4, Reg::R3, Reg::R2)); // D
    pb.push(b, Instruction::addi(Reg::R5, Reg::R4, 1)); // E
    pb.push(b, Instruction::store(Reg::R10, Reg::R5, 0)); // F
    pb.push(b, Instruction::halt());
    pb.build().unwrap()
}

fn figure5_profile(program: &Program, e_slack: f64) -> SlackProfile {
    let mut profile = SlackProfile::empty(program);
    let set = |p: &mut SlackProfile, id: u32, rec: StaticProfile| {
        p.per_static[StaticId(id).index()] = rec;
    };
    let rec = |issue, s0, s1, out, slack| StaticProfile {
        count: 100,
        issue_rel: issue,
        src_ready_rel: [s0, s1],
        out_ready_rel: out,
        local_slack: slack,
        avg_latency: 1.0,
    };
    set(&mut profile, 0, rec(2.0, 2.0, 0.0, 3.0, 3.0)); // B: slack 3 (paper)
    set(&mut profile, 1, rec(6.0, 3.0, 6.0, 7.0, 0.0)); // D
    set(&mut profile, 2, rec(7.0, 7.0, 0.0, 8.0, e_slack)); // E
    set(&mut profile, 3, rec(8.0, 8.0, 8.0, 9.0, 64.0)); // F (store)
    profile
}

fn bde(program: &Program) -> mg_core::Candidate {
    enumerate(program, &SelectionConfig::default())
        .into_iter()
        .find(|c| c.positions == vec![0, 1, 2])
        .expect("BDE candidate exists")
}

#[test]
fn rules_one_to_three_match_the_paper() {
    let program = figure5_program();
    let candidate = bde(&program);
    assert!(candidate.shape.potentially_serializing());
    let profile = figure5_profile(&program, 0.0);
    let dm = delay_model(&program, &candidate, &profile);
    // Rule #1: the aggregate waits for C's value.
    assert_eq!(dm.issue_mg[0], 6.0);
    // Rule #2: serial chaining.
    assert_eq!(dm.issue_mg[1], 7.0);
    assert_eq!(dm.issue_mg[2], 8.0);
    // Rule #3: B delayed 4, D delayed 1, E delayed 1 — the paper's
    // figure: E's delay is 1 cycle.
    assert_eq!(dm.delay[0], 4.0);
    assert_eq!(dm.delay[1], 1.0);
    assert_eq!(dm.delay[2], 1.0);
}

#[test]
fn rule_four_rejects_on_zero_slack_and_accepts_with_slack() {
    let program = figure5_program();
    let candidate = bde(&program);
    let model = SlackProfileModel::default();
    // E has local slack 0: its 1-cycle delay propagates to F -> reject.
    let tight = figure5_profile(&program, 0.0);
    assert!(!slack_profile_admits(&program, &candidate, &tight, &model));
    // With 2 cycles of slack on E the delay is absorbed -> accept.
    let loose = figure5_profile(&program, 2.0);
    assert!(slack_profile_admits(&program, &candidate, &loose, &model));
}

#[test]
fn delay_only_variant_ignores_slack() {
    let program = figure5_program();
    let candidate = bde(&program);
    let model = SlackProfileModel {
        kind: SpKind::DelayOnly,
        ..SlackProfileModel::default()
    };
    // Even with slack, the output is delayed -> Slack-Profile-Delay
    // rejects (it generates a strictly smaller pool, as in §5.2).
    let loose = figure5_profile(&program, 2.0);
    assert!(!slack_profile_admits(&program, &candidate, &loose, &model));
}

#[test]
fn sial_variant_keys_on_arrival_order() {
    let program = figure5_program();
    let candidate = bde(&program);
    let model = SlackProfileModel {
        kind: SpKind::Sial,
        ..SlackProfileModel::default()
    };
    // Serializing input (C at 6) arrives after A's (2): SIAL rejects.
    let profile = figure5_profile(&program, 2.0);
    assert!(!slack_profile_admits(
        &program, &candidate, &profile, &model
    ));
    // If C's value were ready *before* A's, SIAL accepts.
    let mut early_c = figure5_profile(&program, 2.0);
    early_c.per_static[1].src_ready_rel[1] = 1.0; // C ready at 1
    assert!(slack_profile_admits(&program, &candidate, &early_c, &model));
}
