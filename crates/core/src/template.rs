//! MGT templates: grouping structurally identical candidates.
//!
//! Candidates from different static locations share one mini-graph table
//! entry when their *templates* match: same constituent operations (with
//! immediates — the MGT stores literal operation descriptions) and the
//! same internal dataflow. Register names are immaterial: external inputs
//! are positional in the handle encoding.

use crate::candidate::{CandSrc, Candidate};
use mg_isa::{BasicBlock, Opcode, Program};
use serde::{Deserialize, Serialize};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

/// A canonical template signature.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct TemplateSig {
    ops: Vec<(OpcodeKey, i64)>,
    links: Vec<[CandSrc; 2]>,
    output_pos: Option<u8>,
}

/// Opcode identity for hashing (branch conditions matter).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
struct OpcodeKey(Opcode);

impl TemplateSig {
    /// Computes the signature of a candidate.
    pub fn of(candidate: &Candidate, block: &BasicBlock) -> TemplateSig {
        let ops = candidate
            .positions
            .iter()
            .map(|&p| {
                let inst = &block.insts[p];
                (OpcodeKey(inst.op), inst.imm)
            })
            .collect();
        TemplateSig {
            ops,
            links: candidate.shape.srcs.clone(),
            output_pos: candidate.shape.output_pos,
        }
    }

    /// A short stable hash, for display.
    pub fn short_hash(&self) -> u64 {
        let mut h = DefaultHasher::new();
        self.hash(&mut h);
        h.finish()
    }
}

/// Candidates grouped into a template.
#[derive(Clone, Debug)]
pub struct Template {
    /// The shared signature.
    pub sig: TemplateSig,
    /// Indices into the candidate pool.
    pub members: Vec<usize>,
}

/// Groups a candidate pool by template signature. Order is deterministic
/// (by first member).
pub fn group_templates(program: &Program, pool: &[Candidate]) -> Vec<Template> {
    let mut by_sig: HashMap<TemplateSig, Vec<usize>> = HashMap::new();
    for (i, cand) in pool.iter().enumerate() {
        let sig = TemplateSig::of(cand, program.block(cand.block));
        by_sig.entry(sig).or_default().push(i);
    }
    let mut templates: Vec<Template> = by_sig
        .into_iter()
        .map(|(sig, members)| Template { sig, members })
        .collect();
    templates.sort_by_key(|t| t.members[0]);
    templates
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidate::{enumerate, SelectionConfig};
    use mg_isa::{BrCond, Instruction, ProgramBuilder, Reg};

    #[test]
    fn identical_shapes_share_a_template() {
        // Two blocks with the same addi/xori pair on different registers.
        let mut pb = ProgramBuilder::new("t");
        let f = pb.func("main");
        let b0 = pb.block(f);
        let b1 = pb.block(f);
        let b2 = pb.block(f);
        pb.push(b0, Instruction::addi(Reg::R1, Reg::R10, 7));
        pb.push(
            b0,
            Instruction::alu_ri(mg_isa::Opcode::XorI, Reg::R2, Reg::R1, 9),
        );
        pb.push(b0, Instruction::store(Reg::R20, Reg::R2, 0));
        pb.set_fallthrough(b0, b1);
        pb.push(b1, Instruction::addi(Reg::R3, Reg::R11, 7));
        pb.push(
            b1,
            Instruction::alu_ri(mg_isa::Opcode::XorI, Reg::R4, Reg::R3, 9),
        );
        pb.push(b1, Instruction::store(Reg::R21, Reg::R4, 0));
        pb.set_fallthrough(b1, b2);
        pb.push(b2, Instruction::halt());
        let p = pb.build().unwrap();
        let pool = enumerate(&p, &SelectionConfig::default());
        let pairs: Vec<&Candidate> = pool.iter().filter(|c| c.positions == vec![0, 1]).collect();
        assert_eq!(pairs.len(), 2);
        let templates = group_templates(&p, &pool);
        let t = templates
            .iter()
            .find(|t| t.members.len() == 2)
            .expect("the two pairs share one template");
        assert_eq!(t.members.len(), 2);
    }

    #[test]
    fn different_immediates_split_templates() {
        let mut pb = ProgramBuilder::new("t");
        let f = pb.func("main");
        let b0 = pb.block(f);
        let b1 = pb.block(f);
        let b2 = pb.block(f);
        pb.push(b0, Instruction::addi(Reg::R1, Reg::R10, 7));
        pb.push(b0, Instruction::store(Reg::R20, Reg::R1, 0));
        pb.set_fallthrough(b0, b1);
        pb.push(b1, Instruction::addi(Reg::R3, Reg::R11, 8)); // different imm
        pb.push(b1, Instruction::store(Reg::R21, Reg::R3, 0));
        pb.set_fallthrough(b1, b2);
        pb.push(b2, Instruction::halt());
        let p = pb.build().unwrap();
        let pool = enumerate(&p, &SelectionConfig::default());
        let templates = group_templates(&p, &pool);
        // No template groups candidates across the two blocks.
        for t in &templates {
            let blocks: std::collections::HashSet<u32> =
                t.members.iter().map(|&m| pool[m].block.0).collect();
            assert_eq!(blocks.len(), 1);
        }
    }

    #[test]
    fn branch_condition_is_part_of_identity() {
        let mut pb = ProgramBuilder::new("t");
        let f = pb.func("main");
        let b0 = pb.block(f);
        let b1 = pb.block(f);
        let b2 = pb.block(f);
        pb.push(b0, Instruction::addi(Reg::R1, Reg::R10, 1));
        pb.push(b0, Instruction::br(BrCond::Eq, Reg::R1, Reg::ZERO, b0));
        pb.set_fallthrough(b0, b1);
        pb.push(b1, Instruction::addi(Reg::R2, Reg::R11, 1));
        pb.push(b1, Instruction::br(BrCond::Ne, Reg::R2, Reg::ZERO, b1));
        pb.set_fallthrough(b1, b2);
        pb.push(b2, Instruction::halt());
        let p = pb.build().unwrap();
        let pool = enumerate(&p, &SelectionConfig::default());
        let templates = group_templates(&p, &pool);
        let pair_templates: Vec<&Template> = templates
            .iter()
            .filter(|t| pool[t.members[0]].len() == 2)
            .collect();
        assert!(pair_templates.len() >= 2, "beq and bne must not merge");
    }
}
