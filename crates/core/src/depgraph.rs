//! Intra-block dependence graphs for legality of rewriting.
//!
//! The mini-graph rewriter makes chosen candidates contiguous by
//! reordering block instructions; any reordering must preserve register
//! dependences (RAW, WAR, WAW), memory ordering (conservatively: stores
//! are ordered against all other memory operations, loads against
//! stores), and control placement (everything stays before the
//! terminator).

use mg_isa::reg::NUM_ARCH_REGS;
use mg_isa::BasicBlock;

/// Dependence edges between instructions of one block, by position.
#[derive(Clone, Debug)]
pub struct BlockDeps {
    preds: Vec<Vec<usize>>,
    succs: Vec<Vec<usize>>,
}

impl BlockDeps {
    /// Builds the dependence graph of a block.
    pub fn build(block: &BasicBlock) -> BlockDeps {
        let n = block.insts.len();
        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
        let add =
            |from: usize, to: usize, preds: &mut Vec<Vec<usize>>, succs: &mut Vec<Vec<usize>>| {
                debug_assert!(from < to);
                if !succs[from].contains(&to) {
                    succs[from].push(to);
                    preds[to].push(from);
                }
            };

        let mut last_def: [Option<usize>; NUM_ARCH_REGS] = [None; NUM_ARCH_REGS];
        let mut readers_since_def: Vec<Vec<usize>> = vec![Vec::new(); NUM_ARCH_REGS];
        let mut last_store: Option<usize> = None;
        let mut loads_since_store: Vec<usize> = Vec::new();

        for (i, inst) in block.insts.iter().enumerate() {
            // RAW edges + reader tracking.
            for r in inst.uses() {
                if let Some(d) = last_def[r.index()] {
                    add(d, i, &mut preds, &mut succs);
                }
                readers_since_def[r.index()].push(i);
            }
            // Calls/returns conservatively read everything.
            if mg_isa::dataflow::uses_all_regs(inst) {
                for (ri, d) in last_def.iter().enumerate() {
                    if let Some(d) = *d {
                        add(d, i, &mut preds, &mut succs);
                    }
                    readers_since_def[ri].push(i);
                }
            }
            // WAR + WAW edges on definition.
            if let Some(d) = inst.def() {
                for &r in &readers_since_def[d.index()] {
                    if r != i {
                        add(r, i, &mut preds, &mut succs);
                    }
                }
                if let Some(prev) = last_def[d.index()] {
                    add(prev, i, &mut preds, &mut succs);
                }
                last_def[d.index()] = Some(i);
                readers_since_def[d.index()].clear();
            }
            // Memory ordering.
            if inst.op.is_store() {
                if let Some(s) = last_store {
                    add(s, i, &mut preds, &mut succs);
                }
                for &l in &loads_since_store {
                    add(l, i, &mut preds, &mut succs);
                }
                last_store = Some(i);
                loads_since_store.clear();
            } else if inst.op.is_load() {
                if let Some(s) = last_store {
                    add(s, i, &mut preds, &mut succs);
                }
                loads_since_store.push(i);
            }
            // Control stays last: everything precedes it.
            if inst.op.is_control() {
                for j in 0..i {
                    add(j, i, &mut preds, &mut succs);
                }
            }
        }
        BlockDeps { preds, succs }
    }

    /// Direct predecessors (instructions that must stay before `i`).
    pub fn preds(&self, i: usize) -> &[usize] {
        &self.preds[i]
    }

    /// Direct successors (instructions that must stay after `i`).
    pub fn succs(&self, i: usize) -> &[usize] {
        &self.succs[i]
    }

    /// Number of instructions covered.
    pub fn len(&self) -> usize {
        self.preds.len()
    }

    /// Whether the block is empty.
    pub fn is_empty(&self) -> bool {
        self.preds.is_empty()
    }
}

/// Computes a dependence-preserving order of the block in which each
/// *group* (disjoint, ascending position sets) is contiguous; non-group
/// instructions keep their relative order as much as possible.
///
/// Returns `None` if the grouping is infeasible (a dependence cycle
/// between super-nodes).
pub fn schedule_with_groups(deps: &BlockDeps, groups: &[&[usize]]) -> Option<Vec<usize>> {
    let n = deps.len();
    // node id per instruction: group index (0..g) or g + position for
    // singletons.
    let g = groups.len();
    let mut node_of = vec![usize::MAX; n];
    for (gi, grp) in groups.iter().enumerate() {
        for &p in grp.iter() {
            debug_assert!(node_of[p] == usize::MAX, "groups must be disjoint");
            node_of[p] = gi;
        }
    }
    for (p, node) in node_of.iter_mut().enumerate() {
        if *node == usize::MAX {
            *node = g + p;
        }
    }
    let num_nodes = g + n; // singleton ids are sparse; fine
    let mut indeg = vec![0usize; num_nodes];
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); num_nodes];
    for p in 0..n {
        for &s in deps.succs(p) {
            let (a, b) = (node_of[p], node_of[s]);
            if a == b {
                continue;
            }
            succs[a].push(b);
        }
    }
    for list in succs.iter_mut() {
        list.sort_unstable();
        list.dedup();
    }
    for list in succs.iter() {
        for &b in list {
            indeg[b] += 1;
        }
    }
    // Kahn with a "smallest first position" tie-break for stability.
    let first_pos = |node: usize| -> usize {
        if node < g {
            groups[node][0]
        } else {
            node - g
        }
    };
    let mut ready: Vec<usize> = (0..num_nodes)
        .filter(|&nd| (nd < g || node_of[nd - g] == nd) && indeg[nd] == 0)
        .collect();
    let mut order = Vec::with_capacity(n);
    let mut emitted_nodes = 0usize;
    let total_nodes = g + (0..n).filter(|&p| node_of[p] >= g).count();
    while !ready.is_empty() {
        let (ri, &nd) = ready
            .iter()
            .enumerate()
            .min_by_key(|(_, &nd)| first_pos(nd))
            .unwrap();
        ready.swap_remove(ri);
        if nd < g {
            order.extend_from_slice(groups[nd]);
        } else {
            order.push(nd - g);
        }
        emitted_nodes += 1;
        for &s in &succs[nd] {
            indeg[s] -= 1;
            if indeg[s] == 0 {
                ready.push(s);
            }
        }
    }
    (emitted_nodes == total_nodes).then_some(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mg_isa::{BlockId, BrCond, Instruction, Reg};

    fn block_of(insts: Vec<Instruction>) -> BasicBlock {
        let mut b = BasicBlock::new();
        for i in insts {
            b.push(i);
        }
        b
    }

    #[test]
    fn raw_war_waw_edges() {
        let b = block_of(vec![
            Instruction::li(Reg::R1, 1),            // 0
            Instruction::addi(Reg::R2, Reg::R1, 1), // 1: RAW on 0
            Instruction::li(Reg::R1, 2),            // 2: WAW with 0, WAR with 1
            Instruction::addi(Reg::R3, Reg::R1, 1), // 3: RAW on 2
        ]);
        let d = BlockDeps::build(&b);
        assert!(d.succs(0).contains(&1));
        assert!(d.succs(0).contains(&2)); // WAW
        assert!(d.succs(1).contains(&2)); // WAR
        assert!(d.succs(2).contains(&3));
        assert!(!d.succs(1).contains(&3));
    }

    #[test]
    fn memory_edges_are_conservative() {
        let b = block_of(vec![
            Instruction::load(Reg::R1, Reg::R10, 0),   // 0
            Instruction::store(Reg::R10, Reg::R1, 8),  // 1: load->store + RAW
            Instruction::load(Reg::R2, Reg::R10, 16),  // 2: store->load
            Instruction::store(Reg::R10, Reg::R2, 24), // 3: store->store etc.
        ]);
        let d = BlockDeps::build(&b);
        assert!(d.succs(0).contains(&1));
        assert!(d.succs(1).contains(&2));
        assert!(d.succs(1).contains(&3));
        assert!(d.succs(2).contains(&3));
    }

    #[test]
    fn control_is_a_barrier() {
        let b = block_of(vec![
            Instruction::li(Reg::R1, 1),
            Instruction::br(BrCond::Eq, Reg::R2, Reg::ZERO, BlockId(0)),
        ]);
        let d = BlockDeps::build(&b);
        assert!(d.succs(0).contains(&1));
    }

    #[test]
    fn schedule_groups_contiguously() {
        // 0: r1 = r10+1
        // 1: r9 = r11+1 (independent)
        // 2: r2 = r1+1
        // Group {0,2}: 1 must move out of the middle.
        let b = block_of(vec![
            Instruction::addi(Reg::R1, Reg::R10, 1),
            Instruction::addi(Reg::R9, Reg::R11, 1),
            Instruction::addi(Reg::R2, Reg::R1, 1),
        ]);
        let d = BlockDeps::build(&b);
        let groups: Vec<&[usize]> = vec![&[0, 2]];
        let order = schedule_with_groups(&d, &groups).unwrap();
        let pos0 = order.iter().position(|&x| x == 0).unwrap();
        let pos2 = order.iter().position(|&x| x == 2).unwrap();
        assert_eq!(pos2, pos0 + 1, "group members contiguous: {order:?}");
        assert_eq!(order.len(), 3);
    }

    #[test]
    fn infeasible_grouping_detected() {
        // 0 -> 1 -> 2 chain; group {0,2} cannot be contiguous.
        let b = block_of(vec![
            Instruction::addi(Reg::R1, Reg::R10, 1),
            Instruction::addi(Reg::R2, Reg::R1, 1),
            Instruction::addi(Reg::R3, Reg::R2, 1),
        ]);
        let d = BlockDeps::build(&b);
        let groups: Vec<&[usize]> = vec![&[0, 2]];
        assert!(schedule_with_groups(&d, &groups).is_none());
    }

    #[test]
    fn cross_group_cycle_detected() {
        // 0: r1 = r10+1   (A)
        // 1: r2 = r1+1    (B: depends on A)
        // 2: r3 = r11+1   (B)
        // 3: r4 = r3+r2   wait simpler: A={0,3}, B={1,2} with 3 dep on 2.
        let b = block_of(vec![
            Instruction::addi(Reg::R1, Reg::R10, 1), // A
            Instruction::addi(Reg::R2, Reg::R1, 1),  // B (needs A)
            Instruction::addi(Reg::R3, Reg::R11, 1), // B
            Instruction::addi(Reg::R4, Reg::R3, 1),  // A (needs B)
        ]);
        let d = BlockDeps::build(&b);
        let a: &[usize] = &[0, 3];
        let bb: &[usize] = &[1, 2];
        assert!(schedule_with_groups(&d, &[a, bb]).is_none());
        // Each alone is fine.
        assert!(schedule_with_groups(&d, &[a]).is_some());
        assert!(schedule_with_groups(&d, &[bb]).is_some());
    }

    #[test]
    fn empty_and_singleton_groups() {
        let b = block_of(vec![Instruction::li(Reg::R1, 1)]);
        let d = BlockDeps::build(&b);
        assert_eq!(schedule_with_groups(&d, &[]).unwrap(), vec![0]);
    }
}
