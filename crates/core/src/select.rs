//! Mini-graph selectors and the greedy budgeted selection core (§2, §4).
//!
//! Every selector follows the same two-phase procedure the paper
//! describes: first the *starting pool* of candidates is filtered
//! according to the selector's serialization policy, then the shared
//! greedy algorithm picks templates by coverage score `(n−1)·f` under the
//! MGT budget, discounting overlaps.

use crate::candidate::{Candidate, SelectionConfig};
use crate::classify::{classify, Serialization};
use crate::depgraph::{schedule_with_groups, BlockDeps};
use crate::rewrite::ChosenInstance;
use crate::template::group_templates;
use mg_isa::{Program, StaticId};
use mg_sim::SlackProfile;
use serde::{Deserialize, Serialize};
use std::collections::{BinaryHeap, HashMap};

/// Variant of the Slack-Profile model (§5.2's component study).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum SpKind {
    /// Full model: rules #1–#4 (delay quantification + consumer slack).
    Full,
    /// `Slack-Profile-Delay`: rejects any delayed output, ignoring slack.
    DelayOnly,
    /// `Slack-Profile-SIAL`: the operand-arrival-order heuristic.
    Sial,
}

/// Parameters of the Slack-Profile model.
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub struct SlackProfileModel {
    /// Which variant of the model to apply.
    pub kind: SpKind,
    /// Comparison tolerance in cycles (profile values are averages).
    pub eps: f64,
    /// Use *observed* per-static execution latencies (which include real
    /// cache-miss time) instead of optimistic latencies in rule #2.
    ///
    /// The paper's Slack-Profile "uses optimistic execution latencies
    /// that do not account for cache misses, which plague mcf. Remedying
    /// this is left for future work" — this flag is that remedy.
    pub observed_latencies: bool,
}

impl Default for SlackProfileModel {
    fn default() -> SlackProfileModel {
        SlackProfileModel {
            kind: SpKind::Full,
            eps: 0.5,
            observed_latencies: false,
        }
    }
}

impl SlackProfileModel {
    /// The miss-aware extension of the full model.
    pub fn miss_aware() -> SlackProfileModel {
        SlackProfileModel {
            observed_latencies: true,
            ..SlackProfileModel::default()
        }
    }
}

/// A mini-graph selector: a policy for the starting candidate pool.
#[derive(Clone, Debug)]
pub enum Selector {
    /// Admit every candidate (maximal coverage, serialization-blind).
    StructAll,
    /// Reject every potentially-serializing candidate.
    StructNone,
    /// Reject only candidates with *unbounded* serialization (§4.2).
    StructBounded,
    /// Reject candidates whose profiled delay cannot be absorbed (§4.3).
    SlackProfile(SlackProfileModel, SlackProfile),
}

impl Selector {
    /// Short display name matching the paper.
    pub fn name(&self) -> &'static str {
        match self {
            Selector::StructAll => "Struct-All",
            Selector::StructNone => "Struct-None",
            Selector::StructBounded => "Struct-Bounded",
            Selector::SlackProfile(m, _) => match m.kind {
                SpKind::Full => "Slack-Profile",
                SpKind::DelayOnly => "Slack-Profile-Delay",
                SpKind::Sial => "Slack-Profile-SIAL",
            },
        }
    }

    /// Whether this selector admits `candidate`.
    pub fn admits(&self, program: &Program, candidate: &Candidate) -> bool {
        match self {
            Selector::StructAll => true,
            Selector::StructNone => !candidate.shape.potentially_serializing(),
            Selector::StructBounded => classify(&candidate.shape) != Serialization::Unbounded,
            Selector::SlackProfile(model, profile) => {
                slack_profile_admits(program, candidate, profile, model)
            }
        }
    }

    /// Filters a candidate pool.
    pub fn filter(&self, program: &Program, pool: Vec<Candidate>) -> Vec<Candidate> {
        pool.into_iter()
            .filter(|c| self.admits(program, c))
            .collect()
    }
}

/// The Slack-Profile delay model (Figure 5): per-candidate delays and the
/// degradation verdict.
#[derive(Clone, Debug, PartialEq)]
pub struct DelayModel {
    /// Mini-graph issue time of each constituent, block-relative.
    pub issue_mg: Vec<f64>,
    /// Induced delay per constituent (rule #3), clamped at 0.
    pub delay: Vec<f64>,
    /// Block-relative arrival of the latest serializing input, if any.
    pub ser_arrival: Option<f64>,
    /// Block-relative arrival floor of the first constituent
    /// (`max(Issue(0), inputs-to-first ready)`).
    pub first_floor: f64,
}

/// Evaluates rules #1–#3 for a candidate against a slack profile, using
/// optimistic constituent latencies (the paper's model).
pub fn delay_model(program: &Program, candidate: &Candidate, profile: &SlackProfile) -> DelayModel {
    delay_model_with(program, candidate, profile, false)
}

/// [`delay_model`], optionally chaining rule #2 with the *observed*
/// per-static latencies from the profile (miss-aware extension).
pub fn delay_model_with(
    program: &Program,
    candidate: &Candidate,
    profile: &SlackProfile,
    observed_latencies: bool,
) -> DelayModel {
    let ids: Vec<StaticId> = candidate
        .positions
        .iter()
        .map(|&p| program.id_of(candidate.block, p))
        .collect();
    let shape = &candidate.shape;

    // Ready time of each external input: taken from the profile record of
    // its earliest reader (operand ready times are per consumer slot).
    let mut ext_ready = vec![f64::NEG_INFINITY; shape.ext_inputs.len()];
    for (ci, links) in shape.srcs.iter().enumerate() {
        for (slot, link) in links.iter().enumerate() {
            if let crate::candidate::CandSrc::External(k) = link {
                let k = *k as usize;
                if ext_ready[k] == f64::NEG_INFINITY {
                    ext_ready[k] = profile.get(ids[ci]).src_ready_rel[slot];
                }
            }
        }
    }

    // Rule #1: external serialization.
    let issue0 = profile.get(ids[0]).issue_rel;
    let all_ready = ext_ready.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b));
    let first_floor = {
        let mut floor = issue0;
        for (k, &(_, pos)) in shape.ext_inputs.iter().enumerate() {
            if pos == 0 {
                floor = floor.max(ext_ready[k]);
            }
        }
        floor
    };
    let mut issue_mg = Vec::with_capacity(ids.len());
    issue_mg.push(issue0.max(all_ready));
    // Rule #2: internal serialization. Optimistic latencies come from the
    // shape's prefix (L1-hit loads); the miss-aware extension instead
    // uses each constituent's profiled average latency.
    for ci in 1..ids.len() {
        let prev_lat = if observed_latencies {
            let rec = profile.get(ids[ci - 1]);
            let optimistic = (shape.lat_prefix[ci] - shape.lat_prefix[ci - 1]) as f64;
            if rec.count > 0 {
                rec.avg_latency.max(optimistic)
            } else {
                optimistic
            }
        } else {
            (shape.lat_prefix[ci] - shape.lat_prefix[ci - 1]) as f64
        };
        let t = issue_mg[ci - 1] + prev_lat;
        issue_mg.push(t);
    }
    // Rule #3: instruction delay.
    let delay: Vec<f64> = ids
        .iter()
        .enumerate()
        .map(|(ci, id)| (issue_mg[ci] - profile.get(*id).issue_rel).max(0.0))
        .collect();

    let ser_arrival = shape
        .ext_inputs
        .iter()
        .enumerate()
        .filter(|(_, &(_, pos))| pos > 0)
        .map(|(k, _)| ext_ready[k])
        .fold(None, |acc: Option<f64>, v| {
            Some(acc.map_or(v, |a| a.max(v)))
        });

    DelayModel {
        issue_mg,
        delay,
        ser_arrival,
        first_floor,
    }
}

/// Whether Slack-Profile (or a variant) admits the candidate.
pub fn slack_profile_admits(
    program: &Program,
    candidate: &Candidate,
    profile: &SlackProfile,
    model: &SlackProfileModel,
) -> bool {
    // Candidates never executed in the profiled run carry no evidence of
    // harm; admit them (their score is zero anyway).
    let first_id = program.id_of(candidate.block, candidate.positions[0]);
    if !profile.executed(first_id) {
        return true;
    }
    let shape = &candidate.shape;
    let dm = delay_model_with(program, candidate, profile, model.observed_latencies);

    match model.kind {
        SpKind::Sial => {
            // Heuristic: reject when a serializing input arrives last.
            match dm.ser_arrival {
                Some(s) => s <= dm.first_floor + model.eps,
                None => true,
            }
        }
        SpKind::DelayOnly | SpKind::Full => {
            // Rule #4 over the candidate's outputs: register output,
            // store, and branch (the profiler provides slack for all).
            let mut out_positions: Vec<usize> = Vec::new();
            if let Some(p) = shape.output_pos {
                out_positions.push(p as usize);
            }
            if let Some((p, is_load)) = shape.mem {
                if !is_load {
                    out_positions.push(p as usize);
                }
            }
            if let Some(p) = shape.control {
                out_positions.push(p as usize);
            }
            if out_positions.is_empty() {
                // Nothing outside the graph can observe a delay.
                return true;
            }
            for p in out_positions {
                let d = dm.delay[p];
                match model.kind {
                    SpKind::DelayOnly => {
                        if d > model.eps {
                            return false;
                        }
                    }
                    SpKind::Full => {
                        let id = program.id_of(candidate.block, candidate.positions[p]);
                        let slack = profile.get(id).local_slack;
                        if d > slack + model.eps {
                            return false;
                        }
                    }
                    SpKind::Sial => unreachable!(),
                }
            }
            true
        }
    }
}

/// Result of greedy selection.
#[derive(Clone, Debug, Default)]
pub struct SelectionResult {
    /// The chosen instances with template assignments.
    pub chosen: Vec<ChosenInstance>,
    /// Number of distinct templates used (≤ budget).
    pub templates: usize,
    /// Estimated dynamic coverage: embedded dynamic instructions over
    /// total profiled dynamic instructions.
    pub est_coverage: f64,
}

/// Greedy budgeted template selection (§2 "Selection").
///
/// `freqs` are per-static dynamic execution counts from the profiling
/// run (see [`Trace::static_freqs`](mg_workloads::Trace::static_freqs)).
pub fn greedy_select(
    program: &Program,
    pool: &[Candidate],
    freqs: &[u64],
    cfg: &SelectionConfig,
) -> SelectionResult {
    let total_dyn: u64 = freqs.iter().sum();
    let templates = group_templates(program, pool);
    let freq_of = |c: &Candidate| -> u64 { freqs[program.id_of(c.block, c.positions[0]).index()] };
    let score_of_member = |c: &Candidate| -> u64 { (c.len() as u64 - 1) * freq_of(c) };

    // used[static index] = claimed by an instance.
    let mut used = vec![false; program.static_count()];
    let mut claims_per_block: HashMap<u32, Vec<usize>> = HashMap::new(); // pool indices
    let mut deps_cache: HashMap<u32, BlockDeps> = HashMap::new();

    // Lazy max-heap of (score, template index).
    let mut heap: BinaryHeap<(u64, usize)> = BinaryHeap::new();
    let template_score = |t: &crate::template::Template, used: &[bool]| -> u64 {
        t.members
            .iter()
            .filter(|&&m| {
                !pool[m]
                    .positions
                    .iter()
                    .any(|&p| used[program.id_of(pool[m].block, p).index()])
            })
            .map(|&m| score_of_member(&pool[m]))
            .sum()
    };
    for (ti, t) in templates.iter().enumerate() {
        let s = template_score(t, &used);
        if s > 0 {
            heap.push((s, ti));
        }
    }

    let mut chosen: Vec<ChosenInstance> = Vec::new();
    let mut next_template = 0u16;
    let mut embedded_dyn = 0u64;

    while let Some((score, ti)) = heap.pop() {
        if (next_template as usize) >= cfg.mgt_budget {
            break;
        }
        let current = template_score(&templates[ti], &used);
        if current == 0 {
            continue;
        }
        if current < score {
            heap.push((current, ti));
            continue;
        }
        // Claim the template: take each alive member whose positions are
        // free and whose addition keeps its block schedulable.
        let mut members: Vec<usize> = templates[ti]
            .members
            .iter()
            .copied()
            .filter(|&m| {
                !pool[m]
                    .positions
                    .iter()
                    .any(|&p| used[program.id_of(pool[m].block, p).index()])
            })
            .collect();
        members.sort_by_key(|&m| std::cmp::Reverse(score_of_member(&pool[m])));
        let mut claimed_any = false;
        for m in members {
            let cand = &pool[m];
            // Members of the same template may overlap each other.
            if cand
                .positions
                .iter()
                .any(|&p| used[program.id_of(cand.block, p).index()])
            {
                continue;
            }
            let block_claims = claims_per_block.entry(cand.block.0).or_default();
            let deps = deps_cache
                .entry(cand.block.0)
                .or_insert_with(|| BlockDeps::build(program.block(cand.block)));
            let mut groups: Vec<&[usize]> = block_claims
                .iter()
                .map(|&ci| pool[ci].positions.as_slice())
                .collect();
            groups.push(cand.positions.as_slice());
            if schedule_with_groups(deps, &groups).is_none() {
                continue;
            }
            // Claim.
            for &p in &cand.positions {
                used[program.id_of(cand.block, p).index()] = true;
            }
            block_claims.push(m);
            embedded_dyn += cand.len() as u64 * freq_of(cand);
            chosen.push(ChosenInstance {
                candidate: cand.clone(),
                template: next_template,
            });
            claimed_any = true;
        }
        if claimed_any {
            next_template += 1;
        }
    }

    SelectionResult {
        chosen,
        templates: next_template as usize,
        est_coverage: if total_dyn == 0 {
            0.0
        } else {
            embedded_dyn as f64 / total_dyn as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidate::enumerate;
    use mg_isa::{BrCond, Instruction, ProgramBuilder, Reg};
    use mg_workloads::Executor;

    /// A two-block loop: hot block with a chain, cold block with a chain.
    fn hot_cold_program() -> Program {
        let mut pb = ProgramBuilder::new("hc");
        let f = pb.func("main");
        let head = pb.block(f);
        let hot = pb.block(f);
        let cold = pb.block(f);
        let exit = pb.block(f);
        pb.push(head, Instruction::li(Reg::R1, 100));
        pb.set_fallthrough(head, hot);
        pb.push(hot, Instruction::addi(Reg::R2, Reg::R1, 1));
        pb.push(
            hot,
            Instruction::alu_ri(mg_isa::Opcode::XorI, Reg::R3, Reg::R2, 3),
        );
        pb.push(hot, Instruction::add(Reg::R4, Reg::R4, Reg::R3));
        pb.push(hot, Instruction::addi(Reg::R1, Reg::R1, -1));
        pb.push(hot, Instruction::br(BrCond::Ne, Reg::R1, Reg::ZERO, hot));
        pb.set_fallthrough(hot, cold);
        pb.push(cold, Instruction::addi(Reg::R5, Reg::R4, 7));
        pb.push(
            cold,
            Instruction::alu_ri(mg_isa::Opcode::ShlI, Reg::R6, Reg::R5, 2),
        );
        pb.push(cold, Instruction::store(Reg::R10, Reg::R6, 0));
        pb.set_fallthrough(cold, exit);
        pb.push(exit, Instruction::halt());
        pb.build().unwrap()
    }

    fn freqs_of(p: &Program) -> Vec<u64> {
        let (t, _) = Executor::new(p).run().unwrap();
        t.static_freqs(p)
    }

    #[test]
    fn struct_none_rejects_serializing_only() {
        let p = hot_cold_program();
        let pool = enumerate(&p, &SelectionConfig::default());
        let all = Selector::StructAll.filter(&p, pool.clone());
        let none = Selector::StructNone.filter(&p, pool.clone());
        assert!(all.len() > none.len());
        assert!(none.iter().all(|c| !c.shape.potentially_serializing()));
    }

    #[test]
    fn struct_bounded_sits_between() {
        let p = hot_cold_program();
        let pool = enumerate(&p, &SelectionConfig::default());
        let all = Selector::StructAll.filter(&p, pool.clone()).len();
        let bounded = Selector::StructBounded.filter(&p, pool.clone()).len();
        let none = Selector::StructNone.filter(&p, pool).len();
        assert!(none <= bounded && bounded <= all);
    }

    #[test]
    fn greedy_prefers_hot_code() {
        let p = hot_cold_program();
        let freqs = freqs_of(&p);
        let pool = enumerate(&p, &SelectionConfig::default());
        // Budget of one template: it must come from the hot block.
        let cfg = SelectionConfig {
            mgt_budget: 1,
            ..SelectionConfig::default()
        };
        let res = greedy_select(&p, &pool, &freqs, &cfg);
        assert_eq!(res.templates, 1);
        assert!(!res.chosen.is_empty());
        for c in &res.chosen {
            // hot block is BlockId(1)
            assert_eq!(c.candidate.block.0, 1);
        }
        assert!(res.est_coverage > 0.3, "coverage {}", res.est_coverage);
    }

    #[test]
    fn chosen_instances_are_disjoint() {
        let p = hot_cold_program();
        let freqs = freqs_of(&p);
        let pool = enumerate(&p, &SelectionConfig::default());
        let res = greedy_select(&p, &pool, &freqs, &SelectionConfig::default());
        let mut seen = std::collections::HashSet::new();
        for c in &res.chosen {
            for &pos in &c.candidate.positions {
                assert!(
                    seen.insert((c.candidate.block.0, pos)),
                    "instance overlap at block {} pos {pos}",
                    c.candidate.block.0
                );
            }
        }
    }

    #[test]
    fn budget_limits_templates() {
        let p = hot_cold_program();
        let freqs = freqs_of(&p);
        let pool = enumerate(&p, &SelectionConfig::default());
        let unlimited = greedy_select(&p, &pool, &freqs, &SelectionConfig::default());
        let limited = greedy_select(
            &p,
            &pool,
            &freqs,
            &SelectionConfig {
                mgt_budget: 2,
                ..SelectionConfig::default()
            },
        );
        assert!(limited.templates <= 2);
        assert!(limited.templates <= unlimited.templates);
        assert!(limited.est_coverage <= unlimited.est_coverage + 1e-9);
    }
}
