//! The binary rewriter: embeds chosen mini-graph instances into a program.
//!
//! Produces a *new* program in which each chosen instance's constituents
//! are contiguous (dependence-preserving intra-block scheduling) and
//! tagged with [`MgTag`]s. Functional semantics are preserved — the
//! integration tests execute original and rewritten programs and compare
//! final architectural state.

use crate::candidate::{Candidate, MAX_CANDIDATE_LEN};
use crate::depgraph::{schedule_with_groups, BlockDeps};
use mg_isa::{BasicBlock, BlockId, Instruction, IsaError, MgTag, Program};
use std::collections::HashMap;
use std::fmt;

/// A selected instance: a candidate plus its assigned MGT template id.
#[derive(Clone, Debug)]
pub struct ChosenInstance {
    /// The candidate (block + original positions + shape).
    pub candidate: Candidate,
    /// MGT template index.
    pub template: u16,
}

/// Why a rewrite could not be performed.
///
/// Selectors validate their choices before handing them over, so a
/// well-behaved pipeline never sees these — but externally constructed
/// (or fuzzer-generated) instance sets can trip every one of them, and a
/// sweep must report the row as an error rather than abort.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RewriteError {
    /// An instance has more constituents than an [`MgTag`] can encode
    /// (`pos`/`len` are `u8`); see [`MAX_CANDIDATE_LEN`].
    OversizedInstance {
        /// Block the instance lives in.
        block: BlockId,
        /// Number of constituents in the offending instance.
        len: usize,
    },
    /// The chosen instances in a block overlap or cannot be made
    /// contiguous without violating intra-block dependences.
    Unschedulable {
        /// Block whose groups failed to schedule.
        block: BlockId,
    },
    /// The rewritten program failed `mg-isa`'s structural validator.
    Structural(IsaError),
}

impl fmt::Display for RewriteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RewriteError::OversizedInstance { block, len } => write!(
                f,
                "instance in block {} has {} constituents; MgTag encodes at most {}",
                block.0, len, MAX_CANDIDATE_LEN
            ),
            RewriteError::Unschedulable { block } => write!(
                f,
                "chosen instances in block {} overlap or cannot be scheduled contiguously",
                block.0
            ),
            RewriteError::Structural(e) => write!(f, "rewritten program is invalid: {e}"),
        }
    }
}

impl std::error::Error for RewriteError {}

impl From<IsaError> for RewriteError {
    fn from(e: IsaError) -> Self {
        RewriteError::Structural(e)
    }
}

/// Rewrites `program`, embedding the chosen instances.
///
/// Fails (instead of panicking) when the instances are oversized,
/// overlap, cannot be scheduled contiguously, or produce a structurally
/// invalid program.
pub fn try_rewrite(program: &Program, chosen: &[ChosenInstance]) -> Result<Program, RewriteError> {
    let mut by_block: HashMap<u32, Vec<&ChosenInstance>> = HashMap::new();
    for inst in chosen {
        if inst.candidate.len() > MAX_CANDIDATE_LEN {
            return Err(RewriteError::OversizedInstance {
                block: inst.candidate.block,
                len: inst.candidate.len(),
            });
        }
        by_block
            .entry(inst.candidate.block.0)
            .or_default()
            .push(inst);
    }

    let mut next_instance = 0u32;
    let mut blocks: Vec<BasicBlock> = Vec::with_capacity(program.blocks().len());
    for (bi, block) in program.blocks().iter().enumerate() {
        let Some(instances) = by_block.get_mut(&(bi as u32)) else {
            blocks.push(block.clone());
            continue;
        };
        instances.sort_by_key(|c| c.candidate.positions[0]);
        // Position -> (instance-local index, position within instance) for
        // members. Built first: overlapping instances are a caller error
        // that the group scheduler is not specified for.
        let mut member_of: HashMap<usize, (usize, usize)> = HashMap::new();
        for (ii, inst) in instances.iter().enumerate() {
            for (pi, &p) in inst.candidate.positions.iter().enumerate() {
                if p >= block.insts.len() || member_of.insert(p, (ii, pi)).is_some() {
                    return Err(RewriteError::Unschedulable {
                        block: BlockId(bi as u32),
                    });
                }
            }
        }
        let deps = BlockDeps::build(block);
        let groups: Vec<&[usize]> = instances
            .iter()
            .map(|c| c.candidate.positions.as_slice())
            .collect();
        let order = schedule_with_groups(&deps, &groups).ok_or(RewriteError::Unschedulable {
            block: BlockId(bi as u32),
        })?;
        let instance_ids: Vec<u32> = instances
            .iter()
            .map(|_| {
                let id = next_instance;
                next_instance += 1;
                id
            })
            .collect();
        let insts: Vec<Instruction> = order
            .iter()
            .map(|&p| {
                let base = block.insts[p].without_mg();
                match member_of.get(&p) {
                    Some(&(ii, pi)) => base.with_mg(MgTag {
                        instance: instance_ids[ii],
                        template: instances[ii].template,
                        pos: pi as u8,
                        len: instances[ii].candidate.len() as u8,
                    }),
                    None => base,
                }
            })
            .collect();
        blocks.push(BasicBlock {
            insts,
            fallthrough: block.fallthrough,
        });
    }

    Ok(Program::new(
        format!("{}+mg", program.name()),
        blocks,
        program.funcs().to_vec(),
        program.entry_func(),
    )?)
}

/// Rewrites `program`, embedding the chosen instances.
///
/// # Panics
///
/// Panics if the chosen instances overlap or cannot be scheduled — the
/// selector must only choose combinations validated with
/// [`schedule_with_groups`]. Use [`try_rewrite`] to handle untrusted
/// instance sets.
pub fn rewrite(program: &Program, chosen: &[ChosenInstance]) -> Program {
    match try_rewrite(program, chosen) {
        Ok(p) => p,
        Err(e) => panic!("rewrite failed: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidate::{enumerate, CandidateShape, SelectionConfig};
    use crate::check::assert_semantics_preserved;
    use mg_isa::{ProgramBuilder, Reg};

    #[test]
    fn rewrite_tags_and_preserves_semantics() {
        let mut pb = ProgramBuilder::new("rw");
        let f = pb.func("main");
        let b = pb.block(f);
        pb.push(b, mg_isa::Instruction::li(Reg::R1, 5));
        pb.push(b, mg_isa::Instruction::addi(Reg::R2, Reg::R1, 3));
        pb.push(
            b,
            mg_isa::Instruction::alu_ri(mg_isa::Opcode::XorI, Reg::R3, Reg::R2, 6),
        );
        pb.push(b, mg_isa::Instruction::store(Reg::R10, Reg::R3, 0));
        pb.push(b, mg_isa::Instruction::halt());
        let p = pb.build().unwrap();
        let pool = enumerate(&p, &SelectionConfig::default());
        let cand = pool
            .iter()
            .find(|c| c.positions == vec![1, 2])
            .unwrap()
            .clone();
        let rp = rewrite(
            &p,
            &[ChosenInstance {
                candidate: cand,
                template: 0,
            }],
        );
        // Tags present and contiguous.
        let tagged: Vec<_> = rp
            .blocks()
            .iter()
            .flat_map(|b| b.insts.iter())
            .filter(|i| i.mg.is_some())
            .collect();
        assert_eq!(tagged.len(), 2);
        assert_eq!(tagged[0].mg.unwrap().pos, 0);
        assert_eq!(tagged[1].mg.unwrap().pos, 1);
        assert_semantics_preserved(&p, &rp, &[]);
    }

    #[test]
    fn rewrite_moves_interloper_out_of_group() {
        // member / interloper / member: reorder required.
        let mut pb = ProgramBuilder::new("mv");
        let f = pb.func("main");
        let b = pb.block(f);
        pb.push(b, mg_isa::Instruction::li(Reg::R1, 5)); // 0 member
        pb.push(b, mg_isa::Instruction::li(Reg::R9, 7)); // 1 interloper
        pb.push(b, mg_isa::Instruction::addi(Reg::R2, Reg::R1, 1)); // 2 member
        pb.push(b, mg_isa::Instruction::store(Reg::R10, Reg::R2, 0));
        pb.push(b, mg_isa::Instruction::store(Reg::R10, Reg::R9, 8));
        pb.push(b, mg_isa::Instruction::halt());
        let p = pb.build().unwrap();
        let pool = enumerate(&p, &SelectionConfig::default());
        let cand = pool
            .iter()
            .find(|c| c.positions == vec![0, 2])
            .expect("groupable disconnected pair")
            .clone();
        let rp = rewrite(
            &p,
            &[ChosenInstance {
                candidate: cand,
                template: 3,
            }],
        );
        let block = &rp.blocks()[0];
        let tag_positions: Vec<usize> = block
            .insts
            .iter()
            .enumerate()
            .filter(|(_, i)| i.mg.is_some())
            .map(|(k, _)| k)
            .collect();
        assert_eq!(tag_positions.len(), 2);
        assert_eq!(tag_positions[1], tag_positions[0] + 1, "contiguous");
        assert_semantics_preserved(&p, &rp, &[]);
    }

    fn chain_program(n: usize) -> Program {
        let mut pb = ProgramBuilder::new("chain");
        let f = pb.func("main");
        let b = pb.block(f);
        pb.push(b, mg_isa::Instruction::li(Reg::R1, 1));
        for _ in 1..n {
            pb.push(b, mg_isa::Instruction::addi(Reg::R1, Reg::R1, 1));
        }
        pb.push(b, mg_isa::Instruction::halt());
        pb.build().unwrap()
    }

    #[test]
    fn oversized_instance_is_a_typed_error() {
        // Regression for the unguarded `pi as u8` / `len as u8` casts: a
        // hand-built 300-constituent instance must be rejected, not
        // silently truncated into a wrapped MgTag.
        let p = chain_program(301);
        let positions: Vec<usize> = (0..300).collect();
        let cand = Candidate {
            block: BlockId(0),
            positions,
            shape: CandidateShape::default(),
        };
        let err = try_rewrite(
            &p,
            &[ChosenInstance {
                candidate: cand,
                template: 0,
            }],
        )
        .unwrap_err();
        assert_eq!(
            err,
            RewriteError::OversizedInstance {
                block: BlockId(0),
                len: 300
            }
        );
        assert!(err.to_string().contains("300"));
    }

    fn instance_at(positions: Vec<usize>) -> ChosenInstance {
        ChosenInstance {
            candidate: Candidate {
                block: BlockId(0),
                positions,
                shape: CandidateShape::default(),
            },
            template: 0,
        }
    }

    #[test]
    fn overlapping_instances_are_a_typed_error() {
        let p = chain_program(4);
        let err = try_rewrite(
            &p,
            &[instance_at(vec![0, 1, 2]), instance_at(vec![1, 2, 3])],
        )
        .unwrap_err();
        assert_eq!(err, RewriteError::Unschedulable { block: BlockId(0) });
    }

    #[test]
    fn unschedulable_instance_is_a_typed_error() {
        // 0 -> 1 -> 2 dependence chain; {0, 2} cannot be contiguous.
        let p = chain_program(3);
        let err = try_rewrite(&p, &[instance_at(vec![0, 2])]).unwrap_err();
        assert_eq!(err, RewriteError::Unschedulable { block: BlockId(0) });
    }
}
