//! The binary rewriter: embeds chosen mini-graph instances into a program.
//!
//! Produces a *new* program in which each chosen instance's constituents
//! are contiguous (dependence-preserving intra-block scheduling) and
//! tagged with [`MgTag`]s. Functional semantics are preserved — the
//! integration tests execute original and rewritten programs and compare
//! final architectural state.

use crate::candidate::Candidate;
use crate::depgraph::{schedule_with_groups, BlockDeps};
use mg_isa::{BasicBlock, Instruction, MgTag, Program};
use std::collections::HashMap;

/// A selected instance: a candidate plus its assigned MGT template id.
#[derive(Clone, Debug)]
pub struct ChosenInstance {
    /// The candidate (block + original positions + shape).
    pub candidate: Candidate,
    /// MGT template index.
    pub template: u16,
}

/// Rewrites `program`, embedding the chosen instances.
///
/// # Panics
///
/// Panics if the chosen instances overlap or cannot be scheduled — the
/// selector must only choose combinations validated with
/// [`schedule_with_groups`].
pub fn rewrite(program: &Program, chosen: &[ChosenInstance]) -> Program {
    let mut by_block: HashMap<u32, Vec<&ChosenInstance>> = HashMap::new();
    for inst in chosen {
        by_block
            .entry(inst.candidate.block.0)
            .or_default()
            .push(inst);
    }

    let mut next_instance = 0u32;
    let blocks: Vec<BasicBlock> = program
        .blocks()
        .iter()
        .enumerate()
        .map(|(bi, block)| {
            let Some(instances) = by_block.get_mut(&(bi as u32)) else {
                return block.clone();
            };
            instances.sort_by_key(|c| c.candidate.positions[0]);
            let deps = BlockDeps::build(block);
            let groups: Vec<&[usize]> = instances
                .iter()
                .map(|c| c.candidate.positions.as_slice())
                .collect();
            let order =
                schedule_with_groups(&deps, &groups).expect("selector validated schedulability");
            // Position -> (instance-local index, tag template) for members.
            let mut member_of: HashMap<usize, (usize, usize)> = HashMap::new();
            for (ii, inst) in instances.iter().enumerate() {
                for (pi, &p) in inst.candidate.positions.iter().enumerate() {
                    member_of.insert(p, (ii, pi));
                }
            }
            let instance_ids: Vec<u32> = instances
                .iter()
                .map(|_| {
                    let id = next_instance;
                    next_instance += 1;
                    id
                })
                .collect();
            let insts: Vec<Instruction> = order
                .iter()
                .map(|&p| {
                    let base = block.insts[p].without_mg();
                    match member_of.get(&p) {
                        Some(&(ii, pi)) => base.with_mg(MgTag {
                            instance: instance_ids[ii],
                            template: instances[ii].template,
                            pos: pi as u8,
                            len: instances[ii].candidate.len() as u8,
                        }),
                        None => base,
                    }
                })
                .collect();
            BasicBlock {
                insts,
                fallthrough: block.fallthrough,
            }
        })
        .collect();

    Program::new(
        format!("{}+mg", program.name()),
        blocks,
        program.funcs().to_vec(),
        program.entry_func(),
    )
    .expect("rewriting preserves structural validity")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidate::{enumerate, SelectionConfig};
    use mg_isa::{ProgramBuilder, Reg};
    use mg_workloads::Executor;

    #[test]
    fn rewrite_tags_and_preserves_semantics() {
        let mut pb = ProgramBuilder::new("rw");
        let f = pb.func("main");
        let b = pb.block(f);
        pb.push(b, mg_isa::Instruction::li(Reg::R1, 5));
        pb.push(b, mg_isa::Instruction::addi(Reg::R2, Reg::R1, 3));
        pb.push(
            b,
            mg_isa::Instruction::alu_ri(mg_isa::Opcode::XorI, Reg::R3, Reg::R2, 6),
        );
        pb.push(b, mg_isa::Instruction::store(Reg::R10, Reg::R3, 0));
        pb.push(b, mg_isa::Instruction::halt());
        let p = pb.build().unwrap();
        let pool = enumerate(&p, &SelectionConfig::default());
        let cand = pool
            .iter()
            .find(|c| c.positions == vec![1, 2])
            .unwrap()
            .clone();
        let rp = rewrite(
            &p,
            &[ChosenInstance {
                candidate: cand,
                template: 0,
            }],
        );
        // Tags present and contiguous.
        let tagged: Vec<_> = rp
            .blocks()
            .iter()
            .flat_map(|b| b.insts.iter())
            .filter(|i| i.mg.is_some())
            .collect();
        assert_eq!(tagged.len(), 2);
        assert_eq!(tagged[0].mg.unwrap().pos, 0);
        assert_eq!(tagged[1].mg.unwrap().pos, 1);
        // Semantics preserved.
        let (_, s0) = Executor::new(&p).run().unwrap();
        let (_, s1) = Executor::new(&rp).run().unwrap();
        assert_eq!(s0.read(Reg::R3), s1.read(Reg::R3));
        assert_eq!(s0.mem, s1.mem);
    }

    #[test]
    fn rewrite_moves_interloper_out_of_group() {
        // member / interloper / member: reorder required.
        let mut pb = ProgramBuilder::new("mv");
        let f = pb.func("main");
        let b = pb.block(f);
        pb.push(b, mg_isa::Instruction::li(Reg::R1, 5)); // 0 member
        pb.push(b, mg_isa::Instruction::li(Reg::R9, 7)); // 1 interloper
        pb.push(b, mg_isa::Instruction::addi(Reg::R2, Reg::R1, 1)); // 2 member
        pb.push(b, mg_isa::Instruction::store(Reg::R10, Reg::R2, 0));
        pb.push(b, mg_isa::Instruction::store(Reg::R10, Reg::R9, 8));
        pb.push(b, mg_isa::Instruction::halt());
        let p = pb.build().unwrap();
        let pool = enumerate(&p, &SelectionConfig::default());
        let cand = pool
            .iter()
            .find(|c| c.positions == vec![0, 2])
            .expect("groupable disconnected pair")
            .clone();
        let rp = rewrite(
            &p,
            &[ChosenInstance {
                candidate: cand,
                template: 3,
            }],
        );
        let block = &rp.blocks()[0];
        let tag_positions: Vec<usize> = block
            .insts
            .iter()
            .enumerate()
            .filter(|(_, i)| i.mg.is_some())
            .map(|(k, _)| k)
            .collect();
        assert_eq!(tag_positions.len(), 2);
        assert_eq!(tag_positions[1], tag_positions[0] + 1, "contiguous");
        // Semantics unchanged.
        let (_, s0) = Executor::new(&p).run().unwrap();
        let (_, s1) = Executor::new(&rp).run().unwrap();
        assert_eq!(s0.mem, s1.mem);
    }
}
