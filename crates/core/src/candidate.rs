//! Mini-graph candidate enumeration.
//!
//! A *candidate* is an ordered subset of a basic block's instructions that
//! satisfies the RISC-singleton interface of a mini-graph (§2 of the
//! paper): at most [`SelectionConfig::max_size`] instructions, at most
//! three external register inputs, at most one register output, one
//! memory reference, and one control transfer (which must be last), with
//! a bounded total execution latency — and which can legally be made
//! contiguous by intra-block scheduling.

use crate::depgraph::BlockDeps;
use mg_isa::dataflow::{BlockDataflow, UseSource};
use mg_isa::{BasicBlock, BlockId, Program, Reg};
use serde::{Deserialize, Serialize};

/// Knobs bounding candidate enumeration and selection.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SelectionConfig {
    /// Maximum constituents per mini-graph (the paper: 4, matching the
    /// ALU pipeline depth).
    pub max_size: usize,
    /// Maximum external register inputs (the paper's extended interface: 3).
    pub max_ext_inputs: usize,
    /// Maximum optimistic execution latency in cycles (the paper: 6).
    pub max_latency: u32,
    /// Maximum span (last - first position) a candidate may cover before
    /// grouping, limiting how far the rewriter must move code.
    pub max_span: usize,
    /// MGT template budget (the paper: 512).
    pub mgt_budget: usize,
    /// L1 data-cache hit latency used for optimistic load latencies.
    pub l1_hit: u32,
}

impl Default for SelectionConfig {
    fn default() -> SelectionConfig {
        SelectionConfig {
            max_size: 4,
            max_ext_inputs: 3,
            max_latency: 6,
            max_span: 6,
            mgt_budget: 512,
            l1_hit: 3,
        }
    }
}

/// Hard upper bound on constituents per candidate, regardless of
/// [`SelectionConfig::max_size`]. Candidate-relative positions travel
/// through `u8` fields ([`CandSrc`], [`mg_isa::MgTag`]); a larger
/// candidate would silently truncate them, so enumeration rejects any
/// subset past this bound instead.
pub const MAX_CANDIDATE_LEN: usize = u8::MAX as usize;

/// Where a constituent's source operand comes from (candidate-local).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum CandSrc {
    /// External input: index into [`CandidateShape::ext_inputs`].
    External(u8),
    /// Produced by the constituent at this candidate-relative position.
    Internal(u8),
    /// The hardwired zero register / no register source.
    None,
}

/// Interface and dataflow shape of a candidate.
///
/// The `Default` shape is the degenerate empty candidate — enumeration
/// never produces it, but checkers and fuzzers may.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CandidateShape {
    /// External register inputs in first-read order, with the
    /// candidate-relative position of the earliest constituent reading
    /// each.
    pub ext_inputs: Vec<(Reg, u8)>,
    /// Candidate-relative position producing the single register output,
    /// if any value escapes.
    pub output_pos: Option<u8>,
    /// Candidate-relative position of the memory constituent and whether
    /// it is a load.
    pub mem: Option<(u8, bool)>,
    /// Candidate-relative position of the control constituent (always
    /// last when present).
    pub control: Option<u8>,
    /// Per-constituent source links (slot 0, slot 1).
    pub srcs: Vec<[CandSrc; 2]>,
    /// Cumulative optimistic latency before each constituent, plus the
    /// total at the end (`len + 1` entries).
    pub lat_prefix: Vec<u32>,
}

impl CandidateShape {
    /// Total optimistic execution latency (0 for a degenerate empty
    /// shape, which enumeration never produces but callers may build).
    pub fn total_latency(&self) -> u32 {
        self.lat_prefix.last().copied().unwrap_or(0)
    }

    /// Whether any external input feeds a constituent other than the
    /// first (the structural precondition for external serialization).
    pub fn potentially_serializing(&self) -> bool {
        self.ext_inputs.iter().any(|&(_, pos)| pos > 0)
    }

    /// Whether there is an internal dataflow path from constituent `from`
    /// to constituent `to`.
    pub fn has_path(&self, from: u8, to: u8) -> bool {
        if from == to {
            return true;
        }
        // Positions are topologically ordered (program order), so a
        // simple forward closure suffices.
        let n = self.srcs.len();
        let mut reach = vec![false; n];
        reach[from as usize] = true;
        for p in (from as usize + 1)..n {
            for s in self.srcs[p] {
                if let CandSrc::Internal(d) = s {
                    if reach[d as usize] {
                        reach[p] = true;
                    }
                }
            }
        }
        reach[to as usize]
    }
}

/// A mini-graph candidate: a legal subset of one block's instructions.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Candidate {
    /// The containing block.
    pub block: BlockId,
    /// Ascending block positions of the constituents.
    pub positions: Vec<usize>,
    /// Interface shape.
    pub shape: CandidateShape,
}

impl Candidate {
    /// Number of constituents.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Whether the candidate is empty (never true for enumerated ones).
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }
}

/// Enumerates all legal candidates of a program.
///
/// Liveness is computed once; each block is then enumerated
/// independently. The result is ordered by block, then by first position.
pub fn enumerate(program: &Program, cfg: &SelectionConfig) -> Vec<Candidate> {
    let live = mg_isa::dataflow::liveness(program);
    let mut out = Vec::new();
    for (bi, block) in program.blocks().iter().enumerate() {
        let bid = BlockId(bi as u32);
        let df = BlockDataflow::analyze(block, live.live_out(bid));
        let deps = BlockDeps::build(block);
        enumerate_block(block, bid, &df, &deps, cfg, &mut out);
    }
    out
}

/// Enumerates candidates within one block.
pub fn enumerate_block(
    block: &BasicBlock,
    bid: BlockId,
    df: &BlockDataflow,
    deps: &BlockDeps,
    cfg: &SelectionConfig,
    out: &mut Vec<Candidate>,
) {
    let n = block.insts.len();
    let eligible: Vec<bool> = block.insts.iter().map(|i| i.op.mg_eligible()).collect();
    let mut stack: Vec<usize> = Vec::with_capacity(cfg.max_size);
    for first in 0..n {
        if !eligible[first] {
            continue;
        }
        stack.push(first);
        extend(block, bid, df, deps, cfg, &eligible, &mut stack, out);
        stack.pop();
    }
}

#[allow(clippy::too_many_arguments)]
fn extend(
    block: &BasicBlock,
    bid: BlockId,
    df: &BlockDataflow,
    deps: &BlockDeps,
    cfg: &SelectionConfig,
    eligible: &[bool],
    stack: &mut Vec<usize>,
    out: &mut Vec<Candidate>,
) {
    // `extend` is only called with a seeded stack, but tolerate an empty
    // one rather than panicking (the fuzzer drives this path directly).
    let (Some(&first), Some(&last)) = (stack.first(), stack.last()) else {
        return;
    };
    for next in (last + 1)..block.insts.len() {
        if next - first > cfg.max_span {
            break;
        }
        if !eligible[next] {
            // Ineligible instructions can be scheduled around, so keep
            // scanning unless it is a control instruction (nothing may
            // move past control; control is last anyway).
            continue;
        }
        stack.push(next);
        if let Some(shape) = analyze(block, df, stack, cfg) {
            if groupable(deps, stack) {
                out.push(Candidate {
                    block: bid,
                    positions: stack.clone(),
                    shape,
                });
                if stack.len() < cfg.max_size.min(MAX_CANDIDATE_LEN) {
                    extend(block, bid, df, deps, cfg, eligible, stack, out);
                }
            }
        } else if stack.len() < cfg.max_size.min(MAX_CANDIDATE_LEN)
            && partial_viable(block, df, stack, cfg)
        {
            // The subset violates an interface limit that adding more
            // instructions could repair (e.g. a second escaping value
            // that a later constituent consumes... it cannot), so in
            // general we stop; but latency/size limits are monotone, so
            // only extend when the partial set is still viable.
            extend(block, bid, df, deps, cfg, eligible, stack, out);
        }
        stack.pop();
    }
}

/// Whether a partial (invalid-as-is) subset could still grow into a valid
/// candidate: size, span, latency, memory/control counts must not already
/// exceed limits. Output-count violations can be repaired by adding the
/// consumer of a second escaping value into the graph, so they do not
/// prune extension.
fn partial_viable(
    block: &BasicBlock,
    _df: &BlockDataflow,
    positions: &[usize],
    cfg: &SelectionConfig,
) -> bool {
    let mut lat = 0u32;
    let mut mem = 0;
    let mut ctrl = 0;
    for &p in positions {
        let op = block.insts[p].op;
        lat += op.optimistic_latency(cfg.l1_hit);
        mem += op.is_mem() as u32;
        ctrl += op.is_control() as u32;
    }
    lat < cfg.max_latency && mem <= 1 && ctrl == 0
}

/// Analyzes a subset's interface; `None` if it violates mini-graph
/// constraints.
fn analyze(
    block: &BasicBlock,
    df: &BlockDataflow,
    positions: &[usize],
    cfg: &SelectionConfig,
) -> Option<CandidateShape> {
    // All candidate-relative positions and external-input indices below
    // are stored in `u8` fields; reject outright any subset that could
    // overflow them instead of truncating silently.
    if positions.len() > MAX_CANDIDATE_LEN {
        return None;
    }
    let mut ext_inputs: Vec<(Reg, u8)> = Vec::new();
    let mut srcs: Vec<[CandSrc; 2]> = Vec::with_capacity(positions.len());
    let mut output_pos: Option<u8> = None;
    let mut mem: Option<(u8, bool)> = None;
    let mut control: Option<u8> = None;
    let mut lat_prefix = Vec::with_capacity(positions.len() + 1);
    let mut lat = 0u32;

    for (ci, &pos) in positions.iter().enumerate() {
        let inst = &block.insts[pos];
        lat_prefix.push(lat);
        lat += inst.op.optimistic_latency(cfg.l1_hit);
        if lat > cfg.max_latency {
            return None;
        }
        let ci8 = ci as u8; // in range: positions.len() <= MAX_CANDIDATE_LEN
        let mut links = [CandSrc::None, CandSrc::None];
        for (slot, src) in [inst.src1, inst.src2].into_iter().enumerate() {
            let Some(r) = src else { continue };
            if r.is_zero() {
                continue;
            }
            links[slot] = match df.src_origin[pos][slot] {
                Some(UseSource::Local(d)) if positions.contains(&d) => {
                    CandSrc::Internal(positions.iter().position(|&x| x == d).unwrap() as u8)
                }
                _ => {
                    let idx = match ext_inputs.iter().position(|&(er, _)| er == r) {
                        Some(i) => i,
                        None => {
                            ext_inputs.push((r, ci8));
                            ext_inputs.len() - 1
                        }
                    };
                    // Checking the input limit as inputs appear (rather
                    // than only at the end) keeps `idx` in `u8` range no
                    // matter how large `max_ext_inputs` is configured.
                    if ext_inputs.len() > cfg.max_ext_inputs {
                        return None;
                    }
                    CandSrc::External(u8::try_from(idx).ok()?)
                }
            };
        }
        srcs.push(links);

        if inst.op.is_mem() {
            if mem.is_some() {
                return None;
            }
            mem = Some((ci8, inst.op.is_load()));
        }
        if inst.op.is_control() {
            // Control must be the block terminator and last constituent.
            if control.is_some() || pos + 1 != block.insts.len() || ci + 1 != positions.len() {
                return None;
            }
            control = Some(ci8);
        }
        if let Some(_d) = inst.def() {
            if df.value_visible_outside(pos, positions) {
                if output_pos.is_some() {
                    return None;
                }
                output_pos = Some(ci8);
            }
        }
    }
    lat_prefix.push(lat);
    if ext_inputs.len() > cfg.max_ext_inputs {
        return None;
    }
    Some(CandidateShape {
        ext_inputs,
        output_pos,
        mem,
        control,
        srcs,
        lat_prefix,
    })
}

/// Whether the subset can be made contiguous by a dependence-preserving
/// reordering of the block: no intervening instruction may be *both*
/// (transitively) dependent on a member and depended on by a member.
pub fn groupable(deps: &BlockDeps, positions: &[usize]) -> bool {
    // An empty subset is vacuously groupable (and enumeration never asks).
    let (Some(&first), Some(&last)) = (positions.first(), positions.last()) else {
        return true;
    };
    if last - first + 1 == positions.len() {
        return true; // already contiguous
    }
    // For every non-member in the window, compute whether it must come
    // after some member (reachable from a member) and before some member
    // (reaches a member), using closure over the window.
    let window = first..=last;
    let len = last - first + 1;
    let is_member = |p: usize| positions.contains(&p);
    // reach_from_member[i]: window-relative instruction i is (transitively)
    // a dependent of some member.
    let mut after = vec![false; len];
    for p in window.clone() {
        let rel = p - first;
        if is_member(p) {
            after[rel] = true;
            continue;
        }
        for &d in deps.preds(p) {
            if d >= first && after[d - first] {
                after[rel] = true;
                break;
            }
        }
    }
    // reaches_member[i]: some member (transitively) depends on i.
    let mut before = vec![false; len];
    for p in window.clone().rev() {
        let rel = p - first;
        if is_member(p) {
            before[rel] = true;
            continue;
        }
        for &s in deps.succs(p) {
            if s <= last && before[s - first] {
                before[rel] = true;
                break;
            }
        }
    }
    for p in window {
        let rel = p - first;
        if !is_member(p) && after[rel] && before[rel] {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use mg_isa::{BrCond, Instruction, ProgramBuilder};

    fn program_of(insts: Vec<Instruction>) -> Program {
        let mut pb = ProgramBuilder::new("t");
        let f = pb.func("main");
        let b = pb.block(f);
        for i in insts {
            pb.push(b, i);
        }
        pb.push(b, Instruction::halt());
        pb.build().unwrap()
    }

    #[test]
    fn enumerates_simple_chain() {
        let p = program_of(vec![
            Instruction::li(Reg::R1, 1),
            Instruction::addi(Reg::R2, Reg::R1, 1),
            Instruction::addi(Reg::R3, Reg::R2, 1),
        ]);
        let cands = enumerate(&p, &SelectionConfig::default());
        // {0,1},{1,2},{0,2},{0,1,2} are the size-2/3 subsets; all legal
        // except those whose intermediate values escape: r1 feeds only 1,
        // r2 feeds only 2, r3 is dead (no live-out).
        assert!(!cands.is_empty());
        assert!(cands.iter().any(|c| c.positions == vec![0, 1, 2]));
        let pair01 = cands.iter().find(|c| c.positions == vec![0, 1]).unwrap();
        // r2 escapes {0,1} (consumed by 2): output at position 1.
        assert_eq!(pair01.shape.output_pos, Some(1));
        assert!(!pair01.shape.potentially_serializing());
    }

    #[test]
    fn rejects_two_outputs() {
        // Both defs consumed outside the pair.
        let p = program_of(vec![
            Instruction::li(Reg::R1, 1),
            Instruction::li(Reg::R2, 2),
            Instruction::add(Reg::R3, Reg::R1, Reg::R2),
            Instruction::add(Reg::R4, Reg::R1, Reg::R2),
        ]);
        let cands = enumerate(&p, &SelectionConfig::default());
        assert!(!cands.iter().any(|c| c.positions == vec![0, 1]));
        // But {0,1,2} has one escaping def (r3? no: r1,r2 consumed by 3
        // outside!) -- r1 and r2 both escape {0,1,2}: rejected too.
        assert!(!cands.iter().any(|c| c.positions == vec![0, 1, 2]));
        // {0,1,2,3}: r3 and r4 dead, r1/r2 interior: no output, legal.
        assert!(cands.iter().any(|c| c.positions == vec![0, 1, 2, 3]));
    }

    #[test]
    fn respects_input_limit() {
        // add;add;add chain reading 4 distinct external regs at once.
        let p = program_of(vec![
            Instruction::add(Reg::R1, Reg::R10, Reg::R11),
            Instruction::add(Reg::R2, Reg::R1, Reg::R12),
            Instruction::add(Reg::R3, Reg::R2, Reg::R13),
            Instruction::add(Reg::R4, Reg::R3, Reg::R14),
        ]);
        let cands = enumerate(&p, &SelectionConfig::default());
        // {0,1,2} needs r10,r11,r12,r13 = 4 external inputs: rejected.
        assert!(cands.iter().any(|c| c.positions == vec![0, 1]));
        assert!(!cands.iter().any(|c| c.positions == vec![0, 1, 2]));
    }

    #[test]
    fn detects_serializing_shape() {
        // Pair where the second member reads an external reg.
        let p = program_of(vec![
            Instruction::addi(Reg::R1, Reg::R10, 1),
            Instruction::addi(Reg::R2, Reg::R1, 1),
            Instruction::add(Reg::R3, Reg::R2, Reg::R11), // ext input r11 at pos 2
            Instruction::store(Reg::R12, Reg::R3, 0),
        ]);
        let cands = enumerate(&p, &SelectionConfig::default());
        let c = cands.iter().find(|c| c.positions == vec![0, 1, 2]).unwrap();
        assert!(c.shape.potentially_serializing());
        assert_eq!(c.shape.ext_inputs.len(), 2);
        let c2 = cands.iter().find(|c| c.positions == vec![0, 1]).unwrap();
        assert!(!c2.shape.potentially_serializing());
    }

    #[test]
    fn memory_and_latency_limits() {
        let p = program_of(vec![
            Instruction::load(Reg::R1, Reg::R10, 0),
            Instruction::load(Reg::R2, Reg::R10, 8),
            Instruction::add(Reg::R3, Reg::R1, Reg::R2),
            Instruction::store(Reg::R11, Reg::R3, 0),
        ]);
        let cands = enumerate(&p, &SelectionConfig::default());
        // Two loads cannot share a candidate.
        assert!(!cands.iter().any(|c| c.positions == vec![0, 1]));
        // load+add is fine (lat 3+1=4 <= 6).
        assert!(cands.iter().any(|c| c.positions == vec![1, 2]));
        // load+add+store would need two memory ops: rejected.
        assert!(!cands.iter().any(|c| c.positions == vec![1, 2, 3]));
    }

    #[test]
    fn control_must_be_last() {
        let mut pb = ProgramBuilder::new("br");
        let f = pb.func("main");
        let b0 = pb.block(f);
        let b1 = pb.block(f);
        pb.push(b0, Instruction::li(Reg::R1, 1));
        pb.push(
            b0,
            Instruction::alu_rr(mg_isa::Opcode::CmpLt, Reg::R2, Reg::R1, Reg::R9),
        );
        pb.push(b0, Instruction::br(BrCond::Ne, Reg::R2, Reg::ZERO, b0));
        pb.set_fallthrough(b0, b1);
        pb.push(b1, Instruction::halt());
        let p = pb.build().unwrap();
        let cands = enumerate(&p, &SelectionConfig::default());
        // cmp+branch is the canonical mini-graph.
        assert!(cands
            .iter()
            .any(|c| c.block == b0 && c.positions == vec![1, 2]));
        let cb = cands
            .iter()
            .find(|c| c.block == b0 && c.positions == vec![1, 2])
            .unwrap();
        assert_eq!(cb.shape.control, Some(1));
        assert_eq!(cb.shape.output_pos, None); // r2 is interior, branch has no def
    }

    #[test]
    fn non_groupable_subset_rejected() {
        // 0: r1 = r10+1        (member)
        // 1: r2 = r1+1         (non-member: depends on 0, feeds 2)
        // 2: r3 = r2+r11       (member: depends on 1)
        // Grouping {0,2} requires 1 both after 0 and before 2: impossible.
        let p = program_of(vec![
            Instruction::addi(Reg::R1, Reg::R10, 1),
            Instruction::addi(Reg::R2, Reg::R1, 1),
            Instruction::add(Reg::R3, Reg::R2, Reg::R11),
            Instruction::store(Reg::R12, Reg::R3, 0),
        ]);
        let cands = enumerate(&p, &SelectionConfig::default());
        assert!(!cands.iter().any(|c| c.positions == vec![0, 2]));
    }

    #[test]
    fn degenerate_inputs_do_not_panic() {
        // Empty shape: total_latency must not unwrap an empty prefix.
        let shape = CandidateShape {
            ext_inputs: vec![],
            output_pos: None,
            mem: None,
            control: None,
            srcs: vec![],
            lat_prefix: vec![],
        };
        assert_eq!(shape.total_latency(), 0);
        // Empty position set: groupable must not index positions[0].
        let b = {
            let mut b = BasicBlock::new();
            b.push(Instruction::li(Reg::R1, 1));
            b
        };
        let deps = BlockDeps::build(&b);
        assert!(groupable(&deps, &[]));
        // Empty block driven through enumerate_block directly.
        let empty = BasicBlock::new();
        let df = BlockDataflow::analyze(&empty, mg_isa::dataflow::RegSet::EMPTY);
        let edeps = BlockDeps::build(&empty);
        let mut out = Vec::new();
        enumerate_block(
            &empty,
            BlockId(0),
            &df,
            &edeps,
            &SelectionConfig::default(),
            &mut out,
        );
        assert!(out.is_empty());
    }

    #[test]
    fn single_instruction_block_yields_no_candidates() {
        // A 1-instruction block has no size-2 subsets; the enumerator
        // must come back empty without touching any unwrap path.
        let p = program_of(vec![Instruction::addi(Reg::R1, Reg::R10, 1)]);
        let cands = enumerate(&p, &SelectionConfig::default());
        assert!(cands.iter().all(|c| c.len() >= 2));
    }

    #[test]
    fn oversized_blocks_enumerate_within_u8_bounds() {
        // Regression companion to the rewrite-layer guard: a block with
        // 300 instructions (positions past the u8 range) enumerates
        // cleanly, and every candidate stays within MAX_CANDIDATE_LEN so
        // its candidate-relative u8 positions cannot truncate.
        let insts: Vec<Instruction> = (0..300)
            .map(|i| {
                Instruction::addi(
                    Reg::new(1 + (i % 20) as u8),
                    Reg::new(1 + ((i + 7) % 20) as u8),
                    1,
                )
            })
            .collect();
        let p = program_of(insts);
        let cands = enumerate(&p, &SelectionConfig::default());
        assert!(!cands.is_empty());
        for c in &cands {
            assert!(c.len() <= MAX_CANDIDATE_LEN);
            assert!(*c.positions.last().unwrap() < 301);
            assert_eq!(c.shape.srcs.len(), c.len());
            assert_eq!(c.shape.lat_prefix.len(), c.len() + 1);
        }
        // Some candidates must sit past block position 255 — the range a
        // u8 block-relative encoding would have corrupted.
        assert!(cands.iter().any(|c| c.positions[0] > 255));
    }

    #[test]
    fn groupable_disconnected_pair_accepted() {
        // 0: r1 = r10+1  (member, output consumed at 3)
        // 1: r9 = r11+1  (independent non-member, dead)
        // 2: r2 = r12+1  (member, dead -> interior-less? r2 dead: no output conflict)
        let p = program_of(vec![
            Instruction::addi(Reg::R1, Reg::R10, 1),
            Instruction::addi(Reg::R9, Reg::R11, 1),
            Instruction::addi(Reg::R2, Reg::R12, 1),
            Instruction::store(Reg::R13, Reg::R1, 0),
        ]);
        let cands = enumerate(&p, &SelectionConfig::default());
        let c = cands.iter().find(|c| c.positions == vec![0, 2]);
        assert!(c.is_some(), "independent pair should be groupable");
        assert!(c.unwrap().shape.potentially_serializing());
    }
}
