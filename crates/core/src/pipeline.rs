//! End-to-end mini-graph preparation: profile → enumerate → filter →
//! select → rewrite.

use crate::candidate::{enumerate, SelectionConfig};
use crate::rewrite::{try_rewrite, RewriteError};
use crate::select::{greedy_select, Selector};
use mg_isa::Program;
use mg_sim::{simulate, MachineConfig, SimOptions, SlackProfile};
use mg_workloads::{ExecError, Executor, Trace, Workload};

/// Everything produced by preparing a workload with a selector.
#[derive(Clone, Debug)]
pub struct Prepared {
    /// The rewritten (tagged) program.
    pub program: Program,
    /// Number of embedded instances.
    pub instances: usize,
    /// Number of MGT templates used.
    pub templates: usize,
    /// Coverage estimated from the profiling trace.
    pub est_coverage: f64,
}

/// Profiles a workload on `cfg`: returns the committed trace, per-static
/// frequencies, and the local slack profile. Fails if the workload's
/// functional execution fails.
pub fn try_profile_workload(
    workload: &Workload,
    cfg: &MachineConfig,
) -> Result<(Trace, Vec<u64>, SlackProfile), ExecError> {
    let (trace, _) = Executor::new(&workload.program).run_with_mem(&workload.init_mem)?;
    let freqs = trace.static_freqs(&workload.program);
    let result = simulate(
        &workload.program,
        &trace,
        cfg,
        SimOptions {
            profile_slack: true,
            ..SimOptions::default()
        },
    );
    let slack = result.slack.expect("profiling requested");
    Ok((trace, freqs, slack))
}

/// Panicking wrapper around [`try_profile_workload`].
///
/// # Panics
///
/// Panics if the workload fails to execute (generated workloads always
/// run to completion).
pub fn profile_workload(
    workload: &Workload,
    cfg: &MachineConfig,
) -> (Trace, Vec<u64>, SlackProfile) {
    try_profile_workload(workload, cfg).expect("workload executes")
}

/// Enumerates, filters, selects, and rewrites in one call. Fails when
/// the rewrite cannot embed the selected instances — the selector
/// validates its choices, so an error indicates an internal invariant
/// violation worth reporting rather than panicking over.
pub fn try_prepare(
    program: &Program,
    freqs: &[u64],
    selector: &Selector,
    cfg: &SelectionConfig,
) -> Result<Prepared, RewriteError> {
    let pool = enumerate(program, cfg);
    let pool = selector.filter(program, pool);
    let result = greedy_select(program, &pool, freqs, cfg);
    let instances = result.chosen.len();
    let templates = result.templates;
    let est_coverage = result.est_coverage;
    let program = try_rewrite(program, &result.chosen)?;
    Ok(Prepared {
        program,
        instances,
        templates,
        est_coverage,
    })
}

/// Panicking wrapper around [`try_prepare`].
///
/// # Panics
///
/// Panics if the rewrite fails; see [`try_prepare`].
pub fn prepare(
    program: &Program,
    freqs: &[u64],
    selector: &Selector,
    cfg: &SelectionConfig,
) -> Prepared {
    match try_prepare(program, freqs, selector, cfg) {
        Ok(p) => p,
        Err(e) => panic!("prepare failed: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mg_workloads::benchmark;

    #[test]
    fn end_to_end_on_a_real_benchmark() {
        let spec = benchmark("mib_crc32").unwrap();
        let w = spec.generate();
        let cfg = MachineConfig::reduced();
        let (trace, freqs, slack) = profile_workload(&w, &cfg);
        assert!(!trace.is_empty());

        let sel_cfg = SelectionConfig::default();
        let all = prepare(&w.program, &freqs, &Selector::StructAll, &sel_cfg);
        let none = prepare(&w.program, &freqs, &Selector::StructNone, &sel_cfg);
        let sp = prepare(
            &w.program,
            &freqs,
            &Selector::SlackProfile(Default::default(), slack),
            &sel_cfg,
        );
        assert!(all.est_coverage > none.est_coverage);
        assert!(sp.est_coverage >= none.est_coverage);
        assert!(sp.est_coverage <= all.est_coverage + 1e-9);
        assert!(all.instances > 0 && none.instances > 0);

        // Rewritten programs preserve semantics.
        let (t0, s0) = Executor::new(&w.program).run_with_mem(&w.init_mem).unwrap();
        let (t1, s1) = Executor::new(&all.program)
            .run_with_mem(&w.init_mem)
            .unwrap();
        assert_eq!(t0.len(), t1.len());
        // The link register holds a layout-dependent return token; all
        // data registers must match exactly.
        assert_eq!(s0.regs[..31], s1.regs[..31]);
    }
}
