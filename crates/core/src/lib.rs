//! Serialization-aware mini-graph selection (the paper's contribution).
//!
//! Mini-graphs aggregate 2–4 instructions of a basic block behind a
//! RISC-singleton interface, amplifying the bandwidth and capacity of
//! every pipeline stage of a dynamically scheduled superscalar processor.
//! Their cost is *serialization*: an aggregate cannot issue until all of
//! its external inputs are ready (external serialization), and its
//! constituents execute in series (internal serialization).
//!
//! This crate implements the full selection tool-chain:
//!
//! * [`candidate`] — enumeration of legal candidates per basic block;
//! * [`classify`] — structural serialization classification
//!   (none / bounded / unbounded, Figure 4);
//! * [`template`] — MGT template grouping;
//! * [`select`] — the shared greedy budgeted selector plus the policies:
//!   `Struct-All`, `Struct-None`, `Struct-Bounded`, and `Slack-Profile`
//!   with its `-Delay` and `-SIAL` variants (`Slack-Dynamic` is the same
//!   `Struct-All` static pool plus the run-time controller in
//!   [`mg_sim::dynmg`]);
//! * [`rewrite`] — the binary rewriter embedding chosen instances;
//! * [`pipeline`] — one-call profiling + preparation.
//!
//! # Example
//!
//! ```no_run
//! use mg_core::pipeline::{prepare, profile_workload};
//! use mg_core::select::Selector;
//! use mg_core::candidate::SelectionConfig;
//! use mg_sim::{simulate, MachineConfig, MgConfig, SimOptions};
//! use mg_workloads::benchmark;
//!
//! let spec = benchmark("mib_sha").unwrap();
//! let w = spec.generate();
//! let reduced = MachineConfig::reduced();
//! let (trace, freqs, slack) = profile_workload(&w, &reduced);
//! let prepared = prepare(
//!     &w.program,
//!     &freqs,
//!     &Selector::SlackProfile(Default::default(), slack),
//!     &SelectionConfig::default(),
//! );
//! let mg_cfg = reduced.with_mg(MgConfig::paper());
//! let result = simulate(&prepared.program, &trace, &mg_cfg, SimOptions::default());
//! println!("coverage {:.1}%", 100.0 * result.stats.coverage());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod candidate;
pub mod check;
pub mod classify;
pub mod depgraph;
pub mod pipeline;
pub mod rewrite;
pub mod select;
pub mod template;

pub use candidate::{enumerate, Candidate, CandidateShape, SelectionConfig, MAX_CANDIDATE_LEN};
pub use check::{assert_semantics_preserved, check_semantics_preserved, SemanticsViolation};
pub use classify::{classify, Serialization};
pub use pipeline::{prepare, profile_workload, try_prepare, try_profile_workload, Prepared};
pub use rewrite::{rewrite, try_rewrite, ChosenInstance, RewriteError};
pub use select::{greedy_select, SelectionResult, Selector, SlackProfileModel, SpKind};
pub use template::{group_templates, Template, TemplateSig};

/// Commonly used items, for glob import via the facade prelude.
pub mod prelude {
    pub use crate::{
        enumerate, prepare, profile_workload, Candidate, Prepared, SelectionConfig, Selector,
        SlackProfileModel, SpKind,
    };
}

// The sweep runner hands these to worker threads by reference; keep them
// structurally thread-safe.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Prepared>();
    assert_send_sync::<Selector>();
    assert_send_sync::<SelectionConfig>();
};
