//! Structural serialization classification (§4.1–4.2, Figure 4).
//!
//! * **Non-serializing**: every external input feeds the first
//!   constituent. Internal serialization may still occur (constituents
//!   execute in series even when independent), but it is always bounded.
//! * **Bounded**: some external input feeds a later constituent, but each
//!   such serializing input is *upstream* of the register output (there
//!   is an internal dataflow path from its consumer to the output
//!   producer). The output can be delayed by at most the mini-graph's
//!   remaining execution latency.
//! * **Unbounded**: a serializing input feeds a constituent with no path
//!   to the output — if that input arrives `n` cycles late, the output is
//!   delayed by `n` (Figure 4d).

use crate::candidate::CandidateShape;
use serde::{Deserialize, Serialize};

/// Serialization classification of a candidate.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Serialization {
    /// Not vulnerable to external serialization.
    None,
    /// Vulnerable, with delay bounded by the given cycle count.
    Bounded(u32),
    /// Vulnerable to unbounded delay.
    Unbounded,
}

impl Serialization {
    /// Whether the candidate has any external-serialization exposure.
    pub fn is_serializing(self) -> bool {
        !matches!(self, Serialization::None)
    }
}

/// Classifies a candidate's serialization exposure from its shape.
pub fn classify(shape: &CandidateShape) -> Serialization {
    if !shape.potentially_serializing() {
        return Serialization::None;
    }
    let Some(out) = shape.output_pos else {
        // No register output to delay: stores/branches are mostly not
        // outputs from the scheduler's perspective (§4.2), so the delay
        // is bounded by the graph's own latency.
        return Serialization::Bounded(shape.total_latency());
    };
    let mut bound = 0u32;
    for &(_, pos) in &shape.ext_inputs {
        if pos == 0 {
            continue;
        }
        if pos <= out && shape.has_path(pos, out) {
            // Upstream of the output: in a singleton execution the output
            // would wait for this input anyway; the extra delay is at most
            // the latency already spent before the consumer runs.
            bound = bound.max(shape.lat_prefix[pos as usize]);
        } else {
            return Serialization::Unbounded;
        }
    }
    Serialization::Bounded(bound.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidate::{enumerate, SelectionConfig};
    use mg_isa::{Instruction, Program, ProgramBuilder, Reg};

    fn program_of(insts: Vec<Instruction>) -> Program {
        let mut pb = ProgramBuilder::new("t");
        let f = pb.func("main");
        let b = pb.block(f);
        for i in insts {
            pb.push(b, i);
        }
        pb.push(b, Instruction::halt());
        pb.build().unwrap()
    }

    fn find(p: &Program, positions: &[usize]) -> CandidateShape {
        enumerate(p, &SelectionConfig::default())
            .into_iter()
            .find(|c| c.positions == positions)
            .expect("candidate exists")
            .shape
    }

    #[test]
    fn connected_chain_is_non_serializing() {
        let p = program_of(vec![
            Instruction::addi(Reg::R1, Reg::R10, 1),
            Instruction::addi(Reg::R2, Reg::R1, 1),
            Instruction::store(Reg::R11, Reg::R2, 0),
        ]);
        let shape = find(&p, &[0, 1]);
        assert_eq!(classify(&shape), Serialization::None);
    }

    #[test]
    fn upstream_serializing_input_is_bounded() {
        // Figure 4c: input to a mid constituent that feeds the output.
        // 0: r1 = r10 + 1
        // 1: r2 = r1 + r11   <- external input r11 at pos 1 (serializing)
        // 2: r3 = r2 + 1     <- output (consumed by store)
        let p = program_of(vec![
            Instruction::addi(Reg::R1, Reg::R10, 1),
            Instruction::add(Reg::R2, Reg::R1, Reg::R11),
            Instruction::addi(Reg::R3, Reg::R2, 1),
            Instruction::store(Reg::R12, Reg::R3, 0),
        ]);
        let shape = find(&p, &[0, 1, 2]);
        assert_eq!(shape.output_pos, Some(2));
        match classify(&shape) {
            Serialization::Bounded(b) => assert!(b >= 1 && b <= shape.total_latency()),
            other => panic!("expected bounded, got {other:?}"),
        }
    }

    #[test]
    fn downstream_serializing_input_is_unbounded() {
        // Figure 4d: output produced at pos 0; a disconnected later
        // constituent reads an external input.
        // 0: r1 = r10 + 1    <- output (consumed by store at 3)
        // 1: r2 = r11 + 1    <- dead (interior), external input at pos 1
        let p = program_of(vec![
            Instruction::addi(Reg::R1, Reg::R10, 1),
            Instruction::addi(Reg::R2, Reg::R11, 1),
            Instruction::store(Reg::R12, Reg::R1, 0),
        ]);
        let shape = find(&p, &[0, 1]);
        assert_eq!(shape.output_pos, Some(0));
        assert_eq!(classify(&shape), Serialization::Unbounded);
    }

    #[test]
    fn outputless_serializing_graph_is_bounded() {
        // alu + store pair: store's data arrives late, but there is no
        // register output to delay.
        let p = program_of(vec![
            Instruction::addi(Reg::R1, Reg::R10, 1),
            Instruction::store(Reg::R11, Reg::R12, 0),
        ]);
        let shape = find(&p, &[0, 1]);
        assert_eq!(shape.output_pos, None);
        assert!(matches!(classify(&shape), Serialization::Bounded(_)));
    }
}
