//! Semantics-preservation checking for rewritten programs.
//!
//! Rewriting reorders instructions within basic blocks and attaches
//! [`mg_isa::MgTag`]s; neither may change what the program computes. The
//! checker here executes the original and rewritten programs through the
//! functional [`Executor`] and compares final architectural state:
//!
//! * committed-instruction counts must match exactly;
//! * data registers `R0..R30` must be bit-identical (`R31`/LINK holds a
//!   layout-dependent return token, so it is excluded);
//! * the full memory image must be bit-identical.
//!
//! [`check_semantics_preserved`] reports a structured violation for the
//! differential harness; [`assert_semantics_preserved`] is the test-side
//! wrapper that panics with a readable message.

use mg_isa::Program;
use mg_workloads::{ExecError, Executor};
use std::fmt;

/// How a rewritten program diverged from the original.
#[derive(Clone, Debug, PartialEq)]
pub enum SemanticsViolation {
    /// The original program failed to execute — the comparison is
    /// meaningless, but the caller should know which side broke.
    OriginalFailed(ExecError),
    /// The rewritten program failed to execute.
    RewrittenFailed(ExecError),
    /// Different numbers of committed instructions.
    TraceLength {
        /// Committed instructions in the original program.
        original: usize,
        /// Committed instructions in the rewritten program.
        rewritten: usize,
    },
    /// A data register differs in the final state.
    Register {
        /// Architectural register index (0..31).
        reg: usize,
        /// Final value in the original program.
        original: u64,
        /// Final value in the rewritten program.
        rewritten: u64,
    },
    /// The final memory images differ.
    Memory {
        /// First differing address (lowest, for determinism).
        addr: u64,
        /// Value in the original program (`None` = never written).
        original: Option<u64>,
        /// Value in the rewritten program (`None` = never written).
        rewritten: Option<u64>,
    },
}

impl fmt::Display for SemanticsViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SemanticsViolation::OriginalFailed(e) => {
                write!(f, "original program failed to execute: {e}")
            }
            SemanticsViolation::RewrittenFailed(e) => {
                write!(f, "rewritten program failed to execute: {e}")
            }
            SemanticsViolation::TraceLength {
                original,
                rewritten,
            } => write!(
                f,
                "committed-instruction counts differ: original {original}, rewritten {rewritten}"
            ),
            SemanticsViolation::Register {
                reg,
                original,
                rewritten,
            } => write!(
                f,
                "register r{reg} differs: original {original:#x}, rewritten {rewritten:#x}"
            ),
            SemanticsViolation::Memory {
                addr,
                original,
                rewritten,
            } => write!(
                f,
                "memory at {addr:#x} differs: original {original:?}, rewritten {rewritten:?}"
            ),
        }
    }
}

impl std::error::Error for SemanticsViolation {}

/// Executes `original` and `rewritten` with the same initial memory and
/// compares final architectural state. `None` means the programs agree.
pub fn check_semantics_preserved(
    original: &Program,
    rewritten: &Program,
    init_mem: &[(u64, u64)],
) -> Option<SemanticsViolation> {
    let (t0, s0) = match Executor::new(original).run_with_mem(init_mem) {
        Ok(r) => r,
        Err(e) => return Some(SemanticsViolation::OriginalFailed(e)),
    };
    let (t1, s1) = match Executor::new(rewritten).run_with_mem(init_mem) {
        Ok(r) => r,
        Err(e) => return Some(SemanticsViolation::RewrittenFailed(e)),
    };
    if t0.len() != t1.len() {
        return Some(SemanticsViolation::TraceLength {
            original: t0.len(),
            rewritten: t1.len(),
        });
    }
    // R31 (LINK) holds a layout-dependent return token; compare the rest.
    for reg in 0..31 {
        if s0.regs[reg] != s1.regs[reg] {
            return Some(SemanticsViolation::Register {
                reg,
                original: s0.regs[reg],
                rewritten: s1.regs[reg],
            });
        }
    }
    if s0.mem != s1.mem {
        let addr = s0
            .mem
            .keys()
            .chain(s1.mem.keys())
            .filter(|a| s0.mem.get(a) != s1.mem.get(a))
            .min()
            .copied()
            .expect("maps differ at some address");
        return Some(SemanticsViolation::Memory {
            addr,
            original: s0.mem.get(&addr).copied(),
            rewritten: s1.mem.get(&addr).copied(),
        });
    }
    None
}

/// Test-side wrapper around [`check_semantics_preserved`].
///
/// # Panics
///
/// Panics with the violation message if the two programs diverge.
pub fn assert_semantics_preserved(
    original: &Program,
    rewritten: &Program,
    init_mem: &[(u64, u64)],
) {
    if let Some(v) = check_semantics_preserved(original, rewritten, init_mem) {
        panic!(
            "semantics not preserved rewriting `{}` -> `{}`: {v}",
            original.name(),
            rewritten.name()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mg_isa::{Instruction, ProgramBuilder, Reg};

    fn straight_line(name: &str, insts: &[Instruction]) -> Program {
        let mut pb = ProgramBuilder::new(name);
        let f = pb.func("main");
        let b = pb.block(f);
        pb.push_all(b, insts.iter().cloned());
        pb.push(b, Instruction::halt());
        pb.build().unwrap()
    }

    #[test]
    fn identical_programs_pass() {
        let p = straight_line(
            "id",
            &[
                Instruction::li(Reg::R1, 5),
                Instruction::addi(Reg::R2, Reg::R1, 3),
                Instruction::store(Reg::R10, Reg::R2, 0),
            ],
        );
        assert_eq!(check_semantics_preserved(&p, &p, &[]), None);
        assert_semantics_preserved(&p, &p, &[]);
    }

    #[test]
    fn register_divergence_is_reported() {
        let a = straight_line("a", &[Instruction::li(Reg::R1, 5)]);
        let b = straight_line("b", &[Instruction::li(Reg::R1, 6)]);
        match check_semantics_preserved(&a, &b, &[]) {
            Some(SemanticsViolation::Register {
                reg: 1,
                original: 5,
                rewritten: 6,
            }) => {}
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn memory_divergence_is_reported() {
        let a = straight_line(
            "a",
            &[
                Instruction::li(Reg::R1, 5),
                Instruction::store(Reg::R10, Reg::R1, 0),
            ],
        );
        let b = straight_line(
            "b",
            &[
                Instruction::li(Reg::R1, 5),
                Instruction::store(Reg::R10, Reg::R1, 8),
            ],
        );
        match check_semantics_preserved(&a, &b, &[]) {
            Some(SemanticsViolation::Memory {
                addr: 0,
                original: Some(5),
                rewritten: None,
            }) => {}
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn trace_length_divergence_is_reported() {
        let a = straight_line("a", &[Instruction::li(Reg::R1, 5)]);
        let b = straight_line("b", &[Instruction::li(Reg::R1, 5), Instruction::nop()]);
        match check_semantics_preserved(&a, &b, &[]) {
            Some(SemanticsViolation::TraceLength {
                original: 2,
                rewritten: 3,
            }) => {}
            other => panic!("unexpected: {other:?}"),
        }
    }
}
