//! Cell supervision for the sweep runner: panic isolation, wall-clock
//! watchdogs, bounded retry, and cooperative shutdown.
//!
//! [`SweepSpec::run`](crate::SweepSpec::run) delegates every cell
//! execution to [`run_cell_supervised`], which layers, outermost first:
//!
//! 1. **Shutdown check** — once [`request_shutdown`] has been called
//!    (cooperatively, or by the SIGINT/SIGTERM watcher a graceful sweep
//!    installs), cells that have not started yield
//!    [`BenchError::Interrupted`] instead of running; in-flight cells
//!    drain normally.
//! 2. **Retry with backoff** — *transient-class* failures (a panic or a
//!    watchdog timeout, the kinds injectable by [`crate::fault`] and
//!    producible by environmental flakiness) are retried up to the
//!    spec's retry budget with short exponential backoff. Deterministic
//!    failures ([`BenchError::CycleCap`], execution and configuration
//!    errors) are never retried: they would fail identically every time.
//! 3. **Watchdog** — with a limit configured, the cell runs on a helper
//!    thread and the worker waits with a deadline; a cell that overruns
//!    is reported as [`BenchError::TimedOut`] and its thread is
//!    *abandoned* (a stuck simulation cannot be cancelled from outside;
//!    the leaked thread is bounded by the retry budget and the process
//!    exits at sweep end anyway). Without a watchdog the cell runs
//!    inline and costs nothing extra.
//! 4. **Panic isolation** — the cell body (including fault-injection
//!    hooks) runs under [`std::panic::catch_unwind`]; a panicking cell
//!    becomes a [`BenchError::Panicked`] row carrying the payload, and
//!    the other 77 benchmarks of a figure still complete.
//!
//! [`run_cli`] is the binary entry point that turns all of this on:
//! journaling to `results/journal/`, resume via `MG_RESUME=1`, graceful
//! signal shutdown, and the conventional exit codes (`2` for
//! configuration errors, `130` after an interrupt).

use crate::harness::{BenchContext, BenchError, SchemeRun};
use crate::runner::{SweepCell, SweepResult, SweepSpec};
use mg_obs::{mg_debug, mg_error, mg_info, tele_counter};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

/// Process-wide shutdown flag. One flag (not per-sweep) because it
/// mirrors what a signal means: this *process* should wind down.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// Requests cooperative sweep shutdown: cells not yet started report
/// [`BenchError::Interrupted`], in-flight cells drain, the journal keeps
/// every finished row. Safe to call from any thread (including the
/// signal watcher).
pub fn request_shutdown() {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Whether shutdown has been requested and not yet cleared.
pub fn shutdown_requested() -> bool {
    SHUTDOWN.load(Ordering::SeqCst)
}

/// Re-arms after a drained shutdown so a later sweep in the same process
/// (tests, resume-in-process) can run.
pub fn clear_shutdown() {
    SHUTDOWN.store(false, Ordering::SeqCst);
}

/// Renders a `catch_unwind` payload for [`BenchError::Panicked`].
pub(crate) fn panic_payload(e: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = e.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = e.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// What a cell returns besides the condensed run: the observer report
/// when the sweep is instrumented, nothing otherwise.
#[cfg(feature = "obs")]
pub(crate) type ObsPayload = Option<Box<mg_obs::ObsReport>>;
/// See the `obs` variant.
#[cfg(not(feature = "obs"))]
pub(crate) type ObsPayload = ();

/// The observer configuration handed to each cell (absent without the
/// `obs` feature).
#[cfg(feature = "obs")]
pub(crate) type ObsArg = Option<mg_obs::ObsConfig>;
/// See the `obs` variant.
#[cfg(not(feature = "obs"))]
pub(crate) type ObsArg = ();

/// The raw cell body: fault hooks, then the (optionally instrumented)
/// scheme run. Everything that can panic or stall lives in here, so the
/// supervision layers wrap exactly this.
fn run_cell_once(
    ctx: &BenchContext,
    cell: &SweepCell,
    cell_idx: usize,
    obs: ObsArg,
) -> Result<(SchemeRun, ObsPayload), BenchError> {
    crate::fault::before_cell(&ctx.spec.name, cell_idx);
    #[cfg(feature = "obs")]
    {
        if let Some(oc) = obs {
            return ctx
                .try_run_with_obs(cell.scheme, &cell.machine, cell.mg, cell.sel.as_ref(), oc)
                .map(|(run, report)| (run, Some(Box::new(report))));
        }
        ctx.try_run_with(cell.scheme, &cell.machine, cell.mg, cell.sel.as_ref())
            .map(|run| (run, None))
    }
    #[cfg(not(feature = "obs"))]
    {
        let () = obs;
        ctx.try_run_with(cell.scheme, &cell.machine, cell.mg, cell.sel.as_ref())
            .map(|run| (run, ()))
    }
}

/// One supervised attempt: panic isolation always, watchdog when a limit
/// is set.
fn attempt_cell(
    ctx: &Arc<BenchContext>,
    cell: &SweepCell,
    cell_idx: usize,
    watchdog: Option<Duration>,
    obs: ObsArg,
) -> Result<(SchemeRun, ObsPayload), BenchError> {
    let bench = ctx.spec.name.clone();
    let Some(limit) = watchdog else {
        return match catch_unwind(AssertUnwindSafe(|| run_cell_once(ctx, cell, cell_idx, obs))) {
            Ok(res) => res,
            Err(e) => Err(BenchError::Panicked {
                bench,
                cell: cell_idx,
                payload: panic_payload(e),
            }),
        };
    };
    let (tx, rx) = mpsc::channel();
    let ctx2 = Arc::clone(ctx);
    let cell2 = cell.clone();
    let bench2 = bench.clone();
    let spawned = std::thread::Builder::new()
        .name(format!("mg-cell-{bench}-{cell_idx}"))
        .spawn(move || {
            let out = match catch_unwind(AssertUnwindSafe(|| {
                run_cell_once(&ctx2, &cell2, cell_idx, obs)
            })) {
                Ok(res) => res,
                Err(e) => Err(BenchError::Panicked {
                    bench: bench2,
                    cell: cell_idx,
                    payload: panic_payload(e),
                }),
            };
            let _ = tx.send(out);
        });
    let Ok(handle) = spawned else {
        // Cannot spawn a helper (thread exhaustion): run inline without
        // a watchdog rather than fail the cell.
        return attempt_cell(ctx, cell, cell_idx, None, obs);
    };
    match rx.recv_timeout(limit) {
        Ok(res) => {
            let _ = handle.join();
            res
        }
        Err(_) => Err(BenchError::TimedOut {
            bench,
            cell: cell_idx,
            limit_ms: u64::try_from(limit.as_millis()).unwrap_or(u64::MAX),
        }),
    }
}

/// Whether an error is worth retrying: only the transient class. A
/// deterministic failure retried N times is the same failure N times
/// slower.
fn transient(e: &BenchError) -> bool {
    matches!(e, BenchError::Panicked { .. } | BenchError::TimedOut { .. })
}

/// Runs one cell under the full supervision stack. Returns the result
/// and how many retries were spent on it.
pub(crate) fn run_cell_supervised(
    ctx: &Arc<BenchContext>,
    cell: &SweepCell,
    cell_idx: usize,
    watchdog: Option<Duration>,
    max_retries: u32,
    obs: ObsArg,
) -> (Result<(SchemeRun, ObsPayload), BenchError>, u32) {
    let mut retries = 0u32;
    loop {
        if shutdown_requested() {
            return (
                Err(BenchError::Interrupted {
                    bench: ctx.spec.name.clone(),
                }),
                retries,
            );
        }
        let res = {
            let _cell_span = mg_obs::span("cell", format!("{}/cell{cell_idx}", ctx.spec.name));
            attempt_cell(ctx, cell, cell_idx, watchdog, obs)
        };
        match &res {
            Err(BenchError::Panicked { .. }) => {
                tele_counter!("mg_supervisor_panics_total").inc();
            }
            Err(BenchError::TimedOut { .. }) => {
                tele_counter!("mg_supervisor_watchdog_fires_total").inc();
            }
            _ => {}
        }
        match &res {
            Err(e) if transient(e) && retries < max_retries => {
                retries += 1;
                tele_counter!("mg_supervisor_retries_total").inc();
                // Exponential backoff, 10ms doubling to a 500ms cap:
                // enough to ride out environmental hiccups without
                // stalling a sweep on a deterministic panic.
                let backoff_ms = (10u64 << (retries - 1).min(6)).min(500);
                mg_debug!("{e}; retry {retries}/{max_retries} after {backoff_ms}ms");
                std::thread::sleep(Duration::from_millis(backoff_ms));
            }
            _ => return (res, retries),
        }
    }
}

/// Runs one cell under the full supervision stack without the pipeline
/// observer attached — the entry point `mg-serve` workers use, sharing
/// shutdown, retry, and watchdog semantics with batch sweeps. Returns
/// the run (or its error) and how many retries were spent on it.
pub fn supervise_cell(
    ctx: &Arc<BenchContext>,
    cell: &SweepCell,
    cell_idx: usize,
    watchdog: Option<Duration>,
    max_retries: u32,
) -> (Result<SchemeRun, BenchError>, u32) {
    #[cfg(feature = "obs")]
    let obs: ObsArg = None;
    #[cfg(not(feature = "obs"))]
    let obs: ObsArg = ();
    let (res, retries) = run_cell_supervised(ctx, cell, cell_idx, watchdog, max_retries, obs);
    (res.map(|(run, _payload)| run), retries)
}

/// [`supervise_cell`] with an optional absolute deadline, for callers
/// executing on behalf of a remote client that attached a `deadline_ms`
/// budget. The effective watchdog is capped at the remaining budget so a
/// cell never runs past the deadline by more than the watchdog poll, an
/// already-expired deadline short-circuits to [`BenchError::TimedOut`]
/// without running anything, and the retry budget is zeroed (a retry
/// could only finish even later). `deadline: None` is exactly
/// [`supervise_cell`].
pub fn supervise_cell_until(
    ctx: &Arc<BenchContext>,
    cell: &SweepCell,
    cell_idx: usize,
    watchdog: Option<Duration>,
    max_retries: u32,
    deadline: Option<std::time::Instant>,
) -> (Result<SchemeRun, BenchError>, u32) {
    let Some(deadline) = deadline else {
        return supervise_cell(ctx, cell, cell_idx, watchdog, max_retries);
    };
    let remaining = deadline.saturating_duration_since(std::time::Instant::now());
    if remaining.is_zero() {
        tele_counter!("mg_supervisor_deadline_expiries_total").inc();
        return (
            Err(BenchError::TimedOut {
                bench: ctx.spec.name.clone(),
                cell: cell_idx,
                limit_ms: 0,
            }),
            0,
        );
    }
    let capped = Some(watchdog.map_or(remaining, |w| w.min(remaining)));
    supervise_cell(ctx, cell, cell_idx, capped, 0)
}

/// The standard binary entry point for a sweep: journaled, resumable,
/// and signal-aware. All `MG_*` knobs arrive through
/// [`crate::config::Config::init_cli`] — the one environment parse
/// point.
///
/// - Journals every finished row under `results/journal/` and clears the
///   journal when the sweep completes without interruption (error rows
///   are a completed sweep; only a shutdown leaves the journal behind).
///   `MG_JOURNAL_KEEP=1` keeps it anyway, for audit trails and CI
///   artifacts.
/// - `MG_RESUME=1` replays journaled rows from a previous interrupted
///   invocation of the same sweep bit-identically.
/// - SIGINT/SIGTERM drain in-flight benchmarks, flush the journal, and
///   exit `130` with a resume hint; a second signal aborts immediately.
/// - Configuration errors (`MG_JOBS`, `MG_FAULT`, any malformed knob)
///   print a diagnostic and exit `2` instead of panicking.
/// - At sweep exit (completed *or* interrupted) the global telemetry
///   registry is snapshotted to `results/TELEMETRY_<bin>.json`, and
///   with `MG_TRACE=1` the collected spans are drained to
///   `results/TRACE_<bin>.mgb` (a checksummed binary record;
///   `MG_TRACE=json` additionally writes the Chrome trace JSON view
///   for Perfetto).
pub fn run_cli(spec: SweepSpec) -> SweepResult {
    let cfg = crate::config::Config::init_cli();
    let spec = spec
        .journal(true)
        .graceful_shutdown(true)
        .resume(cfg.resume)
        .jobs_if_unset(cfg.effective_jobs());
    match spec.try_run() {
        Err(e) => {
            mg_error!("sweep configuration error: {e}");
            std::process::exit(2);
        }
        Ok(result) => {
            write_telemetry_artifacts(&bin_name(), cfg.trace, cfg.trace_json);
            if result.summary.interrupted > 0 {
                std::process::exit(130);
            }
            if !cfg.journal_keep {
                if let Some(dir) = &result.summary.journal_dir {
                    let _ = std::fs::remove_dir_all(dir);
                }
            }
            result
        }
    }
}

/// The invoking binary's file stem, sanitized for use in a results
/// file name (`fig1`, `perf`, ...).
fn bin_name() -> String {
    let name = std::env::args()
        .next()
        .and_then(|p| {
            std::path::Path::new(&p)
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
        })
        .unwrap_or_default();
    let sanitized: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if sanitized.is_empty() {
        "sweep".to_string()
    } else {
        sanitized
    }
}

/// Snapshots the telemetry registry to `results/TELEMETRY_<bin>.json`
/// and, when span collection is on, drains the span buffer to
/// `results/TRACE_<bin>.mgb` (a checksummed [`crate::binfmt`] record;
/// with `trace_json` also the legacy Chrome-JSON view). Best-effort: a
/// failed write logs an error but never fails the sweep that produced
/// the rows.
pub fn write_telemetry_artifacts(bin: &str, trace: bool, trace_json: bool) {
    use crate::binfmt::{self, RecordKind};
    let path =
        crate::harness::save_json(&format!("TELEMETRY_{bin}"), &mg_obs::telemetry::snapshot());
    mg_info!("telemetry snapshot written to {}", path.display());
    if trace && mg_obs::span::enabled() {
        let dir = std::path::Path::new("results");
        let _ = std::fs::create_dir_all(dir);
        let doc = mg_obs::span::chrome_trace(mg_obs::span::drain());
        let n = doc.traceEvents.len();
        let path = dir.join(format!("TRACE_{bin}.{}", binfmt::EXT));
        let bytes = binfmt::to_record(RecordKind::SpanTrace, binfmt::SPAN_TRACE_SCHEMA, &doc);
        match std::fs::write(&path, bytes) {
            Ok(()) => mg_info!(
                "trace with {n} spans written to {} (export with `cargo run --bin export_json`)",
                path.display()
            ),
            Err(e) => mg_error!("failed to write trace {}: {e}", path.display()),
        }
        if trace_json {
            let path = dir.join(format!("TRACE_{bin}.json"));
            match serde_json::to_string(&doc) {
                Ok(json) => match std::fs::write(&path, json) {
                    Ok(()) => mg_info!(
                        "trace JSON view written to {} (open in Perfetto)",
                        path.display()
                    ),
                    Err(e) => mg_error!("failed to write trace view {}: {e}", path.display()),
                },
                Err(e) => mg_error!("failed to serialize trace view: {e}"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shutdown_flag_round_trips() {
        clear_shutdown();
        assert!(!shutdown_requested());
        request_shutdown();
        assert!(shutdown_requested());
        clear_shutdown();
        assert!(!shutdown_requested());
    }

    #[test]
    fn panic_payloads_render_for_str_string_and_other() {
        let s = catch_unwind(|| panic!("plain message")).unwrap_err();
        assert_eq!(panic_payload(s), "plain message");
        let owned = catch_unwind(|| panic!("{} {}", "formatted", 42)).unwrap_err();
        assert_eq!(panic_payload(owned), "formatted 42");
        let other = catch_unwind(|| std::panic::panic_any(7u32)).unwrap_err();
        assert_eq!(panic_payload(other), "non-string panic payload");
    }

    #[test]
    fn transient_classification_matches_the_retry_policy() {
        use crate::harness::Scheme;
        assert!(transient(&BenchError::Panicked {
            bench: "b".into(),
            cell: 0,
            payload: "p".into(),
        }));
        assert!(transient(&BenchError::TimedOut {
            bench: "b".into(),
            cell: 0,
            limit_ms: 1,
        }));
        assert!(!transient(&BenchError::CycleCap {
            bench: "b".into(),
            scheme: Scheme::NoMg,
        }));
        assert!(!transient(&BenchError::Config {
            knob: "MG_JOBS".into(),
            value: "0".into(),
            detail: "d".into(),
        }));
        assert!(!transient(&BenchError::Rewrite {
            bench: "b".into(),
            scheme: Scheme::StructAll,
            detail: "unschedulable".into(),
        }));
        assert!(!transient(&BenchError::Interrupted { bench: "b".into() }));
    }
}
