//! Crash-safe sweep journal: finished benchmark rows persisted one file
//! at a time, so an interrupted multi-minute campaign resumes instead
//! of restarting.
//!
//! Layout: `results/journal/sweep-<key>/row-<idx>-<rowkey>.mgb`, where
//! `<key>` identifies the sweep shape (cells, inputs, training machine,
//! machine fingerprint) and `<rowkey>` is a content hash over everything
//! that determines the row — the same ingredients as the context
//! cache's key plus the cell list. A journal can therefore never replay
//! a row into a sweep it does not belong to: a changed spec, machine,
//! or schema changes the key and the stale record is simply ignored.
//!
//! Every record is written via unique-temp-file + atomic rename as a
//! checksummed [`crate::binfmt`] container
//! ([`crate::binfmt::RecordKind::JournalRow`]), so a record either
//! exists completely and verifies, or it is quarantined and treated as
//! absent; a process killed mid-write never leaves torn state. Rows
//! from the JSON era (`row-*.json`, FNV-checksummed envelope) are still
//! read transparently for one schema generation, so a sweep
//! interrupted before an upgrade resumes bit-identically after it.
//! Only *finished* rows are journaled — failed cells are finished
//! (their errors are deterministic and replay bit-identically) but
//! rows skipped by a shutdown are not, so a resume re-runs exactly the
//! work that never completed.
//!
//! Journal I/O is best-effort, like the context cache: an unwritable
//! directory degrades to journaling nothing — but unlike the JSON era,
//! every write failure is logged and counted
//! (`mg_journal_write_errors_total`) instead of silently swallowed, and
//! corrupt records land in `<sweep-dir>/quarantine/` for post-mortem
//! (`mg_journal_quarantined_total`).
//!
//! # Key derivation
//!
//! Row identity is shared by every front end — a CLI figure binary and
//! an `mg-serve` submitted job that describe the same work derive the
//! same keys, so results coalesce and replay across them:
//!
//! 1. [`sweep_repr`] renders the sweep *shape*: the machine-family
//!    fingerprint ([`machine_fingerprint`]), the training machine, both
//!    input selections, and the ordered cell list, all via `Debug`
//!    formatting of plain-data configs (deterministic, and any shape
//!    change conservatively invalidates old records).
//! 2. [`row_key`] hashes (FNV-1a, via [`stable_hash64`]) the journal
//!    schema version, the benchmark's name and params, and the shared
//!    `sweep_repr` — everything that determines the row's bytes.
//! 3. The sweep directory name is `stable_hash64(sweep_repr)`; each row
//!    file embeds its `row_key` and is revalidated on load.
//!
//! Anything that would change a result — a different machine, cell
//! order, input, `target_dyn`, schema bump — lands in a different key;
//! anything that would not (worker count, logging, who submitted the
//! job) is deliberately excluded.

use crate::binfmt::{self, RecordKind};
use crate::cache::{open_record, quarantine_into, stable_hash64, CacheOutcome};
use crate::harness::{machine_fingerprint, BenchError, SchemeRun};
use crate::runner::BenchRows;
use mg_obs::mg_error;
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Version tag for journal records. Bump on any change to the record
/// shape or semantics; old records are then ignored (not replayed).
pub const JOURNAL_SCHEMA: u32 = 1;

/// Root directory for sweep journals, relative to the working directory
/// (the workspace root for `cargo run`).
pub const JOURNAL_DIR: &str = "results/journal";

/// A cell result as persisted; mirrors `Result<SchemeRun, BenchError>`,
/// which the serde shim cannot encode directly.
#[derive(Clone, Debug, Serialize, Deserialize)]
enum JournalCell {
    Ok(SchemeRun),
    Err(BenchError),
}

/// One journaled benchmark row: everything needed to reconstruct its
/// [`BenchRows`] without re-running any cell.
#[derive(Serialize, Deserialize)]
struct JournalRow {
    schema_version: u32,
    bench: String,
    row_index: usize,
    /// Row content key in hex, revalidated against the spec on load.
    row_key: String,
    cells: Vec<JournalCell>,
    /// Original wall time of the task, for summary accounting.
    wall_ms: u64,
    /// Original context-cache outcome tag (`mem`/`disk`/`miss`).
    cache: Option<String>,
}

/// Where one sweep's records live, plus the per-row content keys.
///
/// Public because `mg-serve` journals its accepted jobs through exactly
/// this layer (one record per *cell*, via [`Journal::store_cell`] /
/// [`Journal::load_cell`]), so a SIGKILL'd daemon restarted on the same
/// results directory re-derives finished cells instead of re-executing
/// them — with the same atomic-rename + checksum guarantees CLI sweeps
/// get.
#[derive(Clone, Debug)]
pub struct Journal {
    dir: PathBuf,
    row_keys: Vec<u64>,
}

impl Journal {
    /// Opens (without creating) the journal for a sweep. `row_keys[i]`
    /// must be the content key of benchmark row `i`; `sweep_key` names
    /// the directory.
    pub fn new(root: &Path, sweep_key: u64, row_keys: Vec<u64>) -> Journal {
        Journal {
            dir: root.join(format!("sweep-{sweep_key:016x}")),
            row_keys,
        }
    }

    /// The journal's directory (for resume hints and artifacts).
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn row_path(&self, idx: usize) -> PathBuf {
        self.dir.join(format!(
            "row-{idx:04}-{:016x}.{}",
            self.row_keys[idx],
            binfmt::EXT
        ))
    }

    fn legacy_row_path(&self, idx: usize) -> PathBuf {
        self.dir
            .join(format!("row-{idx:04}-{:016x}.json", self.row_keys[idx]))
    }

    fn quarantine(&self, path: &Path, why: &str) {
        quarantine_into(
            &self.dir.join("quarantine"),
            path,
            why,
            "mg_journal_quarantined_total",
        );
    }

    /// Loads and validates row `idx`, reconstructing its [`BenchRows`].
    /// `None` on any mismatch — the caller then just re-runs the row.
    /// Absent, stale-schema, wrong-key, and wrong-cell-count records
    /// miss silently; corrupt records (torn, bit-flipped, truncated)
    /// additionally move to the sweep's `quarantine/` directory.
    pub fn load_row(&self, idx: usize, cell_count: usize) -> Option<BenchRows> {
        let path = self.row_path(idx);
        let row = match std::fs::read(&path) {
            Ok(bytes) => {
                match binfmt::from_record::<JournalRow>(
                    &bytes,
                    RecordKind::JournalRow,
                    JOURNAL_SCHEMA,
                ) {
                    Ok(row) => row,
                    Err(err) => {
                        if err.is_corrupt() {
                            self.quarantine(&path, &err.to_string());
                        }
                        return None;
                    }
                }
            }
            Err(_) => self.load_legacy_row(idx)?,
        };
        if row.schema_version != JOURNAL_SCHEMA
            || row.row_index != idx
            || row.row_key != format!("{:016x}", self.row_keys[idx])
            || row.cells.len() != cell_count
        {
            return None;
        }
        mg_obs::tele_counter!("mg_journal_replays_total").inc();
        Some(BenchRows {
            bench: row.bench,
            runs: row
                .cells
                .into_iter()
                .map(|c| match c {
                    JournalCell::Ok(run) => Ok(run),
                    JournalCell::Err(e) => Err(e),
                })
                .collect(),
            wall: Duration::from_millis(row.wall_ms),
            cache: row.cache.as_deref().and_then(CacheOutcome::from_tag),
            replayed: true,
            retries: 0,
            #[cfg(feature = "obs")]
            obs: None,
        })
    }

    /// Reads a JSON-era row record (checksummed [`DiskRecord`]
    /// envelope around a JSON [`JournalRow`]), the on-disk format
    /// before the binary container. Supported read-only for one schema
    /// generation so in-flight sweeps resume across the upgrade;
    /// records that fail the envelope checksum or JSON parse are
    /// quarantined like corrupt binary ones.
    ///
    /// [`DiskRecord`]: crate::cache::seal_record
    fn load_legacy_row(&self, idx: usize) -> Option<JournalRow> {
        let path = self.legacy_row_path(idx);
        let bytes = std::fs::read(&path).ok()?;
        let Some(payload) = open_record(&bytes) else {
            self.quarantine(&path, "legacy journal record failed its checksum");
            return None;
        };
        match serde_json::from_str(&payload) {
            Ok(row) => Some(row),
            Err(err) => {
                self.quarantine(&path, &format!("legacy journal record unparsable: {err}"));
                None
            }
        }
    }

    /// Loads the single-cell record written by [`Journal::store_cell`]
    /// for cell `idx`; `None` on any mismatch, like [`Journal::load_row`].
    pub fn load_cell(&self, idx: usize) -> Option<Result<SchemeRun, BenchError>> {
        self.load_row(idx, 1)
            .and_then(|rows| rows.runs.into_iter().next())
    }

    /// Persists one finished cell outcome as a single-cell record — the
    /// granularity `mg-serve` workers journal at, so a daemon killed
    /// mid-job loses at most the one cell in flight. Keeping the
    /// [`BenchRows`] construction here (rather than in `mg-serve`) keeps
    /// the feature-gated observer field out of downstream crates.
    pub fn store_cell(
        &self,
        idx: usize,
        bench: &str,
        outcome: &Result<SchemeRun, BenchError>,
        wall: Duration,
    ) {
        let rows = BenchRows {
            bench: bench.to_string(),
            runs: vec![outcome.clone()],
            wall,
            cache: None,
            replayed: false,
            retries: 0,
            #[cfg(feature = "obs")]
            obs: None,
        };
        self.store_row(idx, &rows);
    }

    /// Persists a finished row (atomic temp + rename, checksummed
    /// binary record). Best-effort: failures journal nothing and the
    /// sweep carries on — but every failure is logged and counted, so
    /// a journal that quietly stops persisting is visible.
    pub fn store_row(&self, idx: usize, rows: &BenchRows) {
        let row = JournalRow {
            schema_version: JOURNAL_SCHEMA,
            bench: rows.bench.clone(),
            row_index: idx,
            row_key: format!("{:016x}", self.row_keys[idx]),
            cells: rows
                .runs
                .iter()
                .map(|r| match r {
                    Ok(run) => JournalCell::Ok(run.clone()),
                    Err(e) => JournalCell::Err(e.clone()),
                })
                .collect(),
            wall_ms: u64::try_from(rows.wall.as_millis()).unwrap_or(u64::MAX),
            cache: rows.cache.map(|c| c.tag().to_string()),
        };
        let bytes = binfmt::to_record(RecordKind::JournalRow, JOURNAL_SCHEMA, &row);
        if let Err(err) = std::fs::create_dir_all(&self.dir) {
            write_failed("create journal dir", &self.dir, &err);
            return;
        }
        static TMP_SEQ: AtomicU64 = AtomicU64::new(0);
        let tmp = self.dir.join(format!(
            "row-{idx:04}.tmp.{}.{}",
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        if let Err(err) = std::fs::write(&tmp, bytes) {
            write_failed("write journal record", &tmp, &err);
            return;
        }
        match std::fs::rename(&tmp, self.row_path(idx)) {
            Ok(()) => {
                mg_obs::tele_counter!("mg_journal_appends_total").inc();
            }
            Err(err) => {
                write_failed("publish journal record", &self.row_path(idx), &err);
                let _ = std::fs::remove_file(&tmp);
            }
        }
    }

    /// Removes the sweep's journal directory, as
    /// [`crate::supervisor::run_cli`] does (via the summary's
    /// `journal_dir`) after a sweep completes uninterrupted: its records
    /// have served their purpose and would otherwise accumulate per
    /// spec forever.
    #[cfg(test)]
    pub(crate) fn clear(&self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

/// Logs and counts a failed journal write: the row simply re-runs on
/// resume, but the operator can see the journal is not persisting
/// instead of discovering it after a crash.
fn write_failed(what: &str, path: &Path, err: &dyn std::fmt::Display) {
    mg_obs::tele_counter!("mg_journal_write_errors_total").inc();
    mg_error!(
        "journal: failed to {what} {} ({err}); this row will re-run on resume",
        path.display()
    );
}

/// The content key of benchmark row `bench` inside a sweep whose cells
/// and training setup render as `sweep_repr`. Uses `Debug` formatting of
/// plain-data configs, like the context cache: deterministic, and any
/// shape change conservatively invalidates old records. Public so other
/// front ends (`mg-serve`) can derive the identical key for the
/// identical work; see the module-level *Key derivation* section.
pub fn row_key(bench: &mg_workloads::BenchmarkSpec, sweep_repr: &str) -> u64 {
    let repr = format!(
        "v{JOURNAL_SCHEMA}|{}|{:?}|{sweep_repr}",
        bench.name, bench.params
    );
    stable_hash64(repr.as_bytes())
}

/// The sweep-shape repr shared by every row key (and, hashed, the
/// journal directory name): cells, input selection, training machine,
/// and the machine-family fingerprint. See the module-level *Key
/// derivation* section.
pub fn sweep_repr(
    train_cfg: &mg_sim::MachineConfig,
    train_input: &crate::runner::InputSel,
    run_input: &crate::runner::InputSel,
    cells: &[crate::runner::SweepCell],
) -> String {
    format!(
        "{}|{train_cfg:?}|{train_input:?}|{run_input:?}|{cells:?}",
        machine_fingerprint()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::Scheme;

    fn demo_rows(bench: &str) -> BenchRows {
        BenchRows {
            bench: bench.to_string(),
            runs: vec![
                Ok(SchemeRun {
                    scheme: Scheme::StructAll,
                    ipc: 1.25,
                    cycles: 4_800,
                    coverage: 0.375,
                    est_coverage: 0.4,
                    disabled_templates: 0,
                    serialized_handles: 12,
                    dl1_miss_rate: 0.01,
                }),
                Err(BenchError::Panicked {
                    bench: bench.to_string(),
                    cell: 1,
                    payload: "mg-fault: injected panic".into(),
                }),
            ],
            wall: Duration::from_millis(1234),
            cache: Some(CacheOutcome::DiskHit),
            replayed: false,
            retries: 0,
            #[cfg(feature = "obs")]
            obs: None,
        }
    }

    fn temp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mg-journal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn store_then_load_round_trips_ok_and_error_cells() {
        let root = temp_root("roundtrip");
        let journal = Journal::new(&root, 0xabcd, vec![11, 22]);
        let rows = demo_rows("mib_sha");
        journal.store_row(1, &rows);
        let back = journal.load_row(1, 2).expect("row replays");
        assert!(back.replayed);
        assert_eq!(back.bench, "mib_sha");
        assert_eq!(back.wall, Duration::from_millis(1234));
        assert_eq!(back.cache, Some(CacheOutcome::DiskHit));
        let ok = back.runs[0].as_ref().unwrap();
        assert_eq!(ok.cycles, 4_800);
        assert_eq!(ok.ipc.to_bits(), 1.25f64.to_bits(), "floats replay by bit");
        assert!(matches!(
            back.runs[1],
            Err(BenchError::Panicked { cell: 1, .. })
        ));
        // Absent rows and wrong cell counts do not replay.
        assert!(journal.load_row(0, 2).is_none());
        assert!(journal.load_row(1, 3).is_none());
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn corrupt_or_rekeyed_records_are_ignored() {
        let root = temp_root("corrupt");
        let journal = Journal::new(&root, 1, vec![42]);
        journal.store_row(0, &demo_rows("mib_crc32"));
        assert!(journal.load_row(0, 2).is_some());

        // Truncate the record: torn writes never replay, and the torn
        // file moves to quarantine for post-mortem.
        let path = journal.row_path(0);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert!(journal.load_row(0, 2).is_none());
        assert!(!path.exists(), "torn record removed from the journal");
        let quarantined = || {
            std::fs::read_dir(journal.dir().join("quarantine"))
                .map(|d| d.flatten().count())
                .unwrap_or(0)
        };
        assert_eq!(quarantined(), 1, "torn record preserved in quarantine");

        // Flip one payload bit: the checksum catches it.
        journal.store_row(0, &demo_rows("mib_crc32"));
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        assert!(journal.load_row(0, 2).is_none());
        assert_eq!(quarantined(), 2, "bit-flipped record quarantined too");

        // Same directory, different row key: stale records never replay
        // (and are not quarantined — they are valid, just not ours).
        journal.store_row(0, &demo_rows("mib_crc32"));
        let rekeyed = Journal::new(&root, 1, vec![43]);
        assert!(rekeyed.load_row(0, 2).is_none());

        journal.clear();
        assert!(!journal.dir().exists());
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn legacy_json_rows_resume_alongside_binary_rows() {
        let root = temp_root("mixed");
        let journal = Journal::new(&root, 0xdead, vec![5, 6]);
        // Row 1 written by the current binary writer; row 0 fabricated
        // byte-for-byte as the JSON-era writer produced it.
        journal.store_row(1, &demo_rows("mib_sha"));
        let rows = demo_rows("mib_crc32");
        let legacy = JournalRow {
            schema_version: JOURNAL_SCHEMA,
            bench: rows.bench.clone(),
            row_index: 0,
            row_key: format!("{:016x}", 5u64),
            cells: rows
                .runs
                .iter()
                .map(|r| match r {
                    Ok(run) => JournalCell::Ok(run.clone()),
                    Err(e) => JournalCell::Err(e.clone()),
                })
                .collect(),
            wall_ms: 1234,
            cache: rows.cache.map(|c| c.tag().to_string()),
        };
        std::fs::create_dir_all(journal.dir()).unwrap();
        let payload = serde_json::to_string(&legacy).unwrap();
        let sealed = crate::cache::seal_record(payload).unwrap();
        std::fs::write(journal.legacy_row_path(0), sealed).unwrap();

        // Both eras replay from the same directory.
        let back0 = journal.load_row(0, 2).expect("legacy JSON row replays");
        let back1 = journal.load_row(1, 2).expect("binary row replays");
        assert_eq!(back0.bench, "mib_crc32");
        assert_eq!(back1.bench, "mib_sha");
        // Replay is bit-identical across eras: the same demo cells come
        // back with the same float bits and the same error payloads.
        let a = back0.runs[0].as_ref().unwrap();
        let b = back1.runs[0].as_ref().unwrap();
        assert_eq!(a.ipc.to_bits(), b.ipc.to_bits());
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(back0.wall, back1.wall);
        assert!(matches!(
            back0.runs[1],
            Err(BenchError::Panicked { cell: 1, .. })
        ));
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn cell_records_round_trip_for_serve_recovery() {
        let root = temp_root("cell");
        let journal = Journal::new(&root, 0xfeed, vec![1, 2, 3]);
        let ok = demo_rows("mib_sha").runs[0].clone();
        journal.store_cell(2, "mib_sha", &ok, Duration::from_millis(7));
        let back = journal.load_cell(2).expect("cell replays");
        assert_eq!(back.as_ref().unwrap().cycles, 4_800);
        let err = demo_rows("mib_sha").runs[1].clone();
        journal.store_cell(0, "mib_sha", &err, Duration::from_millis(1));
        assert!(matches!(
            journal.load_cell(0),
            Some(Err(BenchError::Panicked { .. }))
        ));
        assert!(journal.load_cell(1).is_none(), "unwritten cells miss");
        // A cell record never replays as a multi-cell row.
        assert!(journal.load_row(2, 2).is_none());
        let _ = std::fs::remove_dir_all(&root);
    }

    /// Regenerates the checked-in journal fixtures under
    /// `tests/format/` — one legacy JSON row and one binary row of the
    /// same deterministic demo payload. Run explicitly when the record
    /// shape changes generation:
    /// `cargo test -p mg-bench --lib -- --ignored regenerate_journal_fixtures`
    #[test]
    #[ignore = "writes checked-in fixtures; run on schema generation changes"]
    fn regenerate_journal_fixtures() {
        let root = PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/tests/format"));
        let journal = Journal::new(&root, 0xf1, vec![0x2a, 0x2b]);
        let _ = std::fs::remove_dir_all(journal.dir());
        std::fs::create_dir_all(journal.dir()).unwrap();
        // Binary row via the current writer.
        journal.store_row(1, &demo_rows("mib_crc32"));
        // Legacy row byte-for-byte as the JSON-era writer produced it.
        let rows = demo_rows("mib_sha");
        let legacy = JournalRow {
            schema_version: JOURNAL_SCHEMA,
            bench: rows.bench.clone(),
            row_index: 0,
            row_key: format!("{:016x}", 0x2au64),
            cells: rows
                .runs
                .iter()
                .map(|r| match r {
                    Ok(run) => JournalCell::Ok(run.clone()),
                    Err(e) => JournalCell::Err(e.clone()),
                })
                .collect(),
            wall_ms: 1234,
            cache: rows.cache.map(|c| c.tag().to_string()),
        };
        let payload = serde_json::to_string(&legacy).unwrap();
        let sealed = crate::cache::seal_record(payload).unwrap();
        std::fs::write(journal.legacy_row_path(0), sealed).unwrap();
    }

    #[test]
    fn row_keys_separate_benches_and_sweep_shapes() {
        let a = mg_workloads::BenchmarkSpec::new(mg_workloads::Suite::MiBench, "sha");
        let b = mg_workloads::BenchmarkSpec::new(mg_workloads::Suite::MiBench, "crc32");
        let k = row_key(&a, "shape-1");
        assert_eq!(k, row_key(&a, "shape-1"), "key is stable");
        assert_ne!(k, row_key(&b, "shape-1"));
        assert_ne!(k, row_key(&a, "shape-2"));
        let mut short = a.clone();
        short.params.target_dyn = 1_000;
        assert_ne!(k, row_key(&short, "shape-1"), "params are part of the key");
    }
}
