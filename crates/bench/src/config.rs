//! The single parse point for every `MG_*` environment knob.
//!
//! Library code in this workspace never reads `std::env` for `MG_*`
//! variables: the environment is a *compat shim* consumed exactly once,
//! at a binary's entry point, by [`Config::from_env`]. The result is a
//! plain typed value that can also be constructed directly (tests,
//! `mg-serve`, embedders) without touching process state. Applying a
//! config ([`Config::apply`]) pushes the knobs into the subsystems that
//! honour them — the logger level, the disk-cache size cap, and (with
//! the `fault-inject` feature) the fault plan.
//!
//! Knobs and their environment spellings:
//!
//! | variable | field | meaning |
//! |---|---|---|
//! | `MG_JOBS` | [`Config::jobs`] | sweep worker count (positive integer) |
//! | `MG_CACHE_MAX_MB` | [`Config::cache_max_mb`] | disk context-cache size cap |
//! | `MG_RESUME` | [`Config::resume`] | resume an interrupted sweep from its journal |
//! | `MG_JOURNAL_KEEP` | [`Config::journal_keep`] | keep the journal of a completed sweep |
//! | `MG_LOG` | [`Config::log_level`] | logger verbosity (`off`/`error`/`info`/`debug`) |
//! | `MG_TRACE` | [`Config::trace`] | collect wall-time spans; `run_cli` writes `results/TRACE_<bin>.mgb` (`json` also writes the Chrome-JSON view) |
//! | `MG_FAULT` | [`Config::fault`] | fault-injection plan (feature `fault-inject`) |
//!
//! Every malformed value is a [`BenchError::Config`] naming the knob,
//! the offending value, and what was expected; binaries report it and
//! exit `2` uniformly ([`Config::init_cli`]).

use crate::harness::BenchError;
use mg_obs::log::Level;
use mg_obs::mg_error;

/// Environment variable forcing the sweep worker count.
pub const JOBS_ENV: &str = "MG_JOBS";

/// Environment variable capping the on-disk context cache, in megabytes.
/// `0` disables the disk layer's retention entirely (everything is
/// evicted on the next store).
pub const CACHE_MAX_MB_ENV: &str = "MG_CACHE_MAX_MB";

/// Environment variable (`1`/`true`/`yes`) requesting that a sweep
/// resume from the journal of a previous interrupted run.
pub const RESUME_ENV: &str = "MG_RESUME";

/// Environment variable (`1`/`true`/`yes`) that makes
/// [`crate::supervisor::run_cli`] keep the journal of a sweep that
/// completed without interruption, instead of clearing it. For audits
/// and CI artifacts: the kept records show per-row wall time, cache
/// outcome, and any error rows.
pub const JOURNAL_KEEP_ENV: &str = "MG_JOURNAL_KEEP";

/// Environment variable selecting the logger verbosity.
pub const LOG_ENV: &str = "MG_LOG";

/// Environment variable (`1`/`true`/`yes`, or `json`) enabling
/// wall-time span collection (`mg_obs::span`). When on,
/// [`crate::supervisor::run_cli`] drains the collected spans to
/// `results/TRACE_<bin>.mgb` (a checksummed [`crate::binfmt`] record)
/// at sweep exit; the special value `json` additionally writes the
/// legacy `results/TRACE_<bin>.json` Chrome trace-event view (loadable
/// in Perfetto directly, without an export step).
pub const TRACE_ENV: &str = "MG_TRACE";

/// All `MG_*` knobs as one typed value.
///
/// `Default` is the no-environment configuration: automatic worker
/// count, default cache cap, no resume, journal cleared on success,
/// logger untouched, no faults.
#[derive(Clone, Debug, Default)]
pub struct Config {
    /// Sweep worker count (`MG_JOBS`); `None` means available
    /// parallelism.
    pub jobs: Option<usize>,
    /// Disk context-cache size cap in megabytes (`MG_CACHE_MAX_MB`);
    /// `None` means [`crate::cache::DEFAULT_CACHE_MAX_MB`].
    pub cache_max_mb: Option<u64>,
    /// Resume an interrupted sweep from its journal (`MG_RESUME`).
    pub resume: bool,
    /// Keep the journal of a completed sweep (`MG_JOURNAL_KEEP`).
    pub journal_keep: bool,
    /// Logger verbosity (`MG_LOG`); `None` leaves the current level
    /// (default `info`) in place.
    pub log_level: Option<Level>,
    /// Collect wall-time spans for a Perfetto trace (`MG_TRACE`).
    pub trace: bool,
    /// Also write the Chrome-JSON debug view of the trace
    /// (`MG_TRACE=json`); implies [`Config::trace`].
    pub trace_json: bool,
    /// Fault-injection plan (`MG_FAULT`); `None` leaves whatever plan
    /// is installed (none, unless a test set one) in place.
    #[cfg(feature = "fault-inject")]
    pub fault: Option<crate::fault::FaultPlan>,
}

fn bad(knob: &str, value: &str, detail: &str) -> BenchError {
    BenchError::Config {
        knob: knob.to_string(),
        value: value.to_string(),
        detail: detail.to_string(),
    }
}

/// Parses an `MG_JOBS`-style worker count. A worker count must be a
/// positive integer; `0` and garbage are rejected with a
/// [`BenchError::Config`] naming the offending value, rather than being
/// silently replaced by a default (which would mask typos like
/// `MG_JOBS=O8` behind an unexpected parallelism level).
pub fn parse_jobs(value: &str) -> Result<usize, BenchError> {
    match value.trim().parse::<usize>() {
        Ok(0) => Err(bad(JOBS_ENV, value, "worker count must be at least 1")),
        Ok(n) => Ok(n),
        Err(_) => Err(bad(JOBS_ENV, value, "expected a positive integer")),
    }
}

/// Parses an `MG_RESUME`-style boolean flag. Accepts `1`/`true`/`yes`/
/// `on` and `0`/`false`/`no`/`off`/empty (case-insensitive); anything
/// else is a config error rather than a silent `false`.
pub fn parse_flag(knob: &str, value: &str) -> Result<bool, BenchError> {
    match value.trim().to_ascii_lowercase().as_str() {
        "1" | "true" | "yes" | "on" => Ok(true),
        "" | "0" | "false" | "no" | "off" => Ok(false),
        _ => Err(bad(knob, value, "expected a boolean flag (1/true/yes)")),
    }
}

/// Parses the `MG_TRACE` knob: boolean flags toggle span collection
/// (binary `TRACE_<bin>.mgb` artifact); the special value `json`
/// enables collection *and* the Chrome-JSON debug view. Returns
/// `(trace, trace_json)`.
pub fn parse_trace(value: &str) -> Result<(bool, bool), BenchError> {
    if value.trim().eq_ignore_ascii_case("json") {
        return Ok((true, true));
    }
    parse_flag(TRACE_ENV, value)
        .map(|on| (on, false))
        .map_err(|_| {
            bad(
                TRACE_ENV,
                value,
                "expected a boolean flag (1/true/yes) or `json`",
            )
        })
}

/// Parses an `MG_CACHE_MAX_MB`-style megabyte count (non-negative
/// integer; `0` keeps nothing on disk).
pub fn parse_cache_mb(value: &str) -> Result<u64, BenchError> {
    value
        .trim()
        .parse::<u64>()
        .map_err(|_| bad(CACHE_MAX_MB_ENV, value, "expected megabytes as an integer"))
}

fn env_var(name: &str) -> Option<String> {
    std::env::var(name).ok()
}

impl Config {
    /// Reads and validates every `MG_*` knob from the process
    /// environment. This is the **only** place in the workspace where
    /// `MG_*` variables are read; call it once at a binary's entry
    /// point and pass the result down.
    pub fn from_env() -> Result<Config, BenchError> {
        let jobs = env_var(JOBS_ENV).map(|v| parse_jobs(&v)).transpose()?;
        let cache_max_mb = env_var(CACHE_MAX_MB_ENV)
            .map(|v| parse_cache_mb(&v))
            .transpose()?;
        let resume = env_var(RESUME_ENV)
            .map(|v| parse_flag(RESUME_ENV, &v))
            .transpose()?
            .unwrap_or(false);
        let journal_keep = env_var(JOURNAL_KEEP_ENV)
            .map(|v| parse_flag(JOURNAL_KEEP_ENV, &v))
            .transpose()?
            .unwrap_or(false);
        // `Level::parse` is deliberately lenient (a typo must never
        // silence error output), so this knob cannot fail.
        let log_level = env_var(LOG_ENV).map(|v| Level::parse(&v));
        let (trace, trace_json) = env_var(TRACE_ENV)
            .map(|v| parse_trace(&v))
            .transpose()?
            .unwrap_or((false, false));
        #[cfg(feature = "fault-inject")]
        let fault = env_var(crate::fault::FAULT_ENV)
            .map(|v| crate::fault::parse_plan(&v))
            .transpose()?;
        Ok(Config {
            jobs,
            cache_max_mb,
            resume,
            journal_keep,
            log_level,
            trace,
            trace_json,
            #[cfg(feature = "fault-inject")]
            fault,
        })
    }

    /// Pushes the knobs into the subsystems that honour them: the
    /// logger level, the disk-cache cap, and (with `fault-inject`) the
    /// fault plan. `None` fields leave the subsystem untouched, so
    /// applying a default config is a no-op.
    pub fn apply(&self) {
        if let Some(level) = self.log_level {
            mg_obs::log::set_level(level);
        }
        if let Some(mb) = self.cache_max_mb {
            crate::cache::set_cache_cap_mb(mb);
        }
        // Only ever *enables* span collection, so applying a default
        // config still leaves a test-enabled tracer alone.
        if self.trace {
            mg_obs::span::set_enabled(true);
        }
        #[cfg(feature = "fault-inject")]
        if let Some(plan) = &self.fault {
            crate::fault::set_plan(Some(plan.clone()));
        }
    }

    /// The worker count this config resolves to: [`Config::jobs`] if
    /// forced, else available parallelism.
    pub fn effective_jobs(&self) -> usize {
        self.jobs.unwrap_or_else(available_jobs)
    }

    /// The standard binary prologue: read the environment, report any
    /// malformed knob and exit `2`, otherwise apply the config and
    /// return it. Every `mg-bench` binary (directly or through
    /// [`crate::supervisor::run_cli`]) starts with this, which is what
    /// keeps config-error behaviour uniform across the fleet.
    pub fn init_cli() -> Config {
        match Config::from_env() {
            Ok(cfg) => {
                cfg.apply();
                cfg
            }
            Err(e) => {
                mg_error!("configuration error: {e}");
                std::process::exit(2);
            }
        }
    }
}

/// The automatic worker count: available parallelism, floored at 1.
pub fn available_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Worker count from the environment: `MG_JOBS` if set (validated by
/// [`parse_jobs`]), else available parallelism.
pub fn try_default_jobs() -> Result<usize, BenchError> {
    Ok(Config::from_env()?.effective_jobs())
}

/// Worker count from the environment: `MG_JOBS` if set, else available
/// parallelism.
///
/// # Panics
///
/// Panics with the rendered [`BenchError`] if `MG_JOBS` is set to an
/// invalid value; binaries get a clear diagnostic instead of a silent
/// fallback. Use [`try_default_jobs`] to handle the error.
pub fn default_jobs() -> usize {
    try_default_jobs().unwrap_or_else(|e| panic!("{e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_jobs_is_at_least_one() {
        assert!(available_jobs() >= 1);
    }

    #[test]
    fn parse_jobs_accepts_positive_counts() {
        assert_eq!(parse_jobs("1").unwrap(), 1);
        assert_eq!(parse_jobs("8").unwrap(), 8);
        assert_eq!(parse_jobs(" 4 ").unwrap(), 4, "whitespace is trimmed");
    }

    #[test]
    fn parse_jobs_rejects_zero_and_garbage() {
        for bad in ["0", "", "abc", "-2", "1.5", "O8"] {
            let err = parse_jobs(bad).expect_err(bad);
            match &err {
                BenchError::Config { knob, value, .. } => {
                    assert_eq!(*knob, JOBS_ENV);
                    assert_eq!(value, bad, "error names the offending value");
                }
                other => panic!("expected Config error for {bad:?}, got {other:?}"),
            }
            assert!(
                err.to_string().contains(JOBS_ENV),
                "diagnostic names the knob: {err}"
            );
        }
    }

    #[test]
    fn parse_flag_accepts_both_polarities_and_rejects_garbage() {
        for yes in ["1", "true", "yes", "on", " TRUE "] {
            assert!(parse_flag(RESUME_ENV, yes).unwrap(), "{yes}");
        }
        for no in ["0", "false", "no", "off", ""] {
            assert!(!parse_flag(RESUME_ENV, no).unwrap(), "{no:?}");
        }
        let err = parse_flag(RESUME_ENV, "maybe").expect_err("garbage flag");
        assert!(err.to_string().contains(RESUME_ENV), "{err}");
    }

    #[test]
    fn parse_cache_mb_accepts_integers_and_rejects_garbage() {
        assert_eq!(parse_cache_mb("256").unwrap(), 256);
        assert_eq!(parse_cache_mb("0").unwrap(), 0, "zero keeps nothing");
        for bad in ["", "-1", "10MB", "1.5"] {
            let err = parse_cache_mb(bad).expect_err(bad);
            assert!(err.to_string().contains(CACHE_MAX_MB_ENV), "{err}");
        }
    }

    #[test]
    fn default_config_resolves_to_automatic_parallelism() {
        let cfg = Config::default();
        assert!(cfg.jobs.is_none());
        assert_eq!(cfg.effective_jobs(), available_jobs());
        assert!(!cfg.resume);
        assert!(!cfg.journal_keep);
        assert!(!cfg.trace);
        assert!(!cfg.trace_json);
        // Applying the default config must not disturb any subsystem.
        cfg.apply();
    }

    #[test]
    fn parse_trace_accepts_flags_and_json() {
        assert_eq!(parse_trace("1").unwrap(), (true, false));
        assert_eq!(parse_trace("0").unwrap(), (false, false));
        assert_eq!(parse_trace("json").unwrap(), (true, true));
        assert_eq!(parse_trace(" JSON ").unwrap(), (true, true));
        let err = parse_trace("perfetto").expect_err("garbage trace mode");
        assert!(err.to_string().contains(TRACE_ENV), "{err}");
        assert!(err.to_string().contains("json"), "diagnostic names `json`");
    }
}
