//! The parallel sweep runner.
//!
//! Every figure binary runs the same shape of experiment: a cross product
//! of (benchmarks × scheme/machine cells), where per-benchmark context
//! construction is expensive and every cell is independent. A
//! [`SweepSpec`] declares that sweep; [`SweepSpec::run`] executes it on a
//! pool of [`std::thread::scope`] workers pulling benchmark tasks from a
//! shared queue (worker count = available parallelism, overridable with
//! the `MG_JOBS` environment variable or [`SweepSpec::jobs`]), with
//! per-benchmark artifacts memoized by [`crate::cache`].
//!
//! Results are collected in deterministic sweep order — row `i` is always
//! benchmark `i` of the spec, cell `j` always the `j`-th added cell — so
//! the JSON a parallel sweep produces is byte-identical to a serial
//! (`MG_JOBS=1`) run.
//!
//! A cell that fails ([`BenchError::CycleCap`], a workload execution
//! error) is recorded as a failure row; the sweep continues. Each
//! [`SweepResult`] carries a [`SweepSummary`] with per-benchmark wall
//! times and cache outcomes plus sweep-wide context-cache counters,
//! printed as a footer unless the spec is [`SweepSpec::quiet`].
//!
//! Progress output goes through the `mg-obs` leveled logger: set
//! `MG_LOG=error` to silence a noisy sweep or `MG_LOG=debug` for the full
//! per-benchmark timing listing ([`SweepSummary::print_footer`]).

use crate::cache::{self, CacheCounters, CacheOutcome};
use crate::harness::{BenchContext, BenchError, Scheme, SchemeRun};
use mg_core::candidate::SelectionConfig;
use mg_obs::{mg_debug, mg_info};
use mg_sim::{MachineConfig, MgConfig};
use mg_workloads::{BenchmarkSpec, InputSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// One (scheme, machine) cell of a sweep, with optional per-cell
/// overrides for the mini-graph hardware and the selection configuration
/// (ablations).
#[derive(Clone, Debug)]
pub struct SweepCell {
    /// The selection scheme to run.
    pub scheme: Scheme,
    /// The machine to run it on.
    pub machine: MachineConfig,
    /// Mini-graph hardware override (default: [`MgConfig::paper`]).
    pub mg: Option<MgConfig>,
    /// Selection-configuration override (default: the context's).
    pub sel: Option<SelectionConfig>,
}

impl SweepCell {
    /// A cell with the default mini-graph hardware and selection knobs.
    pub fn new(scheme: Scheme, machine: &MachineConfig) -> SweepCell {
        SweepCell {
            scheme,
            machine: machine.clone(),
            mg: None,
            sel: None,
        }
    }

    /// Overrides the mini-graph hardware configuration.
    pub fn with_mg(mut self, mg: MgConfig) -> SweepCell {
        self.mg = Some(mg);
        self
    }

    /// Overrides the selection configuration.
    pub fn with_sel(mut self, sel: SelectionConfig) -> SweepCell {
        self.sel = Some(sel);
        self
    }
}

/// How a sweep picks an input set for each benchmark.
#[derive(Clone, Debug, Default)]
pub enum InputSel {
    /// Each benchmark's primary input ([`BenchmarkSpec::primary_input`]).
    #[default]
    Primary,
    /// Each benchmark's alternate input ([`BenchmarkSpec::alternate_input`]).
    Alternate,
    /// One fixed input set for every benchmark.
    Fixed(InputSet),
}

impl InputSel {
    fn resolve(&self, spec: &BenchmarkSpec) -> InputSet {
        match self {
            InputSel::Primary => spec.primary_input(),
            InputSel::Alternate => spec.alternate_input(),
            InputSel::Fixed(input) => input.clone(),
        }
    }
}

/// A declarative benchmark sweep: benchmarks × cells, plus the training
/// setup shared by every benchmark context.
#[derive(Clone, Debug)]
pub struct SweepSpec {
    benches: Vec<BenchmarkSpec>,
    cells: Vec<SweepCell>,
    train_cfg: MachineConfig,
    train_input: InputSel,
    run_input: InputSel,
    jobs: Option<usize>,
    disk_cache: bool,
    quiet: bool,
    #[cfg(feature = "obs")]
    obs: Option<mg_obs::ObsConfig>,
}

impl SweepSpec {
    /// An empty sweep training slack profiles on `train_cfg`.
    pub fn new(train_cfg: &MachineConfig) -> SweepSpec {
        SweepSpec {
            benches: Vec::new(),
            cells: Vec::new(),
            train_cfg: train_cfg.clone(),
            train_input: InputSel::Primary,
            run_input: InputSel::Primary,
            jobs: None,
            disk_cache: true,
            quiet: false,
            #[cfg(feature = "obs")]
            obs: None,
        }
    }

    /// Adds one benchmark.
    pub fn bench(mut self, spec: &BenchmarkSpec) -> SweepSpec {
        self.benches.push(spec.clone());
        self
    }

    /// Adds benchmarks in order.
    pub fn benches<I: IntoIterator<Item = BenchmarkSpec>>(mut self, specs: I) -> SweepSpec {
        self.benches.extend(specs);
        self
    }

    /// Adds one cell.
    pub fn cell(mut self, cell: SweepCell) -> SweepSpec {
        self.cells.push(cell);
        self
    }

    /// Adds cells in order.
    pub fn cells<I: IntoIterator<Item = SweepCell>>(mut self, cells: I) -> SweepSpec {
        self.cells.extend(cells);
        self
    }

    /// Selects the training input (default: each benchmark's primary).
    pub fn train_input(mut self, sel: InputSel) -> SweepSpec {
        self.train_input = sel;
        self
    }

    /// Selects the evaluation input (default: each benchmark's primary).
    pub fn run_input(mut self, sel: InputSel) -> SweepSpec {
        self.run_input = sel;
        self
    }

    /// Forces the worker count (otherwise `MG_JOBS`, then available
    /// parallelism).
    pub fn jobs(mut self, jobs: usize) -> SweepSpec {
        self.jobs = Some(jobs.max(1));
        self
    }

    /// Enables/disables the on-disk context cache layer (default on; the
    /// in-memory layer is always active).
    pub fn disk_cache(mut self, on: bool) -> SweepSpec {
        self.disk_cache = on;
        self
    }

    /// Suppresses progress dots and the summary footer.
    pub fn quiet(mut self, on: bool) -> SweepSpec {
        self.quiet = on;
        self
    }

    /// Attaches the pipeline observer to every cell run: each benchmark
    /// row then carries a per-benchmark [`mg_obs::ObsAggregate`] and
    /// [`SweepResult::obs_aggregate`] merges them sweep-wide.
    #[cfg(feature = "obs")]
    pub fn observe(mut self, cfg: mg_obs::ObsConfig) -> SweepSpec {
        self.obs = Some(cfg);
        self
    }

    /// The benchmarks of the sweep, in row order.
    pub fn bench_specs(&self) -> &[BenchmarkSpec] {
        &self.benches
    }

    /// Executes the sweep and collects rows in deterministic order.
    pub fn run(&self) -> SweepResult {
        let jobs = self.jobs.unwrap_or_else(default_jobs);
        let before = cache::counters();
        let t0 = Instant::now();
        let quiet = self.quiet;
        let rows: Vec<BenchRows> = par_map(&self.benches, jobs, |_, spec| {
            let task0 = Instant::now();
            let ctx = BenchContext::builder(spec, &self.train_cfg)
                .train_input(self.train_input.resolve(spec))
                .run_input(self.run_input.resolve(spec))
                .disk_cache(self.disk_cache)
                .build();
            #[cfg(feature = "obs")]
            let mut obs_agg = self.obs.map(|_| mg_obs::ObsAggregate::new());
            let mut runs: Vec<Result<SchemeRun, BenchError>> = Vec::with_capacity(self.cells.len());
            let cache_outcome = match &ctx {
                Ok(ctx) => {
                    for cell in &self.cells {
                        #[cfg(feature = "obs")]
                        let run = self.run_cell(ctx, cell, obs_agg.as_mut());
                        #[cfg(not(feature = "obs"))]
                        let run = self.run_cell(ctx, cell);
                        runs.push(run);
                    }
                    Some(ctx.cache_outcome())
                }
                Err(e) => {
                    runs.extend(self.cells.iter().map(|_| Err(e.clone())));
                    None
                }
            };
            if !quiet {
                mg_obs::log::raw(".");
            }
            BenchRows {
                bench: spec.name.clone(),
                runs,
                wall: task0.elapsed(),
                cache: cache_outcome,
                #[cfg(feature = "obs")]
                obs: obs_agg,
            }
        });
        if !quiet {
            mg_obs::log::raw("\n");
        }
        let failures = rows
            .iter()
            .map(|r| r.runs.iter().filter(|c| c.is_err()).count())
            .sum();
        let summary = SweepSummary {
            benches: self.benches.len(),
            cells: self.cells.len(),
            failures,
            jobs,
            wall: t0.elapsed(),
            task_wall_total: rows.iter().map(|r| r.wall).sum(),
            cache: cache::counters().since(&before),
            per_bench: rows
                .iter()
                .map(|r| BenchProfile {
                    bench: r.bench.clone(),
                    wall: r.wall,
                    cache: r.cache,
                })
                .collect(),
        };
        if !quiet {
            summary.print_footer();
        }
        SweepResult { rows, summary }
    }

    /// Runs one cell, instrumented when the spec's observer is on.
    #[cfg(feature = "obs")]
    fn run_cell(
        &self,
        ctx: &BenchContext,
        cell: &SweepCell,
        obs_agg: Option<&mut mg_obs::ObsAggregate>,
    ) -> Result<SchemeRun, BenchError> {
        if let Some(oc) = self.obs {
            return ctx
                .try_run_with_obs(cell.scheme, &cell.machine, cell.mg, cell.sel.as_ref(), oc)
                .map(|(run, report)| {
                    if let Some(agg) = obs_agg {
                        agg.absorb(&report);
                    }
                    run
                });
        }
        ctx.try_run_with(cell.scheme, &cell.machine, cell.mg, cell.sel.as_ref())
    }

    /// Runs one cell (uninstrumented build).
    #[cfg(not(feature = "obs"))]
    fn run_cell(&self, ctx: &BenchContext, cell: &SweepCell) -> Result<SchemeRun, BenchError> {
        ctx.try_run_with(cell.scheme, &cell.machine, cell.mg, cell.sel.as_ref())
    }
}

/// All cell results for one benchmark, in cell order.
#[derive(Clone, Debug)]
pub struct BenchRows {
    /// Benchmark name.
    pub bench: String,
    /// One result per spec cell, in the order cells were added.
    pub runs: Vec<Result<SchemeRun, BenchError>>,
    /// Wall time this benchmark's task took (context + all cells).
    pub wall: Duration,
    /// How the benchmark's context was served by the cache (`None` when
    /// context construction itself failed).
    pub cache: Option<CacheOutcome>,
    /// Observer aggregate over this benchmark's cells (populated only
    /// when the sweep ran with [`SweepSpec::observe`]).
    #[cfg(feature = "obs")]
    pub obs: Option<mg_obs::ObsAggregate>,
}

impl BenchRows {
    /// The run of cell `idx`, or the error that felled it.
    pub fn get(&self, idx: usize) -> Result<&SchemeRun, &BenchError> {
        self.runs[idx].as_ref()
    }

    /// All runs, or the first failure (for binaries that skip a
    /// benchmark when any of its cells failed).
    pub fn all_ok(&self) -> Result<Vec<&SchemeRun>, &BenchError> {
        self.runs.iter().map(|r| r.as_ref()).collect()
    }
}

/// Everything a sweep produced.
#[derive(Clone, Debug)]
pub struct SweepResult {
    /// Per-benchmark rows, in spec order (deterministic).
    pub rows: Vec<BenchRows>,
    /// Execution metadata: timings, worker count, cache behaviour.
    pub summary: SweepSummary,
}

#[cfg(feature = "obs")]
impl SweepResult {
    /// Merges the per-benchmark observer aggregates into one sweep-wide
    /// stall-attribution aggregate (empty if the sweep did not observe).
    pub fn obs_aggregate(&self) -> mg_obs::ObsAggregate {
        let mut agg = mg_obs::ObsAggregate::new();
        for row in &self.rows {
            if let Some(a) = &row.obs {
                agg.merge(a);
            }
        }
        agg
    }
}

/// Sweep execution metadata — the first observability hooks for the
/// sweep hot path.
#[derive(Clone, Debug)]
pub struct SweepSummary {
    /// Number of benchmarks swept.
    pub benches: usize,
    /// Number of cells per benchmark.
    pub cells: usize,
    /// Number of failed cells recorded (sweep continued past them).
    pub failures: usize,
    /// Worker threads used.
    pub jobs: usize,
    /// End-to-end wall time.
    pub wall: Duration,
    /// Sum of per-task wall times (≈ serial cost; compare with `wall`
    /// for the realized speedup).
    pub task_wall_total: Duration,
    /// Context-cache counter deltas for this sweep.
    pub cache: CacheCounters,
    /// Per-benchmark wall time and cache outcome, in spec order.
    pub per_bench: Vec<BenchProfile>,
}

/// One benchmark's execution profile inside a sweep.
#[derive(Clone, Debug)]
pub struct BenchProfile {
    /// Benchmark name.
    pub bench: String,
    /// Wall time of the benchmark's task (context + all cells).
    pub wall: Duration,
    /// Cache outcome of the context build (`None` if it failed).
    pub cache: Option<CacheOutcome>,
}

impl BenchProfile {
    fn render(&self) -> String {
        format!(
            "{} {:.2}s (context: {})",
            self.bench,
            self.wall.as_secs_f64(),
            self.cache.map_or("failed", |c| c.tag())
        )
    }
}

impl SweepSummary {
    /// Logs the standard summary footer: the aggregate line and the
    /// slowest benchmarks at `info`, the full per-benchmark listing at
    /// `debug` (`MG_LOG=debug`).
    pub fn print_footer(&self) {
        mg_info!(
            "sweep: {} benchmarks x {} cells on {} workers in {:.1}s \
             (task time {:.1}s, speedup {:.1}x); \
             context cache: {} memory hits, {} disk hits, {} misses{}",
            self.benches,
            self.cells,
            self.jobs,
            self.wall.as_secs_f64(),
            self.task_wall_total.as_secs_f64(),
            self.task_wall_total.as_secs_f64() / self.wall.as_secs_f64().max(1e-9),
            self.cache.mem_hits,
            self.cache.disk_hits,
            self.cache.misses,
            if self.failures > 0 {
                format!("; {} FAILED cells", self.failures)
            } else {
                String::new()
            },
        );
        if !self.per_bench.is_empty() {
            let mut by_wall: Vec<&BenchProfile> = self.per_bench.iter().collect();
            by_wall.sort_by(|a, b| b.wall.cmp(&a.wall).then_with(|| a.bench.cmp(&b.bench)));
            let slowest: Vec<String> = by_wall.iter().take(3).map(|p| p.render()).collect();
            mg_info!("slowest: {}", slowest.join(", "));
            for p in &self.per_bench {
                mg_debug!("  {}", p.render());
            }
        }
    }
}

/// Parses an `MG_JOBS`-style worker count. A worker count must be a
/// positive integer; `0` and garbage are rejected with a
/// [`BenchError::Config`] naming the offending value, rather than being
/// silently replaced by a default (which would mask typos like
/// `MG_JOBS=O8` behind an unexpected parallelism level).
pub fn parse_jobs(value: &str) -> Result<usize, BenchError> {
    match value.trim().parse::<usize>() {
        Ok(0) => Err(BenchError::Config {
            knob: "MG_JOBS",
            value: value.to_string(),
            detail: "worker count must be at least 1",
        }),
        Ok(n) => Ok(n),
        Err(_) => Err(BenchError::Config {
            knob: "MG_JOBS",
            value: value.to_string(),
            detail: "expected a positive integer",
        }),
    }
}

/// Worker count: `MG_JOBS` if set (validated by [`parse_jobs`]), else
/// available parallelism.
pub fn try_default_jobs() -> Result<usize, BenchError> {
    match std::env::var("MG_JOBS") {
        Ok(v) => parse_jobs(&v),
        Err(_) => Ok(std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)),
    }
}

/// Worker count: `MG_JOBS` if set, else available parallelism.
///
/// # Panics
///
/// Panics with the rendered [`BenchError`] if `MG_JOBS` is set to an
/// invalid value; binaries get a clear diagnostic instead of a silent
/// fallback. Use [`try_default_jobs`] to handle the error.
pub fn default_jobs() -> usize {
    try_default_jobs().unwrap_or_else(|e| panic!("{e}"))
}

/// Maps `f` over `items` on `jobs` scoped worker threads, returning
/// results in item order. Workers pull the next index from a shared
/// atomic queue, so uneven task costs balance automatically. With
/// `jobs <= 1` this degenerates to a plain serial map (no threads), which
/// is the reference order the parallel path must reproduce.
pub fn par_map<T, R, F>(items: &[T], jobs: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let jobs = jobs.max(1).min(items.len().max(1));
    if jobs <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    std::thread::scope(|s| {
        for _ in 0..jobs {
            let tx = tx.clone();
            let next = &next;
            let f = &f;
            s.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let r = f(i, &items[i]);
                if tx.send((i, r)).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        let mut out: Vec<Option<R>> = std::iter::repeat_with(|| None).take(items.len()).collect();
        for (i, r) in rx {
            out[i] = Some(r);
        }
        out.into_iter()
            .map(|r| r.expect("every task delivers a result"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_item_order() {
        let items: Vec<u64> = (0..100).collect();
        let serial = par_map(&items, 1, |i, &x| (i as u64) * 1000 + x * x);
        let parallel = par_map(&items, 8, |i, &x| (i as u64) * 1000 + x * x);
        assert_eq!(serial, parallel);
        assert_eq!(serial[3], 3009);
    }

    #[test]
    fn par_map_handles_empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(&empty, 4, |_, &x| x).is_empty());
        assert_eq!(par_map(&[7u32], 4, |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn default_jobs_is_at_least_one() {
        assert!(default_jobs() >= 1);
    }

    #[test]
    fn parse_jobs_accepts_positive_counts() {
        assert_eq!(parse_jobs("1").unwrap(), 1);
        assert_eq!(parse_jobs("8").unwrap(), 8);
        assert_eq!(parse_jobs(" 4 ").unwrap(), 4, "whitespace is trimmed");
    }

    #[test]
    fn parse_jobs_rejects_zero_and_garbage() {
        for bad in ["0", "", "abc", "-2", "1.5", "O8"] {
            let err = parse_jobs(bad).expect_err(bad);
            match &err {
                BenchError::Config { knob, value, .. } => {
                    assert_eq!(*knob, "MG_JOBS");
                    assert_eq!(value, bad, "error names the offending value");
                }
                other => panic!("expected Config error for {bad:?}, got {other:?}"),
            }
            assert!(
                err.to_string().contains("MG_JOBS"),
                "diagnostic names the knob: {err}"
            );
        }
    }
}
