//! The parallel sweep runner.
//!
//! Every figure binary runs the same shape of experiment: a cross product
//! of (benchmarks × scheme/machine cells), where per-benchmark context
//! construction is expensive and every cell is independent. A
//! [`SweepSpec`] declares that sweep; [`SweepSpec::run`] executes it on a
//! pool of [`std::thread::scope`] workers pulling benchmark tasks from a
//! shared queue (worker count = available parallelism, overridable with
//! [`SweepSpec::jobs`] or, for binaries, the `MG_JOBS` knob parsed by
//! [`crate::config`]), with per-benchmark artifacts memoized by
//! [`crate::cache`].
//!
//! Results are collected in deterministic sweep order — row `i` is always
//! benchmark `i` of the spec, cell `j` always the `j`-th added cell — so
//! the JSON a parallel sweep produces is byte-identical to a serial
//! (`MG_JOBS=1`) run.
//!
//! A cell that fails ([`BenchError::CycleCap`], a workload execution
//! error) is recorded as a failure row; the sweep continues. Each
//! [`SweepResult`] carries a [`SweepSummary`] with per-benchmark wall
//! times and cache outcomes plus sweep-wide context-cache counters,
//! printed as a footer unless the spec is [`SweepSpec::quiet`].
//!
//! Progress output goes through the `mg-obs` leveled logger: set
//! `MG_LOG=error` to silence a noisy sweep or `MG_LOG=debug` for the full
//! per-benchmark timing listing ([`SweepSummary::print_footer`]).

use crate::cache::{self, stable_hash64, CacheCounters, CacheOutcome};
use crate::harness::{BenchContext, BenchError, Scheme, SchemeRun};
use crate::journal::{self, Journal};
use crate::signals::SignalWatch;
use crate::supervisor;
use mg_core::candidate::SelectionConfig;
use mg_obs::{mg_debug, mg_error, mg_info, tele_counter, tele_hist};
use mg_sim::{MachineConfig, MgConfig};
use mg_workloads::{BenchmarkSpec, InputSet};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// One (scheme, machine) cell of a sweep, with optional per-cell
/// overrides for the mini-graph hardware and the selection configuration
/// (ablations).
#[derive(Clone, Debug)]
pub struct SweepCell {
    /// The selection scheme to run.
    pub scheme: Scheme,
    /// The machine to run it on.
    pub machine: MachineConfig,
    /// Mini-graph hardware override (default: [`MgConfig::paper`]).
    pub mg: Option<MgConfig>,
    /// Selection-configuration override (default: the context's).
    pub sel: Option<SelectionConfig>,
}

impl SweepCell {
    /// A cell with the default mini-graph hardware and selection knobs.
    pub fn new(scheme: Scheme, machine: &MachineConfig) -> SweepCell {
        SweepCell {
            scheme,
            machine: machine.clone(),
            mg: None,
            sel: None,
        }
    }

    /// Overrides the mini-graph hardware configuration.
    pub fn with_mg(mut self, mg: MgConfig) -> SweepCell {
        self.mg = Some(mg);
        self
    }

    /// Overrides the selection configuration.
    pub fn with_sel(mut self, sel: SelectionConfig) -> SweepCell {
        self.sel = Some(sel);
        self
    }
}

/// How a sweep picks an input set for each benchmark.
#[derive(Clone, Debug, Default)]
pub enum InputSel {
    /// Each benchmark's primary input ([`BenchmarkSpec::primary_input`]).
    #[default]
    Primary,
    /// Each benchmark's alternate input ([`BenchmarkSpec::alternate_input`]).
    Alternate,
    /// One fixed input set for every benchmark.
    Fixed(InputSet),
}

impl InputSel {
    fn resolve(&self, spec: &BenchmarkSpec) -> InputSet {
        match self {
            InputSel::Primary => spec.primary_input(),
            InputSel::Alternate => spec.alternate_input(),
            InputSel::Fixed(input) => input.clone(),
        }
    }
}

/// A declarative benchmark sweep: benchmarks × cells, plus the training
/// setup shared by every benchmark context.
#[derive(Clone, Debug)]
pub struct SweepSpec {
    benches: Vec<BenchmarkSpec>,
    cells: Vec<SweepCell>,
    train_cfg: MachineConfig,
    train_input: InputSel,
    run_input: InputSel,
    jobs: Option<usize>,
    disk_cache: bool,
    quiet: bool,
    watchdog: Option<Duration>,
    retries: u32,
    journal: bool,
    resume: bool,
    journal_root: PathBuf,
    graceful: bool,
    #[cfg(feature = "obs")]
    obs: Option<mg_obs::ObsConfig>,
}

impl SweepSpec {
    /// An empty sweep training slack profiles on `train_cfg`.
    pub fn new(train_cfg: &MachineConfig) -> SweepSpec {
        SweepSpec {
            benches: Vec::new(),
            cells: Vec::new(),
            train_cfg: train_cfg.clone(),
            train_input: InputSel::Primary,
            run_input: InputSel::Primary,
            jobs: None,
            disk_cache: true,
            quiet: false,
            watchdog: None,
            retries: 0,
            journal: false,
            resume: false,
            journal_root: PathBuf::from(journal::JOURNAL_DIR),
            graceful: false,
            #[cfg(feature = "obs")]
            obs: None,
        }
    }

    /// Adds one benchmark.
    pub fn bench(mut self, spec: &BenchmarkSpec) -> SweepSpec {
        self.benches.push(spec.clone());
        self
    }

    /// Adds benchmarks in order.
    pub fn benches<I: IntoIterator<Item = BenchmarkSpec>>(mut self, specs: I) -> SweepSpec {
        self.benches.extend(specs);
        self
    }

    /// Adds one cell.
    pub fn cell(mut self, cell: SweepCell) -> SweepSpec {
        self.cells.push(cell);
        self
    }

    /// Adds cells in order.
    pub fn cells<I: IntoIterator<Item = SweepCell>>(mut self, cells: I) -> SweepSpec {
        self.cells.extend(cells);
        self
    }

    /// Selects the training input (default: each benchmark's primary).
    pub fn train_input(mut self, sel: InputSel) -> SweepSpec {
        self.train_input = sel;
        self
    }

    /// Selects the evaluation input (default: each benchmark's primary).
    pub fn run_input(mut self, sel: InputSel) -> SweepSpec {
        self.run_input = sel;
        self
    }

    /// Forces the worker count (otherwise available parallelism, or
    /// whatever the binary's [`crate::config::Config`] resolved).
    pub fn jobs(mut self, jobs: usize) -> SweepSpec {
        self.jobs = Some(jobs.max(1));
        self
    }

    /// Sets the worker count only if none has been forced yet — how the
    /// config layer injects `MG_JOBS` without overriding an explicit
    /// [`SweepSpec::jobs`] call.
    pub fn jobs_if_unset(mut self, jobs: usize) -> SweepSpec {
        if self.jobs.is_none() {
            self.jobs = Some(jobs.max(1));
        }
        self
    }

    /// Enables/disables the on-disk context cache layer (default on; the
    /// in-memory layer is always active).
    pub fn disk_cache(mut self, on: bool) -> SweepSpec {
        self.disk_cache = on;
        self
    }

    /// Suppresses progress dots and the summary footer.
    pub fn quiet(mut self, on: bool) -> SweepSpec {
        self.quiet = on;
        self
    }

    /// Sets a per-cell wall-clock watchdog: a cell exceeding `limit`
    /// becomes a [`BenchError::TimedOut`] row instead of hanging the
    /// sweep. Default: no watchdog (cells run inline on the worker with
    /// zero supervision overhead beyond panic isolation).
    pub fn watchdog(mut self, limit: Duration) -> SweepSpec {
        self.watchdog = Some(limit);
        self
    }

    /// Allows up to `n` retries (with short exponential backoff) for
    /// *transient-class* cell failures — panics and watchdog timeouts.
    /// Deterministic errors are never retried. Default: 0.
    pub fn retries(mut self, n: u32) -> SweepSpec {
        self.retries = n;
        self
    }

    /// Journals every finished benchmark row to a crash-safe on-disk
    /// journal (one atomically-written, checksummed file per row under
    /// `results/journal/`), so an interrupted sweep can be resumed.
    /// Default: off for library callers; [`crate::supervisor::run_cli`]
    /// turns it on for every figure binary.
    pub fn journal(mut self, on: bool) -> SweepSpec {
        self.journal = on;
        self
    }

    /// Replays rows journaled by a previous (interrupted) run of this
    /// same sweep instead of re-running them; replayed rows are
    /// bit-identical to the originals. Implies [`SweepSpec::journal`].
    pub fn resume(mut self, on: bool) -> SweepSpec {
        self.resume = on;
        self.journal |= on;
        self
    }

    /// Overrides the journal root directory (tests; default
    /// [`journal::JOURNAL_DIR`]).
    pub fn journal_dir<P: Into<PathBuf>>(mut self, root: P) -> SweepSpec {
        self.journal_root = root.into();
        self
    }

    /// Installs a SIGINT/SIGTERM watcher for the duration of the sweep:
    /// the first signal requests cooperative shutdown (in-flight
    /// benchmarks drain, the journal keeps finished rows, the summary
    /// prints a resume hint), a second aborts immediately. Default: off;
    /// on unsupported platforms this degrades to cooperative
    /// [`crate::supervisor::request_shutdown`] only.
    pub fn graceful_shutdown(mut self, on: bool) -> SweepSpec {
        self.graceful = on;
        self
    }

    /// Attaches the pipeline observer to every cell run: each benchmark
    /// row then carries a per-benchmark [`mg_obs::ObsAggregate`] and
    /// [`SweepResult::obs_aggregate`] merges them sweep-wide.
    #[cfg(feature = "obs")]
    pub fn observe(mut self, cfg: mg_obs::ObsConfig) -> SweepSpec {
        self.obs = Some(cfg);
        self
    }

    /// The benchmarks of the sweep, in row order.
    pub fn bench_specs(&self) -> &[BenchmarkSpec] {
        &self.benches
    }

    /// Executes the sweep and collects rows in deterministic order.
    ///
    /// # Panics
    ///
    /// Panics on a configuration error reported by
    /// [`SweepSpec::try_run`] (none are currently possible from a
    /// well-typed spec; the environment is parsed separately by
    /// [`crate::config`]). Cell-level failures never panic either way —
    /// they are recorded as error rows and the sweep continues.
    pub fn run(&self) -> SweepResult {
        self.try_run().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Executes the sweep as a figure binary should:
    /// [`crate::supervisor::run_cli`] — journaled, resumable via
    /// `MG_RESUME=1`, graceful on SIGINT/SIGTERM, exiting `2` on
    /// configuration errors and `130` after an interrupt.
    pub fn run_cli(self) -> SweepResult {
        supervisor::run_cli(self)
    }

    /// Whether this sweep journals rows. Observed sweeps do not: the
    /// journal cannot replay observer reports, so a replayed row would
    /// silently lose its instrumentation.
    fn journal_active(&self) -> bool {
        #[cfg(feature = "obs")]
        {
            self.journal && self.obs.is_none()
        }
        #[cfg(not(feature = "obs"))]
        {
            self.journal
        }
    }

    /// Executes the sweep with configuration errors reported as values.
    ///
    /// This is the supervised path: every cell runs under panic
    /// isolation (plus the watchdog and retry budget if configured),
    /// finished rows are journaled when [`SweepSpec::journal`] is on,
    /// and with [`SweepSpec::resume`] rows journaled by a previous
    /// interrupted run of the same sweep are replayed bit-identically
    /// instead of re-executed.
    pub fn try_run(&self) -> Result<SweepResult, BenchError> {
        let jobs = self.jobs.unwrap_or_else(crate::config::available_jobs);
        // Journal identity: the sweep shape (training setup, inputs,
        // cells, machine fingerprint) names the directory; each
        // benchmark row carries a content key. Both must match for a
        // record to replay, so stale journals degrade to re-running.
        let journal = self.journal_active().then(|| {
            let repr = journal::sweep_repr(
                &self.train_cfg,
                &self.train_input,
                &self.run_input,
                &self.cells,
            );
            let row_keys = self
                .benches
                .iter()
                .map(|b| journal::row_key(b, &repr))
                .collect();
            Journal::new(&self.journal_root, stable_hash64(repr.as_bytes()), row_keys)
        });
        let replayed_rows: Vec<Option<BenchRows>> = match (&journal, self.resume) {
            (Some(j), true) => (0..self.benches.len())
                .map(|i| j.load_row(i, self.cells.len()))
                .collect(),
            _ => vec![None; self.benches.len()],
        };
        let _watch = self
            .graceful
            .then(|| {
                SignalWatch::install(|signo, count| {
                    if count == 1 {
                        mg_error!(
                            "signal {signo}: draining in-flight benchmarks \
                             (signal again to abort immediately)"
                        );
                        supervisor::request_shutdown();
                    } else {
                        std::process::exit(128 + signo);
                    }
                })
            })
            .flatten();
        let before = cache::counters();
        let t0 = Instant::now();
        let _sweep_span = mg_obs::span(
            "sweep",
            format!("sweep:{}x{}", self.benches.len(), self.cells.len()),
        );
        let quiet = self.quiet;
        let journal_ref = journal.as_ref();
        let replayed_ref = &replayed_rows;
        let outcomes = par_map_catch(&self.benches, jobs, |i, spec| {
            if let Some(rows) = &replayed_ref[i] {
                if !quiet {
                    mg_obs::log::raw("r");
                }
                return rows.clone();
            }
            let rows = self.run_bench_task(spec);
            // Interrupted rows are unfinished by definition: journaling
            // them would make resume skip work that never ran.
            if let Some(j) = journal_ref {
                let interrupted = rows
                    .runs
                    .iter()
                    .any(|r| matches!(r, Err(BenchError::Interrupted { .. })));
                if !interrupted {
                    j.store_row(i, &rows);
                }
            }
            if !quiet {
                mg_obs::log::raw(".");
            }
            rows
        });
        // run_bench_task isolates cell and context panics itself, so a
        // panic escaping it is a harness bug — still turned into an
        // error row rather than tearing down the other 77 benchmarks.
        let rows: Vec<BenchRows> = outcomes
            .into_iter()
            .enumerate()
            .map(|(i, r)| match r {
                Ok(rows) => rows,
                Err(p) => BenchRows {
                    bench: self.benches[i].name.clone(),
                    runs: (0..self.cells.len())
                        .map(|j| {
                            Err(BenchError::Panicked {
                                bench: self.benches[i].name.clone(),
                                cell: j,
                                payload: p.payload.clone(),
                            })
                        })
                        .collect(),
                    wall: Duration::ZERO,
                    cache: None,
                    replayed: false,
                    retries: 0,
                    #[cfg(feature = "obs")]
                    obs: None,
                },
            })
            .collect();
        if !quiet {
            mg_obs::log::raw("\n");
        }
        let count_errs = |pred: &dyn Fn(&BenchError) -> bool| -> usize {
            rows.iter()
                .flat_map(|r| r.runs.iter())
                .filter(|c| matches!(c, Err(e) if pred(e)))
                .count()
        };
        let interrupted = count_errs(&|e| matches!(e, BenchError::Interrupted { .. }));
        let failures = count_errs(&|e| !matches!(e, BenchError::Interrupted { .. }));
        let summary = SweepSummary {
            benches: self.benches.len(),
            cells: self.cells.len(),
            failures,
            interrupted,
            replayed: rows.iter().filter(|r| r.replayed).count(),
            retries: rows.iter().map(|r| u64::from(r.retries)).sum(),
            jobs,
            wall: t0.elapsed(),
            task_wall_total: rows.iter().map(|r| r.wall).sum(),
            cache: cache::counters().since(&before),
            journal_dir: journal.as_ref().map(|j| j.dir().to_path_buf()),
            per_bench: rows
                .iter()
                .map(|r| BenchProfile {
                    bench: r.bench.clone(),
                    wall: r.wall,
                    cache: r.cache,
                })
                .collect(),
        };
        tele_counter!("mg_sweep_rows_total").add(summary.benches as u64);
        tele_counter!("mg_sweep_cells_total").add((summary.benches * summary.cells) as u64);
        tele_counter!("mg_sweep_failures_total").add(summary.failures as u64);
        tele_counter!("mg_sweep_interrupted_total").add(summary.interrupted as u64);
        tele_counter!("mg_sweep_rows_replayed_total").add(summary.replayed as u64);
        if !quiet {
            summary.print_footer();
        }
        if interrupted > 0 {
            match &summary.journal_dir {
                Some(dir) => mg_error!(
                    "sweep interrupted: {interrupted} cells skipped; finished rows are \
                     journaled at {} — rerun with MG_RESUME=1 to resume",
                    dir.display()
                ),
                None => mg_error!(
                    "sweep interrupted: {interrupted} cells skipped (journaling was off, \
                     a rerun starts from scratch)"
                ),
            }
        }
        Ok(SweepResult { rows, summary })
    }

    /// One benchmark's task: supervised context construction, then every
    /// cell under the supervision stack
    /// ([`supervisor::run_cell_supervised`]).
    fn run_bench_task(&self, spec: &BenchmarkSpec) -> BenchRows {
        let task0 = Instant::now();
        let _bench_span = mg_obs::span("bench", spec.name.clone());
        #[cfg(feature = "obs")]
        let obs_arg: supervisor::ObsArg = self.obs;
        #[cfg(not(feature = "obs"))]
        let obs_arg: supervisor::ObsArg = ();
        #[cfg(feature = "obs")]
        let mut obs_agg = self.obs.map(|_| mg_obs::ObsAggregate::new());
        let mut runs: Vec<Result<SchemeRun, BenchError>> = Vec::with_capacity(self.cells.len());
        let mut retries_total = 0u32;
        // Context construction gets the same panic isolation as cells: a
        // panicking builder fails this row, not the process.
        let ctx = if supervisor::shutdown_requested() {
            Err(BenchError::Interrupted {
                bench: spec.name.clone(),
            })
        } else {
            let _ctx_span = mg_obs::span("stage", format!("{}/context", spec.name));
            catch_unwind(AssertUnwindSafe(|| {
                BenchContext::builder(spec, &self.train_cfg)
                    .train_input(self.train_input.resolve(spec))
                    .run_input(self.run_input.resolve(spec))
                    .disk_cache(self.disk_cache)
                    .build()
            }))
            .unwrap_or_else(|e| {
                Err(BenchError::Panicked {
                    bench: spec.name.clone(),
                    cell: 0,
                    payload: format!("context build: {}", supervisor::panic_payload(e)),
                })
            })
        };
        let cache_outcome = match ctx {
            Ok(ctx) => {
                let ctx = Arc::new(ctx);
                for (j, cell) in self.cells.iter().enumerate() {
                    let (res, retries) = supervisor::run_cell_supervised(
                        &ctx,
                        cell,
                        j,
                        self.watchdog,
                        self.retries,
                        obs_arg,
                    );
                    retries_total += retries;
                    runs.push(res.map(|(run, _payload)| {
                        #[cfg(feature = "obs")]
                        if let (Some(agg), Some(report)) = (obs_agg.as_mut(), _payload) {
                            agg.absorb(&report);
                        }
                        run
                    }));
                }
                Some(ctx.cache_outcome())
            }
            Err(e) => {
                runs.extend(self.cells.iter().map(|_| Err(e.clone())));
                None
            }
        };
        let wall = task0.elapsed();
        tele_hist!("mg_sweep_bench_us").record_duration(wall);
        BenchRows {
            bench: spec.name.clone(),
            runs,
            wall,
            cache: cache_outcome,
            replayed: false,
            retries: retries_total,
            #[cfg(feature = "obs")]
            obs: obs_agg,
        }
    }
}

/// All cell results for one benchmark, in cell order.
#[derive(Clone, Debug)]
pub struct BenchRows {
    /// Benchmark name.
    pub bench: String,
    /// One result per spec cell, in the order cells were added.
    pub runs: Vec<Result<SchemeRun, BenchError>>,
    /// Wall time this benchmark's task took (context + all cells).
    pub wall: Duration,
    /// How the benchmark's context was served by the cache (`None` when
    /// context construction itself failed).
    pub cache: Option<CacheOutcome>,
    /// Whether this row was replayed from the sweep journal
    /// ([`SweepSpec::resume`]) instead of executed.
    pub replayed: bool,
    /// Retries spent on this row's cells (transient-class failures
    /// only; see [`SweepSpec::retries`]).
    pub retries: u32,
    /// Observer aggregate over this benchmark's cells (populated only
    /// when the sweep ran with [`SweepSpec::observe`]).
    #[cfg(feature = "obs")]
    pub obs: Option<mg_obs::ObsAggregate>,
}

impl BenchRows {
    /// The run of cell `idx`, or the error that felled it.
    pub fn get(&self, idx: usize) -> Result<&SchemeRun, &BenchError> {
        self.runs[idx].as_ref()
    }

    /// All runs, or the first failure (for binaries that skip a
    /// benchmark when any of its cells failed).
    pub fn all_ok(&self) -> Result<Vec<&SchemeRun>, &BenchError> {
        self.runs.iter().map(|r| r.as_ref()).collect()
    }
}

/// Everything a sweep produced.
#[derive(Clone, Debug)]
pub struct SweepResult {
    /// Per-benchmark rows, in spec order (deterministic).
    pub rows: Vec<BenchRows>,
    /// Execution metadata: timings, worker count, cache behaviour.
    pub summary: SweepSummary,
}

#[cfg(feature = "obs")]
impl SweepResult {
    /// Merges the per-benchmark observer aggregates into one sweep-wide
    /// stall-attribution aggregate (empty if the sweep did not observe).
    pub fn obs_aggregate(&self) -> mg_obs::ObsAggregate {
        let mut agg = mg_obs::ObsAggregate::new();
        for row in &self.rows {
            if let Some(a) = &row.obs {
                agg.merge(a);
            }
        }
        agg
    }
}

/// Sweep execution metadata — the first observability hooks for the
/// sweep hot path.
#[derive(Clone, Debug)]
pub struct SweepSummary {
    /// Number of benchmarks swept.
    pub benches: usize,
    /// Number of cells per benchmark.
    pub cells: usize,
    /// Number of failed cells recorded (sweep continued past them);
    /// interrupted cells are counted separately.
    pub failures: usize,
    /// Cells skipped because shutdown was requested mid-sweep.
    pub interrupted: usize,
    /// Benchmark rows replayed from the journal instead of executed.
    pub replayed: usize,
    /// Total retries spent on transient-class cell failures.
    pub retries: u64,
    /// Worker threads used.
    pub jobs: usize,
    /// End-to-end wall time.
    pub wall: Duration,
    /// Sum of per-task wall times (≈ serial cost; compare with `wall`
    /// for the realized speedup).
    pub task_wall_total: Duration,
    /// Context-cache counter deltas for this sweep.
    pub cache: CacheCounters,
    /// Where this sweep journals its rows (`None` when journaling is
    /// off).
    pub journal_dir: Option<PathBuf>,
    /// Per-benchmark wall time and cache outcome, in spec order.
    pub per_bench: Vec<BenchProfile>,
}

/// One benchmark's execution profile inside a sweep.
#[derive(Clone, Debug)]
pub struct BenchProfile {
    /// Benchmark name.
    pub bench: String,
    /// Wall time of the benchmark's task (context + all cells).
    pub wall: Duration,
    /// Cache outcome of the context build (`None` if it failed).
    pub cache: Option<CacheOutcome>,
}

impl BenchProfile {
    fn render(&self) -> String {
        format!(
            "{} {:.2}s (context: {})",
            self.bench,
            self.wall.as_secs_f64(),
            self.cache.map_or("failed", |c| c.tag())
        )
    }
}

impl SweepSummary {
    /// Logs the standard summary footer: the aggregate line and the
    /// slowest benchmarks at `info`, the full per-benchmark listing at
    /// `debug` (`MG_LOG=debug`).
    pub fn print_footer(&self) {
        mg_info!(
            "sweep: {} benchmarks x {} cells on {} workers in {:.1}s \
             (task time {:.1}s, speedup {:.1}x); \
             context cache: {} memory hits, {} disk hits, {} misses{}",
            self.benches,
            self.cells,
            self.jobs,
            self.wall.as_secs_f64(),
            self.task_wall_total.as_secs_f64(),
            self.task_wall_total.as_secs_f64() / self.wall.as_secs_f64().max(1e-9),
            self.cache.mem_hits,
            self.cache.disk_hits,
            self.cache.misses,
            if self.failures > 0 {
                format!("; {} FAILED cells", self.failures)
            } else {
                String::new()
            },
        );
        if self.replayed > 0 || self.retries > 0 || self.interrupted > 0 {
            mg_info!(
                "resilience: {} rows replayed from the journal, {} retries, \
                 {} interrupted cells",
                self.replayed,
                self.retries,
                self.interrupted,
            );
        }
        if !self.per_bench.is_empty() {
            let mut by_wall: Vec<&BenchProfile> = self.per_bench.iter().collect();
            by_wall.sort_by(|a, b| b.wall.cmp(&a.wall).then_with(|| a.bench.cmp(&b.bench)));
            let slowest: Vec<String> = by_wall.iter().take(3).map(|p| p.render()).collect();
            mg_info!("slowest: {}", slowest.join(", "));
            for p in &self.per_bench {
                mg_debug!("  {}", p.render());
            }
        }
    }
}

/// A panic captured from one [`par_map_catch`] task.
#[derive(Clone, Debug)]
pub struct TaskPanic {
    /// Index of the item whose task panicked.
    pub index: usize,
    /// Rendered panic payload.
    pub payload: String,
}

/// Maps `f` over `items` on `jobs` scoped worker threads, returning
/// results in item order with per-task panic isolation: a panicking
/// task yields `Err(TaskPanic)` in its slot while every other task
/// still runs to completion and delivers. Workers pull the next index
/// from a shared atomic queue, so uneven task costs balance
/// automatically. With `jobs <= 1` this degenerates to a serial map
/// (no threads), which is the reference order the parallel path must
/// reproduce.
pub fn par_map_catch<T, R, F>(items: &[T], jobs: usize, f: F) -> Vec<Result<R, TaskPanic>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let catch = |i: usize, t: &T| {
        catch_unwind(AssertUnwindSafe(|| f(i, t))).map_err(|e| TaskPanic {
            index: i,
            payload: supervisor::panic_payload(e),
        })
    };
    let jobs = jobs.max(1).min(items.len().max(1));
    if jobs <= 1 {
        return items.iter().enumerate().map(|(i, t)| catch(i, t)).collect();
    }
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, Result<R, TaskPanic>)>();
    std::thread::scope(|s| {
        for w in 0..jobs {
            let tx = tx.clone();
            let next = &next;
            let catch = &catch;
            let body = move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let r = catch(i, &items[i]);
                if tx.send((i, r)).is_err() {
                    break;
                }
            };
            // Named workers keep log lines and trace spans attributable;
            // fall back to an anonymous spawn if naming ever fails.
            if std::thread::Builder::new()
                .name(format!("mg-worker-{w}"))
                .spawn_scoped(s, body.clone())
                .is_err()
            {
                s.spawn(body);
            }
        }
        drop(tx);
        let mut out: Vec<Option<Result<R, TaskPanic>>> =
            std::iter::repeat_with(|| None).take(items.len()).collect();
        for (i, r) in rx {
            out[i] = Some(r);
        }
        // Panics are caught inside the workers, so every slot should be
        // delivered. If a worker still died without delivering (an
        // abort-in-drop class bug), record the loss in that task's slot
        // instead of panicking the collector: the other results are
        // intact and the caller decides what a lost task means.
        out.into_iter()
            .enumerate()
            .map(|(i, r)| {
                r.unwrap_or_else(|| {
                    Err(TaskPanic {
                        index: i,
                        payload: "task result never delivered (worker died)".to_string(),
                    })
                })
            })
            .collect()
    })
}

/// [`par_map_catch`] for infallible tasks: panics (with the first
/// task's payload) only after every task has finished, so no work is
/// silently lost mid-flight.
pub fn par_map<T, R, F>(items: &[T], jobs: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let mut first: Option<TaskPanic> = None;
    let out: Vec<R> = par_map_catch(items, jobs, f)
        .into_iter()
        .filter_map(|r| match r {
            Ok(v) => Some(v),
            Err(p) => {
                first.get_or_insert(p);
                None
            }
        })
        .collect();
    if let Some(p) = first {
        resume_unwind(Box::new(format!(
            "task {} panicked: {}",
            p.index, p.payload
        )));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_item_order() {
        let items: Vec<u64> = (0..100).collect();
        let serial = par_map(&items, 1, |i, &x| (i as u64) * 1000 + x * x);
        let parallel = par_map(&items, 8, |i, &x| (i as u64) * 1000 + x * x);
        assert_eq!(serial, parallel);
        assert_eq!(serial[3], 3009);
    }

    #[test]
    fn par_map_handles_empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(&empty, 4, |_, &x| x).is_empty());
        assert_eq!(par_map(&[7u32], 4, |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn par_map_catch_isolates_task_panics() {
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let items: Vec<u32> = (0..16).collect();
        for jobs in [1, 4] {
            let out = par_map_catch(&items, jobs, |i, &x| {
                if x == 5 {
                    panic!("boom {i}");
                }
                x * 2
            });
            assert_eq!(out.len(), items.len());
            for (i, r) in out.iter().enumerate() {
                if i == 5 {
                    let p = r.as_ref().expect_err("task 5 panicked");
                    assert_eq!(p.index, 5);
                    assert!(p.payload.contains("boom 5"), "{}", p.payload);
                } else {
                    assert_eq!(*r.as_ref().unwrap(), i as u32 * 2, "jobs={jobs}");
                }
            }
        }
        std::panic::set_hook(hook);
    }

    #[test]
    fn par_map_finishes_every_task_before_repanicking() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let done = AtomicUsize::new(0);
        let items: Vec<u32> = (0..8).collect();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            par_map(&items, 4, |_, &x| {
                if x == 0 {
                    panic!("first task dies");
                }
                done.fetch_add(1, Ordering::Relaxed);
                x
            })
        }));
        std::panic::set_hook(hook);
        let payload = caught.expect_err("the panic must propagate");
        let msg = crate::supervisor::panic_payload(payload);
        assert!(msg.contains("first task dies"), "{msg}");
        assert_eq!(
            done.load(Ordering::Relaxed),
            items.len() - 1,
            "no sibling task is abandoned when one panics"
        );
    }
}
