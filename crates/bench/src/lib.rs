//! Experiment harness regenerating every table and figure of
//! *"Serialization-Aware Mini-Graphs"* (MICRO 2006).
//!
//! Each figure has a binary under `src/bin/`; the shared machinery lives
//! in [`harness`] (benchmark contexts and scheme runs), [`runner`] (the
//! parallel [`SweepSpec`] executor), [`cache`] (content-keyed context
//! memoization), and [`stats`]. See `EXPERIMENTS.md` at the repository
//! root for the paper-vs-measured record.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cache;
pub mod figures;
pub mod golden;
pub mod harness;
pub mod runner;
pub mod stats;

pub use cache::CacheOutcome;
#[cfg(feature = "obs")]
pub use harness::ObsSection;
pub use harness::{
    machine_fingerprint, save_json, BenchContext, BenchContextBuilder, BenchError, Envelope,
    Scheme, SchemeRun, SCHEMA_VERSION,
};
pub use runner::{
    default_jobs, par_map, parse_jobs, try_default_jobs, BenchProfile, BenchRows, InputSel,
    SweepCell, SweepResult, SweepSpec, SweepSummary,
};
pub use stats::{geomean, mean, s_curve};
