//! Experiment harness regenerating every table and figure of
//! *"Serialization-Aware Mini-Graphs"* (MICRO 2006).
//!
//! Each figure has a binary under `src/bin/`; the shared machinery lives
//! in [`harness`] (benchmark contexts and scheme runs), [`runner`] (the
//! parallel [`SweepSpec`] executor), [`supervisor`] (panic isolation,
//! watchdogs, retry, and graceful shutdown around it), [`config`] (the
//! single typed parse point for every `MG_*` environment knob),
//! [`journal`] (crash-safe resume for interrupted sweeps), [`fault`]
//! (deterministic fault injection behind the `fault-inject` feature),
//! [`cache`] (content-keyed context memoization), and [`stats`]. See
//! `EXPERIMENTS.md` at the repository root for the paper-vs-measured
//! record.

#![warn(missing_docs)]
// `signals` needs two `asm!`-wrapped syscalls for libc-free
// SIGINT/SIGTERM watching; everything else stays safe.
#![deny(unsafe_code)]

pub mod binfmt;
pub mod cache;
pub mod config;
pub mod fault;
pub mod figures;
pub mod golden;
pub mod harness;
pub mod journal;
pub mod runner;
pub mod signals;
pub mod stats;
pub mod supervisor;

pub use cache::CacheOutcome;
pub use config::{default_jobs, parse_jobs, try_default_jobs, Config};
#[cfg(feature = "obs")]
pub use harness::ObsSection;
pub use harness::{
    machine_fingerprint, save_bin, save_json, BenchContext, BenchContextBuilder, BenchError,
    Envelope, Scheme, SchemeRun, SCHEMA_VERSION,
};
pub use journal::Journal;
pub use runner::{
    par_map, par_map_catch, BenchProfile, BenchRows, InputSel, SweepCell, SweepResult, SweepSpec,
    SweepSummary, TaskPanic,
};
pub use stats::{geomean, mean, s_curve};
pub use supervisor::{
    clear_shutdown, request_shutdown, run_cli, shutdown_requested, supervise_cell,
    supervise_cell_until,
};
