//! Experiment harness regenerating every table and figure of
//! *"Serialization-Aware Mini-Graphs"* (MICRO 2006).
//!
//! Each figure has a binary under `src/bin/`; the shared machinery lives
//! in [`harness`]. See `EXPERIMENTS.md` at the repository root for the
//! paper-vs-measured record.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod harness;

pub use harness::{geomean, mean, s_curve, save_json, BenchContext, Scheme, SchemeRun};
