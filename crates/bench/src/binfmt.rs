//! Checksummed binary record container for everything this workspace
//! persists: disk cache entries, journal rows, and observability dumps.
//!
//! Every durability layer used to round-trip through `serde_json`
//! (`results/OBS_<bench>.json` was ~50k lines for one benchmark, and
//! journal/cache replay paid a full JSON parse on every resume). This
//! module replaces that with a fixed-layout binary container plus a
//! compact binary encoding of the shimmed [`serde::Value`] data model,
//! so every `#[derive(Serialize)]` type in the workspace gets the
//! binary format with no per-type code.
//!
//! # Container layout
//!
//! All integers are explicit little-endian, so the header is readable
//! by offset without parsing anything (and the whole record can be
//! inspected from an `mmap` without touching the payload):
//!
//! ```text
//! offset  size  field
//! 0       4     magic "MGB1"
//! 4       2     container version (u16) — layout of this envelope
//! 6       2     record kind (u16, see [`RecordKind`])
//! 8       4     payload schema version (u32) — meaning of the payload
//! 12      4     reserved flags (u32, written 0, ignored on read)
//! 16      8     payload length in bytes (u64)
//! 24      N     payload: length-prefixed sections (see below)
//! 24+N    8     FNV-1a-64 checksum over bytes [0, 24+N)
//! ```
//!
//! The trailer checksum covers the header too, so a record either
//! verifies end-to-end or it is treated as corrupt; a record whose
//! *header* fields disagree with the reader (kind, schema) is merely
//! **stale** — the two cases are distinguished by
//! [`BinError::is_corrupt`], and callers quarantine the former while
//! silently re-deriving the latter.
//!
//! # Payload: sections + value tree
//!
//! The payload is two length-prefixed sections (u32-LE byte length,
//! then contents), so readers can skip either without decoding it:
//!
//! 1. **String table** — varint count, then each string as varint
//!    length + UTF-8 bytes. Every string in the record (map keys *and*
//!    string values) is interned here once; 50k trace records naming
//!    the same eight fields pay for those names once, not 50k times.
//! 2. **Value tree** — one tag byte per node: null/bool tags,
//!    zigzag-varint integers, `f64` as raw little-endian bits (replay
//!    is bit-identical by construction, which JSON can only approximate
//!    by printing enough digits; integral floats compress to a zigzag
//!    varint when that reproduces the exact bits), strings as table
//!    indices, and varint-counted sequences/maps. Runs of identical
//!    scalars inside a sequence (profile zeros, repeated frequency
//!    counts) collapse to a single repeat marker.
//!
//! Decoding is fully defensive: every varint is bounded, every length
//! is checked against the remaining bytes, and every table index is
//! bounds-checked — corrupt bytes that somehow pass the checksum still
//! produce a [`BinError::Malformed`], never a panic or a wrong value.

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// The four magic bytes opening every record.
pub const MAGIC: [u8; 4] = *b"MGB1";

/// Version of the container layout itself (header/sections/trailer).
/// Bump only when the *envelope* changes shape; payload evolution goes
/// through each record kind's schema version instead.
pub const CONTAINER_VERSION: u16 = 1;

/// Byte length of the fixed header.
pub const HEADER_LEN: usize = 24;

/// Byte length of the checksum trailer.
pub const TRAILER_LEN: usize = 8;

/// File extension for binary records (`ctx-*.mgb`, `row-*.mgb`,
/// `OBS_*.mgb`, ...).
pub const EXT: &str = "mgb";

/// Schema version of [`RecordKind::SpanTrace`] payloads (a Chrome-trace
/// document as written by `mg_obs::span::chrome_trace`).
pub const SPAN_TRACE_SCHEMA: u32 = 1;

/// What a record's payload is. Stored in the header so a reader can
/// reject a cache entry handed to the journal (and vice versa) without
/// decoding anything.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u16)]
pub enum RecordKind {
    /// Disk context-cache entry (`results/cache/ctx-*.mgb`).
    CacheEntry = 1,
    /// Sweep-journal row or serve cell (`results/journal/.../row-*.mgb`).
    JournalRow = 2,
    /// Observability dump: an `ObsSection` envelope (`results/OBS_*.mgb`).
    ObsDump = 3,
    /// Wall-time span trace: a Chrome-trace document (`results/TRACE_*.mgb`).
    SpanTrace = 4,
    /// Versioned results envelope written by `save_bin` for anything
    /// else (benchmark reports, telemetry snapshots).
    Results = 5,
}

impl RecordKind {
    /// The kind for a header tag, if it names one.
    pub fn from_u16(tag: u16) -> Option<RecordKind> {
        match tag {
            1 => Some(RecordKind::CacheEntry),
            2 => Some(RecordKind::JournalRow),
            3 => Some(RecordKind::ObsDump),
            4 => Some(RecordKind::SpanTrace),
            5 => Some(RecordKind::Results),
            _ => None,
        }
    }
}

/// The fixed-offset fields of a record, readable without decoding (or
/// even checksumming) the payload. See [`peek_header`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Header {
    /// Container layout version.
    pub container_version: u16,
    /// Record kind tag (may be unknown to this build; compare with
    /// [`RecordKind::from_u16`]).
    pub kind: u16,
    /// Payload schema version, owned by the record kind.
    pub schema: u32,
    /// Payload length in bytes.
    pub payload_len: u64,
}

/// Why a record failed to open. [`BinError::is_corrupt`] splits the
/// variants into *corrupt* (quarantine the file, keep the evidence) and
/// *stale* (a different generation wrote it; silently re-derive).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BinError {
    /// Fewer bytes than the layout requires (torn or truncated write).
    Truncated {
        /// Bytes the layout requires.
        need: usize,
        /// Bytes actually present.
        have: usize,
    },
    /// The first four bytes are not [`MAGIC`].
    BadMagic,
    /// The container layout version is newer than this build reads.
    UnsupportedContainer(u16),
    /// The record is of a different kind than the caller expects.
    WrongKind {
        /// Kind tag the caller required.
        want: u16,
        /// Kind tag in the header.
        got: u16,
    },
    /// The payload schema version does not match the caller's.
    StaleSchema {
        /// Schema version the caller requires.
        want: u32,
        /// Schema version in the header.
        got: u32,
    },
    /// The trailer checksum does not match the bytes (bit rot, torn
    /// write landing on the right length, or tampering).
    Checksum {
        /// Checksum recorded in the trailer.
        want: u64,
        /// Checksum recomputed over the bytes.
        got: u64,
    },
    /// The payload bytes do not decode as sections + value tree, or
    /// the decoded value does not deserialize as the requested type.
    Malformed(String),
}

impl BinError {
    /// Whether the record is damaged (quarantine it) as opposed to
    /// merely written by a different generation (treat as absent).
    pub fn is_corrupt(&self) -> bool {
        match self {
            BinError::Truncated { .. }
            | BinError::BadMagic
            | BinError::Checksum { .. }
            | BinError::Malformed(_) => true,
            BinError::UnsupportedContainer(_)
            | BinError::WrongKind { .. }
            | BinError::StaleSchema { .. } => false,
        }
    }
}

impl fmt::Display for BinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BinError::Truncated { need, have } => {
                write!(f, "record truncated: need {need} bytes, have {have}")
            }
            BinError::BadMagic => write!(f, "not a binary record (bad magic)"),
            BinError::UnsupportedContainer(v) => {
                write!(f, "container version {v} is newer than this build")
            }
            BinError::WrongKind { want, got } => {
                write!(f, "wrong record kind: want {want}, got {got}")
            }
            BinError::StaleSchema { want, got } => {
                write!(f, "stale payload schema: want {want}, got {got}")
            }
            BinError::Checksum { want, got } => {
                write!(
                    f,
                    "checksum mismatch: recorded {want:016x}, computed {got:016x}"
                )
            }
            BinError::Malformed(why) => write!(f, "malformed payload: {why}"),
        }
    }
}

impl std::error::Error for BinError {}

// ----------------------------------------------------------------------
// Container
// ----------------------------------------------------------------------

/// Wraps already-encoded payload bytes in the checksummed container.
pub fn seal_payload(kind: RecordKind, schema: u32, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len() + TRAILER_LEN);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&CONTAINER_VERSION.to_le_bytes());
    out.extend_from_slice(&(kind as u16).to_le_bytes());
    out.extend_from_slice(&schema.to_le_bytes());
    out.extend_from_slice(&0u32.to_le_bytes()); // reserved flags
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    let sum = crate::cache::stable_hash64(&out);
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

fn le_u16(bytes: &[u8], at: usize) -> u16 {
    u16::from_le_bytes([bytes[at], bytes[at + 1]])
}

fn le_u32(bytes: &[u8], at: usize) -> u32 {
    u32::from_le_bytes([bytes[at], bytes[at + 1], bytes[at + 2], bytes[at + 3]])
}

fn le_u64(bytes: &[u8], at: usize) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&bytes[at..at + 8]);
    u64::from_le_bytes(b)
}

/// Reads the fixed header fields without verifying the checksum or
/// touching the payload — the "readable without a full parse" path for
/// tools listing a directory of records.
pub fn peek_header(bytes: &[u8]) -> Result<Header, BinError> {
    if bytes.len() < HEADER_LEN {
        return Err(BinError::Truncated {
            need: HEADER_LEN,
            have: bytes.len(),
        });
    }
    if bytes[..4] != MAGIC {
        return Err(BinError::BadMagic);
    }
    let container_version = le_u16(bytes, 4);
    if container_version > CONTAINER_VERSION {
        return Err(BinError::UnsupportedContainer(container_version));
    }
    Ok(Header {
        container_version,
        kind: le_u16(bytes, 6),
        schema: le_u32(bytes, 8),
        payload_len: le_u64(bytes, 16),
    })
}

/// Verifies a whole record (length and checksum) and returns its header
/// and a zero-copy slice of the payload bytes.
pub fn open_payload(bytes: &[u8]) -> Result<(Header, &[u8]), BinError> {
    let header = peek_header(bytes)?;
    let payload_len = usize::try_from(header.payload_len)
        .map_err(|_| BinError::Malformed("payload length overflows usize".into()))?;
    let need = HEADER_LEN
        .checked_add(payload_len)
        .and_then(|n| n.checked_add(TRAILER_LEN))
        .ok_or_else(|| BinError::Malformed("payload length overflows usize".into()))?;
    if bytes.len() < need {
        return Err(BinError::Truncated {
            need,
            have: bytes.len(),
        });
    }
    if bytes.len() > need {
        return Err(BinError::Malformed(format!(
            "{} trailing bytes after the record",
            bytes.len() - need
        )));
    }
    let body = &bytes[..need - TRAILER_LEN];
    let want = le_u64(bytes, need - TRAILER_LEN);
    let got = crate::cache::stable_hash64(body);
    if want != got {
        return Err(BinError::Checksum { want, got });
    }
    Ok((header, &bytes[HEADER_LEN..need - TRAILER_LEN]))
}

// ----------------------------------------------------------------------
// Value codec
// ----------------------------------------------------------------------

const TAG_NULL: u8 = 0x00;
const TAG_FALSE: u8 = 0x01;
const TAG_TRUE: u8 = 0x02;
const TAG_INT: u8 = 0x03; // zigzag varint i64
const TAG_UINT: u8 = 0x04; // varint u64 (values that do not fit i64)
const TAG_F64: u8 = 0x05; // 8 bytes, little-endian IEEE-754 bits
const TAG_STR: u8 = 0x06; // varint string-table index
const TAG_SEQ: u8 = 0x07; // varint count, then elements
const TAG_MAP: u8 = 0x08; // varint count, then (key index, value) pairs
const TAG_F64I: u8 = 0x09; // integral f64 as zigzag varint (bit-exact)
const TAG_REPEAT: u8 = 0x0a; // seq elements only: varint run, one scalar

/// Hard cap on the logical element count of one sequence. Run-length
/// encoded runs mean a tiny payload can legitimately expand to many
/// elements, so counts cannot be bounded by the bytes remaining; this
/// caps memory for corrupt or adversarial counts instead (~100 MB of
/// scalars worst case).
const MAX_SEQ_LEN: usize = 1 << 22;

/// An `f64` that a zigzag varint reproduces bit-exactly: integral,
/// within `i64`'s exact range, and not `-0.0` (whose sign the integer
/// round trip would drop). NaN and infinities fail `v == trunc`.
fn integral_f64(x: f64) -> Option<i64> {
    if x != x.trunc() || x.abs() > 9_007_199_254_740_992.0 {
        return None;
    }
    let i = x as i64;
    (((i as f64).to_bits()) == x.to_bits()).then_some(i)
}

/// Whether two scalar values encode identically (floats by bit
/// pattern, so NaN runs still collapse). Non-scalars never match:
/// runs are only collapsed over scalars, keeping expansion bounded.
fn scalar_eq(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Null, Value::Null) => true,
        (Value::Bool(x), Value::Bool(y)) => x == y,
        (Value::I64(x), Value::I64(y)) => x == y,
        (Value::U64(x), Value::U64(y)) => x == y,
        (Value::F64(x), Value::F64(y)) => x.to_bits() == y.to_bits(),
        (Value::Str(x), Value::Str(y)) => x == y,
        _ => false,
    }
}

fn is_scalar(v: &Value) -> bool {
    !matches!(v, Value::Seq(_) | Value::Map(_))
}

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Streaming byte reader with bounds-checked primitives; every decode
/// failure is a [`BinError::Malformed`].
struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Reader<'a> {
        Reader { bytes, at: 0 }
    }

    fn remaining(&self) -> usize {
        self.bytes.len() - self.at
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], BinError> {
        if self.remaining() < n {
            return Err(BinError::Malformed(format!(
                "need {n} bytes at offset {}, have {}",
                self.at,
                self.remaining()
            )));
        }
        let s = &self.bytes[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }

    fn varint(&mut self) -> Result<u64, BinError> {
        let mut v: u64 = 0;
        for shift in 0..10 {
            let byte = *self.take(1)?.first().expect("take(1) returned one byte");
            if shift == 9 && byte > 0x01 {
                return Err(BinError::Malformed("varint overflows u64".into()));
            }
            v |= u64::from(byte & 0x7f) << (shift * 7);
            if byte & 0x80 == 0 {
                return Ok(v);
            }
        }
        Err(BinError::Malformed("varint longer than 10 bytes".into()))
    }

    /// A varint that must also fit `usize` and be a plausible element
    /// count for the bytes left (every element costs at least one
    /// byte), so corrupt counts cannot drive huge allocations.
    fn count(&mut self) -> Result<usize, BinError> {
        let n = self.varint()?;
        let n =
            usize::try_from(n).map_err(|_| BinError::Malformed("count overflows usize".into()))?;
        if n > self.remaining() {
            return Err(BinError::Malformed(format!(
                "count {n} exceeds {} remaining bytes",
                self.remaining()
            )));
        }
        Ok(n)
    }
}

fn intern(s: &str, table: &mut Vec<String>, index: &mut std::collections::HashMap<String, u64>) {
    if !index.contains_key(s) {
        index.insert(s.to_string(), table.len() as u64);
        table.push(s.to_string());
    }
}

fn collect_strings(
    v: &Value,
    table: &mut Vec<String>,
    index: &mut std::collections::HashMap<String, u64>,
) {
    match v {
        Value::Str(s) => intern(s, table, index),
        Value::Seq(items) => {
            for item in items {
                collect_strings(item, table, index);
            }
        }
        Value::Map(entries) => {
            for (k, val) in entries {
                intern(k, table, index);
                collect_strings(val, table, index);
            }
        }
        _ => {}
    }
}

fn encode_node(v: &Value, index: &std::collections::HashMap<String, u64>, out: &mut Vec<u8>) {
    match v {
        Value::Null => out.push(TAG_NULL),
        Value::Bool(false) => out.push(TAG_FALSE),
        Value::Bool(true) => out.push(TAG_TRUE),
        Value::I64(n) => {
            out.push(TAG_INT);
            put_varint(out, zigzag(*n));
        }
        Value::U64(n) => {
            out.push(TAG_UINT);
            put_varint(out, *n);
        }
        Value::F64(x) => {
            if let Some(i) = integral_f64(*x) {
                out.push(TAG_F64I);
                put_varint(out, zigzag(i));
            } else {
                out.push(TAG_F64);
                out.extend_from_slice(&x.to_bits().to_le_bytes());
            }
        }
        Value::Str(s) => {
            out.push(TAG_STR);
            put_varint(out, index[s.as_str()]);
        }
        Value::Seq(items) => {
            out.push(TAG_SEQ);
            put_varint(out, items.len() as u64);
            // Collapse runs of identical scalars (profile zeros,
            // repeated frequency counts) into one repeat marker.
            let mut i = 0;
            while i < items.len() {
                let mut run = 1;
                while is_scalar(&items[i])
                    && i + run < items.len()
                    && scalar_eq(&items[i], &items[i + run])
                {
                    run += 1;
                }
                if run >= 3 {
                    out.push(TAG_REPEAT);
                    put_varint(out, run as u64);
                    encode_node(&items[i], index, out);
                } else {
                    for item in &items[i..i + run] {
                        encode_node(item, index, out);
                    }
                }
                i += run;
            }
        }
        Value::Map(entries) => {
            out.push(TAG_MAP);
            put_varint(out, entries.len() as u64);
            for (k, val) in entries {
                put_varint(out, index[k.as_str()]);
                encode_node(val, index, out);
            }
        }
    }
}

/// Encodes a [`Value`] tree as the two payload sections (string table +
/// tree), each length-prefixed.
pub fn encode_value(v: &Value) -> Vec<u8> {
    let mut table = Vec::new();
    let mut index = std::collections::HashMap::new();
    collect_strings(v, &mut table, &mut index);

    let mut strings = Vec::new();
    put_varint(&mut strings, table.len() as u64);
    for s in &table {
        put_varint(&mut strings, s.len() as u64);
        strings.extend_from_slice(s.as_bytes());
    }
    let mut tree = Vec::new();
    encode_node(v, &index, &mut tree);

    let mut out = Vec::with_capacity(8 + strings.len() + tree.len());
    out.extend_from_slice(&(strings.len() as u32).to_le_bytes());
    out.extend_from_slice(&strings);
    out.extend_from_slice(&(tree.len() as u32).to_le_bytes());
    out.extend_from_slice(&tree);
    out
}

fn decode_node(r: &mut Reader<'_>, table: &[String], depth: usize) -> Result<Value, BinError> {
    if depth > 128 {
        return Err(BinError::Malformed("value nesting deeper than 128".into()));
    }
    let tag = *r.take(1)?.first().expect("take(1) returned one byte");
    match tag {
        TAG_NULL => Ok(Value::Null),
        TAG_FALSE => Ok(Value::Bool(false)),
        TAG_TRUE => Ok(Value::Bool(true)),
        TAG_INT => Ok(Value::I64(unzigzag(r.varint()?))),
        TAG_UINT => Ok(Value::U64(r.varint()?)),
        TAG_F64 => {
            let b = r.take(8)?;
            let mut bits = [0u8; 8];
            bits.copy_from_slice(b);
            Ok(Value::F64(f64::from_bits(u64::from_le_bytes(bits))))
        }
        TAG_F64I => Ok(Value::F64(unzigzag(r.varint()?) as f64)),
        TAG_STR => {
            let idx = r.varint()?;
            let s = usize::try_from(idx)
                .ok()
                .and_then(|i| table.get(i))
                .ok_or_else(|| BinError::Malformed(format!("string index {idx} out of range")))?;
            Ok(Value::Str(s.clone()))
        }
        TAG_SEQ => {
            // Repeat runs legitimately expand past the bytes remaining,
            // so sequence counts get an absolute cap instead of the
            // remaining-bytes plausibility check other counts use.
            let n = r.varint()?;
            let n = usize::try_from(n)
                .ok()
                .filter(|&n| n <= MAX_SEQ_LEN)
                .ok_or_else(|| {
                    BinError::Malformed(format!("sequence count {n} exceeds {MAX_SEQ_LEN}"))
                })?;
            let mut items = Vec::with_capacity(n.min(4096));
            while items.len() < n {
                if r.bytes.get(r.at) == Some(&TAG_REPEAT) {
                    r.at += 1;
                    let run = usize::try_from(r.varint()?)
                        .ok()
                        .filter(|&run| run >= 1 && run <= n - items.len())
                        .ok_or_else(|| {
                            BinError::Malformed("repeat run exceeds its sequence".into())
                        })?;
                    let item = decode_node(r, table, depth + 1)?;
                    if !is_scalar(&item) {
                        return Err(BinError::Malformed("repeat of a non-scalar value".into()));
                    }
                    items.extend(std::iter::repeat_n(item, run));
                } else {
                    items.push(decode_node(r, table, depth + 1)?);
                }
            }
            Ok(Value::Seq(items))
        }
        TAG_MAP => {
            let n = r.count()?;
            let mut entries = Vec::with_capacity(n);
            for _ in 0..n {
                let idx = r.varint()?;
                let key = usize::try_from(idx)
                    .ok()
                    .and_then(|i| table.get(i))
                    .ok_or_else(|| BinError::Malformed(format!("key index {idx} out of range")))?;
                entries.push((key.clone(), decode_node(r, table, depth + 1)?));
            }
            Ok(Value::Map(entries))
        }
        other => Err(BinError::Malformed(format!(
            "unknown value tag {other:#04x}"
        ))),
    }
}

fn section<'a>(r: &mut Reader<'a>) -> Result<Reader<'a>, BinError> {
    let len_bytes = r.take(4)?;
    let mut b = [0u8; 4];
    b.copy_from_slice(len_bytes);
    let len = u32::from_le_bytes(b) as usize;
    Ok(Reader::new(r.take(len)?))
}

/// Decodes payload sections back into a [`Value`] tree.
pub fn decode_value(payload: &[u8]) -> Result<Value, BinError> {
    let mut r = Reader::new(payload);

    let mut strings = section(&mut r)?;
    let n = strings.count()?;
    let mut table = Vec::with_capacity(n);
    for _ in 0..n {
        let len = strings.count()?;
        let bytes = strings.take(len)?;
        let s = std::str::from_utf8(bytes)
            .map_err(|_| BinError::Malformed("string table entry is not UTF-8".into()))?;
        table.push(s.to_string());
    }
    if strings.remaining() != 0 {
        return Err(BinError::Malformed("trailing bytes in string table".into()));
    }

    let mut tree = section(&mut r)?;
    if r.remaining() != 0 {
        return Err(BinError::Malformed("trailing bytes after sections".into()));
    }
    let value = decode_node(&mut tree, &table, 0)?;
    if tree.remaining() != 0 {
        return Err(BinError::Malformed(
            "trailing bytes after value tree".into(),
        ));
    }
    Ok(value)
}

// ----------------------------------------------------------------------
// High-level record API
// ----------------------------------------------------------------------

/// Serializes any `Serialize` type into a complete sealed record.
/// Infallible by construction: the shimmed serde data model always
/// lowers, and the codec encodes every [`Value`].
pub fn to_record<T: Serialize + ?Sized>(kind: RecordKind, schema: u32, value: &T) -> Vec<u8> {
    seal_payload(kind, schema, &encode_value(&value.to_value()))
}

/// Verifies a record of the expected kind and schema and returns the
/// decoded [`Value`] tree. Kind/schema mismatches are *stale*
/// ([`BinError::is_corrupt`] is false); everything else is corruption.
pub fn open_value(bytes: &[u8], kind: RecordKind, schema: u32) -> Result<Value, BinError> {
    let (header, payload) = open_payload(bytes)?;
    if header.kind != kind as u16 {
        return Err(BinError::WrongKind {
            want: kind as u16,
            got: header.kind,
        });
    }
    if header.schema != schema {
        return Err(BinError::StaleSchema {
            want: schema,
            got: header.schema,
        });
    }
    decode_value(payload)
}

/// Verifies a record and deserializes its payload as `T`.
pub fn from_record<T: Deserialize>(
    bytes: &[u8],
    kind: RecordKind,
    schema: u32,
) -> Result<T, BinError> {
    let value = open_value(bytes, kind, schema)?;
    T::from_value(&value).map_err(|e| BinError::Malformed(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Serialize;

    fn sample_value() -> Value {
        Value::Map(vec![
            ("name".into(), Value::Str("mib_sha".into())),
            ("cycles".into(), Value::I64(4800)),
            ("big".into(), Value::U64(u64::MAX)),
            ("neg".into(), Value::I64(-123_456)),
            ("ipc".into(), Value::F64(1.25)),
            ("nan".into(), Value::F64(f64::NAN)),
            ("flag".into(), Value::Bool(true)),
            ("empty".into(), Value::Null),
            (
                "cells".into(),
                Value::Seq(vec![
                    Value::Str("mib_sha".into()), // repeats: interned once
                    Value::Map(vec![("name".into(), Value::Str("x".into()))]),
                ]),
            ),
        ])
    }

    #[test]
    fn value_codec_round_trips_including_float_bits() {
        let v = sample_value();
        let payload = encode_value(&v);
        let back = decode_value(&payload).expect("decodes");
        // NaN != NaN, so compare via the serialized bit patterns.
        fn eq(a: &Value, b: &Value) -> bool {
            match (a, b) {
                (Value::F64(x), Value::F64(y)) => x.to_bits() == y.to_bits(),
                (Value::Seq(x), Value::Seq(y)) => {
                    x.len() == y.len() && x.iter().zip(y).all(|(a, b)| eq(a, b))
                }
                (Value::Map(x), Value::Map(y)) => {
                    x.len() == y.len()
                        && x.iter()
                            .zip(y)
                            .all(|((ka, va), (kb, vb))| ka == kb && eq(va, vb))
                }
                _ => a == b,
            }
        }
        assert!(eq(&v, &back));
    }

    #[test]
    fn repeated_strings_are_interned_once() {
        let many = Value::Seq(
            (0..100)
                .map(|_| Value::Map(vec![("field_name".into(), Value::I64(1))]))
                .collect(),
        );
        let payload = encode_value(&many);
        // 100 copies of "field_name" as JSON would be >1200 bytes; the
        // interned encoding stores the name once plus ~5 bytes per map
        // (tag, count, key index, value tag, value).
        assert!(payload.len() < 560, "payload was {} bytes", payload.len());
        assert_eq!(decode_value(&payload).unwrap(), many);
    }

    #[test]
    fn integral_floats_and_scalar_runs_compress_bit_exactly() {
        // Mixed integral/fractional/special floats plus long runs,
        // shaped like a slack profile's field columns.
        let mut items: Vec<Value> = vec![
            Value::F64(0.0),
            Value::F64(-0.0),
            Value::F64(1.0),
            Value::F64(-3.0),
            Value::F64(0.10833333333333334),
            Value::F64(f64::NAN),
            Value::F64(f64::INFINITY),
            Value::F64(9_007_199_254_740_992.0),
        ];
        items.extend(std::iter::repeat_n(Value::U64(449), 200));
        items.extend(std::iter::repeat_n(Value::F64(0.0), 200));
        items.extend(std::iter::repeat_n(Value::Str("x".into()), 50));
        let v = Value::Seq(items.clone());
        let payload = encode_value(&v);
        // 450 run elements collapse to three repeat markers.
        assert!(payload.len() < 120, "payload was {} bytes", payload.len());
        let Value::Seq(back) = decode_value(&payload).expect("decodes") else {
            panic!("not a seq");
        };
        assert_eq!(back.len(), items.len());
        for (a, b) in items.iter().zip(&back) {
            match (a, b) {
                (Value::F64(x), Value::F64(y)) => {
                    assert_eq!(x.to_bits(), y.to_bits(), "float bits replay exactly")
                }
                _ => assert_eq!(a, b),
            }
        }
    }

    #[test]
    fn repeat_runs_cannot_overrun_their_sequence() {
        // A hand-built tree section claiming a seq of 2 elements with a
        // repeat run of 200 must fail cleanly, not produce 200 items.
        let mut payload = Vec::new();
        payload.extend_from_slice(&1u32.to_le_bytes()); // string section
        payload.push(0); // zero strings
        let mut tree = vec![TAG_SEQ, 2, TAG_REPEAT, 200, TAG_INT, 0];
        payload.extend_from_slice(&(tree.len() as u32).to_le_bytes());
        payload.append(&mut tree);
        let err = decode_value(&payload).unwrap_err();
        assert!(matches!(err, BinError::Malformed(_)), "{err}");
    }

    #[test]
    fn sealed_records_round_trip_with_header_fields() {
        let rec = to_record(RecordKind::JournalRow, 7, &sample_value());
        let header = peek_header(&rec).unwrap();
        assert_eq!(header.container_version, CONTAINER_VERSION);
        assert_eq!(header.kind, RecordKind::JournalRow as u16);
        assert_eq!(header.schema, 7);
        assert_eq!(
            header.payload_len as usize,
            rec.len() - HEADER_LEN - TRAILER_LEN
        );
        let v: Value = from_record(&rec, RecordKind::JournalRow, 7).unwrap();
        assert_eq!(v.field("cycles").unwrap(), &Value::I64(4800));
    }

    #[test]
    fn kind_and_schema_mismatches_are_stale_not_corrupt() {
        let rec = to_record(RecordKind::CacheEntry, 2, &42u32);
        let wrong_kind = open_value(&rec, RecordKind::JournalRow, 2).unwrap_err();
        assert!(matches!(wrong_kind, BinError::WrongKind { .. }));
        assert!(!wrong_kind.is_corrupt());
        let wrong_schema = open_value(&rec, RecordKind::CacheEntry, 3).unwrap_err();
        assert!(matches!(wrong_schema, BinError::StaleSchema { .. }));
        assert!(!wrong_schema.is_corrupt());
        assert!(open_value(&rec, RecordKind::CacheEntry, 2).is_ok());
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let rec = to_record(RecordKind::JournalRow, 1, &sample_value());
        let original: Value = from_record(&rec, RecordKind::JournalRow, 1).unwrap();
        for byte in 0..rec.len() {
            for bit in 0..8 {
                let mut flipped = rec.clone();
                flipped[byte] ^= 1 << bit;
                match from_record::<Value>(&flipped, RecordKind::JournalRow, 1) {
                    Err(_) => {}
                    Ok(v) => panic!(
                        "flip at byte {byte} bit {bit} opened as {v:?} (original {original:?})"
                    ),
                }
            }
        }
    }

    #[test]
    fn truncation_at_every_length_is_detected() {
        let rec = to_record(RecordKind::CacheEntry, 1, &sample_value());
        for len in 0..rec.len() {
            let err = open_payload(&rec[..len]).expect_err("truncated record must not open");
            assert!(err.is_corrupt(), "length {len}: {err}");
        }
        // Trailing garbage is also rejected.
        let mut long = rec.clone();
        long.push(0);
        assert!(open_payload(&long).is_err());
    }

    #[test]
    fn adversarial_payloads_never_panic() {
        // Fuzz-ish: hand-crafted payloads with lying counts, bad
        // indices, bad UTF-8, and deep nesting, each sealed with a
        // *valid* checksum so decoding is actually reached.
        let evil_payloads: Vec<Vec<u8>> = vec![
            vec![],                       // no sections
            vec![0xff, 0xff, 0xff, 0xff], // section length past the end
            {
                // empty string table, tree = seq claiming u64::MAX items
                let mut p = vec![1, 0, 0, 0, 0]; // table: count 0
                let tree = {
                    let mut t = vec![TAG_SEQ];
                    put_varint(&mut t, u64::MAX);
                    t
                };
                p.extend_from_slice(&(tree.len() as u32).to_le_bytes());
                p.extend_from_slice(&tree);
                p
            },
            {
                // tree references string index 5 of an empty table
                let mut p = vec![1, 0, 0, 0, 0];
                let tree = vec![TAG_STR, 5];
                p.extend_from_slice(&(tree.len() as u32).to_le_bytes());
                p.extend_from_slice(&tree);
                p
            },
            {
                // string table entry with invalid UTF-8
                let mut table = Vec::new();
                put_varint(&mut table, 1);
                put_varint(&mut table, 2);
                table.extend_from_slice(&[0xc3, 0x28]);
                let mut p = (table.len() as u32).to_le_bytes().to_vec();
                p.extend_from_slice(&table);
                p.extend_from_slice(&1u32.to_le_bytes());
                p.push(TAG_NULL);
                p
            },
            {
                // nesting bomb: 200 nested single-element seqs
                let mut p = vec![1, 0, 0, 0, 0];
                let mut tree = Vec::new();
                for _ in 0..200 {
                    tree.push(TAG_SEQ);
                    tree.push(1);
                }
                tree.push(TAG_NULL);
                p.extend_from_slice(&(tree.len() as u32).to_le_bytes());
                p.extend_from_slice(&tree);
                p
            },
        ];
        for payload in evil_payloads {
            let rec = seal_payload(RecordKind::Results, 1, &payload);
            let err = open_value(&rec, RecordKind::Results, 1)
                .expect_err("adversarial payload must not decode");
            assert!(matches!(err, BinError::Malformed(_)), "{err}");
        }
    }

    #[test]
    fn derived_structs_round_trip_through_records() {
        #[derive(Serialize, serde::Deserialize, Debug, PartialEq)]
        struct Demo {
            bench: String,
            freqs: Vec<u64>,
            ipc: f64,
            tag: Option<String>,
        }
        let demo = Demo {
            bench: "mib_crc32".into(),
            freqs: vec![0, 1, 127, 128, 300_000],
            ipc: 1.8617,
            tag: None,
        };
        let rec = to_record(RecordKind::Results, 9, &demo);
        let back: Demo = from_record(&rec, RecordKind::Results, 9).unwrap();
        assert_eq!(back, demo);
        assert_eq!(back.ipc.to_bits(), demo.ipc.to_bits());
    }

    #[test]
    fn binary_records_undercut_their_json_equivalents() {
        // The motivating case: many records sharing field names.
        #[derive(Serialize)]
        struct Row {
            seq: u64,
            pc: u64,
            fetch: u64,
            dispatch: Option<u64>,
            issue: Option<u64>,
            commit: Option<u64>,
        }
        let rows: Vec<Row> = (0..500)
            .map(|i| Row {
                seq: i,
                pc: 0x4000 + 4 * i,
                fetch: 10 * i,
                dispatch: Some(10 * i + 3),
                issue: Some(10 * i + 5),
                commit: (i % 7 != 0).then_some(10 * i + 9),
            })
            .collect();
        // Compare against the JSON as it was actually persisted by the
        // JSON-era artifact writers (`save_json` pretty-prints).
        let json = serde_json::to_string_pretty(&rows).unwrap();
        let rec = to_record(RecordKind::ObsDump, 1, &rows);
        assert!(
            rec.len() * 3 <= json.len(),
            "binary {} bytes vs JSON {} bytes",
            rec.len(),
            json.len()
        );
        // Even against compact JSON the binary form wins handily.
        let compact = serde_json::to_string(&rows).unwrap();
        assert!(rec.len() * 2 <= compact.len());
    }
}
