//! SIGINT/SIGTERM watching for graceful sweep shutdown, without libc.
//!
//! The workspace builds offline with no external crates, so there is no
//! `libc`/`signal-hook` to lean on. Instead of installing an async
//! signal handler (which would need an `sa_restorer` trampoline), this
//! module uses the *synchronous* signal API, which only needs two plain
//! syscalls:
//!
//! 1. `rt_sigprocmask` blocks SIGINT and SIGTERM on the calling thread.
//!    Threads spawned afterwards (the sweep workers and the watcher)
//!    inherit the mask, so the signals stay pending instead of killing
//!    the process.
//! 2. A watcher thread polls `rt_sigtimedwait` on the blocked set. When
//!    a signal arrives it invokes the supplied callback in a normal
//!    thread context — no async-signal-safety contortions.
//!
//! Supported on Linux x86_64/aarch64 (raw syscall numbers differ per
//! architecture); elsewhere [`SignalWatch::install`] returns `None` and
//! shutdown remains purely cooperative
//! ([`crate::supervisor::request_shutdown`]).
//!
//! This is the only module in `mg-bench` allowed to use `unsafe` (the
//! crate is `deny(unsafe_code)`): two `asm!`-wrapped syscalls, each a
//! direct transliteration of the kernel ABI.

/// Linux signal numbers this watcher cares about.
pub const SIGINT: i32 = 2;
/// See [`SIGINT`].
pub const SIGTERM: i32 = 15;

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
mod sys {
    use std::arch::asm;

    /// Kernel sigset: one u64 bitmask, bit `sig - 1` per signal.
    pub const SET_SIZE: usize = 8;

    #[cfg(target_arch = "x86_64")]
    const NR_RT_SIGPROCMASK: usize = 14;
    #[cfg(target_arch = "x86_64")]
    const NR_RT_SIGTIMEDWAIT: usize = 128;

    #[cfg(target_arch = "aarch64")]
    const NR_RT_SIGPROCMASK: usize = 135;
    #[cfg(target_arch = "aarch64")]
    const NR_RT_SIGTIMEDWAIT: usize = 137;

    pub const SIG_BLOCK: usize = 0;
    pub const SIG_SETMASK: usize = 2;

    #[repr(C)]
    pub struct Timespec {
        pub sec: i64,
        pub nsec: i64,
    }

    #[cfg(target_arch = "x86_64")]
    #[allow(unsafe_code)]
    unsafe fn syscall4(nr: usize, a0: usize, a1: usize, a2: usize, a3: usize) -> isize {
        let ret: isize;
        unsafe {
            asm!(
                "syscall",
                inlateout("rax") nr => ret,
                in("rdi") a0,
                in("rsi") a1,
                in("rdx") a2,
                in("r10") a3,
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack),
            );
        }
        ret
    }

    #[cfg(target_arch = "aarch64")]
    #[allow(unsafe_code)]
    unsafe fn syscall4(nr: usize, a0: usize, a1: usize, a2: usize, a3: usize) -> isize {
        let ret: isize;
        unsafe {
            asm!(
                "svc 0",
                in("x8") nr,
                inlateout("x0") a0 => ret,
                in("x1") a1,
                in("x2") a2,
                in("x3") a3,
                options(nostack),
            );
        }
        ret
    }

    /// `rt_sigprocmask(how, &set, &mut old, 8)`; returns the previous
    /// mask on success.
    #[allow(unsafe_code)]
    pub fn sigprocmask(how: usize, set: u64) -> Option<u64> {
        let mut old: u64 = 0;
        let ret = unsafe {
            syscall4(
                NR_RT_SIGPROCMASK,
                how,
                std::ptr::from_ref(&set) as usize,
                std::ptr::from_mut(&mut old) as usize,
                SET_SIZE,
            )
        };
        (ret == 0).then_some(old)
    }

    /// `rt_sigtimedwait(&set, NULL, &timeout, 8)`: waits up to `timeout`
    /// for a signal in `set`, returning its number, or `None` on timeout
    /// (or interruption).
    #[allow(unsafe_code)]
    pub fn sigtimedwait(set: u64, timeout: &Timespec) -> Option<i32> {
        let ret = unsafe {
            syscall4(
                NR_RT_SIGTIMEDWAIT,
                std::ptr::from_ref(&set) as usize,
                0, // siginfo: not needed
                std::ptr::from_ref(timeout) as usize,
                SET_SIZE,
            )
        };
        (ret > 0).then_some(ret as i32)
    }
}

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A live signal watch: SIGINT/SIGTERM are blocked and routed to the
/// callback until this is dropped (which restores the previous mask and
/// retires the watcher thread).
pub struct SignalWatch {
    stop: Arc<AtomicBool>,
    #[cfg(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    ))]
    old_mask: u64,
}

impl SignalWatch {
    /// Blocks SIGINT/SIGTERM on the calling thread and spawns a watcher
    /// that invokes `on_signal(signo, count)` for each delivery (`count`
    /// is 1 for the first signal since install, 2 for the second, ...).
    /// Returns `None` on unsupported platforms or if the mask syscall
    /// fails; callers fall back to cooperative shutdown only.
    #[cfg(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    ))]
    pub fn install<F>(on_signal: F) -> Option<SignalWatch>
    where
        F: Fn(i32, u32) + Send + 'static,
    {
        let mask = (1u64 << (SIGINT - 1)) | (1u64 << (SIGTERM - 1));
        let old_mask = sys::sigprocmask(sys::SIG_BLOCK, mask)?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_in_thread = Arc::clone(&stop);
        let spawned = std::thread::Builder::new()
            .name("mg-signal-watch".to_string())
            .spawn(move || {
                let timeout = sys::Timespec {
                    sec: 0,
                    nsec: 100_000_000, // poll the stop flag at 10 Hz
                };
                let mut count = 0u32;
                while !stop_in_thread.load(Ordering::Relaxed) {
                    if let Some(signo) = sys::sigtimedwait(mask, &timeout) {
                        count += 1;
                        on_signal(signo, count);
                    }
                }
            })
            .is_ok();
        if !spawned {
            // Undo the mask rather than leave signals silently blocked.
            sys::sigprocmask(sys::SIG_SETMASK, old_mask);
            return None;
        }
        Some(SignalWatch { stop, old_mask })
    }

    /// Unsupported platform: no signal watching; cooperative shutdown
    /// still works.
    #[cfg(not(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    )))]
    pub fn install<F>(_on_signal: F) -> Option<SignalWatch>
    where
        F: Fn(i32, u32) + Send + 'static,
    {
        None
    }
}

impl Drop for SignalWatch {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        // The watcher notices within one poll interval and exits; the
        // thread is detached, so there is nothing to join. Restore the
        // pre-install mask on the installing thread.
        #[cfg(all(
            target_os = "linux",
            any(target_arch = "x86_64", target_arch = "aarch64")
        ))]
        sys::sigprocmask(sys::SIG_SETMASK, self.old_mask);
    }
}

#[cfg(all(
    test,
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
mod tests {
    use super::*;

    /// Exercises both syscall wrappers end-to-end on the *current*
    /// thread: block SIGINT, queue a thread-directed SIGINT at
    /// ourselves (`tgkill`), and dequeue it with `sigtimedwait`.
    ///
    /// Deliberately thread-directed rather than `kill(getpid(), ...)`:
    /// the test harness runs other threads that do not block SIGINT, and
    /// a process-directed signal could be delivered to one of them and
    /// kill the whole test run. A thread-directed signal can only pend
    /// on this thread, where it is blocked — exactly the property the
    /// watcher relies on.
    #[test]
    fn sigtimedwait_dequeues_a_blocked_pending_signal() {
        let mask = 1u64 << (SIGINT - 1);
        let old = sys::sigprocmask(sys::SIG_BLOCK, mask).expect("sigprocmask");
        assert!(test_support::tgkill_current_thread(SIGINT), "tgkill");
        let got = sys::sigtimedwait(mask, &sys::Timespec { sec: 2, nsec: 0 });
        sys::sigprocmask(sys::SIG_SETMASK, old).expect("mask restore");
        assert_eq!(got, Some(SIGINT));
    }

    /// A timeout (no pending signal) reports `None` without blocking
    /// for long, and install/drop leaves the thread's mask unchanged.
    #[test]
    fn watch_installs_polls_and_restores_the_mask() {
        let mask = 1u64 << (SIGTERM - 1);
        let before = sys::sigprocmask(sys::SIG_BLOCK, 0).expect("read mask");
        let watch = SignalWatch::install(|_signo, _count| {}).expect("install");
        let timeout = sys::Timespec {
            sec: 0,
            nsec: 1_000_000,
        };
        assert_eq!(sys::sigtimedwait(mask, &timeout), None, "nothing pending");
        drop(watch);
        let after = sys::sigprocmask(sys::SIG_BLOCK, 0).expect("read mask");
        assert_eq!(before, after, "drop restored the signal mask");
    }

    /// `tgkill(tgid, tid, sig)` through the same asm shim, so the test
    /// can deliver a real pending signal to exactly this thread.
    mod test_support {
        use std::arch::asm;

        #[cfg(target_arch = "x86_64")]
        const NR_GETTID: usize = 186;
        #[cfg(target_arch = "x86_64")]
        const NR_TGKILL: usize = 234;

        #[cfg(target_arch = "aarch64")]
        const NR_GETTID: usize = 178;
        #[cfg(target_arch = "aarch64")]
        const NR_TGKILL: usize = 131;

        #[allow(unsafe_code)]
        fn syscall3(nr: usize, a0: usize, a1: usize, a2: usize) -> isize {
            let ret: isize;
            #[cfg(target_arch = "x86_64")]
            unsafe {
                asm!(
                    "syscall",
                    inlateout("rax") nr => ret,
                    in("rdi") a0,
                    in("rsi") a1,
                    in("rdx") a2,
                    lateout("rcx") _,
                    lateout("r11") _,
                    options(nostack),
                );
            }
            #[cfg(target_arch = "aarch64")]
            unsafe {
                asm!(
                    "svc 0",
                    in("x8") nr,
                    inlateout("x0") a0 => ret,
                    in("x1") a1,
                    in("x2") a2,
                    options(nostack),
                );
            }
            ret
        }

        pub fn tgkill_current_thread(sig: i32) -> bool {
            let tgid = std::process::id() as usize;
            let tid = syscall3(NR_GETTID, 0, 0, 0);
            tid > 0 && syscall3(NR_TGKILL, tgid, tid as usize, sig as usize) == 0
        }
    }
}
